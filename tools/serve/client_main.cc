/**
 * @file
 * softwatt-serve-client: submit one experiment spec to a running
 * softwatt-serve daemon (or cancel one), print the service metadata,
 * and write the returned softwatt-experiment-v2 document.
 *
 * Usage:
 *   softwatt-serve-client socket=/tmp/sw.sock id=job1 \
 *       spec="bench=jess scale=0.1" [client=NAME] [experiment=NAME] \
 *       [op=run|cancel] [wall_ms=T] [retry=N] [retry_ms=T] \
 *       [out=doc.json] [quiet=1]
 *
 * Cold-reference mode (no daemon): cold=1 executes the spec locally
 * with the same autosave cadence the daemon uses (warm_s= must match
 * the daemon's serve_warm_s=) but without retaining or restoring any
 * checkpoint, producing the byte-identical cold document the CI
 * smoke job compares daemon answers against:
 *
 *   softwatt-serve-client cold=1 warm_s=T spec="..." out=ref.json
 */

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.hh"
#include "core/runner.hh"
#include "serve/client.hh"
#include "serve/executor.hh"
#include "sim/logging.hh"
#include "sim/signals.hh"

using namespace softwatt;

namespace
{

/** Write @p document to @p path ("" or "-" = stdout). */
bool
emitDocument(const std::string &path, const std::string &document)
{
    if (document.empty())
        return true;
    if (path.empty() || path == "-") {
        std::cout << document;
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::cerr << "softwatt-serve-client: cannot open '" << path
                  << "'\n";
        return false;
    }
    out << document;
    return out.good();
}

/** Run the spec locally as the daemon's cold reference twin. */
int
runCold(const std::string &experiment, const std::string &specText,
        double warmS, const std::string &outPath)
{
    RunSpec spec;
    std::string benchName;
    std::string error;
    if (!serve::parseServeSpec(specText, spec, benchName, error)) {
        std::cerr << "softwatt-serve-client: " << error << "\n";
        return 1;
    }

    // Scratch pool (budget 0): the run autosaves at the daemon's
    // cadence — checkpointing perturbs deterministically, so cadence
    // must match for byte-identity — but restores nothing and
    // retains nothing.
    std::string scratchDir =
        (outPath.empty() || outPath == "-" ? std::string("cold")
                                           : outPath) +
        ".scratch";
    std::error_code ec;
    std::filesystem::create_directories(scratchDir, ec);
    if (ec) {
        std::cerr << "softwatt-serve-client: cannot create '"
                  << scratchDir << "': " << ec.message() << "\n";
        return 1;
    }
    serve::CheckpointPool scratch(scratchDir, 0);

    ScopedErrorHandler firewall(throwingErrorHandler);
    CancelToken token;
    SignalGuard guard(token);
    serve::ServeExecOptions policy;
    policy.title = experiment;
    policy.warmEveryS = warmS;
    policy.pool = &scratch;
    serve::ServeExecResult done =
        serve::executeServeSpec(spec, policy, token);
    std::filesystem::remove_all(scratchDir, ec);

    std::ostringstream document;
    writeExperimentDocument(document, experiment,
                            /*interrupted=*/false, {done.runJson});
    if (!emitDocument(outPath, document.str()))
        return 1;
    RunOutcome outcome = done.run.result.outcome;
    std::cerr << "cold: " << benchName << " ended "
              << runOutcomeName(outcome) << "\n";
    return outcome == RunOutcome::Failed ||
                   outcome == RunOutcome::Cancelled
               ? 1
               : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;

    std::string socketPath = args.getString("socket", "");
    std::string op = args.getString("op", "run");
    std::string id = args.getString("id", "job-1");
    std::string clientName = args.getString("client", "cli");
    std::string experiment = args.getString("experiment", "serve");
    std::string specText = args.getString("spec", "");
    std::int64_t wallMs = args.getInt("wall_ms", 0);
    std::int64_t retries = args.getInt("retry", 0);
    std::int64_t retryMs = args.getInt("retry_ms", 200);
    bool cold = args.getBool("cold", false);
    double warmS = args.getDouble("warm_s", 0.0);
    std::string outPath = args.getString("out", "");
    bool quiet = args.getBool("quiet", false);
    std::vector<std::string> unused = args.unusedKeys();
    if (!unused.empty()) {
        msg report;
        report << "unknown key(s):";
        for (const std::string &key : unused)
            report << " " << key;
        fatal(report);
    }
    if (wallMs < 0 || retries < 0 || retryMs < 0)
        fatal("wall_ms/retry/retry_ms must be >= 0");

    if (cold)
        return runCold(experiment, specText, warmS, outPath);

    if (socketPath.empty())
        fatal("socket= is required (or cold=1 for a local run)");

    serve::ServeRequest request;
    request.op = op;
    request.id = id;
    request.client = clientName;
    request.experiment = experiment;
    request.spec = specText;
    request.wallMs = std::uint64_t(wallMs);

    // Retry both connect failures (a daemon mid-restart) and
    // structured overload rejections, with a fixed delay: the daemon
    // already shed the work, so there is no thundering herd to shape.
    serve::ServeResponse response;
    std::string error;
    for (std::int64_t attempt = 0;; ++attempt) {
        serve::ServeClient client;
        bool delivered = client.connect(socketPath, error) &&
                         client.call(request, response, error);
        if (delivered &&
            !(response.status == serve::statusOverloaded ||
              response.status == serve::statusShuttingDown)) {
            break;
        }
        if (attempt >= retries) {
            if (!delivered) {
                std::cerr << "softwatt-serve-client: " << error
                          << "\n";
                return 1;
            }
            break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(retryMs));
    }

    if (!quiet) {
        std::cerr << "status=" << response.status
                  << " served_from=" << response.servedFrom
                  << " attempts=" << response.attempts
                  << " warm_start=" << (response.warmStart ? 1 : 0)
                  << " warm_start_tick=" << response.warmStartTick
                  << " ticks_executed=" << response.ticksExecuted;
        if (response.degraded)
            std::cerr << " degraded=1";
        if (!response.error.empty())
            std::cerr << " error=\"" << response.error << "\"";
        std::cerr << "\n";
    }
    if (!emitDocument(outPath, response.document))
        return 1;
    return response.status == serve::statusOk ? 0 : 1;
}
