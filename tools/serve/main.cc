/**
 * @file
 * softwatt-serve: the crash-tolerant simulation daemon.
 *
 * Usage:
 *   softwatt-serve serve_socket=/tmp/sw.sock serve_state=/tmp/swstate
 *                  [serve_jobs=N] [serve_queue_max=N]
 *                  [serve_pool_mb=M] [serve_warm_s=T]
 *                  [serve_retries=N] [serve_backoff_ms=T]
 *                  [serve_wall_timeout_s=T]
 *
 * The first SIGINT/SIGTERM/SIGHUP drains (no new admissions,
 * in-flight and queued jobs finish); a second cancels queued jobs and
 * hard-stops in-flight ones at their next sample window. A SIGKILL'd
 * daemon restarts into the same serve_state= directory and re-answers
 * finished jobs byte-identically from its journal.
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "serve/server.hh"
#include "sim/logging.hh"
#include "sim/signals.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;

    serve::ServeOptions options =
        serve::ServeOptions::fromConfig(cli.config);
    std::vector<std::string> unused = cli.config.unusedKeys();
    if (!unused.empty()) {
        msg report;
        report << "unknown key(s):";
        for (const std::string &key : unused)
            report << " " << key;
        fatal(report);
    }

    serve::ServeServer server(std::move(options));
    std::string error;
    if (!server.start(error)) {
        std::cerr << "softwatt-serve: " << error << "\n";
        return 1;
    }

    CancelToken stop;
    SignalGuard guard(stop);
    server.serveUntil(stop);
    return 0;
}
