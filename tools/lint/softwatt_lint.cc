#include "softwatt_lint.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace softwatt::lint
{

namespace
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Does @p path (repo-relative, '/'-separated) live under @p dir? */
bool
underDir(const std::string &path, const std::string &dir)
{
    return path.size() > dir.size() &&
           path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
}

bool
pathContains(const std::string &path, const std::string &needle)
{
    return path.find(needle) != std::string::npos;
}

/** Where a rule applies. */
enum class Scope
{
    Everywhere,
    SimSources,   ///< Only files under src/.
    EmissionPaths ///< Only report/JSON emission files.
};

/** One banned token. */
struct Needle
{
    std::string text;

    /** Match only at identifier boundaries (vs plain substring). */
    bool identifier = true;

    /** Additionally require a '(' after the token (call sites). */
    bool requireParen = false;
};

struct Rule
{
    std::string name;
    Scope scope;
    std::string message;
    std::vector<Needle> needles;
};

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> table = {
        {"banned-rand", Scope::Everywhere,
         "use softwatt::Random (src/sim/random.hh); global or "
         "hardware RNGs break run-to-run reproducibility",
         {{"rand", true, true},
          {"srand", true, true},
          {"random_device", true, false}}},
        {"wall-clock", Scope::SimSources,
         "simulation code must not read the wall clock; results "
         "must be a pure function of the configuration",
         {{"time", true, true},
          {"clock", true, true},
          {"gettimeofday", true, true},
          {"system_clock", false, false},
          {"steady_clock", false, false},
          {"high_resolution_clock", false, false}}},
        {"raw-exit", Scope::Everywhere,
         "route fatal conditions through fatal()/panic() "
         "(src/sim/logging.hh) so error handlers and tests can "
         "intercept them",
         {{"exit", true, true},
          {"quick_exit", true, true},
          {"_Exit", true, true},
          {"abort", true, true}}},
        {"unordered-emission", Scope::EmissionPaths,
         "iteration order of unordered containers is "
         "implementation-defined; emitted reports must be "
         "deterministic, use std::map/std::set or sort first",
         {{"unordered_map", true, false},
          {"unordered_set", true, false}}},
        {"raw-signal", Scope::Everywhere,
         "install signal handlers only through SignalGuard "
         "(src/sim/signals.hh); scattered signal()/sigaction() "
         "calls fight over handler ownership and skip the "
         "cancellation token",
         {{"signal", true, true},
          {"sigaction", true, true}}},
        {"raw-assert", Scope::Everywhere,
         "use SW_ASSERT/SW_CHECK (src/sim/check.hh); raw assert() "
         "bypasses the error-handler path and vanishes under NDEBUG",
         {{"assert", true, true},
          {"<cassert>", false, false},
          {"<assert.h>", false, false}}},
    };
    return table;
}

bool
ruleApplies(const Rule &rule, const std::string &path)
{
    // The one blessed RNG implementation defines, not uses, the API.
    if (rule.name == "banned-rand" && path == "src/sim/random.hh")
        return false;
    // The one blessed signal module owns the raw handler calls.
    if (rule.name == "raw-signal" &&
        (path == "src/sim/signals.cc" || path == "src/sim/signals.hh"))
        return false;
    switch (rule.scope) {
      case Scope::Everywhere:
        return true;
      case Scope::SimSources:
        return underDir(path, "src");
      case Scope::EmissionPaths:
        return pathContains(path, "report") ||
               pathContains(path, "json");
    }
    return false;
}

/** True when masked[pos..] matches the needle with its constraints. */
bool
matchesAt(const std::string &masked, std::size_t pos,
          const Needle &needle)
{
    if (needle.identifier) {
        if (pos > 0 && identChar(masked[pos - 1]))
            return false;
        std::size_t end = pos + needle.text.size();
        if (end < masked.size() && identChar(masked[end]))
            return false;
    }
    if (needle.requireParen) {
        std::size_t cursor = pos + needle.text.size();
        while (cursor < masked.size() &&
               (masked[cursor] == ' ' || masked[cursor] == '\t')) {
            ++cursor;
        }
        if (cursor >= masked.size() || masked[cursor] != '(')
            return false;
    }
    return true;
}

} // namespace

bool
Suppressions::parse(const std::string &text, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string path, rule, extra;
        if (!(fields >> path))
            continue;  // blank or comment-only line
        if (!(fields >> rule) || fields >> extra) {
            error = "suppressions line " + std::to_string(lineno) +
                    ": expected '<path> <rule>'";
            return false;
        }
        entries.emplace_back(std::move(path), std::move(rule));
    }
    return true;
}

bool
Suppressions::suppressed(const std::string &path,
                         const std::string &rule) const
{
    for (const auto &[p, r] : entries) {
        if (p == path && r == rule)
            return true;
    }
    return false;
}

std::string
maskCommentsAndStrings(const std::string &source)
{
    std::string out = source;
    std::size_t i = 0;
    std::size_t n = source.size();

    auto blank = [&out](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to; ++k) {
            if (out[k] != '\n')
                out[k] = ' ';
        }
    };

    while (i < n) {
        char c = source[i];
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t end = source.find('\n', i);
            if (end == std::string::npos)
                end = n;
            blank(i, end);
            i = end;
        } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t end = source.find("*/", i + 2);
            end = end == std::string::npos ? n : end + 2;
            blank(i, end);
            i = end;
        } else if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
                   (i == 0 || !identChar(source[i - 1]))) {
            // Raw string: R"delim( ... )delim"
            std::size_t open = source.find('(', i + 2);
            if (open == std::string::npos) {
                i = n;
                break;
            }
            std::string delim = source.substr(i + 2, open - (i + 2));
            std::string closer = ")" + delim + "\"";
            std::size_t end = source.find(closer, open + 1);
            end = end == std::string::npos ? n : end + closer.size();
            blank(i, end);
            i = end;
        } else if (c == '"' || c == '\'') {
            std::size_t k = i + 1;
            while (k < n && source[k] != c) {
                if (source[k] == '\\' && k + 1 < n)
                    ++k;
                ++k;
            }
            std::size_t end = k < n ? k + 1 : n;
            blank(i, end);
            i = end;
        } else {
            ++i;
        }
    }
    return out;
}

std::vector<Issue>
lintSource(const std::string &path, const std::string &source,
           const Suppressions &suppressions)
{
    std::string masked = maskCommentsAndStrings(source);

    std::vector<Issue> issues;
    for (const Rule &rule : rules()) {
        if (!ruleApplies(rule, path))
            continue;
        if (suppressions.suppressed(path, rule.name))
            continue;
        for (const Needle &needle : rule.needles) {
            std::size_t pos = 0;
            while ((pos = masked.find(needle.text, pos)) !=
                   std::string::npos) {
                if (matchesAt(masked, pos, needle)) {
                    Issue issue;
                    issue.path = path;
                    issue.line =
                        1 + int(std::count(masked.begin(),
                                           masked.begin() +
                                               std::ptrdiff_t(pos),
                                           '\n'));
                    issue.rule = rule.name;
                    issue.message =
                        "'" + needle.text + "': " + rule.message;
                    issues.push_back(std::move(issue));
                }
                pos += needle.text.size();
            }
        }
    }
    std::sort(issues.begin(), issues.end(),
              [](const Issue &a, const Issue &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return issues;
}

} // namespace softwatt::lint
