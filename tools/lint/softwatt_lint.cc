#include "softwatt_lint.hh"

#include <algorithm>

namespace softwatt::lint
{

using tools::identChar;

namespace
{

/** Does @p path (repo-relative, '/'-separated) live under @p dir? */
bool
underDir(const std::string &path, const std::string &dir)
{
    return path.size() > dir.size() &&
           path.compare(0, dir.size(), dir) == 0 &&
           path[dir.size()] == '/';
}

bool
pathContains(const std::string &path, const std::string &needle)
{
    return path.find(needle) != std::string::npos;
}

/** Where a rule applies. */
enum class Scope
{
    Everywhere,
    SimSources,   ///< Only files under src/.
    EmissionPaths ///< Only report/JSON emission files.
};

/** One banned token. */
struct Needle
{
    std::string text;

    /** Match only at identifier boundaries (vs plain substring). */
    bool identifier = true;

    /** Additionally require a '(' after the token (call sites). */
    bool requireParen = false;
};

struct Rule
{
    std::string name;
    Scope scope;
    std::string message;
    std::vector<Needle> needles;
};

const std::vector<Rule> &
rules()
{
    static const std::vector<Rule> table = {
        {"banned-rand", Scope::Everywhere,
         "use softwatt::Random (src/sim/random.hh); global or "
         "hardware RNGs break run-to-run reproducibility",
         {{"rand", true, true},
          {"srand", true, true},
          {"random_device", true, false}}},
        {"wall-clock", Scope::SimSources,
         "simulation code must not read the wall clock; results "
         "must be a pure function of the configuration",
         {{"time", true, true},
          {"clock", true, true},
          {"gettimeofday", true, true},
          {"system_clock", false, false},
          {"steady_clock", false, false},
          {"high_resolution_clock", false, false}}},
        {"raw-exit", Scope::Everywhere,
         "route fatal conditions through fatal()/panic() "
         "(src/sim/logging.hh) so error handlers and tests can "
         "intercept them",
         {{"exit", true, true},
          {"quick_exit", true, true},
          {"_Exit", true, true},
          {"abort", true, true}}},
        {"unordered-emission", Scope::EmissionPaths,
         "iteration order of unordered containers is "
         "implementation-defined; emitted reports must be "
         "deterministic, use std::map/std::set or sort first",
         {{"unordered_map", true, false},
          {"unordered_set", true, false}}},
        {"raw-signal", Scope::Everywhere,
         "install signal handlers only through SignalGuard "
         "(src/sim/signals.hh); scattered signal()/sigaction() "
         "calls fight over handler ownership and skip the "
         "cancellation token",
         {{"signal", true, true},
          {"sigaction", true, true}}},
        {"raw-assert", Scope::Everywhere,
         "use SW_ASSERT/SW_CHECK (src/sim/check.hh); raw assert() "
         "bypasses the error-handler path and vanishes under NDEBUG",
         {{"assert", true, true},
          {"<cassert>", false, false},
          {"<assert.h>", false, false}}},
    };
    return table;
}

bool
ruleApplies(const Rule &rule, const std::string &path)
{
    // The one blessed RNG implementation defines, not uses, the API.
    if (rule.name == "banned-rand" && path == "src/sim/random.hh")
        return false;
    // The one blessed signal module owns the raw handler calls.
    if (rule.name == "raw-signal" &&
        (path == "src/sim/signals.cc" || path == "src/sim/signals.hh"))
        return false;
    switch (rule.scope) {
      case Scope::Everywhere:
        return true;
      case Scope::SimSources:
        return underDir(path, "src");
      case Scope::EmissionPaths:
        return pathContains(path, "report") ||
               pathContains(path, "json");
    }
    return false;
}

/** True when masked[pos..] matches the needle with its constraints. */
bool
matchesAt(const std::string &masked, std::size_t pos,
          const Needle &needle)
{
    if (needle.identifier) {
        if (pos > 0 && identChar(masked[pos - 1]))
            return false;
        std::size_t end = pos + needle.text.size();
        if (end < masked.size() && identChar(masked[end]))
            return false;
    }
    if (needle.requireParen) {
        std::size_t cursor = pos + needle.text.size();
        while (cursor < masked.size() &&
               (masked[cursor] == ' ' || masked[cursor] == '\t')) {
            ++cursor;
        }
        if (cursor >= masked.size() || masked[cursor] != '(')
            return false;
    }
    return true;
}

} // namespace

std::vector<Issue>
lintSource(const std::string &path, const std::string &source,
           const Suppressions &suppressions)
{
    std::string masked = maskCommentsAndStrings(source);

    std::vector<Issue> issues;
    for (const Rule &rule : rules()) {
        if (!ruleApplies(rule, path))
            continue;
        for (const Needle &needle : rule.needles) {
            std::size_t pos = 0;
            while ((pos = masked.find(needle.text, pos)) !=
                   std::string::npos) {
                if (matchesAt(masked, pos, needle)) {
                    Issue issue;
                    issue.path = path;
                    issue.line = tools::lineOfOffset(masked, pos);
                    issue.rule = rule.name;
                    issue.message =
                        "'" + needle.text + "': " + rule.message;
                    issues.push_back(std::move(issue));
                }
                pos += needle.text.size();
            }
        }
    }
    // Suppression runs after matching (not instead of it) so entries
    // that no longer silence a live finding are identifiable as
    // unused.
    suppressions.apply(issues);
    std::sort(issues.begin(), issues.end(), tools::findingLess);
    return issues;
}

} // namespace softwatt::lint
