/**
 * @file
 * The softwatt-lint determinism linter.
 *
 * A small source scanner enforcing the repo's reproducibility
 * contract: simulation results must be a pure function of the
 * configuration, so sources must not reach for ambient
 * nondeterminism (wall clocks, global RNGs), must not hard-exit past
 * the error-handler path, must not emit reports from unordered
 * containers, and must use the SW_ASSERT/SW_CHECK contract macros
 * instead of raw assert(). The scanning substrate (masking, file
 * walking, suppressions, JSON emission) lives in tools/common and is
 * shared with softwatt-analyze.
 */

#ifndef SOFTWATT_TOOLS_LINT_SOFTWATT_LINT_HH
#define SOFTWATT_TOOLS_LINT_SOFTWATT_LINT_HH

#include <string>
#include <vector>

#include "common/scanner.hh"

namespace softwatt::lint
{

/** One rule violation at a source location. */
using Issue = tools::Finding;

/** Checked-in "path rule" suppression list (tools/common). */
using Suppressions = tools::Suppressions;

using tools::maskCommentsAndStrings;

/**
 * Lint one file. @p path is the repo-relative path (rule scoping and
 * suppressions match against it); @p source is the file contents.
 * Returned issues are in line order. Suppressed issues are dropped
 * and the matching suppression entries marked used, so callers can
 * warn about entries that no longer silence anything.
 */
std::vector<Issue> lintSource(const std::string &path,
                              const std::string &source,
                              const Suppressions &suppressions);

} // namespace softwatt::lint

#endif // SOFTWATT_TOOLS_LINT_SOFTWATT_LINT_HH
