/**
 * @file
 * The softwatt-lint determinism linter.
 *
 * A small source scanner enforcing the repo's reproducibility
 * contract: simulation results must be a pure function of the
 * configuration, so sources must not reach for ambient
 * nondeterminism (wall clocks, global RNGs), must not hard-exit past
 * the error-handler path, must not emit reports from unordered
 * containers, and must use the SW_ASSERT/SW_CHECK contract macros
 * instead of raw assert(). It is deliberately token-based rather
 * than AST-based: the banned constructs are identifiable after
 * comments and string literals are masked out, which keeps the tool
 * dependency-free and fast enough to run on every build.
 */

#ifndef SOFTWATT_TOOLS_LINT_SOFTWATT_LINT_HH
#define SOFTWATT_TOOLS_LINT_SOFTWATT_LINT_HH

#include <string>
#include <utility>
#include <vector>

namespace softwatt::lint
{

/** One rule violation at a source location. */
struct Issue
{
    std::string path;   ///< Repo-relative path of the file.
    int line = 0;       ///< 1-based line number.
    std::string rule;   ///< Stable rule name (for suppressions).
    std::string message;
};

/**
 * Checked-in suppression list: one "path rule" pair per line,
 * '#' starts a comment. A suppressed (path, rule) pair silences
 * every match of that rule in that file.
 */
class Suppressions
{
  public:
    /** Parse suppression-file text. Returns false on a bad line. */
    bool parse(const std::string &text, std::string &error);

    bool suppressed(const std::string &path,
                    const std::string &rule) const;

    std::size_t size() const { return entries.size(); }

  private:
    std::vector<std::pair<std::string, std::string>> entries;
};

/**
 * Replace the contents of comments and string/character literals
 * with spaces, preserving newlines so line numbers survive. Handles
 * //, block comments, "..." and '...' with escapes, and R"(...)"
 * raw strings.
 */
std::string maskCommentsAndStrings(const std::string &source);

/**
 * Lint one file. @p path is the repo-relative path (rule scoping and
 * suppressions match against it); @p source is the file contents.
 * Returned issues are in line order.
 */
std::vector<Issue> lintSource(const std::string &path,
                              const std::string &source,
                              const Suppressions &suppressions);

} // namespace softwatt::lint

#endif // SOFTWATT_TOOLS_LINT_SOFTWATT_LINT_HH
