/**
 * @file
 * softwatt-lint entry point: scan source trees for determinism and
 * contract violations.
 *
 *   softwatt-lint [--suppressions FILE] ROOT...
 *
 * Every .cc/.hh/.cpp/.hpp/.h file under each ROOT is linted; issues
 * are reported as "path:line: [rule] message" and the exit status is
 * nonzero when any issue survives the suppression list. Paths are
 * reported relative to the parent of ROOT, so running from the repo
 * root over src/ bench/ examples/ yields repo-relative paths — the
 * form the suppression file and the path-scoped rules match against.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/softwatt_lint.hh"

namespace fs = std::filesystem;
using softwatt::lint::Issue;
using softwatt::lint::Suppressions;

namespace
{

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--suppressions FILE] ROOT...\n", argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    Suppressions suppressions;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--suppressions") {
            if (++i >= argc)
                return usage(argv[0]);
            std::string text;
            if (!readFile(argv[i], text)) {
                std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                             argv[i]);
                return 2;
            }
            std::string error;
            if (!suppressions.parse(text, error)) {
                std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                             argv[i], error.c_str());
                return 2;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty())
        return usage(argv[0]);

    // Collect and sort paths so output order never depends on
    // directory-iteration order.
    std::vector<std::pair<std::string, fs::path>> files;
    for (const fs::path &root : roots) {
        std::error_code ec;
        if (!fs::is_directory(root, ec)) {
            std::fprintf(stderr, "%s: not a directory: %s\n",
                         argv[0], root.string().c_str());
            return 2;
        }
        for (fs::recursive_directory_iterator it(root, ec), end;
             it != end; it.increment(ec)) {
            if (ec) {
                std::fprintf(stderr, "%s: error walking %s\n",
                             argv[0], root.string().c_str());
                return 2;
            }
            if (!it->is_regular_file() || !lintableFile(it->path()))
                continue;
            fs::path rel = fs::relative(it->path(), root);
            std::string repo_rel =
                (root.filename() / rel).generic_string();
            files.emplace_back(std::move(repo_rel), it->path());
        }
    }
    std::sort(files.begin(), files.end());

    int issue_count = 0;
    for (const auto &[repo_rel, full] : files) {
        std::string source;
        if (!readFile(full, source)) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         full.string().c_str());
            return 2;
        }
        for (const Issue &issue :
             softwatt::lint::lintSource(repo_rel, source,
                                        suppressions)) {
            std::printf("%s:%d: [%s] %s\n", issue.path.c_str(),
                        issue.line, issue.rule.c_str(),
                        issue.message.c_str());
            ++issue_count;
        }
    }

    if (issue_count > 0) {
        std::fprintf(stderr, "softwatt-lint: %d issue(s) in %zu "
                             "file(s) scanned\n",
                     issue_count, files.size());
        return 1;
    }
    return 0;
}
