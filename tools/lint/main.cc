/**
 * @file
 * softwatt-lint entry point: scan source trees for determinism and
 * contract violations.
 *
 *   softwatt-lint [--suppressions FILE] [--json=FILE] ROOT...
 *
 * Every .cc/.hh/.cpp/.hpp/.h file under each ROOT is linted; issues
 * are reported as "path:line: [rule] message" and the exit status is
 * nonzero when any issue survives the suppression list. Paths are
 * reported relative to the parent of ROOT, so running from the repo
 * root over src/ bench/ examples/ yields repo-relative paths — the
 * form the suppression file and the path-scoped rules match against.
 *
 * --json=FILE additionally writes the surviving issues in the shared
 * one-finding-per-line JSON schema (common/scanner.hh), the same
 * format softwatt-analyze emits, so CI annotates both tools
 * uniformly. Suppression entries that silenced nothing are reported
 * as warnings (the list is meant to stay short and current) without
 * affecting the exit status.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/scanner.hh"
#include "lint/softwatt_lint.hh"

namespace fs = std::filesystem;
using softwatt::lint::Issue;
using softwatt::lint::Suppressions;
namespace tools = softwatt::tools;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--suppressions FILE] [--json=FILE] "
                 "ROOT...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    Suppressions suppressions;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--suppressions") {
            if (++i >= argc)
                return usage(argv[0]);
            std::string text;
            if (!tools::readFile(argv[i], text)) {
                std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                             argv[i]);
                return 2;
            }
            std::string error;
            if (!suppressions.parse(text, error)) {
                std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                             argv[i], error.c_str());
                return 2;
            }
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(std::strlen("--json="));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty())
        return usage(argv[0]);

    std::vector<tools::ScanFile> files;
    std::string walk_error;
    if (!tools::collectFiles(roots, files, walk_error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0],
                     walk_error.c_str());
        return 2;
    }

    std::vector<Issue> all_issues;
    for (const tools::ScanFile &file : files) {
        std::string source;
        if (!tools::readFile(file.full, source)) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         file.full.string().c_str());
            return 2;
        }
        for (Issue &issue : softwatt::lint::lintSource(
                 file.repoRel, source, suppressions)) {
            std::printf("%s:%d: [%s] %s\n", issue.path.c_str(),
                        issue.line, issue.rule.c_str(),
                        issue.message.c_str());
            all_issues.push_back(std::move(issue));
        }
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         json_path.c_str());
            return 2;
        }
        tools::writeFindingsJson(out, "softwatt-lint", all_issues);
    }

    for (const std::string &entry : suppressions.unusedEntries()) {
        std::fprintf(stderr,
                     "softwatt-lint: warning: unused suppression "
                     "entry '%s' (no issue left to silence; remove "
                     "it from the suppressions file)\n",
                     entry.c_str());
    }

    if (!all_issues.empty()) {
        std::fprintf(stderr, "softwatt-lint: %zu issue(s) in %zu "
                             "file(s) scanned\n",
                     all_issues.size(), files.size());
        return 1;
    }
    return 0;
}
