/**
 * @file
 * softwatt-ckpt: inspect and verify machine checkpoint files.
 *
 * For every file named on the command line, parses the image with the
 * same fully-verifying reader the simulator uses (magic, version,
 * chunk framing, every payload checksum) and prints the header plus
 * the chunk table. Exits nonzero when any file fails verification,
 * so CI and shell scripts can gate on checkpoint integrity:
 *
 *   $ softwatt-ckpt run.json.jess.ckpt
 *   run.json.jess.ckpt: format v1, fingerprint 0x4f1d..., cpu in-order
 *     chunk        bytes  fnv1a64
 *     event-queue     24  0x8c7f3a2b9e4d1c05
 *     ...
 *   run.json.jess.ckpt: OK (10 chunks, 18342 bytes of payload)
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "sim/checkpoint.hh"

namespace fs = std::filesystem;

namespace
{

const char *
cpuModelName(std::uint8_t model)
{
    switch (model) {
      case 0:
        return "in-order";
      case 1:
        return "superscalar";
      default:
        return "unknown";
    }
}

/**
 * Decode and pretty-print the power-subsystem chunk: the kernel's
 * last power-meter reading plus the DVFS governor and adaptive
 * spin-down policy state, mirroring System::buildCheckpointImage.
 * Decode errors are reported but non-fatal — the chunk's checksum
 * already verified, so a short payload means a format-version skew,
 * worth seeing rather than dying over in an inspection tool.
 */
void
printPowerChunk(const softwatt::CheckpointChunk &chunk)
{
    try {
        softwatt::ChunkReader r(chunk.payload, "power");
        std::uint64_t window = r.u64();
        std::uint64_t start = r.u64();
        std::uint64_t end = r.u64();
        double cpu_mem_w = r.f64();
        double disk_w = r.f64();
        double system_w = r.f64();
        double freq_mhz = r.f64();
        double vdd = r.f64();
        bool valid = r.b();
        std::printf("  power meter:\n");
        if (valid) {
            std::printf("    window %" PRIu64 " [%" PRIu64
                        ", %" PRIu64 ")\n",
                        window, start, end);
            std::printf("    cpu+mem %.4f W, disk %.4f W, "
                        "system %.4f W\n",
                        cpu_mem_w, disk_w, system_w);
            std::printf("    operating point: %.1f MHz @ %.2f V%s\n",
                        freq_mhz, vdd,
                        freq_mhz == 0 ? " (nominal)" : "");
        } else {
            std::printf("    no reading yet (no closed window)\n");
        }
        double last_disk_j = r.f64();
        std::uint64_t duty_acc = r.u64();
        std::uint64_t throttled = r.u64();
        std::printf("    disk energy cursor %.6f J, duty acc %" PRIu64
                    ", throttled cycles %" PRIu64 "\n",
                    last_disk_j, duty_acc, throttled);
        if (r.b()) {
            std::uint64_t level = r.u64();
            std::uint64_t deepest = r.u64();
            std::uint64_t down = r.u64();
            std::uint64_t up = r.u64();
            std::printf("  dvfs governor: level %" PRIu64
                        " (deepest %" PRIu64 "), %" PRIu64
                        " down / %" PRIu64 " up\n",
                        level, deepest, down, up);
        } else {
            std::printf("  dvfs governor: off\n");
        }
        if (r.b()) {
            double threshold_s = r.f64();
            std::uint64_t spin_ups = r.u64();
            std::uint64_t quiet = r.u64();
            std::uint64_t adjustments = r.u64();
            std::printf("  adaptive spin-down: threshold %.3f s, "
                        "%" PRIu64 " adjustment(s), %" PRIu64
                        " spin-up(s) seen, quiet streak %" PRIu64
                        "\n",
                        threshold_s, adjustments, spin_ups, quiet);
        } else {
            std::printf("  adaptive spin-down: off\n");
        }
        r.finish();
    } catch (const softwatt::CheckpointError &err) {
        std::printf("  power chunk: decode failed (%s)\n",
                    err.what());
    }
}

/**
 * Per-file verdicts, ordered so the process exit code can take the
 * worst across all arguments: 0 verified, 1 parse failure (corrupt
 * or incompatible bytes), 2 not even bytes to parse — missing,
 * unreadable, or a zero-length stub. The distinction matters to
 * scripts: exit 2 on a pool directory usually means a torn rename
 * or crashed writer left a placeholder, not that a checkpoint went
 * bad, and the remedy (delete the stub, let recovery fall back) is
 * different from a corruption investigation.
 */
int
inspect(const char *path)
{
    std::error_code ec;
    std::uintmax_t size = fs::file_size(path, ec);
    if (ec) {
        std::fprintf(stderr, "%s: UNREADABLE: %s\n", path,
                     ec.message().c_str());
        return 2;
    }
    if (size == 0) {
        std::fprintf(stderr,
                     "%s: EMPTY: zero-length image (a torn rename "
                     "or crashed writer left a stub; remove it and "
                     "rely on the previous generation)\n",
                     path);
        return 2;
    }

    softwatt::CheckpointImage image;
    try {
        image = softwatt::readCheckpoint(path);
    } catch (const softwatt::CheckpointMismatch &err) {
        std::fprintf(stderr, "%s: INCOMPATIBLE: %s\n", path,
                     err.what());
        return 1;
    } catch (const softwatt::CheckpointError &err) {
        std::fprintf(stderr, "%s: CORRUPT: %s\n", path, err.what());
        return 1;
    }

    std::printf("%s: format v%u, fingerprint 0x%016" PRIx64
                ", cpu %s (%u)\n",
                path, unsigned(image.version),
                image.configFingerprint,
                cpuModelName(image.cpuModel),
                unsigned(image.cpuModel));

    std::size_t widest = std::strlen("chunk");
    for (const softwatt::CheckpointChunk &chunk : image.chunks)
        widest = std::max(widest, chunk.name.size());

    std::printf("  %-*s  %10s  %-18s\n", int(widest), "chunk",
                "bytes", "fnv1a64");
    std::uint64_t payload_bytes = 0;
    for (const softwatt::CheckpointChunk &chunk : image.chunks) {
        // readCheckpoint already proved the stored checksum matches
        // the payload, so recomputing it here prints the same value
        // the file carries.
        std::uint64_t checksum = softwatt::fnv1a64(
            chunk.payload.data(), chunk.payload.size());
        std::printf("  %-*s  %10zu  0x%016" PRIx64 "\n", int(widest),
                    chunk.name.c_str(), chunk.payload.size(),
                    checksum);
        payload_bytes += chunk.payload.size();
    }
    if (const softwatt::CheckpointChunk *power =
            image.find("power")) {
        printPowerChunk(*power);
    }
    std::printf("%s: OK (%zu chunks, %" PRIu64
                " bytes of payload)\n",
                path, image.chunks.size(), payload_bytes);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 ||
        std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        std::printf(
            "usage: %s <checkpoint.ckpt> [more.ckpt ...]\n"
            "  Verify and dump SoftWatt machine checkpoints: header,\n"
            "  chunk table with sizes and FNV-1a-64 checksums.\n"
            "  Exits 1 if any file is corrupt or incompatible, 2 if\n"
            "  any is missing, unreadable, or a zero-length stub\n"
            "  (worst verdict across all files wins).\n",
            argv[0]);
        return argc < 2 ? 2 : 0;
    }

    int worst = 0;
    for (int i = 1; i < argc; ++i)
        worst = std::max(worst, inspect(argv[i]));
    return worst;
}
