/**
 * @file
 * softwatt-ckpt: inspect and verify machine checkpoint files.
 *
 * For every file named on the command line, parses the image with the
 * same fully-verifying reader the simulator uses (magic, version,
 * chunk framing, every payload checksum) and prints the header plus
 * the chunk table. Exits nonzero when any file fails verification,
 * so CI and shell scripts can gate on checkpoint integrity:
 *
 *   $ softwatt-ckpt run.json.jess.ckpt
 *   run.json.jess.ckpt: format v1, fingerprint 0x4f1d..., cpu in-order
 *     chunk        bytes  fnv1a64
 *     event-queue     24  0x8c7f3a2b9e4d1c05
 *     ...
 *   run.json.jess.ckpt: OK (10 chunks, 18342 bytes of payload)
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "core/checkpoint.hh"

namespace
{

const char *
cpuModelName(std::uint8_t model)
{
    switch (model) {
      case 0:
        return "in-order";
      case 1:
        return "superscalar";
      default:
        return "unknown";
    }
}

int
inspect(const char *path)
{
    softwatt::CheckpointImage image;
    try {
        image = softwatt::readCheckpoint(path);
    } catch (const softwatt::CheckpointMismatch &err) {
        std::fprintf(stderr, "%s: INCOMPATIBLE: %s\n", path,
                     err.what());
        return 1;
    } catch (const softwatt::CheckpointError &err) {
        std::fprintf(stderr, "%s: CORRUPT: %s\n", path, err.what());
        return 1;
    }

    std::printf("%s: format v%u, fingerprint 0x%016" PRIx64
                ", cpu %s (%u)\n",
                path, unsigned(image.version),
                image.configFingerprint,
                cpuModelName(image.cpuModel),
                unsigned(image.cpuModel));

    std::size_t widest = std::strlen("chunk");
    for (const softwatt::CheckpointChunk &chunk : image.chunks)
        widest = std::max(widest, chunk.name.size());

    std::printf("  %-*s  %10s  %-18s\n", int(widest), "chunk",
                "bytes", "fnv1a64");
    std::uint64_t payload_bytes = 0;
    for (const softwatt::CheckpointChunk &chunk : image.chunks) {
        // readCheckpoint already proved the stored checksum matches
        // the payload, so recomputing it here prints the same value
        // the file carries.
        std::uint64_t checksum = softwatt::fnv1a64(
            chunk.payload.data(), chunk.payload.size());
        std::printf("  %-*s  %10zu  0x%016" PRIx64 "\n", int(widest),
                    chunk.name.c_str(), chunk.payload.size(),
                    checksum);
        payload_bytes += chunk.payload.size();
    }
    std::printf("%s: OK (%zu chunks, %" PRIu64
                " bytes of payload)\n",
                path, image.chunks.size(), payload_bytes);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2 ||
        std::strcmp(argv[1], "--help") == 0 ||
        std::strcmp(argv[1], "-h") == 0) {
        std::printf(
            "usage: %s <checkpoint.ckpt> [more.ckpt ...]\n"
            "  Verify and dump SoftWatt machine checkpoints: header,\n"
            "  chunk table with sizes and FNV-1a-64 checksums.\n"
            "  Exits 1 if any file is corrupt or incompatible.\n",
            argv[0]);
        return argc < 2 ? 1 : 0;
    }

    int failures = 0;
    for (int i = 1; i < argc; ++i)
        failures += inspect(argv[i]);
    return failures > 0 ? 1 : 0;
}
