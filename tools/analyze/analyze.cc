#include "analyze.hh"

#include <algorithm>
#include <cctype>
#include <optional>

namespace softwatt::analyze
{

using tools::identChar;
using tools::lineOfOffset;
using tools::maskCommentsAndStrings;

namespace
{

// ---------------------------------------------------------------
// Small text utilities over masked source.
// ---------------------------------------------------------------

std::size_t
skipWs(const std::string &text, std::size_t pos)
{
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
        ++pos;
    }
    return pos;
}

/** Identifier starting at @p pos ("" when none). */
std::string
identAt(const std::string &text, std::size_t pos)
{
    std::size_t end = pos;
    while (end < text.size() && identChar(text[end]))
        ++end;
    return text.substr(pos, end - pos);
}

/** Identifier ending just before @p pos ("" when none). */
std::string
identBefore(const std::string &text, std::size_t pos)
{
    std::size_t start = pos;
    while (start > 0 && identChar(text[start - 1]))
        --start;
    return text.substr(start, pos - start);
}

bool
boundaryAt(const std::string &text, std::size_t pos, std::size_t len)
{
    if (pos > 0 && identChar(text[pos - 1]))
        return false;
    std::size_t end = pos + len;
    return end >= text.size() || !identChar(text[end]);
}

/** Find the next boundary-matched occurrence of @p word. */
std::size_t
findWord(const std::string &text, const std::string &word,
         std::size_t from)
{
    std::size_t pos = from;
    while ((pos = text.find(word, pos)) != std::string::npos) {
        if (boundaryAt(text, pos, word.size()))
            return pos;
        pos += word.size();
    }
    return std::string::npos;
}

/**
 * Offset of the matching close for the open bracket at @p open
 * (masked text, so literals cannot confuse the count); npos when
 * unbalanced.
 */
std::size_t
matchBracket(const std::string &text, std::size_t open)
{
    char oc = text[open];
    char cc = oc == '(' ? ')' : oc == '{' ? '}' : ']';
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == oc)
            ++depth;
        else if (text[i] == cc && --depth == 0)
            return i;
    }
    return std::string::npos;
}

bool
containsWord(const std::string &text, const std::string &word)
{
    return findWord(text, word, 0) != std::string::npos;
}

std::string
trim(const std::string &text)
{
    std::size_t b = 0, e = text.size();
    while (b < e &&
           std::isspace(static_cast<unsigned char>(text[b])))
        ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(text[e - 1])))
        --e;
    return text.substr(b, e - b);
}

bool
startsWithWord(const std::string &stmt, const std::string &word)
{
    std::string t = trim(stmt);
    return t.compare(0, word.size(), word) == 0 &&
           (t.size() == word.size() || !identChar(t[word.size()]));
}

// ---------------------------------------------------------------
// Parsed structure.
// ---------------------------------------------------------------

/** The ChunkWriter/ChunkReader value methods (identical on purpose). */
const std::set<std::string> &
valueMethods()
{
    static const std::set<std::string> methods = {
        "u8", "u16", "u32", "u64", "b", "f64", "str"};
    return methods;
}

/** Stream methods that move no checkpoint data; never sequenced. */
const std::set<std::string> &
neutralMethods()
{
    static const std::set<std::string> methods = {
        "finish", "remaining", "bytes"};
    return methods;
}

/** One element of a save or load call sequence. */
struct SeqCall
{
    std::string type;  ///< u8/u16/u32/u64/b/f64/str or "sub".
    int line = 0;
};

/** One saveState/loadState (or saveX/loadX helper) body. */
struct BodyInfo
{
    bool found = false;
    std::string path;
    int line = 0;             ///< Line of the function name.
    std::string maskedBody;   ///< Text between the body braces.
    std::vector<SeqCall> calls;
};

struct MemberInfo
{
    std::string name;
    std::string path;         ///< File declaring the member.
    int line = 0;
    bool annotated = false;   ///< Carries "ckpt:derived".
};

struct ClassRecord
{
    std::string name;
    std::string defPath;
    int defLine = 0;
    bool declaresSave = false;
    bool declaresLoad = false;
    std::vector<MemberInfo> members;
    BodyInfo save;
    BodyInfo load;
};

/** A literal configuration key read somewhere in src/. */
struct KeySite
{
    std::string key;
    std::string path;
    int line = 0;
    bool runnerKey = false;   ///< Read inside a fromArgs body.
};

struct FileData
{
    std::string path;
    std::string raw;
    std::string masked;
    std::vector<std::string> rawLines;
};

// ---------------------------------------------------------------
// Layer DAG.
// ---------------------------------------------------------------

std::string
layerOf(const std::string &path)
{
    if (path.compare(0, 4, "src/") != 0)
        return "";
    std::size_t slash = path.find('/', 4);
    if (slash == std::string::npos)
        return "";
    return path.substr(4, slash - 4);
}

// ---------------------------------------------------------------
// Class parsing.
// ---------------------------------------------------------------

const std::set<std::string> &
nonMemberLeaders()
{
    static const std::set<std::string> words = {
        "using",    "typedef", "friend",   "static", "constexpr",
        "template", "enum",    "class",    "struct", "union",
        "public",   "private", "protected"};
    return words;
}

/**
 * Split a declarator list on top-level commas (angle brackets,
 * parens, brackets and braces nested inside are opaque).
 */
std::vector<std::string>
splitTopLevel(const std::string &text)
{
    std::vector<std::string> parts;
    int round = 0, square = 0, curly = 0, angle = 0;
    std::size_t start = 0;
    for (std::size_t i = 0; i < text.size(); ++i) {
        switch (text[i]) {
          case '(': ++round; break;
          case ')': --round; break;
          case '[': ++square; break;
          case ']': --square; break;
          case '{': ++curly; break;
          case '}': --curly; break;
          case '<': ++angle; break;
          case '>': angle = std::max(0, angle - 1); break;
          case ',':
            if (!round && !square && !curly && !angle) {
                parts.push_back(text.substr(start, i - start));
                start = i + 1;
            }
            break;
        }
    }
    parts.push_back(text.substr(start));
    return parts;
}

/**
 * Extract the member name from one declarator ("std::vector<Line>
 * lines", "Addr tag" after init stripping). Returns "" for
 * declarators that are not checkable state (references, unnamed).
 */
std::string
memberNameOf(const std::string &declarator)
{
    std::string text = declarator;
    // Array extents carry no name.
    for (std::size_t b; (b = text.find('[')) != std::string::npos;) {
        std::size_t e = text.find(']', b);
        if (e == std::string::npos)
            break;
        text.erase(b, e - b + 1);
    }
    // Reference members are constructor-wired plumbing, not state
    // a checkpoint could restore; skip them.
    if (text.find('&') != std::string::npos)
        return "";
    std::size_t end = text.size();
    while (end > 0 && !identChar(text[end - 1]))
        --end;
    if (end == 0)
        return "";
    std::string name = identBefore(text, end);
    if (name.empty() ||
        std::isdigit(static_cast<unsigned char>(name[0])))
        return "";
    return name;
}

/**
 * Parse one class body (masked text between its braces) into
 * members and save/load declaration flags. Inline bodies are left
 * for the separate function-definition scan.
 */
void
parseClassBody(const FileData &file, std::size_t open,
               std::size_t close, ClassRecord &record)
{
    const std::string &masked = file.masked;
    std::size_t i = open + 1;
    std::size_t stmtStart = i;

    auto finishStatement = [&](std::size_t stmtEnd) {
        std::string stmt =
            masked.substr(stmtStart, stmtEnd - stmtStart);
        std::string trimmed = trim(stmt);
        if (trimmed.empty())
            return;
        if (containsWord(trimmed, "saveState") &&
            containsWord(trimmed, "ChunkWriter")) {
            record.declaresSave = true;
        }
        if (containsWord(trimmed, "loadState") &&
            containsWord(trimmed, "ChunkReader")) {
            record.declaresLoad = true;
        }
        for (const std::string &word : nonMemberLeaders()) {
            if (startsWithWord(trimmed, word))
                return;
        }
        if (trimmed.find("operator") != std::string::npos ||
            trimmed.find('~') != std::string::npos)
            return;
        // A '(' before any '='/'{' marks a function declarator.
        std::size_t paren = trimmed.find('(');
        std::size_t eq = trimmed.find('=');
        std::size_t brace = trimmed.find('{');
        std::size_t init = std::min(eq, brace);
        if (paren != std::string::npos && paren < init)
            return;
        // Strip the default initializer, then split declarators.
        if (init != std::string::npos)
            trimmed.erase(init);
        for (const std::string &declarator :
             splitTopLevel(trimmed)) {
            std::string name = memberNameOf(declarator);
            if (name.empty())
                continue;
            MemberInfo member;
            member.name = name;
            member.path = file.path;
            // Line of the declarator's end (the name's line for
            // single-line members, which all of ours are).
            std::size_t nameAt =
                masked.rfind(name, stmtEnd);
            member.line = lineOfOffset(
                masked, nameAt == std::string::npos ? stmtStart
                                                    : nameAt);
            int above = member.line - 1;
            auto annotatedLine = [&](int lineno) {
                return lineno >= 1 &&
                       lineno <= int(file.rawLines.size()) &&
                       file.rawLines[std::size_t(lineno - 1)].find(
                           "ckpt:derived") != std::string::npos;
            };
            member.annotated =
                annotatedLine(member.line) || annotatedLine(above);
            record.members.push_back(std::move(member));
        }
    };

    while (i < close) {
        char c = masked[i];
        if (c == ';') {
            finishStatement(i);
            stmtStart = ++i;
            continue;
        }
        if (c == ':') {
            // Access specifier? (":" of "::" and of base clauses
            // never appears statement-initial like this.)
            std::string t =
                trim(masked.substr(stmtStart, i - stmtStart));
            bool doubled = (i + 1 < close && masked[i + 1] == ':') ||
                           (i > 0 && masked[i - 1] == ':');
            if (!doubled && (t == "public" || t == "private" ||
                             t == "protected")) {
                stmtStart = i + 1;
            }
            ++i;
            continue;
        }
        if (c == '{') {
            std::string stmt =
                masked.substr(stmtStart, i - stmtStart);
            std::string trimmed = trim(stmt);
            std::size_t end = matchBracket(masked, i);
            if (end == std::string::npos || end > close)
                break;
            bool nestedType = startsWithWord(trimmed, "struct") ||
                              startsWithWord(trimmed, "class") ||
                              startsWithWord(trimmed, "enum") ||
                              startsWithWord(trimmed, "union");
            std::size_t paren = trimmed.find('(');
            std::size_t eq = trimmed.find('=');
            bool functionBody =
                !nestedType && paren != std::string::npos &&
                (eq == std::string::npos || paren < eq);
            if (functionBody) {
                // Check for inline save/load declarations before
                // discarding the statement.
                finishStatement(i);
                i = end + 1;
                stmtStart = i;
            } else if (nestedType) {
                // Skip the nested type's body and its trailing
                // declarator/semicolon without recording members.
                i = end + 1;
                std::size_t semi = masked.find(';', i);
                i = semi == std::string::npos ? close : semi + 1;
                stmtStart = i;
            } else {
                // Brace initializer: part of the member statement.
                i = end + 1;
            }
            continue;
        }
        ++i;
    }
}

/** Scan one file for class/struct definitions. */
void
scanClasses(const FileData &file,
            std::map<std::string, ClassRecord> &classes,
            std::vector<std::pair<std::size_t, std::size_t>>
                &classRanges,
            std::map<std::string, std::string> &classAtRange)
{
    const std::string &masked = file.masked;
    for (const char *keyword : {"class", "struct"}) {
        std::size_t pos = 0;
        while ((pos = findWord(masked, keyword, pos)) !=
               std::string::npos) {
            std::size_t at = pos;
            pos += std::char_traits<char>::length(keyword);
            // "enum class"/"enum struct" define scoped enums, not
            // record types: walk back over whitespace to check.
            std::size_t back = at;
            while (back > 0 &&
                   std::isspace(
                       static_cast<unsigned char>(masked[back - 1])))
                --back;
            if (identBefore(masked, back) == "enum")
                continue;
            std::size_t nameAt = skipWs(masked, pos);
            std::string name = identAt(masked, nameAt);
            if (name.empty())
                continue;
            std::size_t after = skipWs(masked, nameAt + name.size());
            if (after >= masked.size())
                continue;
            // Only "X {" and "X : bases {" start a definition.
            if (masked[after] == ':' &&
                (after + 1 >= masked.size() ||
                 masked[after + 1] != ':')) {
                std::size_t brace = masked.find('{', after);
                std::size_t semi = masked.find(';', after);
                if (brace == std::string::npos ||
                    (semi != std::string::npos && semi < brace))
                    continue;
                after = brace;
            }
            if (masked[after] != '{')
                continue;
            std::size_t close = matchBracket(masked, after);
            if (close == std::string::npos)
                continue;
            ClassRecord &record = classes[name];
            if (record.name.empty()) {
                record.name = name;
                record.defPath = file.path;
                record.defLine = lineOfOffset(masked, at);
            }
            parseClassBody(file, after, close, record);
            classRanges.emplace_back(after, close);
            classAtRange[std::to_string(after)] = name;
        }
    }
}

// ---------------------------------------------------------------
// saveState/loadState (and saveX/loadX helper) body scanning.
// ---------------------------------------------------------------

/** Extract the sequenced calls a body makes on @p param. */
std::vector<SeqCall>
extractCalls(const std::string &masked, std::size_t bodyBegin,
             std::size_t bodyEnd, const std::string &param)
{
    std::vector<SeqCall> calls;
    std::size_t pos = bodyBegin;
    while ((pos = findWord(masked, param, pos)) !=
               std::string::npos &&
           pos < bodyEnd) {
        std::size_t after = pos + param.size();
        SeqCall call;
        call.line = lineOfOffset(masked, pos);
        std::size_t dot = skipWs(masked, after);
        if (dot < bodyEnd && masked[dot] == '.') {
            std::size_t methodAt = skipWs(masked, dot + 1);
            std::string method = identAt(masked, methodAt);
            std::size_t paren =
                skipWs(masked, methodAt + method.size());
            bool isCall =
                paren < bodyEnd && masked[paren] == '(';
            if (isCall && valueMethods().count(method)) {
                call.type = method;
                calls.push_back(call);
                pos = paren;
                continue;
            }
            if (isCall && neutralMethods().count(method)) {
                pos = paren;
                continue;
            }
        }
        // The stream is handed to something else (a nested
        // saveState/loadState, a helper): a delegation slot.
        call.type = "sub";
        calls.push_back(call);
        pos = after;
    }
    return calls;
}

/**
 * Scan one file for definitions of saveState/loadState members and
 * saveX/loadX free helpers taking a ChunkWriter/ChunkReader.
 * @p helperPairs maps (path, suffix) -> [saveBody, loadBody].
 */
void
scanBodies(
    const FileData &file,
    const std::vector<std::pair<std::size_t, std::size_t>>
        &classRanges,
    const std::map<std::string, std::string> &classAtRange,
    std::map<std::string, ClassRecord> &classes,
    std::map<std::string, std::pair<BodyInfo, BodyInfo>>
        &helperPairs)
{
    const std::string &masked = file.masked;
    for (bool isSave : {true, false}) {
        const std::string streamType =
            isSave ? "ChunkWriter" : "ChunkReader";
        const std::string prefix = isSave ? "save" : "load";
        std::size_t pos = 0;
        while ((pos = masked.find(prefix, pos)) !=
               std::string::npos) {
            std::size_t at = pos;
            pos += prefix.size();
            if (at > 0 && identChar(masked[at - 1]))
                continue;
            std::string name = identAt(masked, at);
            if (name == prefix)
                continue;  // bare "save(" is not ours
            std::size_t paren = skipWs(masked, at + name.size());
            if (paren >= masked.size() || masked[paren] != '(')
                continue;
            std::size_t closeParen = matchBracket(masked, paren);
            if (closeParen == std::string::npos)
                continue;
            std::string signature = masked.substr(
                paren, closeParen - paren + 1);
            std::size_t typeAt = findWord(signature, streamType, 0);
            if (typeAt == std::string::npos)
                continue;
            // Param name: the identifier after "ChunkWriter &".
            std::size_t cursor = typeAt + streamType.size();
            cursor = skipWs(signature, cursor);
            while (cursor < signature.size() &&
                   (signature[cursor] == '&' ||
                    std::isspace(static_cast<unsigned char>(
                        signature[cursor]))))
                ++cursor;
            std::string param = identAt(signature, cursor);
            if (param.empty())
                continue;
            // Definition or mere declaration?
            std::size_t tail = closeParen + 1;
            while (tail < masked.size()) {
                std::size_t w = skipWs(masked, tail);
                std::string word = identAt(masked, w);
                if (word == "const" || word == "override" ||
                    word == "noexcept" || word == "final") {
                    tail = w + word.size();
                    continue;
                }
                tail = w;
                break;
            }
            if (tail >= masked.size() || masked[tail] != '{')
                continue;
            std::size_t bodyEnd = matchBracket(masked, tail);
            if (bodyEnd == std::string::npos)
                continue;

            BodyInfo body;
            body.found = true;
            body.path = file.path;
            body.line = lineOfOffset(masked, at);
            body.maskedBody =
                masked.substr(tail + 1, bodyEnd - tail - 1);
            body.calls =
                extractCalls(masked, tail + 1, bodyEnd, param);

            // Owner: "Class::saveState" qualification, else the
            // enclosing class body for inline definitions.
            std::string owner;
            if (at >= 2 && masked[at - 1] == ':' &&
                masked[at - 2] == ':') {
                owner = identBefore(masked, at - 2);
            } else {
                for (const auto &[open, close] : classRanges) {
                    if (at > open && at < close) {
                        auto it = classAtRange.find(
                            std::to_string(open));
                        if (it != classAtRange.end())
                            owner = it->second;
                        break;
                    }
                }
            }

            if (name == (isSave ? "saveState" : "loadState")) {
                if (owner.empty())
                    continue;
                ClassRecord &record = classes[owner];
                if (record.name.empty()) {
                    record.name = owner;
                    record.defPath = file.path;
                    record.defLine = body.line;
                }
                BodyInfo &slot = isSave ? record.save : record.load;
                if (!slot.found)
                    slot = std::move(body);
            } else if (owner.empty()) {
                // Free helper saveX/loadX: pair by file + suffix.
                std::string suffix = name.substr(prefix.size());
                auto &pair = helperPairs[file.path + "#" + suffix];
                BodyInfo &slot = isSave ? pair.first : pair.second;
                if (!slot.found)
                    slot = std::move(body);
            }
            pos = bodyEnd;
        }
    }
}

// ---------------------------------------------------------------
// Config-key scanning.
// ---------------------------------------------------------------

/** Read the string literal at @p pos of RAW text, if one starts. */
std::optional<std::string>
literalAt(const std::string &raw, std::size_t pos)
{
    if (pos >= raw.size() || raw[pos] != '"')
        return std::nullopt;
    std::size_t end = raw.find('"', pos + 1);
    if (end == std::string::npos)
        return std::nullopt;
    return raw.substr(pos + 1, end - pos - 1);
}

/** [begin,end) offset ranges of fromArgs function bodies. */
std::vector<std::pair<std::size_t, std::size_t>>
fromArgsRanges(const std::string &masked)
{
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    std::size_t pos = 0;
    while ((pos = findWord(masked, "fromArgs", pos)) !=
           std::string::npos) {
        std::size_t paren = skipWs(masked, pos + 8);
        pos += 8;
        if (paren >= masked.size() || masked[paren] != '(')
            continue;
        std::size_t closeParen = matchBracket(masked, paren);
        if (closeParen == std::string::npos)
            continue;
        std::size_t brace = skipWs(masked, closeParen + 1);
        if (brace >= masked.size() || masked[brace] != '{')
            continue;
        std::size_t end = matchBracket(masked, brace);
        if (end == std::string::npos)
            continue;
        ranges.emplace_back(brace, end);
    }
    return ranges;
}

void
scanConfigKeys(const FileData &file, std::vector<KeySite> &sites)
{
    const std::string &masked = file.masked;
    const std::string &raw = file.raw;
    auto ranges = fromArgsRanges(masked);
    auto inFromArgs = [&ranges](std::size_t at) {
        for (const auto &[b, e] : ranges) {
            if (at > b && at < e)
                return true;
        }
        return false;
    };
    auto record = [&](const std::string &key, std::size_t at) {
        KeySite site;
        site.key = key;
        site.path = file.path;
        site.line = lineOfOffset(masked, at);
        site.runnerKey = inFromArgs(at);
        sites.push_back(std::move(site));
    };

    // config.getX("key", ...) reads.
    for (const char *getter :
         {"getString", "getInt", "getDouble", "getBool", "has"}) {
        std::size_t pos = 0;
        while ((pos = findWord(masked, getter, pos)) !=
               std::string::npos) {
            std::size_t at = pos;
            pos += std::char_traits<char>::length(getter);
            if (at == 0 || masked[at - 1] != '.')
                continue;
            std::size_t paren = skipWs(masked, pos);
            if (paren >= masked.size() || masked[paren] != '(')
                continue;
            // Skip whitespace in the RAW text: the masked copy has
            // blanked the literal itself to spaces.
            if (auto key = literalAt(raw, skipWs(raw, paren + 1)))
                record(*key, at);
        }
    }

    // helper(args, "key") / helper(config, "key") reads — the
    // validated-read wrappers fromArgs uses.
    for (const char *store : {"args", "config"}) {
        std::size_t pos = 0;
        while ((pos = findWord(masked, store, pos)) !=
               std::string::npos) {
            std::size_t at = pos;
            pos += std::char_traits<char>::length(store);
            std::size_t back = at;
            while (back > 0 &&
                   std::isspace(static_cast<unsigned char>(
                       masked[back - 1])))
                --back;
            if (back == 0 || (masked[back - 1] != '(' &&
                              masked[back - 1] != ','))
                continue;
            std::size_t comma = skipWs(masked, pos);
            if (comma >= masked.size() || masked[comma] != ',')
                continue;
            if (auto key = literalAt(raw, skipWs(raw, comma + 1)))
                record(*key, at);
        }
    }
}

/** RAW body text of usageText(), if this file defines it. */
std::optional<std::string>
usageTextBody(const FileData &file)
{
    const std::string &masked = file.masked;
    std::size_t pos = 0;
    while ((pos = findWord(masked, "usageText", pos)) !=
           std::string::npos) {
        std::size_t paren = skipWs(masked, pos + 9);
        pos += 9;
        if (paren >= masked.size() || masked[paren] != '(')
            continue;
        std::size_t closeParen = matchBracket(masked, paren);
        if (closeParen == std::string::npos)
            continue;
        std::size_t brace = skipWs(masked, closeParen + 1);
        if (brace >= masked.size() || masked[brace] != '{')
            continue;
        std::size_t end = matchBracket(masked, brace);
        if (end == std::string::npos)
            continue;
        return file.raw.substr(brace + 1, end - brace - 1);
    }
    return std::nullopt;
}

// ---------------------------------------------------------------
// durability-io: the host-I/O seam must see every durable byte.
// ---------------------------------------------------------------

// Files that own a durability path: every byte they persist must
// flow through the host-I/O seam (sim/host_io.hh) so fault
// injection, op recording and the crash-replay harness see it
// (DESIGN.md §4k). runner.cc is deliberately absent: its
// pre-sweep writability probe opens a throwaway std::ofstream on
// purpose, before any durable state exists.
const std::set<std::string> &
durabilityFiles()
{
    static const std::set<std::string> files = {
        "src/sim/checkpoint.cc",
        "src/core/journal.cc",
        "src/core/system.cc",
        "src/serve/checkpoint_pool.cc",
    };
    return files;
}

void
scanDurabilityIo(const FileData &file,
                 std::vector<Finding> &findings)
{
    if (file.path.compare(0, 4, "src/") != 0)
        return;
    if (file.path.compare(0, 15, "src/sim/host_io") == 0)
        return;  // the seam itself wraps the raw primitives
    const std::string &masked = file.masked;

    if (durabilityFiles().count(file.path)) {
        // Raw qualified ::rename()/::remove() calls (std:: or
        // fs::) dodge fault injection and the op log entirely.
        for (const std::string &raw : {std::string("rename"),
                                       std::string("remove")}) {
            std::size_t pos = 0;
            while ((pos = findWord(masked, raw, pos)) !=
                   std::string::npos) {
                std::size_t at = pos;
                pos += raw.size();
                if (at < 2 || masked[at - 1] != ':' ||
                    masked[at - 2] != ':')
                    continue;
                std::size_t paren = skipWs(masked, at + raw.size());
                if (paren >= masked.size() || masked[paren] != '(')
                    continue;
                findings.push_back(
                    {file.path, lineOfOffset(masked, at),
                     "durability-io",
                     "raw ::" + raw +
                         "() call in a durability path bypasses "
                         "the host-I/O seam; use hostRename/"
                         "hostRemove (sim/host_io.hh) so fault "
                         "injection and crash replay see the "
                         "operation"});
            }
        }
        // Direct write channels: anything persisted through an
        // ofstream or FILE* is invisible to the seam.
        for (const std::string &raw : {std::string("ofstream"),
                                       std::string("fopen")}) {
            std::size_t pos = 0;
            while ((pos = findWord(masked, raw, pos)) !=
                   std::string::npos) {
                findings.push_back(
                    {file.path, lineOfOffset(masked, pos),
                     "durability-io",
                     raw +
                         " in a durability path bypasses the "
                         "host-I/O seam; write through HostFile or "
                         "hostWriteFileAtomic (sim/host_io.hh)"});
                pos += raw.size();
            }
        }
    }

    // Discarded IoStatus anywhere in src/: a seam call in
    // statement position throws the error away, so a failed
    // rename/remove strands files silently instead of degrading
    // loudly. hostRemoveBestEffort is the sanctioned discard for
    // cleanup of files that may not exist.
    static const char *const seamCalls[] = {
        "hostWriteFileAtomic", "hostRename", "hostRemove",
        "hostSyncDir"};
    for (const char *callName : seamCalls) {
        const std::string call = callName;
        std::size_t pos = 0;
        while ((pos = findWord(masked, call, pos)) !=
               std::string::npos) {
            std::size_t at = pos;
            pos += call.size();
            if (at + call.size() >= masked.size() ||
                masked[at + call.size()] != '(')
                continue;  // a mention, not a call site
            std::size_t back = at;
            while (back > 0 &&
                   std::isspace(static_cast<unsigned char>(
                       masked[back - 1])))
                --back;
            char prev = back == 0 ? ';' : masked[back - 1];
            if (prev != ';' && prev != '{' && prev != '}' &&
                prev != ')')
                continue;  // value is assigned, tested or returned
            findings.push_back(
                {file.path, lineOfOffset(masked, at),
                 "durability-io",
                 "the IoStatus returned by " + call +
                     "() is discarded; check it (or use "
                     "hostRemoveBestEffort for sanctioned cleanup) "
                     "so durability failures degrade loudly "
                     "instead of stranding files"});
        }
    }
}

} // namespace

const std::map<std::string, std::set<std::string>> &
layerDag()
{
    // Declared dependency graph of src/ (DESIGN.md §4i): each layer
    // may include itself plus the listed layers. sim is the bottom
    // (checkpoint primitives, counters, events, logging); core is
    // the orchestration top and the only layer allowed to see
    // everything.
    static const std::map<std::string, std::set<std::string>> dag = {
        {"sim", {}},
        {"power", {"sim"}},
        {"mem", {"sim"}},
        {"disk", {"sim"}},
        {"cpu", {"sim", "mem"}},
        {"os", {"sim", "mem", "disk", "cpu", "power"}},
        {"workload", {"sim", "cpu", "os"}},
        {"core",
         {"sim", "power", "mem", "disk", "cpu", "os", "workload"}},
        {"serve",
         {"sim", "power", "mem", "disk", "cpu", "os", "workload",
          "core"}},
    };
    return dag;
}

std::vector<Finding>
analyzeSources(const AnalyzerInput &input)
{
    std::vector<Finding> findings;
    auto report = [&findings](const std::string &path, int line,
                              const char *rule,
                              const std::string &message) {
        findings.push_back({path, line, rule, message});
    };

    std::map<std::string, ClassRecord> classes;
    std::map<std::string, std::pair<BodyInfo, BodyInfo>> helperPairs;
    std::vector<KeySite> keySites;
    std::optional<std::string> usageText;

    for (const SourceText &source : input.files) {
        FileData file;
        file.path = source.path;
        file.raw = source.text;
        file.masked = maskCommentsAndStrings(source.text);
        {
            std::size_t start = 0;
            while (start <= file.raw.size()) {
                std::size_t nl = file.raw.find('\n', start);
                if (nl == std::string::npos) {
                    file.rawLines.push_back(file.raw.substr(start));
                    break;
                }
                file.rawLines.push_back(
                    file.raw.substr(start, nl - start));
                start = nl + 1;
            }
        }

        // --- layer-dag -----------------------------------------
        std::string layer = layerOf(file.path);
        if (!layer.empty() && layerDag().count(layer)) {
            const std::set<std::string> &allowed =
                layerDag().at(layer);
            std::size_t pos = 0;
            while ((pos = file.raw.find("#include \"", pos)) !=
                   std::string::npos) {
                // A masked line keeps "#include" only when the
                // directive is live (not commented out).
                if (file.masked.compare(pos, 8, "#include") != 0) {
                    pos += 10;
                    continue;
                }
                std::size_t open = pos + 10;
                std::size_t close = file.raw.find('"', open);
                pos = close == std::string::npos ? file.raw.size()
                                                 : close + 1;
                if (close == std::string::npos)
                    break;
                std::string target =
                    file.raw.substr(open, close - open);
                std::size_t slash = target.find('/');
                if (slash == std::string::npos)
                    continue;  // same-directory include
                std::string targetLayer = target.substr(0, slash);
                if (!layerDag().count(targetLayer) ||
                    targetLayer == layer ||
                    allowed.count(targetLayer))
                    continue;
                report(file.path, lineOfOffset(file.raw, open),
                       "layer-dag",
                       "'" + layer + "' may not include '" + target +
                           "': the declared layer DAG only allows " +
                           layer + " -> {own dir" +
                           [&allowed] {
                               std::string list;
                               for (const std::string &a : allowed)
                                   list += ", " + a;
                               return list;
                           }() +
                           "} (DESIGN.md §4i)");
            }
        }

        // --- structure for the checkpoint rules ----------------
        std::vector<std::pair<std::size_t, std::size_t>> ranges;
        std::map<std::string, std::string> atRange;
        scanClasses(file, classes, ranges, atRange);
        scanBodies(file, ranges, atRange, classes, helperPairs);

        // --- config keys ---------------------------------------
        if (layer.empty() ? file.path.compare(0, 4, "src/") == 0
                          : true)
            scanConfigKeys(file, keySites);
        if (!usageText)
            usageText = usageTextBody(file);

        // --- durability-io -------------------------------------
        scanDurabilityIo(file, findings);
    }

    // --- checkpoint-coverage -----------------------------------
    for (const auto &[name, record] : classes) {
        if (!record.declaresSave || !record.declaresLoad)
            continue;
        if (!record.save.found && !record.load.found)
            continue;  // bodies live outside the scanned tree
        const std::string &saveBody = record.save.maskedBody;
        const std::string &loadBody = record.load.maskedBody;
        for (const MemberInfo &member : record.members) {
            if (member.annotated)
                continue;
            if (containsWord(saveBody, member.name) ||
                containsWord(loadBody, member.name))
                continue;
            report(member.path, member.line,
                   "checkpoint-coverage",
                   name + "::" + member.name +
                       " is never referenced in saveState or "
                       "loadState; serialize it, or annotate the "
                       "declaration with \"// ckpt:derived\" if it "
                       "is recomputed or configuration-wired");
        }
    }

    // --- save-load-symmetry ------------------------------------
    auto compareSeq = [&report](const std::string &what,
                                const BodyInfo &save,
                                const BodyInfo &load) {
        std::size_t n =
            std::min(save.calls.size(), load.calls.size());
        for (std::size_t i = 0; i < n; ++i) {
            if (save.calls[i].type == load.calls[i].type)
                continue;
            report(load.path, load.calls[i].line,
                   "save-load-symmetry",
                   what + ": save writes '" + save.calls[i].type +
                       "' at sequence position " +
                       std::to_string(i + 1) + " (line " +
                       std::to_string(save.calls[i].line) +
                       ") but load reads '" + load.calls[i].type +
                       "'");
            return;
        }
        if (save.calls.size() != load.calls.size()) {
            bool saveLonger = save.calls.size() > load.calls.size();
            const BodyInfo &longer = saveLonger ? save : load;
            report(longer.path, longer.calls[n].line,
                   "save-load-symmetry",
                   what + ": save makes " +
                       std::to_string(save.calls.size()) +
                       " stream call(s) but load makes " +
                       std::to_string(load.calls.size()) +
                       "; the sequences must mirror each other");
        }
    };
    for (const auto &[name, record] : classes) {
        if (record.save.found && record.load.found) {
            compareSeq(name + "::saveState/loadState", record.save,
                       record.load);
        } else if (record.save.found != record.load.found) {
            const BodyInfo &present =
                record.save.found ? record.save : record.load;
            report(present.path, present.line, "save-load-symmetry",
                   name + " defines " +
                       (record.save.found ? "saveState"
                                          : "loadState") +
                       " but its counterpart was not found in the "
                       "scanned tree");
        }
    }
    for (const auto &[key, pair] : helperPairs) {
        std::string suffix = key.substr(key.find('#') + 1);
        if (pair.first.found && pair.second.found) {
            compareSeq("save" + suffix + "/load" + suffix,
                       pair.first, pair.second);
        } else if (pair.first.found != pair.second.found) {
            const BodyInfo &present =
                pair.first.found ? pair.first : pair.second;
            report(present.path, present.line, "save-load-symmetry",
                   (pair.first.found ? "save" : "load") + suffix +
                       " has no matching " +
                       (pair.first.found ? "load" : "save") +
                       suffix + " in the same file");
        }
    }

    // --- config-key --------------------------------------------
    std::set<std::string> reportedDoc, reportedUsage;
    for (const KeySite &site : keySites) {
        const std::string needle = site.key + "=";
        if (!input.experimentsDoc.empty() &&
            input.experimentsDoc.find(needle) ==
                std::string::npos &&
            reportedDoc.insert(site.key).second) {
            report(site.path, site.line, "config-key",
                   "configuration key '" + site.key +
                       "' is read here but never documented as '" +
                       needle + "' in EXPERIMENTS.md");
        }
        if (site.runnerKey && usageText &&
            usageText->find(needle) == std::string::npos &&
            reportedUsage.insert(site.key).second) {
            report(site.path, site.line, "config-key",
                   "runner key '" + site.key +
                       "' is validated in fromArgs but missing "
                       "from usageText()");
        }
    }

    std::sort(findings.begin(), findings.end(), tools::findingLess);
    return findings;
}

} // namespace softwatt::analyze
