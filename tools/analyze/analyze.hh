/**
 * @file
 * softwatt-analyze: a declaration-aware whole-program contract
 * analyzer for the SoftWatt tree.
 *
 * Where softwatt-lint bans individual tokens file-by-file, this tool
 * parses lightweight structure out of the sources — class data
 * members, saveState/loadState bodies, config-key call sites,
 * include edges — and checks the cross-cutting contracts the repo's
 * reproducibility story rests on:
 *
 *   checkpoint-coverage   Every data member of a class with a
 *                         saveState/loadState pair must be
 *                         referenced in one of the two bodies, or
 *                         carry a "// ckpt:derived" annotation
 *                         blessing it as recomputed/config-derived
 *                         state. Catches the classic drift bug: a
 *                         new field silently corrupting checkpoints
 *                         until a restore test happens to notice.
 *
 *   save-load-symmetry    The ordered sequence of ChunkWriter calls
 *                         (u8/u16/u32/u64/b/f64/str, plus nested
 *                         saveState delegations) in saveState must
 *                         mirror the ChunkReader sequence in
 *                         loadState position by position. Also
 *                         pairs free helpers saveX/loadX by suffix.
 *
 *   config-key            Every configuration key read in src/
 *                         (getString/getInt/getDouble/getBool with a
 *                         literal key, or a literal key passed next
 *                         to an `args`/`config` argument) must be
 *                         documented as "key=" in EXPERIMENTS.md;
 *                         keys read inside fromArgs (the runner
 *                         keys, validated eagerly there) must
 *                         additionally appear in usageText().
 *
 *   layer-dag             src/ subdirectories may only include
 *                         downward per the declared dependency DAG
 *                         (sim at the bottom; core at the top; no
 *                         power->os edges and the like).
 *
 *   durability-io         Durability-owning files (checkpoint,
 *                         journal, pool, system autosave) must not
 *                         bypass the host-I/O seam with raw
 *                         ::rename()/::remove(), ofstream or fopen;
 *                         and anywhere in src/, the IoStatus
 *                         returned by hostWriteFileAtomic/
 *                         hostRename/hostRemove/hostSyncDir must
 *                         not be discarded in statement position
 *                         (hostRemoveBestEffort is the sanctioned
 *                         discard for may-not-exist cleanup).
 *
 * The parser is deliberately lightweight — no preprocessor, no real
 * C++ grammar — but declaration-aware enough for this codebase's
 * house style; it shares the masking/suppression substrate in
 * tools/common with softwatt-lint.
 */

#ifndef SOFTWATT_TOOLS_ANALYZE_ANALYZE_HH
#define SOFTWATT_TOOLS_ANALYZE_ANALYZE_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/scanner.hh"

namespace softwatt::analyze
{

using tools::Finding;

/** One file handed to the analyzer (repo-relative path + contents). */
struct SourceText
{
    std::string path;
    std::string text;
};

/** Everything the whole-program passes need. */
struct AnalyzerInput
{
    std::vector<SourceText> files;

    /**
     * Contents of EXPERIMENTS.md (the configuration-key reference);
     * empty disables the documentation half of the config-key rule.
     */
    std::string experimentsDoc;
};

/**
 * The declared src/ layer DAG: for each layer, the set of layers its
 * files may #include from (own layer always allowed). Exposed so the
 * docs test and DESIGN.md stay in sync with the enforced graph.
 */
const std::map<std::string, std::set<std::string>> &layerDag();

/**
 * Run every rule over @p input and return the findings sorted by
 * (path, line, rule). Baseline filtering is the caller's job (see
 * tools::Suppressions::apply), so stale baseline entries can be
 * reported.
 */
std::vector<Finding> analyzeSources(const AnalyzerInput &input);

} // namespace softwatt::analyze

#endif // SOFTWATT_TOOLS_ANALYZE_ANALYZE_HH
