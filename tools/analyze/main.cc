/**
 * @file
 * softwatt-analyze entry point: whole-program contract checks.
 *
 *   softwatt-analyze [--baseline FILE] [--json=FILE]
 *                    [--experiments FILE] ROOT...
 *
 * All .cc/.hh/.cpp/.hpp/.h files under each ROOT are parsed together
 * (the rules are cross-file: a class declared in src/mem/cache.hh is
 * checked against bodies defined in src/mem/cache.cc). Findings are
 * printed as "path:line: [rule] message" and the exit status is
 * nonzero when any finding survives the baseline.
 *
 * --baseline FILE uses the shared "<path> <rule>" suppression format
 * to grandfather known findings; entries that no longer match
 * anything are reported as warnings so the baseline shrinks over
 * time instead of rotting. --experiments FILE points at
 * EXPERIMENTS.md for the config-key documentation check (omitting it
 * disables that half of the rule). --json=FILE writes surviving
 * findings in the shared one-per-line JSON schema.
 */

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analyze/analyze.hh"
#include "common/scanner.hh"

namespace fs = std::filesystem;
namespace tools = softwatt::tools;
using softwatt::analyze::AnalyzerInput;
using softwatt::analyze::SourceText;
using tools::Finding;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--baseline FILE] [--json=FILE] "
                 "[--experiments FILE] ROOT...\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    tools::Suppressions baseline;
    std::string json_path;
    std::string experiments_path;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline") {
            if (++i >= argc)
                return usage(argv[0]);
            std::string text;
            if (!tools::readFile(argv[i], text)) {
                std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                             argv[i]);
                return 2;
            }
            std::string error;
            if (!baseline.parse(text, error)) {
                std::fprintf(stderr, "%s: %s: %s\n", argv[0],
                             argv[i], error.c_str());
                return 2;
            }
        } else if (arg == "--experiments") {
            if (++i >= argc)
                return usage(argv[0]);
            experiments_path = argv[i];
        } else if (arg.rfind("--json=", 0) == 0) {
            json_path = arg.substr(std::strlen("--json="));
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            roots.emplace_back(arg);
        }
    }
    if (roots.empty())
        return usage(argv[0]);

    std::vector<tools::ScanFile> files;
    std::string walk_error;
    if (!tools::collectFiles(roots, files, walk_error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0],
                     walk_error.c_str());
        return 2;
    }

    AnalyzerInput input;
    for (const tools::ScanFile &file : files) {
        SourceText source;
        source.path = file.repoRel;
        if (!tools::readFile(file.full, source.text)) {
            std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                         file.full.string().c_str());
            return 2;
        }
        input.files.push_back(std::move(source));
    }
    if (!experiments_path.empty() &&
        !tools::readFile(experiments_path, input.experimentsDoc)) {
        std::fprintf(stderr, "%s: cannot read %s\n", argv[0],
                     experiments_path.c_str());
        return 2;
    }

    std::vector<Finding> findings =
        softwatt::analyze::analyzeSources(input);
    baseline.apply(findings);

    for (const Finding &f : findings) {
        std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "%s: cannot write %s\n", argv[0],
                         json_path.c_str());
            return 2;
        }
        tools::writeFindingsJson(out, "softwatt-analyze", findings);
    }

    for (const std::string &entry : baseline.unusedEntries()) {
        std::fprintf(stderr,
                     "softwatt-analyze: warning: unused baseline "
                     "entry '%s' (no finding left to grandfather; "
                     "remove it from the baseline)\n",
                     entry.c_str());
    }

    if (!findings.empty()) {
        std::fprintf(stderr,
                     "softwatt-analyze: %zu finding(s) in %zu "
                     "file(s) scanned\n",
                     findings.size(), files.size());
        return 1;
    }
    return 0;
}
