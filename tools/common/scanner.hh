/**
 * @file
 * Shared infrastructure for the repo's source scanners
 * (softwatt-lint, softwatt-analyze): file walking, comment/string
 * masking, the checked-in suppression/baseline list, and the common
 * finding record with its text and JSON emission formats.
 *
 * Both tools are deliberately token-based rather than AST-based: the
 * constructs they check are identifiable after comments and string
 * literals are masked out, which keeps them dependency-free and fast
 * enough to run on every build.
 */

#ifndef SOFTWATT_TOOLS_COMMON_SCANNER_HH
#define SOFTWATT_TOOLS_COMMON_SCANNER_HH

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace softwatt::tools
{

/** One rule violation at a source location. */
struct Finding
{
    std::string path;   ///< Repo-relative path of the file.
    int line = 0;       ///< 1-based line number.
    std::string rule;   ///< Stable rule name (for suppressions).
    std::string message;
};

/** Sort key: path, then line, then rule. */
bool findingLess(const Finding &a, const Finding &b);

/**
 * Checked-in suppression list: one "path rule" pair per line,
 * '#' starts a comment. A suppressed (path, rule) pair silences
 * every finding of that rule in that file.
 *
 * Application tracks which entries actually silenced a finding, so
 * tools can warn about stale entries that no longer match anything.
 */
class Suppressions
{
  public:
    /** Parse suppression-file text. Returns false on a bad line. */
    bool parse(const std::string &text, std::string &error);

    /**
     * Drop every suppressed finding from @p findings, marking the
     * matching entries as used. Returns the number removed.
     */
    std::size_t apply(std::vector<Finding> &findings) const;

    /** Pure query: is (path, rule) listed? Does not mark entries. */
    bool suppressed(const std::string &path,
                    const std::string &rule) const;

    /** Entries that never matched a finding, as "path rule" text. */
    std::vector<std::string> unusedEntries() const;

    std::size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        std::string path;
        std::string rule;
        mutable bool used = false;
    };

    std::vector<Entry> entries;
};

/**
 * Replace the contents of comments and string/character literals
 * with spaces, preserving newlines so line numbers survive. Handles
 * //, block comments, "..." and '...' with escapes, and R"(...)"
 * raw strings.
 */
std::string maskCommentsAndStrings(const std::string &source);

/** True at identifier characters ([A-Za-z0-9_]). */
bool identChar(char c);

/** 1-based line number of byte offset @p pos in @p text. */
int lineOfOffset(const std::string &text, std::size_t pos);

/** One file selected for scanning. */
struct ScanFile
{
    std::string repoRel;        ///< '/'-separated repo-relative path.
    std::filesystem::path full; ///< On-disk path for reading.
};

/** True for the C++ source extensions the scanners understand. */
bool scannableFile(const std::filesystem::path &p);

/**
 * Walk every ROOT in @p roots and collect the scannable files,
 * sorted by repo-relative path so output order never depends on
 * directory-iteration order. Repo-relative paths are formed against
 * the parent of each ROOT ("src/..." when ROOT is "src"). Returns
 * false and sets @p error when a ROOT is not a directory or the walk
 * fails.
 */
bool collectFiles(const std::vector<std::filesystem::path> &roots,
                  std::vector<ScanFile> &out, std::string &error);

/** Slurp a file. Returns false when it cannot be opened. */
bool readFile(const std::filesystem::path &p, std::string &out);

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

/**
 * Emit findings machine-readably: one JSON object per line
 * ({"tool":..., "path":..., "line":N, "rule":..., "message":...}),
 * in the order given — the shared schema both softwatt-lint and
 * softwatt-analyze produce so CI can annotate findings uniformly.
 */
void writeFindingsJson(std::ostream &out, const std::string &tool,
                       const std::vector<Finding> &findings);

} // namespace softwatt::tools

#endif // SOFTWATT_TOOLS_COMMON_SCANNER_HH
