#include "scanner.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace softwatt::tools
{

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
findingLess(const Finding &a, const Finding &b)
{
    if (a.path != b.path)
        return a.path < b.path;
    if (a.line != b.line)
        return a.line < b.line;
    return a.rule < b.rule;
}

int
lineOfOffset(const std::string &text, std::size_t pos)
{
    pos = std::min(pos, text.size());
    return 1 + int(std::count(text.begin(),
                              text.begin() + std::ptrdiff_t(pos),
                              '\n'));
}

bool
Suppressions::parse(const std::string &text, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream fields(line);
        std::string path, rule, extra;
        if (!(fields >> path))
            continue;  // blank or comment-only line
        if (!(fields >> rule) || fields >> extra) {
            error = "suppressions line " + std::to_string(lineno) +
                    ": expected '<path> <rule>'";
            return false;
        }
        entries.push_back({std::move(path), std::move(rule), false});
    }
    return true;
}

std::size_t
Suppressions::apply(std::vector<Finding> &findings) const
{
    std::size_t before = findings.size();
    auto kept = std::remove_if(
        findings.begin(), findings.end(), [this](const Finding &f) {
            for (const Entry &entry : entries) {
                if (entry.path == f.path && entry.rule == f.rule) {
                    entry.used = true;
                    return true;
                }
            }
            return false;
        });
    findings.erase(kept, findings.end());
    return before - findings.size();
}

bool
Suppressions::suppressed(const std::string &path,
                         const std::string &rule) const
{
    for (const Entry &entry : entries) {
        if (entry.path == path && entry.rule == rule)
            return true;
    }
    return false;
}

std::vector<std::string>
Suppressions::unusedEntries() const
{
    std::vector<std::string> unused;
    for (const Entry &entry : entries) {
        if (!entry.used)
            unused.push_back(entry.path + " " + entry.rule);
    }
    return unused;
}

std::string
maskCommentsAndStrings(const std::string &source)
{
    std::string out = source;
    std::size_t i = 0;
    std::size_t n = source.size();

    auto blank = [&out](std::size_t from, std::size_t to) {
        for (std::size_t k = from; k < to; ++k) {
            if (out[k] != '\n')
                out[k] = ' ';
        }
    };

    while (i < n) {
        char c = source[i];
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            std::size_t end = source.find('\n', i);
            if (end == std::string::npos)
                end = n;
            blank(i, end);
            i = end;
        } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            std::size_t end = source.find("*/", i + 2);
            end = end == std::string::npos ? n : end + 2;
            blank(i, end);
            i = end;
        } else if (c == 'R' && i + 1 < n && source[i + 1] == '"' &&
                   (i == 0 || !identChar(source[i - 1]))) {
            // Raw string: R"delim( ... )delim"
            std::size_t open = source.find('(', i + 2);
            if (open == std::string::npos) {
                i = n;
                break;
            }
            std::string delim = source.substr(i + 2, open - (i + 2));
            std::string closer = ")" + delim + "\"";
            std::size_t end = source.find(closer, open + 1);
            end = end == std::string::npos ? n : end + closer.size();
            blank(i, end);
            i = end;
        } else if (c == '"' || c == '\'') {
            std::size_t k = i + 1;
            while (k < n && source[k] != c) {
                if (source[k] == '\\' && k + 1 < n)
                    ++k;
                ++k;
            }
            std::size_t end = k < n ? k + 1 : n;
            blank(i, end);
            i = end;
        } else {
            ++i;
        }
    }
    return out;
}

bool
scannableFile(const std::filesystem::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

bool
collectFiles(const std::vector<std::filesystem::path> &roots,
             std::vector<ScanFile> &out, std::string &error)
{
    namespace fs = std::filesystem;
    for (const fs::path &root : roots) {
        std::error_code ec;
        if (!fs::is_directory(root, ec)) {
            error = "not a directory: " + root.string();
            return false;
        }
        for (fs::recursive_directory_iterator it(root, ec), end;
             it != end; it.increment(ec)) {
            if (ec) {
                error = "error walking " + root.string();
                return false;
            }
            if (!it->is_regular_file() || !scannableFile(it->path()))
                continue;
            fs::path rel = fs::relative(it->path(), root);
            std::string repo_rel =
                (root.filename() / rel).generic_string();
            out.push_back({std::move(repo_rel), it->path()});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ScanFile &a, const ScanFile &b) {
                  return a.repoRel < b.repoRel;
              });
    return true;
}

bool
readFile(const std::filesystem::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = buf.str();
    return true;
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              unsigned(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeFindingsJson(std::ostream &out, const std::string &tool,
                  const std::vector<Finding> &findings)
{
    for (const Finding &f : findings) {
        out << "{\"tool\":\"" << jsonEscape(tool) << "\",\"path\":\""
            << jsonEscape(f.path) << "\",\"line\":" << f.line
            << ",\"rule\":\"" << jsonEscape(f.rule)
            << "\",\"message\":\"" << jsonEscape(f.message)
            << "\"}\n";
    }
}

} // namespace softwatt::tools
