#include "experiment.hh"

#include "sim/logging.hh"

namespace softwatt
{

BenchmarkRun
runBenchmark(Benchmark bench, const SystemConfig &config, double scale)
{
    BenchmarkRun run;
    run.name = benchmarkName(bench);
    run.system = std::make_unique<System>(config);

    WorkloadSpec spec = benchmarkSpec(bench);
    if (scale != 1.0)
        spec = scaleWorkload(spec, scale);
    run.system->attachWorkload(std::make_unique<Workload>(spec));
    run.result = run.system->run();
    if (!run.result.ok())
        warn(msg() << run.name << ": run ended early ("
                   << runOutcomeName(run.result.outcome) << "): "
                   << run.result.diagnostics);

    run.breakdown = run.system->breakdown(false);
    run.conventional = run.system->breakdown(true);
    return run;
}

std::vector<BenchmarkRun>
runSuite(const SystemConfig &config, double scale)
{
    std::vector<BenchmarkRun> runs;
    for (Benchmark b : allBenchmarks)
        runs.push_back(runBenchmark(b, config, scale));
    return runs;
}

PowerBreakdown
averageBreakdowns(const std::vector<PowerBreakdown> &breakdowns)
{
    PowerBreakdown avg;
    if (breakdowns.empty())
        return avg;
    avg.freqHz = breakdowns.front().freqHz;
    for (const PowerBreakdown &b : breakdowns)
        avg.accumulate(b);
    return avg;
}

Config
parseArgs(int argc, char **argv)
{
    Config config;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            fatal("usage: " + std::string(argv[0]) +
                  " [key=value ...]\n"
                  "  e.g. scale=0.1 disk.config=spindown "
                  "disk.threshold_s=2 cpu.model=mipsy seed=7");
        }
        if (!config.parseAssignment(arg))
            fatal(msg() << "malformed argument '" << arg
                        << "' (expected key=value)");
    }
    return config;
}

} // namespace softwatt
