#include "experiment.hh"

#include <cstdio>
#include <cstring>

#include "sim/logging.hh"

namespace softwatt
{

BenchmarkRun
runBenchmark(Benchmark bench, const SystemConfig &config, double scale)
{
    return runBenchmark(bench, config, scale, RunOptions{});
}

BenchmarkRun
runBenchmark(Benchmark bench, const SystemConfig &config, double scale,
             const RunOptions &options)
{
    BenchmarkRun run;
    run.bench = bench;
    run.name = benchmarkName(bench);
    run.scale = scale;
    run.system = std::make_unique<System>(config);
    if (options.cancel)
        run.system->setCancelToken(options.cancel);
    if (options.forceInvariants)
        run.system->invariants().setEnabled(true);

    WorkloadSpec spec = benchmarkSpec(bench);
    if (scale != 1.0)
        spec = scaleWorkload(spec, scale);
    run.system->attachWorkload(std::make_unique<Workload>(spec));
    if (options.checkpointEverySeconds > 0) {
        run.system->setCheckpointPolicy(options.checkpointEverySeconds,
                                        options.checkpointPath,
                                        options.durability);
    }
    if (!options.restorePath.empty())
        run.system->restoreCheckpoint(options.restorePath);
    run.warmStarted = run.system->restored();
    run.warmStartTick = std::uint64_t(run.system->now());
    run.result = run.system->run();
    run.ticksExecuted =
        std::uint64_t(run.system->now()) - run.warmStartTick;
    run.storageDegraded = run.system->checkpointingDegraded();
    if (!run.result.ok())
        warn(msg() << run.name << ": run ended early ("
                   << runOutcomeName(run.result.outcome) << "): "
                   << run.result.diagnostics);

    run.breakdown = run.system->breakdown(false);
    run.conventional = run.system->breakdown(true);
    return run;
}

std::uint64_t
machineCheckpointFingerprint(Benchmark bench,
                             const SystemConfig &config, double scale)
{
    System system(config);
    WorkloadSpec spec = benchmarkSpec(bench);
    if (scale != 1.0)
        spec = scaleWorkload(spec, scale);
    system.attachWorkload(std::make_unique<Workload>(spec));
    return system.checkpointFingerprint();
}

PowerBreakdown
averageBreakdowns(const std::vector<PowerBreakdown> &breakdowns)
{
    PowerBreakdown avg;
    if (breakdowns.empty())
        return avg;
    avg.freqHz = breakdowns.front().freqHz;
    for (const PowerBreakdown &b : breakdowns)
        avg.accumulate(b);
    return avg;
}

std::string
usageText(const char *argv0)
{
    return msg() << "usage: " << argv0
                 << " [key=value ...]\n"
                    "  e.g. scale=0.1 disk.config=spindown "
                    "disk.threshold_s=2 cpu.model=mipsy seed=7\n"
                    "  power keys: power_budget_w=W (power budget "
                    "for the DVFS governor),\n"
                    "              dvfs=1 (closed-loop DVFS "
                    "governor; needs power_budget_w=),\n"
                    "              adaptive_spindown=1 (adaptive "
                    "disk spin-down threshold;\n"
                    "              needs disk.config=spindown)\n"
                    "  runner keys: jobs=N (worker threads, "
                    "default hardware concurrency),\n"
                    "               out=results.json (structured "
                    "results document),\n"
                    "               deadline_s=T (per-run budget in "
                    "simulated seconds, 0 = off),\n"
                    "               resume=1 (replay "
                    "<out>.journal.jsonl, skip finished runs),\n"
                    "               grace_s=T (post-SIGINT budget "
                    "for in-flight runs, 0 = finish),\n"
                    "               diagnose=1 (rerun failed specs "
                    "once with invariant sweeps),\n"
                    "               checkpoint_every_s=T (autosave a "
                    "machine checkpoint every T simulated\n"
                    "               seconds next to <out>; needs "
                    "out=),\n"
                    "               restore=file.ckpt (restore "
                    "machine state before the run;\n"
                    "               single-run specs only, not with "
                    "resume=1),\n"
                    "               durability=buffered|full "
                    "(storage barrier discipline: full adds\n"
                    "               fsync chains so acknowledged "
                    "data survives a power cut)\n"
                    "  fault keys: io_fault_seed=N, io_fault_rate=P "
                    "(EIO), io_fault_enospc_rate=P,\n"
                    "              io_fault_short_write_rate=P, "
                    "io_fault_torn_rename_rate=P,\n"
                    "              io_fault_crash_at_op=N (power "
                    "cut after op N),\n"
                    "              io_fault_enospc_after_bytes=N "
                    "(disk full after N bytes);\n"
                    "              deterministic host-I/O fault "
                    "injection for durability testing";
}

bool
tryParseArgs(int argc, char **argv, Config &out, std::string &error)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            error = usageText(argv[0]);
            return false;
        }
        if (!out.parseAssignment(arg)) {
            error = msg() << "malformed argument '" << arg
                          << "' (expected key=value)";
            return false;
        }
    }
    return true;
}

Config
parseArgs(int argc, char **argv)
{
    Config config;
    std::string error;
    if (!tryParseArgs(argc, argv, config, error))
        fatal(error);
    return config;
}

CliArgs
parseCliArgs(int argc, char **argv)
{
    CliArgs cli;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            std::printf("%s\n", usageText(argv[0]).c_str());
            cli.shouldExit = true;
            return cli;
        }
    }
    std::string error;
    if (!tryParseArgs(argc, argv, cli.config, error))
        fatal(error);
    return cli;
}

} // namespace softwatt
