/**
 * @file
 * Minimal streaming JSON writer for structured experiment results.
 *
 * Emits deterministic text: object members appear exactly in the
 * order written, doubles use the shortest round-trip representation
 * (std::to_chars), and no locale-dependent formatting is involved —
 * so two runs producing the same values produce byte-identical
 * documents, which is what the jobs=1 vs jobs=N determinism tests
 * compare.
 */

#ifndef SOFTWATT_CORE_JSON_WRITER_HH
#define SOFTWATT_CORE_JSON_WRITER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace softwatt
{

/**
 * Streaming writer with begin/end nesting and automatic commas and
 * indentation. Misuse (a value where a key is required, unbalanced
 * end calls) trips panic(): the schema is entirely produced by our
 * own code, so a malformed document is a SoftWatt bug.
 */
class JsonWriter
{
  public:
    /**
     * @param out Destination stream.
     * @param indent Spaces per nesting level; 0 emits compact
     *        single-line JSON.
     */
    explicit JsonWriter(std::ostream &out, int indent = 2);

    /** Panics if the document is incomplete (unclosed containers). */
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Start an object member; must be followed by one value. */
    JsonWriter &key(const std::string &name);

    void value(const std::string &text);
    void value(const char *text);
    void value(double number);
    void value(std::int64_t number);
    void value(std::uint64_t number);
    void value(int number) { value(std::int64_t(number)); }
    void value(unsigned number) { value(std::uint64_t(number)); }
    void value(bool flag);
    void valueNull();

    /**
     * Splice pre-rendered JSON text in as one value. @p text must be
     * a complete JSON value rendered standalone (nesting depth 0)
     * with the same indent width as this writer; its inner lines are
     * re-indented to the current depth. This is how journal-replayed
     * run objects land in the final document byte-identical to
     * freshly rendered ones.
     */
    void rawValue(const std::string &text);

    /** key(name) + value(v) in one call. */
    template <typename T>
    void
    member(const std::string &name, const T &v)
    {
        key(name);
        value(v);
    }

  private:
    enum class Scope
    {
        Object,
        Array,
    };

    std::ostream &out;
    int indentWidth;
    std::vector<Scope> stack;
    bool firstInScope = true;
    bool keyPending = false;
    bool rootWritten = false;

    /** Comma/newline/indent bookkeeping before a key or value. */
    void beforeValue();
    void beforeContainerEnd();
    void newlineIndent();
    void writeEscaped(const std::string &text);
};

/**
 * Reverse of JsonWriter's string escaping: decodes exactly the
 * escape set our own writer emits (\" \\ \/ \n \r \t and \u00xx for
 * control bytes). @return false on any sequence the writer could not
 * have produced — the caller treats the line as torn or foreign.
 */
bool jsonUnescape(const std::string &text, std::string &out);

/**
 * Find `"key":` at the top level of one compact JsonWriter line and
 * extract its JSON string value (unescaped). Escaped quotes inside
 * string values can never produce the `"key":` byte sequence, so a
 * plain substring search is exact for this self-generated format.
 * These extractors are shared by the resume journal and the serve
 * protocol, both of which only ever parse documents this codebase
 * wrote.
 */
bool jsonExtractString(const std::string &line,
                       const std::string &key, std::string &out);

/** jsonExtractString for an int member. */
bool jsonExtractInt(const std::string &line, const std::string &key,
                    int &out);

/** jsonExtractString for an unsigned 64-bit member. */
bool jsonExtractUint64(const std::string &line,
                       const std::string &key, std::uint64_t &out);

} // namespace softwatt

#endif // SOFTWATT_CORE_JSON_WRITER_HH
