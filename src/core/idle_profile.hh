/**
 * @file
 * Measured per-cycle behaviour of the idle process.
 *
 * The paper observes (Section 3.3) that the idle process's per-cycle
 * processor and memory-system access behaviour is workload-
 * independent and can be predicted accurately, which lets disk
 * spin-ups/spin-downs be simulated by fast-forwarding the requisite
 * number of cycles. IdleProfile is that prediction: per-cycle counter
 * rates measured once by running the idle loop in isolation.
 */

#ifndef SOFTWATT_CORE_IDLE_PROFILE_HH
#define SOFTWATT_CORE_IDLE_PROFILE_HH

#include <array>

#include "sim/counters.hh"
#include "sim/machine_params.hh"

namespace softwatt
{

/** Per-cycle idle-mode counter rates. */
struct IdleProfile
{
    std::array<double, numCounters> perCycle{};

    /** Accumulate @p cycles worth of idle activity into @p bank. */
    void apply(CounterBank &bank, Cycles cycles) const;
};

/**
 * Measure the idle profile by running the idle loop alone on a
 * scratch instance of the chosen CPU model for @p warmup + @p
 * measure cycles.
 */
IdleProfile measureIdleProfile(const MachineParams &machine,
                               bool superscalar,
                               Cycles warmup = 20'000,
                               Cycles measure = 30'000);

} // namespace softwatt

#endif // SOFTWATT_CORE_IDLE_PROFILE_HH
