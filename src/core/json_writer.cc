#include "json_writer.hh"

#include <charconv>
#include <cmath>
#include <ostream>

#include "sim/logging.hh"

namespace softwatt
{

JsonWriter::JsonWriter(std::ostream &out, int indent)
    : out(out), indentWidth(indent)
{
}

JsonWriter::~JsonWriter()
{
    if (!stack.empty())
        panic("JsonWriter destroyed with unclosed containers");
}

void
JsonWriter::beforeValue()
{
    if (stack.empty()) {
        if (rootWritten)
            panic("JsonWriter: second root value");
        rootWritten = true;
        return;
    }
    if (stack.back() == Scope::Object && !keyPending)
        panic("JsonWriter: object member written without a key");
    if (keyPending) {
        keyPending = false;
        return;  // key() already emitted separators and "name":
    }
    if (!firstInScope)
        out << ',';
    newlineIndent();
    firstInScope = false;
}

void
JsonWriter::newlineIndent()
{
    if (indentWidth <= 0)
        return;
    out << '\n';
    for (std::size_t i = 0; i < stack.size() * indentWidth; ++i)
        out << ' ';
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (stack.empty() || stack.back() != Scope::Object)
        panic("JsonWriter: key() outside an object");
    if (keyPending)
        panic("JsonWriter: key() while a value is pending");
    if (!firstInScope)
        out << ',';
    newlineIndent();
    firstInScope = false;
    writeEscaped(name);
    out << (indentWidth > 0 ? ": " : ":");
    keyPending = true;
    return *this;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out << '{';
    stack.push_back(Scope::Object);
    firstInScope = true;
}

void
JsonWriter::beforeContainerEnd()
{
    if (keyPending)
        panic("JsonWriter: container closed with a key pending");
    bool empty = firstInScope;
    Scope scope = stack.back();
    stack.pop_back();
    if (!empty)
        newlineIndent();
    firstInScope = false;
    (void)scope;
}

void
JsonWriter::endObject()
{
    if (stack.empty() || stack.back() != Scope::Object)
        panic("JsonWriter: endObject() without beginObject()");
    beforeContainerEnd();
    out << '}';
}

void
JsonWriter::endArray()
{
    if (stack.empty() || stack.back() != Scope::Array)
        panic("JsonWriter: endArray() without beginArray()");
    beforeContainerEnd();
    out << ']';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out << '[';
    stack.push_back(Scope::Array);
    firstInScope = true;
}

void
JsonWriter::value(const std::string &text)
{
    beforeValue();
    writeEscaped(text);
}

void
JsonWriter::value(const char *text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    beforeValue();
    // JSON has no NaN/Infinity literals.
    if (!std::isfinite(number)) {
        out << "null";
        return;
    }
    char buf[64];
    auto [end, ec] =
        std::to_chars(buf, buf + sizeof(buf), number);
    if (ec != std::errc())
        panic("JsonWriter: double conversion failed");
    out.write(buf, end - buf);
}

void
JsonWriter::value(std::int64_t number)
{
    beforeValue();
    out << number;
}

void
JsonWriter::value(std::uint64_t number)
{
    beforeValue();
    out << number;
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    out << (flag ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    beforeValue();
    out << "null";
}

void
JsonWriter::rawValue(const std::string &text)
{
    if (text.empty())
        panic("JsonWriter: rawValue with empty text");
    beforeValue();
    const std::string pad(stack.size() * std::size_t(
                              indentWidth > 0 ? indentWidth : 0),
                          ' ');
    for (char c : text) {
        out << c;
        if (c == '\n')
            out << pad;
    }
}

bool
jsonUnescape(const std::string &text, std::string &out)
{
    out.clear();
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        char c = text[i];
        if (c != '\\') {
            out.push_back(c);
            continue;
        }
        if (++i >= text.size())
            return false;
        switch (text[i]) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (i + 4 >= text.size())
                return false;
            unsigned value = 0;
            for (int k = 0; k < 4; ++k) {
                char h = text[++i];
                value <<= 4;
                if (h >= '0' && h <= '9')
                    value |= unsigned(h - '0');
                else if (h >= 'a' && h <= 'f')
                    value |= unsigned(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    value |= unsigned(h - 'A' + 10);
                else
                    return false;
            }
            if (value > 0x7f)
                return false;  // our writer only emits \u00xx
            out.push_back(char(value));
            break;
          }
          default:
            return false;
        }
    }
    return true;
}

bool
jsonExtractString(const std::string &line, const std::string &key,
                  std::string &out)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    pos += needle.size();
    if (pos >= line.size() || line[pos] != '"')
        return false;
    std::size_t cursor = pos + 1;
    while (cursor < line.size() && line[cursor] != '"') {
        if (line[cursor] == '\\')
            ++cursor;
        ++cursor;
    }
    if (cursor >= line.size())
        return false;  // unterminated: a torn line
    return jsonUnescape(
        line.substr(pos + 1, cursor - pos - 1), out);
}

namespace
{

/** Locate the digit span of a numeric member; npos pair on miss. */
bool
numberSpan(const std::string &line, const std::string &key,
           std::size_t &begin, std::size_t &end)
{
    std::string needle = "\"" + key + "\":";
    std::size_t pos = line.find(needle);
    if (pos == std::string::npos)
        return false;
    begin = pos + needle.size();
    end = begin;
    while (end < line.size() &&
           (line[end] == '-' ||
            (line[end] >= '0' && line[end] <= '9'))) {
        ++end;
    }
    return end > begin;
}

} // namespace

bool
jsonExtractInt(const std::string &line, const std::string &key,
               int &out)
{
    std::size_t begin = 0, end = 0;
    if (!numberSpan(line, key, begin, end))
        return false;
    auto [ptr, ec] = std::from_chars(line.data() + begin,
                                     line.data() + end, out);
    return ec == std::errc() && ptr == line.data() + end;
}

bool
jsonExtractUint64(const std::string &line, const std::string &key,
                  std::uint64_t &out)
{
    std::size_t begin = 0, end = 0;
    if (!numberSpan(line, key, begin, end))
        return false;
    auto [ptr, ec] = std::from_chars(line.data() + begin,
                                     line.data() + end, out);
    return ec == std::errc() && ptr == line.data() + end;
}

void
JsonWriter::writeEscaped(const std::string &text)
{
    out << '"';
    for (char c : text) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\r':
            out << "\\r";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                const char *hex = "0123456789abcdef";
                out << "\\u00" << hex[(c >> 4) & 0xf]
                    << hex[c & 0xf];
            } else {
                out << c;
            }
        }
    }
    out << '"';
}

} // namespace softwatt
