/**
 * @file
 * The experiment-runner subsystem: a declarative ExperimentSpec
 * (benchmarks x configuration variants x scale) scheduled on a
 * fixed-size thread pool, with results aggregated in spec order and
 * emitted as human-readable reports and/or a structured JSON
 * document.
 *
 * Every harness in bench/ and examples/ builds a spec, calls
 * runExperiment(), and renders its report from the ExperimentResult;
 * none of them loops over runBenchmark() itself. Each run owns its
 * System, EventQueue, and RNG streams, so scheduling order cannot
 * affect results: jobs=N output is bit-identical to the serial
 * jobs=1 reference path.
 */

#ifndef SOFTWATT_CORE_RUNNER_HH
#define SOFTWATT_CORE_RUNNER_HH

#include <array>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "os/service.hh"
#include "sim/host_io.hh"
#include "sim/logging.hh"

#include "experiment.hh"

namespace softwatt
{

/** One scheduled benchmark run of an experiment. */
struct RunSpec
{
    Benchmark bench = Benchmark::Jess;

    /** Variant label distinguishing configurations ("" if single). */
    std::string variant;

    SystemConfig config;
    double scale = 1.0;

    /**
     * TEST HOOK: when non-empty, the worker throws this message as a
     * SimError instead of running, exercising the exception firewall
     * without corrupting a real model.
     */
    std::string injectFailure;

    /**
     * Checkpoint plumbing, filled in by runExperiment() from the
     * spec-level settings: autosave cadence (simulated seconds, 0
     * off), the per-run autosave destination derived from the JSON
     * path, and an optional checkpoint to restore before running.
     */
    double checkpointEveryS = 0.0;
    std::string checkpointPath;
    std::string restorePath;

    /**
     * Durability level for this run's checkpoint autosaves (filled
     * in from the spec-level setting). Excluded from the spec
     * fingerprint: it changes how bytes reach the disk, never what
     * the simulation computes.
     */
    Durability durability = Durability::Buffered;
};

/** Declarative description of a whole experiment. */
struct ExperimentSpec
{
    /** Experiment name ("fig5", "fault-sweep", ...). */
    std::string title;

    std::vector<RunSpec> runs;

    /** Worker threads; <= 0 means hardware concurrency. */
    int jobs = 0;

    /** Path of the structured JSON document; "" = don't write. */
    std::string jsonPath;

    /**
     * Per-run budget in simulated seconds applied to every run that
     * does not set its own config.deadlineSeconds; 0 = none. Expiry
     * is RunOutcome::DeadlineExceeded, not a sweep abort.
     */
    double deadlineS = 0.0;

    /**
     * Grace budget in simulated seconds for in-flight runs after a
     * Drain cancellation (first SIGINT/SIGTERM); 0 = let them
     * finish. Applied like deadlineS.
     */
    double graceS = 0.0;

    /**
     * Replay `<jsonPath>.journal.jsonl`: runs whose (bench, variant,
     * config-fingerprint) key matches a journaled entry are spliced
     * from the journal instead of re-executed, so a killed sweep
     * restarts where it died and still emits a final document
     * byte-identical to an uninterrupted run.
     */
    bool resume = false;

    /**
     * Rerun each Failed spec once, serially, with the runtime
     * invariant sweeps forced on and verbose logging, to capture a
     * diagnostic failure bundle.
     */
    bool diagnose = false;

    /**
     * Autosave a machine checkpoint every this many simulated
     * seconds; 0 disables. Requires jsonPath: each run autosaves to
     * "<jsonPath>.<bench>[-variant].ckpt" (atomic rename, previous
     * generation kept as "....ckpt.1"). Bit-identity holds between
     * runs with the same cadence — see System::setCheckpointPolicy.
     */
    double checkpointEveryS = 0.0;

    /**
     * Restore machine state from this checkpoint before running.
     * Only meaningful for single-run specs (the checkpoint encodes
     * one machine); mutually exclusive with resume (the journal
     * replays whole runs, the checkpoint resumes inside one).
     */
    std::string restorePath;

    /**
     * Durability contract for everything the runner persists (the
     * resume journal, checkpoint autosaves, the JSON document).
     * Buffered (default) survives SIGKILL; Full adds fsync barriers
     * so acknowledged data also survives a power cut. See DESIGN.md
     * §4k for the exact failure matrix.
     */
    Durability durability = Durability::Buffered;

    /**
     * Deterministic host-I/O fault schedule (io_fault_* keys),
     * installed for the duration of runExperiment(). Testing and
     * crash-consistency tooling only; all-zero injects nothing.
     */
    IoFaultPolicy ioFaults;

    /**
     * Optional external cancel token (tests). When null the runner
     * uses an internal token; either way it is bridged to
     * SIGINT/SIGTERM for the duration of runExperiment().
     */
    CancelToken *cancel = nullptr;

    /** Append one run and return it for further tweaking. */
    RunSpec &add(Benchmark bench, const SystemConfig &config,
                 double scale = 1.0, const std::string &variant = "");

    /** Append all six benchmarks under one configuration. */
    void addSuite(const SystemConfig &config, double scale = 1.0,
                  const std::string &variant = "");

    /**
     * Spec primed from parsed command-line arguments: reads the
     * runner's own keys (jobs=N, out=path, deadline_s=T, grace_s=T,
     * resume=0/1, diagnose=0/1, checkpoint_every_s=T, restore=path,
     * durability=buffered|full, and the io_fault_* fault-injection
     * keys) so SystemConfig's unused-key check does not flag them. Values
     * are range-checked here, the out= path is probed for
     * writability (open + unlink of a scratch file), and a restore=
     * file must already be readable, so a doomed sweep fails in
     * milliseconds instead of after hours of simulation.
     */
    static ExperimentSpec fromArgs(const std::string &title,
                                   const Config &args);
};

/** All results of an experiment, ordered as the spec's runs. */
class ExperimentResult
{
  public:
    const std::string &title() const { return expTitle; }

    /** Worker threads the experiment actually used. */
    int jobs() const { return workerCount; }

    std::size_t size() const { return results.size(); }
    const BenchmarkRun &at(std::size_t i) const;
    const RunSpec &specAt(std::size_t i) const;

    /** The run for (bench, variant); fatal() if absent. */
    const BenchmarkRun &run(Benchmark bench,
                            const std::string &variant = "") const;

    /**
     * The run for (bench, variant), or null if absent. Report paths
     * that can see gaps (failed or skipped runs) use this instead of
     * run() so one missing run degrades the report, not the process.
     */
    const BenchmarkRun *find(Benchmark bench,
                             const std::string &variant = "") const;

    /** Runs carrying @p variant, in spec order. */
    std::vector<const BenchmarkRun *>
    variantRuns(const std::string &variant = "") const;

    /** Benchmark names of a variant's runs, in spec order. */
    std::vector<std::string>
    names(const std::string &variant = "") const;

    /** Managed-disk breakdowns of a variant's runs. */
    std::vector<PowerBreakdown>
    breakdowns(const std::string &variant = "") const;

    /** Conventional-disk breakdowns of a variant's runs. */
    std::vector<PowerBreakdown>
    conventionalBreakdowns(const std::string &variant = "") const;

    /** Counter totals of a variant's runs. */
    std::vector<CounterBank>
    counterTotals(const std::string &variant = "") const;

    /** Service accounting pooled over a variant's runs. */
    std::array<ServiceStats, numServices>
    pooledServiceStats(const std::string &variant = "") const;

    /** Core clock of the first run (all runs share the machine). */
    double freqHz() const;

    /** True when the experiment was cut short by SIGINT/SIGTERM. */
    bool interrupted() const { return wasInterrupted; }

    /**
     * True when any storage facility degraded during the sweep: the
     * journal fell back to non-durable mode, a run continued
     * checkpoint-less after a failed autosave, or the final document
     * could not be written. The results themselves are complete —
     * degradation is about durability, not correctness.
     */
    bool storageDegraded() const { return degradedStorage; }

    /** Runs that died inside the exception firewall. */
    std::size_t failedRuns() const;

    /**
     * Process exit status reflecting the sweep: 0 when every run
     * executed (recorded deadline/watchdog/io outcomes included),
     * 1 when any run Failed inside the firewall, 130 (128+SIGINT)
     * when the experiment was interrupted.
     */
    int exitCode() const;

    /**
     * Emit the structured JSON document: per run, the outcome,
     * cycle/instruction totals, both power breakdowns, the per-mode
     * counter matrix, service accounting, and disk activity. Output
     * is deterministic and independent of the jobs= setting.
     */
    void writeJson(std::ostream &out) const;

  private:
    friend ExperimentResult runExperiment(const ExperimentSpec &spec);

    std::string expTitle;
    int workerCount = 1;
    bool wasInterrupted = false;
    bool degradedStorage = false;
    std::vector<RunSpec> specs;
    std::vector<BenchmarkRun> results;
};

/**
 * Execute every run of @p spec.
 *
 * jobs=1 executes serially on the calling thread (the reference
 * path); jobs>1 schedules runs on a thread pool. Results land in
 * spec order either way. If the spec names a jsonPath, the document
 * is written before returning.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec);

/**
 * RAII error-handler swap: installs @p handler and restores the
 * previous one on destruction, even on exception paths. The runner
 * scopes the exception firewall with it; the serve daemon installs
 * throwingErrorHandler once for its whole lifetime.
 */
class ScopedErrorHandler
{
  public:
    explicit ScopedErrorHandler(ErrorHandler handler)
        : previous(setErrorHandler(std::move(handler)))
    {}

    ~ScopedErrorHandler() { setErrorHandler(std::move(previous)); }

    ScopedErrorHandler(const ScopedErrorHandler &) = delete;
    ScopedErrorHandler &
    operator=(const ScopedErrorHandler &) = delete;

  private:
    ErrorHandler previous;
};

/**
 * Execute one spec entry behind the exception firewall: a throw
 * (SimError from fatal()/panic(), or anything std::exception-derived
 * from the model) becomes a Failed run record instead of taking the
 * process down. Requires a throwing error handler to be installed
 * (runExperiment scopes one; the serve daemon installs its own).
 * This is the per-run building block runExperiment() schedules; the
 * serve daemon drives it directly because it cannot nest
 * runExperiment's SignalGuard per job.
 */
BenchmarkRun runSpecProtected(const std::string &title,
                              const RunSpec &spec,
                              const CancelToken &token,
                              bool forceInvariants = false);

/**
 * Render one run's pretty JSON object as standalone text. The same
 * text is spliced into the final document (via JsonWriter::rawValue)
 * and stored in the resume journal, so a restored run is
 * byte-identical to a live one by construction.
 */
std::string renderRunJson(const BenchmarkRun &run);

/**
 * Emit a complete softwatt-experiment-v2 document from pre-rendered
 * run objects. ExperimentResult::writeJson and the serve daemon both
 * funnel through here, so a document assembled from journaled or
 * served runs is byte-identical to one written by runExperiment().
 */
void writeExperimentDocument(std::ostream &out,
                             const std::string &title,
                             bool interrupted,
                             const std::vector<std::string> &runJsons);

} // namespace softwatt

#endif // SOFTWATT_CORE_RUNNER_HH
