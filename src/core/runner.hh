/**
 * @file
 * The experiment-runner subsystem: a declarative ExperimentSpec
 * (benchmarks x configuration variants x scale) scheduled on a
 * fixed-size thread pool, with results aggregated in spec order and
 * emitted as human-readable reports and/or a structured JSON
 * document.
 *
 * Every harness in bench/ and examples/ builds a spec, calls
 * runExperiment(), and renders its report from the ExperimentResult;
 * none of them loops over runBenchmark() itself. Each run owns its
 * System, EventQueue, and RNG streams, so scheduling order cannot
 * affect results: jobs=N output is bit-identical to the serial
 * jobs=1 reference path.
 */

#ifndef SOFTWATT_CORE_RUNNER_HH
#define SOFTWATT_CORE_RUNNER_HH

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "os/service.hh"

#include "experiment.hh"

namespace softwatt
{

/** One scheduled benchmark run of an experiment. */
struct RunSpec
{
    Benchmark bench = Benchmark::Jess;

    /** Variant label distinguishing configurations ("" if single). */
    std::string variant;

    SystemConfig config;
    double scale = 1.0;
};

/** Declarative description of a whole experiment. */
struct ExperimentSpec
{
    /** Experiment name ("fig5", "fault-sweep", ...). */
    std::string title;

    std::vector<RunSpec> runs;

    /** Worker threads; <= 0 means hardware concurrency. */
    int jobs = 0;

    /** Path of the structured JSON document; "" = don't write. */
    std::string jsonPath;

    /** Append one run and return it for further tweaking. */
    RunSpec &add(Benchmark bench, const SystemConfig &config,
                 double scale = 1.0, const std::string &variant = "");

    /** Append all six benchmarks under one configuration. */
    void addSuite(const SystemConfig &config, double scale = 1.0,
                  const std::string &variant = "");

    /**
     * Spec primed from parsed command-line arguments: reads the
     * runner's own keys (jobs=N, out=path) so SystemConfig's
     * unused-key check does not flag them.
     */
    static ExperimentSpec fromArgs(const std::string &title,
                                   const Config &args);
};

/** All results of an experiment, ordered as the spec's runs. */
class ExperimentResult
{
  public:
    const std::string &title() const { return expTitle; }

    /** Worker threads the experiment actually used. */
    int jobs() const { return workerCount; }

    std::size_t size() const { return results.size(); }
    const BenchmarkRun &at(std::size_t i) const;
    const RunSpec &specAt(std::size_t i) const;

    /** The run for (bench, variant); fatal() if absent. */
    const BenchmarkRun &run(Benchmark bench,
                            const std::string &variant = "") const;

    /** Runs carrying @p variant, in spec order. */
    std::vector<const BenchmarkRun *>
    variantRuns(const std::string &variant = "") const;

    /** Benchmark names of a variant's runs, in spec order. */
    std::vector<std::string>
    names(const std::string &variant = "") const;

    /** Managed-disk breakdowns of a variant's runs. */
    std::vector<PowerBreakdown>
    breakdowns(const std::string &variant = "") const;

    /** Conventional-disk breakdowns of a variant's runs. */
    std::vector<PowerBreakdown>
    conventionalBreakdowns(const std::string &variant = "") const;

    /** Counter totals of a variant's runs. */
    std::vector<CounterBank>
    counterTotals(const std::string &variant = "") const;

    /** Service accounting pooled over a variant's runs. */
    std::array<ServiceStats, numServices>
    pooledServiceStats(const std::string &variant = "") const;

    /** Core clock of the first run (all runs share the machine). */
    double freqHz() const;

    /**
     * Emit the structured JSON document: per run, the outcome,
     * cycle/instruction totals, both power breakdowns, the per-mode
     * counter matrix, service accounting, and disk activity. Output
     * is deterministic and independent of the jobs= setting.
     */
    void writeJson(std::ostream &out) const;

  private:
    friend ExperimentResult runExperiment(const ExperimentSpec &spec);

    std::string expTitle;
    int workerCount = 1;
    std::vector<RunSpec> specs;
    std::vector<BenchmarkRun> results;
};

/**
 * Execute every run of @p spec.
 *
 * jobs=1 executes serially on the calling thread (the reference
 * path); jobs>1 schedules runs on a thread pool. Results land in
 * spec order either way. If the spec names a jsonPath, the document
 * is written before returning.
 */
ExperimentResult runExperiment(const ExperimentSpec &spec);

} // namespace softwatt

#endif // SOFTWATT_CORE_RUNNER_HH
