/**
 * @file
 * Incremental result journaling for crash-resumable experiments.
 *
 * As each run of an experiment finishes, the runner appends one
 * self-contained JSONL record to `<out>.journal.jsonl`:
 *
 *   {"schema":"softwatt-journal-v1","experiment":...,"bench":...,
 *    "variant":...,"config":<fingerprint>,"outcome":...,
 *    "attempts":N,"run":<escaped run-object text>}
 *
 * The `run` field holds the exact pretty-printed JSON object that
 * writeJson() would emit for that run, so a resumed experiment can
 * splice journaled runs into the final document byte-identical to an
 * uninterrupted one. The `config` field is a 64-bit FNV-1a
 * fingerprint of the complete run specification (benchmark, variant,
 * scale and every SystemConfig field); resume only replays an entry
 * whose (bench, variant, config) key still matches, so editing the
 * sweep invalidates exactly the runs it changes.
 *
 * Each line is flushed as it is written: a SIGKILLed sweep loses at
 * most the in-flight runs, and the reader skips a torn final line.
 */

#ifndef SOFTWATT_CORE_JOURNAL_HH
#define SOFTWATT_CORE_JOURNAL_HH

#include <mutex>
#include <string>
#include <vector>

#include "sim/host_io.hh"

#include "runner.hh"

namespace softwatt
{

/** One journaled (finished) run. */
struct JournalEntry
{
    std::string experiment;
    std::string bench;
    std::string variant;
    std::string config;   ///< specFingerprint() of the run's spec.
    std::string outcome;  ///< runOutcomeName() at completion.
    int attempts = 1;
    std::string runJson;  ///< Standalone pretty run-object text.
};

/**
 * Deterministic 64-bit fingerprint (16 hex digits) of everything
 * that determines a run's results: benchmark, variant, scale, and
 * the full SystemConfig.
 */
std::string specFingerprint(const RunSpec &spec);

/** `<out>.journal.jsonl` for a given out= path. */
std::string journalPathFor(const std::string &json_path);

/**
 * Build the journal record for a finished run: a restored run
 * contributes its replayed JSON verbatim, a live one is rendered
 * through renderRunJson() — the same path writeJson() uses, so the
 * journal round-trip is byte-exact by construction.
 */
JournalEntry makeJournalEntry(const std::string &experiment,
                              const RunSpec &spec,
                              const std::string &fingerprint,
                              const BenchmarkRun &run);

/**
 * Append-side of the journal. Thread-safe: workers append entries
 * as their runs finish; each line is written and flushed atomically
 * under a mutex.
 */
class RunJournal
{
  public:
    /**
     * Open @p path for appending; @p truncate discards previous
     * contents (a fresh, non-resumed experiment must not inherit
     * stale entries). Under Durability::Full every append ends in an
     * fdatasync barrier, so an acknowledged entry survives a power
     * cut. @return false if the file cannot be opened.
     */
    bool open(const std::string &path, bool truncate,
              Durability durability = Durability::Buffered);

    bool isOpen() const { return out.isOpen(); }

    /**
     * Write one entry as a flushed JSONL line. A failed write
     * degrades the journal to non-durable mode instead of dying:
     * one structured warning is emitted, the file is closed, and
     * every later append becomes a no-op — the sweep itself keeps
     * running, it just loses crash-resumability from that point.
     */
    void append(const JournalEntry &entry);

    /** True once an append failure degraded the journal. */
    bool
    degraded() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return degradedFlag;
    }

    /**
     * Parse a journal file. Torn or unparseable lines (a crash can
     * tear at most the last one) are skipped with a warning. A
     * missing file yields an empty vector.
     */
    static std::vector<JournalEntry>
    load(const std::string &path);

    /**
     * load() deduplicated on the (experiment, bench, variant,
     * config) identity key: the last occurrence of each key wins
     * (it reflects the final retry/diagnose state), and keys keep
     * their first-seen order so replay stays deterministic. This is
     * the read path for journals that accumulate across process
     * generations, like the serve daemon's.
     */
    static std::vector<JournalEntry>
    loadLatest(const std::string &path);

  private:
    HostFile out;
    Durability durability = Durability::Buffered;
    bool degradedFlag = false;
    mutable std::mutex mutex;
};

} // namespace softwatt

#endif // SOFTWATT_CORE_JOURNAL_HH
