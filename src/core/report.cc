#include "report.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace softwatt
{

namespace
{

/** Ratio per mode: counter / cycles in that mode. */
double
perCycle(const CounterBank &bank, ExecMode mode, CounterId id)
{
    std::uint64_t cycles = bank.get(mode, CounterId::Cycles);
    return cycles ? double(bank.get(mode, id)) / double(cycles) : 0;
}

/**
 * A failed or skipped run contributes an all-zero counter bank; its
 * table row is rendered as a gap instead of a wall of zeros.
 */
bool
isGap(const CounterBank &bank)
{
    for (ExecMode mode : allExecModes) {
        if (bank.get(mode, CounterId::Cycles) != 0)
            return false;
    }
    return true;
}

} // namespace

std::string
pct(double numerator, double denominator)
{
    std::ostringstream out;
    double value =
        denominator > 0 ? 100.0 * numerator / denominator : 0;
    out << std::setw(7) << std::fixed << std::setprecision(2)
        << value;
    return out.str();
}

void
printPowerBudget(std::ostream &out, const std::string &title,
                 const PowerBreakdown &breakdown)
{
    out << title << '\n';
    out << "  system average power: " << std::fixed
        << std::setprecision(2) << breakdown.systemAvgPowerW()
        << " W\n";
    for (Component c : allComponents) {
        out << "  " << std::left << std::setw(12) << componentName(c)
            << std::right << std::setw(7) << std::fixed
            << std::setprecision(2) << breakdown.componentSharePct(c)
            << " %   (" << std::setprecision(3)
            << breakdown.componentAvgPowerW(c) << " W)\n";
    }
}

void
printModePower(std::ostream &out, const std::string &title,
               const PowerBreakdown &breakdown)
{
    out << title << '\n';
    out << std::left << std::setw(12) << "  component";
    for (ExecMode mode : allExecModes)
        out << std::right << std::setw(9) << execModeName(mode);
    out << '\n';
    for (Component c : allComponents) {
        if (c == Component::Disk)
            continue;
        out << "  " << std::left << std::setw(10) << componentName(c);
        for (ExecMode mode : allExecModes) {
            out << std::right << std::setw(9) << std::fixed
                << std::setprecision(3)
                << breakdown.modeComponentPowerW(mode, c);
        }
        out << '\n';
    }
    out << "  " << std::left << std::setw(10) << "total";
    for (ExecMode mode : allExecModes) {
        out << std::right << std::setw(9) << std::fixed
            << std::setprecision(3) << breakdown.modeAvgPowerW(mode);
    }
    out << '\n';
}

void
printTable2(std::ostream &out, const std::vector<std::string> &names,
            const std::vector<PowerBreakdown> &breakdowns)
{
    out << "Table 2: Percentage Breakdown of Energy and Cycles\n";
    out << std::left << std::setw(10) << "bench";
    for (ExecMode mode : allExecModes) {
        out << std::right << std::setw(8)
            << (std::string(execModeName(mode)) + "%cy")
            << std::setw(8)
            << (std::string(execModeName(mode)) + "%en");
    }
    out << '\n';
    for (std::size_t i = 0; i < names.size(); ++i) {
        const PowerBreakdown &b = breakdowns[i];
        double cycles = double(b.totalCycles());
        double energy = b.cpuMemEnergyJ();
        out << std::left << std::setw(10) << names[i];
        if (cycles <= 0) {
            out << "(no data)\n";
            continue;
        }
        for (ExecMode mode : allExecModes) {
            out << std::right << std::setw(8) << std::fixed
                << std::setprecision(2)
                << (cycles > 0
                        ? 100.0 * double(b.cycles[int(mode)]) / cycles
                        : 0)
                << std::setw(8)
                << (energy > 0 ? 100.0 * b.modeEnergyJ(mode) / energy
                               : 0);
        }
        out << '\n';
    }
}

void
printTable3(std::ostream &out, const std::vector<std::string> &names,
            const std::vector<CounterBank> &totals)
{
    out << "Table 3: Cache References Per Cycle\n";
    out << std::left << std::setw(10) << "bench";
    for (ExecMode mode : allExecModes) {
        out << std::right << std::setw(9)
            << (std::string(execModeName(mode)) + ".iL1")
            << std::setw(9)
            << (std::string(execModeName(mode)) + ".dL1");
    }
    out << '\n';
    for (std::size_t i = 0; i < names.size(); ++i) {
        out << std::left << std::setw(10) << names[i];
        if (isGap(totals[i])) {
            out << "(no data)\n";
            continue;
        }
        for (ExecMode mode : allExecModes) {
            out << std::right << std::setw(9) << std::fixed
                << std::setprecision(4)
                << perCycle(totals[i], mode, CounterId::IL1Ref)
                << std::setw(9)
                << perCycle(totals[i], mode, CounterId::DL1Ref);
        }
        out << '\n';
    }
}

void
printAluUse(std::ostream &out, const std::vector<std::string> &names,
            const std::vector<CounterBank> &totals)
{
    out << "ALU use per cycle (Section 3.2)\n";
    out << std::left << std::setw(10) << "bench";
    for (ExecMode mode : allExecModes)
        out << std::right << std::setw(9) << execModeName(mode);
    out << '\n';
    for (std::size_t i = 0; i < names.size(); ++i) {
        out << std::left << std::setw(10) << names[i];
        if (isGap(totals[i])) {
            out << "(no data)\n";
            continue;
        }
        for (ExecMode mode : allExecModes) {
            double alu =
                perCycle(totals[i], mode, CounterId::IntAluOp) +
                perCycle(totals[i], mode, CounterId::FpAluOp);
            out << std::right << std::setw(9) << std::fixed
                << std::setprecision(3) << alu;
        }
        out << '\n';
    }
}

void
printTable4(std::ostream &out, const std::string &name,
            const std::array<ServiceStats, numServices> &stats)
{
    std::uint64_t kernel_cycles = 0;
    double kernel_energy = 0;
    for (const ServiceStats &s : stats) {
        kernel_cycles += s.cycles;
        kernel_energy += s.energyJ;
    }

    std::vector<ServiceKind> order(allServices.begin(),
                                   allServices.end());
    std::sort(order.begin(), order.end(),
              [&](ServiceKind a, ServiceKind b) {
                  return stats[int(a)].cycles > stats[int(b)].cycles;
              });

    out << "Table 4 (" << name
        << "): Breakdown of Kernel Computation by Service\n";
    out << std::left << std::setw(14) << "  service" << std::right
        << std::setw(12) << "num" << std::setw(10) << "%cycles"
        << std::setw(10) << "%energy" << '\n';
    for (ServiceKind kind : order) {
        const ServiceStats &s = stats[int(kind)];
        if (s.invocations == 0)
            continue;
        out << "  " << std::left << std::setw(12) << serviceName(kind)
            << std::right << std::setw(12) << s.invocations
            << std::setw(10) << std::fixed << std::setprecision(3)
            << (kernel_cycles
                    ? 100.0 * double(s.cycles) / double(kernel_cycles)
                    : 0)
            << std::setw(10)
            << (kernel_energy > 0 ? 100.0 * s.energyJ / kernel_energy
                                  : 0)
            << '\n';
    }
}

void
printTable5(std::ostream &out,
            const std::array<ServiceStats, numServices> &pooled,
            double freq_hz)
{
    (void)freq_hz;
    out << "Table 5: Variation in Behavior of Operating System "
           "Services\n";
    out << std::left << std::setw(14) << "  service" << std::right
        << std::setw(14) << "mean E (J)" << std::setw(10) << "CoD (%)"
        << std::setw(14) << "min (J)" << std::setw(14) << "max (J)"
        << '\n';
    for (ServiceKind kind : {ServiceKind::Utlb,
                             ServiceKind::DemandZero,
                             ServiceKind::CacheFlush,
                             ServiceKind::Read, ServiceKind::Write,
                             ServiceKind::Open}) {
        const ServiceStats &s = pooled[int(kind)];
        if (s.invocations == 0)
            continue;
        out << "  " << std::left << std::setw(12) << serviceName(kind)
            << std::right << std::setw(14) << std::scientific
            << std::setprecision(4) << s.meanEnergyJ() << std::setw(10)
            << std::fixed << std::setprecision(4)
            << s.coeffOfDeviationPct() << std::scientific
            << std::setw(14) << s.energyMin << std::setw(14)
            << s.energyMax << '\n';
    }
}

void
printServicePower(std::ostream &out,
                  const std::array<ServiceStats, numServices> &pooled,
                  double freq_hz)
{
    out << "Figure 8: Average Power of Operating System Services "
           "(W)\n";
    out << std::left << std::setw(14) << "  service";
    for (Component c : allComponents) {
        if (c == Component::Disk)
            continue;
        out << std::right << std::setw(11) << componentName(c);
    }
    out << std::right << std::setw(9) << "total" << '\n';
    for (ServiceKind kind :
         {ServiceKind::Utlb, ServiceKind::Read,
          ServiceKind::DemandZero, ServiceKind::CacheFlush}) {
        const ServiceStats &s = pooled[int(kind)];
        if (s.cycles == 0)
            continue;
        double seconds = double(s.cycles) / freq_hz;
        out << "  " << std::left << std::setw(12)
            << serviceName(kind);
        for (Component c : allComponents) {
            if (c == Component::Disk)
                continue;
            out << std::right << std::setw(11) << std::fixed
                << std::setprecision(3)
                << s.componentEnergyJ[int(c)] / seconds;
        }
        out << std::right << std::setw(9) << std::fixed
            << std::setprecision(3) << s.avgPowerW(freq_hz) << '\n';
    }
}

void
printTimeProfile(std::ostream &out, const std::string &title,
                 const PowerTrace &trace, const SampleLog &log,
                 double freq_hz, double equiv_time_scale)
{
    out << title << '\n';
    out << "  t(s)    user_i%  user_s%  kern_i%  kern_s%   sync%  "
           "idle%   P.user  P.kern  P.sync  P.idle  P.total\n";
    for (std::size_t w = 0; w < trace.windows.size(); ++w) {
        const WindowPower &wp = trace.windows[w];
        const SampleRecord &rec = log.at(w);
        double len = double(wp.endTick - wp.startTick);
        if (len <= 0)
            continue;
        double t = double(wp.endTick) / freq_hz * equiv_time_scale;

        auto mode_cycles = [&](ExecMode m) {
            return double(rec.counters.get(m, CounterId::Cycles));
        };
        auto commit_cycles = [&](ExecMode m) {
            return double(
                rec.counters.get(m, CounterId::CommitCycles));
        };

        double user = mode_cycles(ExecMode::User);
        double user_i = commit_cycles(ExecMode::User);
        double kern = mode_cycles(ExecMode::KernelInst);
        double kern_i = commit_cycles(ExecMode::KernelInst);
        double sync = mode_cycles(ExecMode::KernelSync);
        double idle = mode_cycles(ExecMode::Idle);

        double window_power = 0;
        for (int m = 0; m < numExecModes; ++m) {
            window_power +=
                wp.modePowerW[m] * double(wp.cycles[m]) / len;
        }

        out << std::fixed << std::setprecision(3) << std::setw(7) << t
            << ' ' << pct(user_i, len) << ' '
            << pct(user - user_i, len) << ' ' << pct(kern_i, len)
            << ' ' << pct(kern - kern_i, len) << ' ' << pct(sync, len)
            << ' ' << pct(idle, len);
        for (int m = 0; m < numExecModes; ++m) {
            out << std::setw(8) << std::setprecision(2)
                << wp.modePowerW[m];
        }
        out << std::setw(9) << std::setprecision(2) << window_power
            << '\n';
    }
}

} // namespace softwatt
