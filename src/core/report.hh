/**
 * @file
 * Text renderers for the paper's tables and figures: pie-style
 * component budgets (Figs. 5/7), per-mode stacked power (Fig. 6),
 * kernel-service power (Fig. 8), time profiles (Figs. 3/4), and
 * Tables 2-5.
 */

#ifndef SOFTWATT_CORE_REPORT_HH
#define SOFTWATT_CORE_REPORT_HH

#include <array>
#include <iosfwd>
#include <string>
#include <vector>

#include "os/service.hh"
#include "power/power_calculator.hh"
#include "sim/counters.hh"

namespace softwatt
{

/** Print the component power-budget shares (Figures 5 and 7). */
void printPowerBudget(std::ostream &out, const std::string &title,
                      const PowerBreakdown &breakdown);

/** Print per-mode average power split by component (Figure 6). */
void printModePower(std::ostream &out, const std::string &title,
                    const PowerBreakdown &breakdown);

/**
 * Print a Table 2 row set: percentage breakdown of cycles and
 * energy per mode for each benchmark.
 */
void printTable2(std::ostream &out,
                 const std::vector<std::string> &names,
                 const std::vector<PowerBreakdown> &breakdowns);

/** Print Table 3: cache references per cycle per mode. */
void printTable3(std::ostream &out,
                 const std::vector<std::string> &names,
                 const std::vector<CounterBank> &totals);

/** Print the ALU-use-per-cycle companion of Section 3.2. */
void printAluUse(std::ostream &out,
                 const std::vector<std::string> &names,
                 const std::vector<CounterBank> &totals);

/**
 * Print Table 4 for one benchmark: services ranked by kernel cycles
 * with invocation counts, % kernel cycles, % kernel energy.
 */
void printTable4(std::ostream &out, const std::string &name,
                 const std::array<ServiceStats, numServices> &stats);

/** Print Table 5: per-invocation energy mean and CoD per service. */
void printTable5(std::ostream &out,
                 const std::array<ServiceStats, numServices> &pooled,
                 double freq_hz);

/** Print Figure 8: average power of key services, by component. */
void printServicePower(
    std::ostream &out,
    const std::array<ServiceStats, numServices> &pooled,
    double freq_hz);

/**
 * Print a Figure 3/4 style time profile: per window, the execution
 * time breakdown (instr/stall per mode) and per-mode power.
 * @param equiv_time_scale Multiplies window times into
 *        paper-equivalent seconds.
 */
void printTimeProfile(std::ostream &out, const std::string &title,
                      const PowerTrace &trace, const SampleLog &log,
                      double freq_hz, double equiv_time_scale);

/** Percent with one decimal, right-aligned in 7 columns. */
std::string pct(double numerator, double denominator);

} // namespace softwatt

#endif // SOFTWATT_CORE_REPORT_HH
