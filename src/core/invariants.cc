#include "invariants.hh"

#include <cmath>
#include <memory>

#include "mem/cache.hh"
#include "power/power_calculator.hh"
#include "sim/logging.hh"

#include "system.hh"

namespace softwatt
{

bool
invariantApproxEqual(double a, double b, double rel, double abs)
{
    if (!std::isfinite(a) || !std::isfinite(b))
        return false;
    double diff = std::fabs(a - b);
    double scale = std::fmax(std::fabs(a), std::fabs(b));
    return diff <= abs || diff <= rel * scale;
}

void
InvariantChecker::add(std::string name, Validator validator)
{
    entries.push_back(Entry{std::move(name), std::move(validator)});
}

void
InvariantChecker::checkAll(const char *when)
{
    if (!enabledFlag)
        return;
    for (const Entry &entry : entries) {
        std::string detail = entry.validator();
        if (!detail.empty()) {
            panic(msg() << "invariant '" << entry.name
                        << "' violated (" << when << "): " << detail);
        }
    }
    ++numPasses;
}

namespace
{

/**
 * Shared incremental state: validators scan only the sample windows
 * appended since the previous sweep, so a whole run of sweeps costs
 * O(log size), not O(size^2). Held by shared_ptr because validators
 * are copyable std::functions.
 */
struct LogCursorState
{
    std::size_t seen = 0;        ///< Windows already validated.
    std::size_t seenCycles = 0;  ///< Cursor of the partition check.
    std::size_t seenStream = 0;  ///< Cursor of the stream-match check.
    Tick lastEnd = 0;            ///< endTick of the last seen window.
    bool haveLastEnd = false;

    /// Counters accumulated from seen windows (vs the totals bank).
    CounterBank runningTotals;

    /// Energy sums accumulated per window in three different orders.
    double grandJ = 0;
    std::array<double, numExecModes> modeJ{};
    ComponentEnergy componentJ{};
};

std::string
cacheAccounting(const Cache &cache)
{
    if (cache.refs() == cache.hits() + cache.misses())
        return "";
    return std::string(cache.name()) + ": refs " +
           std::to_string(cache.refs()) + " != hits " +
           std::to_string(cache.hits()) + " + misses " +
           std::to_string(cache.misses());
}

std::string
mismatch(const char *what, double got, double expected)
{
    return msg() << what << ": " << got
                 << " != " << expected << " (|diff| "
                 << std::fabs(got - expected) << ")";
}

} // namespace

void
registerSystemInvariants(InvariantChecker &checker, const System &sys)
{
    auto state = std::make_shared<LogCursorState>();
    auto lastNow = std::make_shared<Tick>(sys.now());
    auto prevTotals =
        std::make_shared<CounterBank::Matrix>(sys.totals().raw());

    // Simulated time only moves forward, and the next pending event
    // is never in the past.
    checker.add("time.monotone", [&sys, lastNow]() -> std::string {
        Tick now = sys.now();
        if (now < *lastNow) {
            return msg() << "time moved backwards: " << now << " < "
                         << *lastNow;
        }
        *lastNow = now;
        Tick next = sys.eventQueue().nextEventTick();
        if (next != maxTick && next < now) {
            return msg() << "pending event at " << next
                         << " is before now (" << now << ")";
        }
        return "";
    });

    // Sample windows are nonempty and tile time without gaps.
    checker.add("log.window-contiguity",
                [&sys, state]() -> std::string {
        const SampleLog &log = sys.log();
        for (; state->seen < log.size(); ++state->seen) {
            const SampleRecord &rec = log.at(state->seen);
            if (rec.endTick <= rec.startTick) {
                return msg() << "window " << state->seen
                             << " is empty: [" << rec.startTick
                             << ", " << rec.endTick << ")";
            }
            if (state->haveLastEnd &&
                rec.startTick != state->lastEnd) {
                return msg() << "window " << state->seen
                             << " starts at " << rec.startTick
                             << " but the previous window ended at "
                             << state->lastEnd;
            }
            state->lastEnd = rec.endTick;
            state->haveLastEnd = true;

            state->runningTotals.accumulate(rec.counters);
            for (int m = 0; m < numExecModes; ++m) {
                ExecMode mode = ExecMode(m);
                Cycles mode_cycles =
                    rec.counters.get(mode, CounterId::Cycles);
                // energiesForRecord applies the window's operating
                // point (DVFS voltage/frequency scaling), so the
                // accumulated sums stay comparable to the power pass
                // under a closed-loop governor.
                ComponentEnergy e =
                    sys.powerCalculator().energiesForRecord(
                        rec, mode, mode_cycles);
                for (int c = 0; c < numComponents; ++c) {
                    if (!std::isfinite(e[c]) || e[c] < 0) {
                        return msg()
                            << "window " << state->seen << " mode "
                            << execModeName(mode) << " component "
                            << componentName(Component(c))
                            << " energy is " << e[c];
                    }
                    state->grandJ += e[c];
                    state->modeJ[m] += e[c];
                    state->componentJ[c] += e[c];
                }
            }
        }
        return "";
    });

    // Every tick of a window is charged to exactly one execution
    // mode: per-mode Cycles counters partition the window length.
    // Holds exactly because detailed execution charges one cycle per
    // tick and idle fast-forward charges whole chunks.
    checker.add("counters.cycles-partition",
                [&sys, state]() -> std::string {
        const SampleLog &log = sys.log();
        for (; state->seenCycles < log.size(); ++state->seenCycles) {
            const SampleRecord &rec = log.at(state->seenCycles);
            std::uint64_t sum =
                rec.counters.total(CounterId::Cycles);
            if (sum != rec.length()) {
                return msg() << "window " << state->seenCycles
                             << ": mode cycles sum to " << sum
                             << " but the window spans "
                             << rec.length() << " ticks";
            }
        }
        return "";
    });

    // Counter totals never decrease between sweeps.
    checker.add("counters.monotone",
                [&sys, prevTotals]() -> std::string {
        const CounterBank::Matrix &now = sys.totals().raw();
        for (int m = 0; m < numExecModes; ++m) {
            for (int c = 0; c < numCounters; ++c) {
                if (now[m][c] < (*prevTotals)[m][c]) {
                    return msg()
                        << execModeName(ExecMode(m)) << "/"
                        << counterName(CounterId(c))
                        << " decreased: " << now[m][c] << " < "
                        << (*prevTotals)[m][c];
                }
            }
        }
        *prevTotals = now;
        return "";
    });

    // The totals bank is exactly the sum of the logged windows.
    checker.add("counters.totals-match-log",
                [&sys, state]() -> std::string {
        const CounterBank::Matrix &bank = sys.totals().raw();
        const CounterBank::Matrix &acc =
            state->runningTotals.raw();
        for (int m = 0; m < numExecModes; ++m) {
            for (int c = 0; c < numCounters; ++c) {
                if (bank[m][c] != acc[m][c]) {
                    return msg()
                        << execModeName(ExecMode(m)) << "/"
                        << counterName(CounterId(c))
                        << ": totals bank has " << bank[m][c]
                        << " but the log sums to " << acc[m][c];
                }
            }
        }
        return "";
    });

    // The streaming accumulator keeps pace with the log — one window
    // per record — and each window's average powers, re-derived
    // independently from the record's counters and operating point,
    // match what the stream produced when the window closed.
    checker.add("power.stream-window-match",
                [&sys, state]() -> std::string {
        const SampleLog &log = sys.log();
        const PowerTrace &trace = sys.streamTrace();
        if (trace.windows.size() != log.size()) {
            return msg() << "stream has " << trace.windows.size()
                         << " window(s) but the log has "
                         << log.size();
        }
        double freq_hz =
            sys.powerCalculator().model().technology().freqHz();
        for (; state->seenStream < log.size();
             ++state->seenStream) {
            const SampleRecord &rec = log.at(state->seenStream);
            const WindowPower &wp =
                trace.windows[state->seenStream];
            if (wp.startTick != rec.startTick ||
                wp.endTick != rec.endTick) {
                return msg() << "window " << state->seenStream
                             << " spans [" << wp.startTick << ", "
                             << wp.endTick << ") in the stream but ["
                             << rec.startTick << ", " << rec.endTick
                             << ") in the log";
            }
            double window_seconds =
                double(rec.length()) / freq_hz;
            ComponentEnergy comp_j{};
            for (int m = 0; m < numExecModes; ++m) {
                ExecMode mode = ExecMode(m);
                Cycles mode_cycles =
                    rec.counters.get(mode, CounterId::Cycles);
                ComponentEnergy e =
                    sys.powerCalculator().energiesForRecord(
                        rec, mode, mode_cycles);
                double mode_j = 0;
                for (int c = 0; c < numComponents; ++c) {
                    comp_j[c] += e[c];
                    mode_j += e[c];
                }
                // Mode power is averaged over the mode's own
                // cycles, not the whole window.
                double mode_seconds =
                    double(mode_cycles) / freq_hz;
                double mode_w =
                    mode_seconds > 0 ? mode_j / mode_seconds : 0;
                if (!invariantApproxEqual(wp.modePowerW[m],
                                          mode_w)) {
                    return mismatch(execModeName(mode),
                                    wp.modePowerW[m], mode_w);
                }
            }
            for (int c = 0; c < numComponents; ++c) {
                double comp_w = comp_j[c] / window_seconds;
                if (!invariantApproxEqual(wp.componentPowerW[c],
                                          comp_w)) {
                    return mismatch(componentName(Component(c)),
                                    wp.componentPowerW[c], comp_w);
                }
            }
        }
        return "";
    });

    // The power pass conserves energy: the incrementally accumulated
    // per-window sums equal the stream's running totals, and
    // mode/component views partition the same total. Reads the live
    // stream accumulator — O(1) per sweep, no batch recompute.
    checker.add("energy.conservation",
                [&sys, state]() -> std::string {
        const PowerTrace &trace = sys.streamTrace();
        double total = trace.total.cpuMemEnergyJ();
        if (!invariantApproxEqual(total, state->grandJ))
            return mismatch("cpu+mem total J", total, state->grandJ);
        for (int m = 0; m < numExecModes; ++m) {
            double mode_j = trace.total.modeEnergyJ(ExecMode(m));
            if (!invariantApproxEqual(mode_j, state->modeJ[m])) {
                return mismatch(execModeName(ExecMode(m)), mode_j,
                                state->modeJ[m]);
            }
        }
        for (int c = 0; c < numComponents; ++c) {
            // process() leaves diskEnergyJ at 0, so the component
            // view contains only counter-derived energy here.
            double comp_j =
                trace.total.componentEnergyJ(Component(c));
            if (!invariantApproxEqual(comp_j,
                                      state->componentJ[c])) {
                return mismatch(componentName(Component(c)), comp_j,
                                state->componentJ[c]);
            }
        }
        return "";
    });

    // Every cache reference is exactly one hit or one miss.
    checker.add("cache.hit-miss-accounting", [&sys]() -> std::string {
        const CacheHierarchy &h = sys.hierarchy();
        for (const Cache *cache :
             {&h.icache(), &h.dcache(), &h.l2cache()}) {
            std::string detail = cacheAccounting(*cache);
            if (!detail.empty())
                return detail;
        }
        return "";
    });

    // The disk only ever follows the Figure-2 operating-mode graph.
    checker.add("disk.legal-transitions", [&sys]() -> std::string {
        const Disk &disk = sys.disk();
        if (disk.illegalTransitions() == 0)
            return "";
        return msg() << disk.illegalTransitions()
                     << " illegal transition(s); first: "
                     << disk.firstIllegalTransition();
    });

    // The online energy integral equals power-weighted residencies.
    checker.add("disk.energy-conservation", [&sys]() -> std::string {
        double online = sys.disk().energyJ();
        double residency = sys.disk().residencyEnergyJ();
        if (invariantApproxEqual(online, residency))
            return "";
        return mismatch("disk J", online, residency);
    });

    // Per-state residencies account for all elapsed time.
    checker.add("disk.residency-accounting", [&sys]() -> std::string {
        const Disk &disk = sys.disk();
        double sum = 0;
        for (int s = 0; s <= int(DiskState::Seeking); ++s)
            sum += disk.stateSeconds(DiskState(s));
        double elapsed = disk.elapsedEquivSeconds();
        if (invariantApproxEqual(sum, elapsed))
            return "";
        return mismatch("disk residency s", sum, elapsed);
    });
}

} // namespace softwatt
