#include "system.hh"

#include <ostream>

#include "cpu/inorder_cpu.hh"
#include "cpu/superscalar_cpu.hh"
#include "sim/check.hh"
#include "sim/logging.hh"

namespace softwatt
{

SystemConfig
SystemConfig::fromConfig(const Config &config)
{
    SystemConfig sc;
    sc.machine.applyConfig(config);

    std::string cpu = config.getString("cpu.model", "superscalar");
    if (cpu == "superscalar" || cpu == "mxs") {
        sc.cpuModel = CpuModel::Superscalar;
    } else if (cpu == "inorder" || cpu == "mipsy") {
        sc.cpuModel = CpuModel::InOrder;
    } else {
        fatal(msg() << "unknown cpu.model '" << cpu
                    << "' (expected superscalar/mxs or "
                    << "inorder/mipsy)");
    }

    std::string disk = config.getString("disk.config", "idle");
    if (disk == "conventional") {
        sc.diskConfig = DiskConfig::conventional();
    } else if (disk == "idle") {
        sc.diskConfig = DiskConfig::idleOnly();
    } else if (disk == "spindown") {
        sc.diskConfig = DiskConfig::spindown(
            config.getDouble("disk.threshold_s", 2.0));
    } else {
        fatal(msg() << "unknown disk.config '" << disk
                    << "' (expected conventional, idle or "
                    << "spindown)");
    }

    DiskFaultConfig &fault = sc.diskConfig.fault;
    fault.enabled = config.getBool("disk.fault.enabled", false);
    fault.transientErrorRate = config.getDouble(
        "disk.fault.transient_rate", fault.transientErrorRate);
    fault.seekErrorRate = config.getDouble("disk.fault.seek_rate",
                                           fault.seekErrorRate);
    fault.spinupFailureRate = config.getDouble(
        "disk.fault.spinup_rate", fault.spinupFailureRate);
    fault.windowStartSeconds = config.getDouble(
        "disk.fault.window_start_s", fault.windowStartSeconds);
    fault.windowEndSeconds = config.getDouble(
        "disk.fault.window_end_s", fault.windowEndSeconds);
    fault.seed = std::uint64_t(
        config.getInt("disk.fault.seed", std::int64_t(fault.seed)));

    Kernel::DiskRetryPolicy &retry = sc.kernelParams.diskRetry;
    retry.maxAttempts = int(config.getInt("disk.retry.max_attempts",
                                          retry.maxAttempts));
    retry.backoffSeconds = config.getDouble("disk.retry.backoff_s",
                                            retry.backoffSeconds);
    retry.backoffMultiplier = config.getDouble(
        "disk.retry.multiplier", retry.backoffMultiplier);

    sc.timeScale = config.getDouble("time_scale", sc.timeScale);
    sc.kernelParams.timeScale = sc.timeScale;
    sc.sampleWindow =
        Cycles(config.getInt("sample_window", sc.sampleWindow));
    sc.maxCycles = Cycles(
        config.getInt("max_cycles", std::int64_t(sc.maxCycles)));
    sc.useCalibratedPower =
        config.getBool("power.calibrated", sc.useCalibratedPower);
    sc.clockInterrupts =
        config.getBool("clock_interrupts", sc.clockInterrupts);
    sc.kernelParams.seed =
        std::uint64_t(config.getInt("seed", sc.kernelParams.seed));
    sc.kernelParams.haltOnIdle =
        config.getBool("halt_on_idle", sc.kernelParams.haltOnIdle);

    sc.powerBudgetW =
        config.getDouble("power_budget_w", sc.powerBudgetW);
    sc.dvfsEnabled = config.getBool("dvfs", sc.dvfsEnabled);
    sc.adaptiveSpindown =
        config.getBool("adaptive_spindown", sc.adaptiveSpindown);

    sc.validate();

    // A set-but-never-read key is almost always a typo (the store
    // is schema-less, so a misspelt override silently changes
    // nothing). Keys the caller reads before or after this call are
    // marked used and not reported.
    for (const std::string &key : config.unusedKeys()) {
        warn(msg() << "config key '" << key
                   << "' was never read by any consumer; "
                   << "possible typo?");
    }
    return sc;
}

void
SystemConfig::validate() const
{
    if (timeScale <= 0) {
        fatal(msg() << "config: time_scale must be > 0 (got "
                    << timeScale
                    << "); use 1 for real time or 100 for the "
                    << "paper's compression");
    }
    if (sampleWindow == 0) {
        fatal(msg() << "config: sample_window must be >= 1 cycle "
                    << "(got 0); the sample log needs nonempty "
                    << "windows");
    }
    if (maxCycles == 0) {
        fatal(msg() << "config: max_cycles must be >= 1 (got 0); "
                    << "the watchdog would expire immediately");
    }
    if (!(deadlineSeconds >= 0) ||
        deadlineSeconds > 1e18) {
        fatal(msg() << "config: deadline_s must be a finite value "
                    << ">= 0 (got " << deadlineSeconds
                    << "); 0 disables the per-run deadline");
    }
    if (!(shutdownGraceSeconds >= 0) ||
        shutdownGraceSeconds > 1e18) {
        fatal(msg() << "config: grace_s must be a finite value >= 0 "
                    << "(got " << shutdownGraceSeconds
                    << "); 0 lets in-flight runs finish on drain");
    }
    if (diskConfig.kind == DiskConfigKind::Spindown &&
        diskConfig.spindownThresholdSeconds <= 0) {
        fatal(msg() << "config: disk.threshold_s must be > 0 for "
                    << "the spindown policy (got "
                    << diskConfig.spindownThresholdSeconds << ")");
    }
    if (!(powerBudgetW >= 0) || powerBudgetW > 1e6) {
        fatal(msg() << "config: power_budget_w must be a finite "
                    << "value in [0, 1e6] watts (got " << powerBudgetW
                    << "); 0 means no budget");
    }
    if (dvfsEnabled && powerBudgetW <= 0) {
        fatal("config: dvfs=1 needs a positive power_budget_w= "
              "budget for the governor to regulate against");
    }
    if (adaptiveSpindown &&
        diskConfig.kind != DiskConfigKind::Spindown) {
        fatal("config: adaptive_spindown=1 requires "
              "disk.config=spindown (disk.threshold_s seeds the "
              "adaptive threshold)");
    }
    diskConfig.fault.validate("config");
    kernelParams.diskRetry.validate("config");
}

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed: return "completed";
      case RunOutcome::WatchdogExpired: return "watchdog-expired";
      case RunOutcome::IoFailed: return "io-failed";
      case RunOutcome::DeadlineExceeded: return "deadline-exceeded";
      case RunOutcome::Cancelled: return "cancelled";
      case RunOutcome::Failed: return "failed";
    }
    panic("runOutcomeName: invalid outcome");
}

bool
runOutcomeFromName(const std::string &name, RunOutcome &out)
{
    for (RunOutcome candidate :
         {RunOutcome::Completed, RunOutcome::WatchdogExpired,
          RunOutcome::IoFailed, RunOutcome::DeadlineExceeded,
          RunOutcome::Cancelled, RunOutcome::Failed}) {
        if (name == runOutcomeName(candidate)) {
            out = candidate;
            return true;
        }
    }
    return false;
}

System::System(const SystemConfig &config) : cfg(config)
{
    cfg.validate();
    cfg.kernelParams.timeScale = cfg.timeScale;

    machineHierarchy =
        std::make_unique<CacheHierarchy>(cfg.machine, sink);
    machineTlb = std::make_unique<Tlb>(cfg.machine.tlbEntries,
                                       cfg.machine.pageBytes);
    machineDisk = std::make_unique<Disk>(
        queue, cfg.machine.freqMhz * 1e6, cfg.diskConfig,
        cfg.timeScale, cfg.kernelParams.seed ^ 0xd15c);
    machineKernel = std::make_unique<Kernel>(
        queue, *machineTlb, *machineHierarchy, *machineDisk,
        cfg.machine, cfg.kernelParams, sink);

    if (cfg.cpuModel == CpuModel::Superscalar) {
        machineCpu = std::make_unique<SuperscalarCpu>(
            cfg.machine, *machineHierarchy, *machineTlb, sink,
            *machineKernel);
    } else {
        machineCpu = std::make_unique<InOrderCpu>(
            cfg.machine, *machineHierarchy, *machineTlb, sink,
            *machineKernel);
    }

    power = std::make_unique<CpuPowerModel>(cfg.machine,
                                            cfg.useCalibratedPower);
    calculator = std::make_unique<PowerCalculator>(*power);
    stream = std::make_unique<PowerStream>(*calculator);

    machineKernel->setEnergyFn([this](const CounterBank &bank) {
        return calculator->componentEnergiesOf(bank);
    });
    machineKernel->setPowerMeter(this);

    if (cfg.dvfsEnabled) {
        governor = std::make_unique<DvfsGovernor>(
            cfg.machine.freqMhz, cfg.machine.vdd, cfg.powerBudgetW);
    }
    if (cfg.adaptiveSpindown) {
        spindown = std::make_unique<AdaptiveSpindownPolicy>(
            cfg.diskConfig.spindownThresholdSeconds);
    }

    registerSystemInvariants(checker, *this);
}

void
System::attachWorkload(std::unique_ptr<Workload> wl)
{
    workload = std::move(wl);
    workload->registerFiles(machineKernel->fs());
    for (const AddrRange &range : workload->premapRanges()) {
        PageTable &pages = machineKernel->pageTable();
        for (Addr a = range.base; a < range.base + range.bytes;
             a += Addr(pages.pageBytes())) {
            pages.map(a);
        }
    }
    machineKernel->setUserProgram(workload.get());
}

double
System::currentFreqMhz() const
{
    return governor ? governor->point().freqMhz : cfg.machine.freqMhz;
}

double
System::currentVdd() const
{
    return governor ? governor->point().vdd : cfg.machine.vdd;
}

void
System::closeWindow(Tick end_tick)
{
    if (end_tick <= windowStart)
        return;
    SampleRecord record;
    record.startTick = windowStart;
    record.endTick = end_tick;
    record.freqMhz = currentFreqMhz();
    record.vdd = currentVdd();
    record.counters = sink.global();
    totalsBank.accumulate(record.counters);
    sampleLog.append(std::move(record));
    sink.global().clear();
    windowStart = end_tick;

    // Stream the window through the incremental power pass and
    // publish it as the machine's power reading before the invariant
    // sweep, so the sweep can check the stream against the log.
    const SampleRecord &rec = sampleLog.all().back();
    const WindowPower &wp = stream->onWindow(rec);
    updateMeter(rec, wp);
    runPowerPolicies();

    checker.checkAll("sample-boundary");
}

void
System::updateMeter(const SampleRecord &rec, const WindowPower &wp)
{
    meterReading.windowIndex = sampleLog.size() - 1;
    meterReading.startTick = rec.startTick;
    meterReading.endTick = rec.endTick;
    meterReading.cpuMemPowerW = wp.cpuMemPowerW();

    // Disk energy integrates against paper-equivalent time; divide
    // by the compression factor so the window's disk power is
    // consistent with the CPU-side (sim-time) powers — the same
    // pricing breakdown() applies to the whole run.
    double disk_j = machineDisk->energyJ();
    double delta_j = (disk_j - lastDiskEnergyJ) / cfg.timeScale;
    lastDiskEnergyJ = disk_j;
    double window_s =
        double(rec.length()) / (cfg.machine.freqMhz * 1e6);
    meterReading.diskPowerW = window_s > 0 ? delta_j / window_s : 0;

    meterReading.systemPowerW =
        meterReading.cpuMemPowerW + meterReading.diskPowerW;
    meterReading.freqMhz = rec.freqMhz;
    meterReading.vdd = rec.vdd;
    meterReading.valid = true;
}

void
System::runPowerPolicies()
{
    if (governor && governor->observe(meterReading)) {
        // The governor's decision ran in the kernel: account one
        // power-meter read (the reading it acted on) as a service.
        machineKernel->pollPowerMeter();
    }
    if (spindown && spindown->observe(machineDisk->spinUps())) {
        machineDisk->setSpindownThreshold(
            spindown->thresholdSeconds());
    }
}

void
System::fastForwardToNextEvent()
{
    Tick next = queue.nextEventTick();
    if (next == maxTick)
        panic("idle fast-forward with no pending events: deadlock");
    Tick now = queue.now();
    if (next <= now + 1)
        return;

    if (!idleProfileMeasured) {
        if (cfg.kernelParams.haltOnIdle) {
            // Halted idle: no activity at all, only elapsed cycles.
            idleProfile = IdleProfile{};
            idleProfile.perCycle[int(CounterId::Cycles)] = 1.0;
        } else {
            idleProfile = measureIdleProfile(
                cfg.machine, cfg.cpuModel == CpuModel::Superscalar);
        }
        idleProfileMeasured = true;
    }

    // Discard the in-flight idle busy-waiting (its effect over the
    // skipped span is charged analytically from the measured
    // profile), requeueing any real work that was in flight.
    machineKernel->requeue(machineCpu->squashAllCollect());

    Cycles skip = next - now;
    ffCycles += skip;
    Tick cursor = now;
    while (skip > 0) {
        Cycles room = windowStart + cfg.sampleWindow - cursor;
        if (room == 0) {
            closeWindow(cursor);
            continue;
        }
        Cycles chunk = skip < room ? skip : room;
        idleProfile.apply(sink.global(), chunk);
        cursor += chunk;
        skip -= chunk;
        if (cursor >= windowStart + cfg.sampleWindow)
            closeWindow(cursor);
    }
    queue.advanceTo(next);  // runs the unblocking event(s)
}

namespace
{

/**
 * Simulated seconds -> ticks, saturating: a budget large enough to
 * overflow Tick arithmetic behaves as "effectively unbounded"
 * instead of wrapping into a tiny (or UB) deadline.
 */
Tick
ticksFromSeconds(double seconds, double freq_mhz)
{
    double ticks = seconds * freq_mhz * 1e6;
    const double max_tick = 9.2e18;  // < 2^63, exactly convertible
    return ticks >= max_tick ? Tick(max_tick) : Tick(ticks);
}

} // namespace

bool
System::throttledCpuCycle()
{
    // Duty-cycle throttle: a tick stays one nominal-frequency cycle
    // (disk and event timing are unaffected), but the core executes
    // on only dutyNum of every dutyDen ticks. The integer
    // accumulator makes the stall pattern an exact function of the
    // tick count. Stall ticks charge one cycle to the current
    // execution mode so per-mode Cycles still partition the window.
    const DvfsGovernor::Point &p = governor->point();
    dutyAcc += p.dutyNum;
    if (dutyAcc >= p.dutyDen) {
        dutyAcc -= p.dutyDen;
        ++detailCycles;
        return machineCpu->cycle();
    }
    sink.addCycle();
    ++throttleCycles;
    return true;
}

bool
System::cancellationRequested(RunResult &result)
{
    if (!cancel)
        return false;
    CancelToken::Level level = cancel->level();
    if (level == CancelToken::Live)
        return false;
    if (level >= CancelToken::Hard) {
        result.outcome = RunOutcome::Cancelled;
        result.diagnostics =
            "cancelled at sample-window boundary (hard)";
        return true;
    }
    // Drain: finish this run, bounded by the grace budget.
    if (cfg.shutdownGraceSeconds <= 0)
        return false;
    if (graceDeadline == 0) {
        graceDeadline =
            queue.now() + ticksFromSeconds(cfg.shutdownGraceSeconds,
                                           cfg.machine.freqMhz);
        return false;
    }
    if (queue.now() >= graceDeadline) {
        result.outcome = RunOutcome::Cancelled;
        result.diagnostics =
            msg() << "cancelled: drain grace budget of "
                  << cfg.shutdownGraceSeconds
                  << " simulated seconds exhausted";
        return true;
    }
    return false;
}

RunResult
System::run()
{
    if (!workload)
        fatal("System::run: no workload attached");
    if (cfg.clockInterrupts)
        machineKernel->startClock();

    if (!restoredState) {
        windowStart = queue.now();
        idleStreak = 0;
    }
    RunResult result;

    // Checkpoint cadence is anchored to the previous checkpoint's
    // tick, so a restored run (now() == that tick) arms the next
    // autosave at exactly the tick the uninterrupted run would.
    const Tick ckpt_interval =
        checkpointEverySeconds > 0
            ? ticksFromSeconds(checkpointEverySeconds,
                               cfg.machine.freqMhz)
            : 0;
    Tick next_ckpt =
        ckpt_interval ? queue.now() + ckpt_interval : 0;

    // The deadline is simulated time, so expiry is deterministic:
    // the same configuration ends at the same cycle regardless of
    // host load or the jobs= setting.
    const Tick deadline_tick =
        cfg.deadlineSeconds > 0
            ? ticksFromSeconds(cfg.deadlineSeconds,
                               cfg.machine.freqMhz)
            : 0;

    while (true) {
        if (machineKernel->ioFailed()) {
            result.outcome = RunOutcome::IoFailed;
            result.diagnostics =
                machineKernel->ioFailure().describe();
            break;
        }
        if (queue.now() >= cfg.maxCycles) {
            result.outcome = RunOutcome::WatchdogExpired;
            result.diagnostics =
                msg() << "watchdog: simulation exceeded "
                      << cfg.maxCycles << " cycles";
            break;
        }
        if (deadline_tick && queue.now() >= deadline_tick) {
            result.outcome = RunOutcome::DeadlineExceeded;
            result.diagnostics =
                msg() << "deadline: run exceeded its budget of "
                      << cfg.deadlineSeconds
                      << " simulated seconds (" << deadline_tick
                      << " cycles)";
            break;
        }

        bool alive;
        if (governor) {
            alive = throttledCpuCycle();
        } else {
            alive = machineCpu->cycle();
            ++detailCycles;
        }
        queue.advanceTo(queue.now() + 1);

        bool window_closed = false;
        if (queue.now() - windowStart >= cfg.sampleWindow) {
            closeWindow(queue.now());
            window_closed = true;
        }

        if (!alive)
            break;

        if (machineKernel->idleWaiting()) {
            if (++idleStreak >= cfg.idleFastForwardAfter) {
                fastForwardToNextEvent();
                idleStreak = 0;
                // Fast-forward may have closed several windows.
                window_closed = true;
            }
        } else {
            idleStreak = 0;
        }

        if (window_closed && cancellationRequested(result))
            break;

        // Checkpoint poll, last in the iteration: a restored run
        // resumes at the top of the loop, which is exactly where the
        // uninterrupted run continues after the autosave. The squash
        // inside buildCheckpointImage() happens at the same tick in
        // every run with the same cadence, so trajectories match.
        if (ckpt_interval && !ckptDegraded &&
            queue.now() >= next_ckpt && checkpointSafeNow()) {
            takeCheckpoint();
            next_ckpt = queue.now() + ckpt_interval;
        }
    }
    closeWindow(queue.now());
    checker.checkAll("end-of-run");
    result.cycles = queue.now();
    return result;
}

void
System::setCheckpointPolicy(double every_seconds,
                            const std::string &autosave_path,
                            Durability autosave_durability)
{
    ckptDurability = autosave_durability;
    if (!(every_seconds >= 0) || every_seconds > 1e18) {
        fatal(msg() << "checkpoint interval must be a finite value "
                    << ">= 0 seconds (got " << every_seconds
                    << "); 0 disables autosave");
    }
    if (every_seconds > 0 && autosave_path.empty()) {
        fatal("checkpoint autosave needs a destination path; "
              "set an output file for the run");
    }
    checkpointEverySeconds = every_seconds;
    autosavePath = autosave_path;
}

std::uint64_t
System::checkpointFingerprint() const
{
    SW_CHECK(workload != nullptr,
             "checkpoint fingerprint needs an attached workload");
    ChunkWriter w;
    auto i32 = [&w](int v) { w.u64(std::uint64_t(std::int64_t(v))); };

    const MachineParams &m = cfg.machine;
    i32(m.instWindowSize);
    i32(m.intRegs);
    i32(m.fpRegs);
    i32(m.lsqSize);
    i32(m.fetchWidth);
    i32(m.decodeWidth);
    i32(m.issueWidth);
    i32(m.commitWidth);
    i32(m.intAlus);
    i32(m.fpAlus);
    i32(m.bhtEntries);
    i32(m.btbEntries);
    i32(m.rasEntries);
    w.u64(m.memorySizeBytes);
    for (const CacheParams &c : {m.icache, m.dcache, m.l2cache}) {
        w.u64(c.sizeBytes);
        i32(c.lineBytes);
        i32(c.ways);
        i32(c.hitLatency);
    }
    i32(m.tlbEntries);
    i32(m.memoryLatency);
    i32(m.pageBytes);
    w.f64(m.featureSizeUm);
    w.f64(m.vdd);
    w.f64(m.freqMhz);

    w.u8(std::uint8_t(cfg.diskConfig.kind));
    w.f64(cfg.diskConfig.spindownThresholdSeconds);
    const DiskFaultConfig &fault = cfg.diskConfig.fault;
    w.b(fault.enabled);
    w.f64(fault.transientErrorRate);
    w.f64(fault.seekErrorRate);
    w.f64(fault.spinupFailureRate);
    w.f64(fault.windowStartSeconds);
    w.f64(fault.windowEndSeconds);
    w.u64(fault.seed);

    const Kernel::Params &k = cfg.kernelParams;
    w.f64(k.tlbSlowPathProb);
    w.f64(k.vfaultProb);
    w.f64(k.clockTickSeconds);
    w.f64(k.timeScale);
    w.u64(k.fileCacheBlocks);
    w.b(k.haltOnIdle);
    w.u64(k.seed);
    const ServiceTuning &t = k.tuning;
    for (std::uint64_t len :
         {t.utlbLength, t.tlbMissLength, t.vfaultLength,
          t.demandZeroLength, t.cacheflushLength, t.openLength,
          t.openSyncLength, t.xstatLength, t.duPollLength,
          t.bsdLength, t.clockLength, t.clockSyncLength,
          t.ioSyncLength, t.ioSetupLength, t.ioFinishLength,
          t.errorRecoveryLength, t.errorRecoverySyncLength,
          t.powerReadLength}) {
        w.u64(len);
    }
    w.f64(t.openMetadataMissProb);
    i32(k.diskRetry.maxAttempts);
    w.f64(k.diskRetry.backoffSeconds);
    w.f64(k.diskRetry.backoffMultiplier);

    w.f64(cfg.timeScale);
    w.u64(cfg.sampleWindow);
    w.b(cfg.useCalibratedPower);
    w.u64(cfg.idleFastForwardAfter);
    w.u64(cfg.maxCycles);
    w.b(cfg.clockInterrupts);
    w.f64(cfg.powerBudgetW);
    w.b(cfg.dvfsEnabled);
    w.b(cfg.adaptiveSpindown);

    const WorkloadSpec &wl = workload->spec();
    w.str(wl.name);
    w.u64(wl.mainInsts);
    wl.mainSpec.saveState(w);
    i32(wl.numClassFiles);
    w.u64(wl.classFileBytes);
    w.u64(wl.loadComputeOps);
    w.u32(wl.loadReadChunk);
    i32(wl.jitFlushes);
    w.u64(wl.jitComputeOps);
    w.u64(wl.gcPeriodInsts);
    w.u64(wl.gcBurstInsts);
    w.f64(wl.sys.readsPerMInst);
    w.u32(wl.sys.readBytesMin);
    w.u32(wl.sys.readBytesMax);
    w.f64(wl.sys.writesPerMInst);
    w.u32(wl.sys.writeBytes);
    w.f64(wl.sys.xstatPerMInst);
    w.f64(wl.sys.bsdPerMInst);
    w.f64(wl.sys.duPollPerMInst);
    w.f64(wl.sys.openPerMInst);
    w.f64(wl.sys.powerPollPerMInst);
    w.u64(wl.seed);
    w.u64(wl.coldBurstFracs.size());
    for (double frac : wl.coldBurstFracs)
        w.f64(frac);
    w.u64(wl.dataFileBytes);

    return fnv1a64(w.bytes().data(), w.bytes().size());
}

CheckpointImage
System::buildCheckpointImage()
{
    SW_CHECK(checkpointSafeNow(),
             "checkpoint requested outside a safe point");
    // Squash in-flight work back to the kernel's replay queues: the
    // pipeline content becomes serializable data, and the squash
    // happens at this tick in every run with the same cadence.
    machineKernel->requeue(machineCpu->squashAllCollect());

    CheckpointImage image;
    image.configFingerprint = checkpointFingerprint();
    image.cpuModel = std::uint8_t(cfg.cpuModel);

    auto chunk = [&image](const char *name, auto &&fill) {
        ChunkWriter w;
        fill(w);
        image.add(name, w);
    };
    chunk("event-queue",
          [&](ChunkWriter &w) { queue.saveState(w); });
    chunk("cpu", [&](ChunkWriter &w) { machineCpu->saveState(w); });
    chunk("caches",
          [&](ChunkWriter &w) { machineHierarchy->saveState(w); });
    chunk("tlb", [&](ChunkWriter &w) { machineTlb->saveState(w); });
    chunk("disk", [&](ChunkWriter &w) { machineDisk->saveState(w); });
    chunk("kernel",
          [&](ChunkWriter &w) { machineKernel->saveState(w); });
    chunk("workload",
          [&](ChunkWriter &w) { workload->saveState(w); });
    chunk("counters", [&](ChunkWriter &w) {
        sink.saveState(w);
        totalsBank.saveState(w);
    });
    chunk("sample-log",
          [&](ChunkWriter &w) { sampleLog.saveState(w); });
    chunk("system", [&](ChunkWriter &w) {
        w.u64(windowStart);
        w.u64(idleStreak);
        w.u64(ffCycles);
        w.u64(detailCycles);
    });
    // Power subsystem: meter reading, throttle and policy state.
    // The stream accumulator itself is NOT serialized — it is a pure
    // function of the sample log and is rebuilt by re-streaming the
    // restored log (applyCheckpointImage).
    chunk("power", [&](ChunkWriter &w) {
        meterReading.saveState(w);
        w.f64(lastDiskEnergyJ);
        w.u64(dutyAcc);
        w.u64(throttleCycles);
        w.b(governor != nullptr);
        if (governor)
            governor->saveState(w);
        w.b(spindown != nullptr);
        if (spindown)
            spindown->saveState(w);
    });
    return image;
}

void
System::applyCheckpointImage(const CheckpointImage &image)
{
    bool warm_start = image.cpuModel != std::uint8_t(cfg.cpuModel);

    // Verify every needed chunk exists before mutating anything, so
    // a damaged-but-checksum-valid image cannot leave the machine
    // half restored.
    std::vector<const char *> needed = {
        "event-queue", "caches", "tlb",      "disk",
        "kernel",      "workload", "counters", "sample-log",
        "system",      "power"};
    if (!warm_start)
        needed.push_back("cpu");
    for (const char *name : needed) {
        if (!image.find(name)) {
            throw CheckpointError(
                msg() << "checkpoint is missing chunk '" << name
                      << "'");
        }
    }

    auto apply = [&image](const char *name, auto &&fn) {
        const CheckpointChunk *found = image.find(name);
        ChunkReader reader(found->payload, name);
        fn(reader);
        reader.finish();
    };
    // The event queue goes first: component loadState calls
    // re-register their live events against the restored clock and
    // id counter.
    apply("event-queue",
          [&](ChunkReader &r) { queue.loadState(r); });
    if (warm_start) {
        inform(msg() << "warm start: checkpoint was taken under a "
                     << "different CPU model; restoring memory, "
                     << "disk, OS and workload state with a cold "
                     << "core (SimOS mode-switch semantics)");
    } else {
        apply("cpu",
              [&](ChunkReader &r) { machineCpu->loadState(r); });
    }
    apply("caches",
          [&](ChunkReader &r) { machineHierarchy->loadState(r); });
    apply("tlb", [&](ChunkReader &r) { machineTlb->loadState(r); });
    apply("disk",
          [&](ChunkReader &r) { machineDisk->loadState(r); });
    apply("kernel",
          [&](ChunkReader &r) { machineKernel->loadState(r); });
    apply("workload",
          [&](ChunkReader &r) { workload->loadState(r); });
    apply("counters", [&](ChunkReader &r) {
        sink.loadState(r);
        totalsBank.loadState(r);
    });
    apply("sample-log",
          [&](ChunkReader &r) { sampleLog.loadState(r); });
    apply("system", [&](ChunkReader &r) {
        windowStart = r.u64();
        idleStreak = r.u64();
        ffCycles = r.u64();
        detailCycles = r.u64();
    });
    apply("power", [&](ChunkReader &r) {
        meterReading.loadState(r);
        lastDiskEnergyJ = r.f64();
        dutyAcc = r.u64();
        throttleCycles = r.u64();
        bool had_governor = r.b();
        if (had_governor != (governor != nullptr)) {
            throw CheckpointError(
                msg() << "checkpoint "
                      << (had_governor ? "has" : "lacks")
                      << " DVFS governor state but this run "
                      << (governor ? "enables" : "disables")
                      << " the governor");
        }
        if (governor)
            governor->loadState(r);
        bool had_spindown = r.b();
        if (had_spindown != (spindown != nullptr)) {
            throw CheckpointError(
                msg() << "checkpoint "
                      << (had_spindown ? "has" : "lacks")
                      << " adaptive spin-down state but this run "
                      << (spindown ? "enables" : "disables")
                      << " the policy");
        }
        if (spindown)
            spindown->loadState(r);
    });
    // The policy threshold lives outside the disk's own chunk; push
    // the restored value back so the next arming uses it.
    if (spindown)
        machineDisk->setSpindownThreshold(spindown->thresholdSeconds());
    // The stream accumulator is a pure function of the sample log:
    // replay the restored log so subsequent windows (and the batch
    // trace) continue bit-identically.
    rebuildPowerStream();
}

void
System::rebuildPowerStream()
{
    stream->beginRun();
    for (const SampleRecord &rec : sampleLog.all())
        stream->onWindow(rec);
}

void
System::checkCheckpointCompatible(const CheckpointImage &image,
                                  const std::string &source) const
{
    std::uint64_t expected = checkpointFingerprint();
    if (image.configFingerprint != expected) {
        throw CheckpointMismatch(
            msg() << source << ": checkpoint was written under a "
                  << "different machine/workload configuration "
                  << "(fingerprint " << image.configFingerprint
                  << ", this run has " << expected << ")");
    }
}

bool
System::restoreCheckpoint(const std::string &path)
{
    if (!workload)
        fatal("System::restoreCheckpoint: attach the workload "
              "before restoring");

    CheckpointImage image;
    bool have_image = false;
    std::string source = path;
    try {
        image = readCheckpoint(path);
        checkCheckpointCompatible(image, path);
        have_image = true;
    } catch (const CheckpointMismatch &err) {
        fatal(msg() << "cannot restore: " << err.what());
    } catch (const CheckpointError &err) {
        warn(msg() << "checkpoint " << path << " is unusable ("
                   << err.what()
                   << "); falling back to the previous generation");
    }
    if (!have_image) {
        source = checkpointPreviousGeneration(path);
        try {
            image = readCheckpoint(source);
            checkCheckpointCompatible(image, source);
            have_image = true;
        } catch (const CheckpointMismatch &err) {
            fatal(msg() << "cannot restore: " << err.what());
        } catch (const CheckpointError &err) {
            warn(msg() << "previous-generation checkpoint " << source
                       << " is unusable too (" << err.what()
                       << "); starting the run from scratch");
            return false;
        }
    }

    try {
        applyCheckpointImage(image);
    } catch (const CheckpointError &err) {
        // The image verified but a chunk would not parse: a format
        // bug, and the machine may be half restored — do not limp on.
        panic(msg() << "checkpoint " << source << " verified but "
                    << "failed to apply: " << err.what());
    }
    restoredState = true;
    inform(msg() << "restored machine state from " << source
                 << " at tick " << queue.now());
    return true;
}

void
System::writeCheckpointNow(const std::string &path)
{
    writeCheckpoint(path, buildCheckpointImage());
}

void
System::takeCheckpoint()
{
    // Structured degradation: a failed autosave (ENOSPC, EIO, a
    // torn rename chain) downgrades the run to checkpoint-less
    // execution instead of killing a simulation that is otherwise
    // healthy. The image-building squash already happened, so the
    // trajectory up to this tick still matches other runs at the
    // same cadence; further autosaves are disarmed because their
    // squashes could no longer be paired with saved images.
    try {
        autosaveCheckpoint(autosavePath, buildCheckpointImage(),
                           ckptDurability);
        ++numCheckpoints;
    } catch (const CheckpointError &err) {
        ckptDegraded = true;
        warn(msg() << "checkpoint autosave failed; continuing "
                   << "checkpoint-less (degraded): " << err.what());
    }
}

void
System::dumpStats(std::ostream &out) const
{
    auto line = [&out](const char *name, double value,
                       const char *desc) {
        out << name << ' ' << value << " # " << desc << '\n';
    };
    line("sim.cycles", double(queue.now()), "total simulated cycles");
    line("sim.detailed_cycles", double(detailCycles),
         "cycles simulated in detail");
    line("sim.ff_cycles", double(ffCycles),
         "cycles covered by idle fast-forward");
    line("cpu.committed_insts", double(machineCpu->committedInsts()),
         "instructions committed");
    line("cpu.ipc", machineCpu->ipc(),
         "committed instructions per cycle");
    line("cpu.bpred_accuracy",
         machineCpu->predictor().accuracy(),
         "branch prediction accuracy");
    line("l1i.miss_ratio", machineHierarchy->icache().missRatio(),
         "L1 I-cache miss ratio");
    line("l1d.miss_ratio", machineHierarchy->dcache().missRatio(),
         "L1 D-cache miss ratio");
    line("l2.miss_ratio", machineHierarchy->l2cache().missRatio(),
         "unified L2 miss ratio");
    line("mem.accesses", double(machineHierarchy->memAccesses()),
         "main-memory accesses");
    line("tlb.miss_ratio",
         machineTlb->refs()
             ? double(machineTlb->misses()) /
                   double(machineTlb->refs())
             : 0,
         "unified TLB miss ratio");
    line("filecache.hit_ratio",
         machineKernel->fileCache().hitRatio(),
         "buffer cache hit ratio");
    line("disk.requests", double(machineDisk->requestsServed()),
         "disk requests served");
    line("disk.spinups", double(machineDisk->spinUps()),
         "disk spin-ups");
    if (machineDisk->config().fault.active() ||
        machineKernel->diskFaults() > 0) {
        const DiskFaultModel &faults = machineDisk->faults();
        line("disk.faults.transient",
             double(faults.transientErrors()),
             "injected transient transfer errors");
        line("disk.faults.seek", double(faults.seekErrors()),
             "injected seek (servo) errors");
        line("disk.faults.spinup", double(faults.spinupFailures()),
             "injected spin-up failures");
        line("disk.requests_failed",
             double(machineDisk->requestsFailed()),
             "requests completed with an error status");
        line("kernel.disk_retries",
             double(machineKernel->diskRetries()),
             "disk driver retries");
        line("kernel.disk_giveups",
             double(machineKernel->diskGiveUps()),
             "disk requests abandoned after max attempts");
    }
    line("kernel.clock_interrupts",
         double(machineKernel->clockInterrupts()),
         "timer interrupts taken");
    if (governor) {
        line("sim.throttled_cycles", double(throttleCycles),
             "cycles stalled by the DVFS duty-cycle throttle");
        line("dvfs.budget_w", governor->budgetW(),
             "governor power budget");
        line("dvfs.level", double(governor->level()),
             "final DVFS ladder level (0 = nominal)");
        line("dvfs.deepest_level", double(governor->deepestLevel()),
             "deepest DVFS ladder level reached");
        line("dvfs.steps_down", double(governor->stepsDown()),
             "governor frequency reductions");
        line("dvfs.steps_up", double(governor->stepsUp()),
             "governor frequency restorations");
    }
    if (spindown) {
        line("disk.adaptive_threshold_s",
             spindown->thresholdSeconds(),
             "final adaptive spin-down threshold");
        line("disk.threshold_adjustments",
             double(spindown->adjustments()),
             "adaptive spin-down threshold changes");
    }
    for (ServiceKind kind : allServices) {
        const ServiceStats &svc = machineKernel->serviceStats(kind);
        if (svc.invocations == 0)
            continue;
        out << "kernel." << serviceName(kind) << ".invocations "
            << svc.invocations << " # service invocation count\n";
    }
}

PowerTrace
System::powerTrace() const
{
    // Served from the incremental stream: every sample-log append is
    // immediately followed by stream->onWindow(), so the accumulator
    // always equals calculator->process(sampleLog) bit-for-bit (the
    // batch path is itself a wrapper over the same streaming code).
    return stream->trace();
}

double
System::diskEnergyConventionalJ() const
{
    // Re-price the same run as the unmanaged disk: every non-seek,
    // non-transfer second is spent at ACTIVE power.
    DiskPowerSpec spec;
    double seek_s = machineDisk->stateSeconds(DiskState::Seeking);
    double active_s = machineDisk->stateSeconds(DiskState::Active);
    double other_s =
        machineDisk->stateSeconds(DiskState::Idle) +
        machineDisk->stateSeconds(DiskState::Standby) +
        machineDisk->stateSeconds(DiskState::SpinningDown) +
        machineDisk->stateSeconds(DiskState::SpinningUp) +
        machineDisk->stateSeconds(DiskState::Sleep);
    return spec.seekW * seek_s +
           spec.activeW * (active_s + other_s);
}

PowerBreakdown
System::breakdown(bool conventional_disk) const
{
    PowerBreakdown total = powerTrace().total;
    double equiv_j = conventional_disk ? diskEnergyConventionalJ()
                                       : machineDisk->energyJ();
    // Disk energy is integrated against paper-equivalent time;
    // divide by the compression factor so component *power* shares
    // stay consistent with the CPU-side (sim-time) energies.
    total.diskEnergyJ = equiv_j / cfg.timeScale;
    return total;
}

} // namespace softwatt
