/**
 * @file
 * Runtime invariant checking for a running System.
 *
 * The InvariantChecker holds a registry of named validators that are
 * swept at every sample-log boundary (and once more at end of run).
 * Validators observe only — they never mutate simulation state — so a
 * checked run produces bit-identical output to an unchecked one. A
 * violation panics through the SimError/error-handler path naming the
 * invariant, so tests can assert on exactly which contract broke.
 *
 * Checking defaults to on when the build compiles contract checks in
 * (SOFTWATT_CHECKS=ON or a !NDEBUG build; see sim/check.hh) and off
 * otherwise; tests flip it at runtime via setEnabled().
 */

#ifndef SOFTWATT_CORE_INVARIANTS_HH
#define SOFTWATT_CORE_INVARIANTS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/check.hh"

namespace softwatt
{

class System;

/**
 * Tolerances for energy-conservation comparisons. Validators compare
 * sums accumulated in different orders (per-window vs per-mode vs
 * per-component), so exact equality is not available: each double add
 * can differ by one ulp (~1e-16 relative), and a run accumulates at
 * most a few million terms, bounding the drift far below 1e-9
 * relative. The absolute floor covers totals near zero (empty modes).
 */
constexpr double invariantRelEps = 1e-9;
constexpr double invariantAbsEps = 1e-12;

/** |a - b| within invariant tolerances of the larger magnitude. */
bool invariantApproxEqual(double a, double b,
                          double rel = invariantRelEps,
                          double abs = invariantAbsEps);

/**
 * Registry of named runtime invariants.
 */
class InvariantChecker
{
  public:
    /** Returns "" when the invariant holds, else a failure detail. */
    using Validator = std::function<std::string()>;

    InvariantChecker() : enabledFlag(checksEnabled()) {}

    /** Register a validator; sweeps run in registration order. */
    void add(std::string name, Validator validator);

    void setEnabled(bool on) { enabledFlag = on; }
    bool enabled() const { return enabledFlag; }

    /** Number of registered invariants. */
    std::size_t size() const { return entries.size(); }

    /** Completed sweeps (0 when checking is disabled). */
    std::uint64_t passes() const { return numPasses; }

    /**
     * Run every validator in registration order; the first violation
     * panics (through the error-handler path) naming the invariant
     * and @p when. No-op while disabled.
     */
    void checkAll(const char *when);

  private:
    struct Entry
    {
        std::string name;
        Validator validator;
    };

    std::vector<Entry> entries;
    bool enabledFlag;
    std::uint64_t numPasses = 0;
};

/**
 * Register the standard per-component validators for @p system:
 * energy conservation and per-mode/per-component partition of the
 * power pass, counter monotonicity and totals/log agreement, event
 * time monotonicity, sample-window contiguity, cache hit/miss
 * accounting, and the disk state-machine legality, residency and
 * energy-conservation contracts. Validators hold incremental cursors
 * so a sweep costs O(new windows), not O(log).
 */
void registerSystemInvariants(InvariantChecker &checker,
                              const System &system);

} // namespace softwatt

#endif // SOFTWATT_CORE_INVARIANTS_HH
