/**
 * @file
 * SoftWatt's top level: assembles CPU, memory hierarchy, TLB,
 * MiniOS kernel and disk into a complete machine, drives the cycle
 * loop with idle fast-forward, samples the counter log, and exposes
 * the post-processed power results.
 */

#ifndef SOFTWATT_CORE_SYSTEM_HH
#define SOFTWATT_CORE_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <string>

#include "cpu/cpu.hh"
#include "disk/disk.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"
#include "os/kernel.hh"
#include "os/power_governor.hh"
#include "os/power_meter.hh"
#include "power/cpu_power.hh"
#include "power/power_calculator.hh"
#include "sim/cancel.hh"
#include "sim/config.hh"
#include "sim/counter_sink.hh"
#include "sim/event_queue.hh"
#include "sim/machine_params.hh"
#include "sim/sample_log.hh"
#include "workload/workload.hh"

#include "sim/checkpoint.hh"
#include "idle_profile.hh"
#include "invariants.hh"

namespace softwatt
{

/** Which CPU timing model drives the system. */
enum class CpuModel
{
    InOrder,      ///< Mipsy-equivalent.
    Superscalar,  ///< MXS-equivalent.
};

/** Complete configuration of a simulation. */
struct SystemConfig
{
    MachineParams machine;
    CpuModel cpuModel = CpuModel::Superscalar;
    DiskConfig diskConfig = DiskConfig::idleOnly();
    Kernel::Params kernelParams;

    /** Time compression shared by disk timing and clock interrupts. */
    double timeScale = 100.0;

    /** Sample-log window length in cycles. */
    Cycles sampleWindow = 100'000;

    /** Use the calibrated power preset (the reproduction path). */
    bool useCalibratedPower = true;

    /** Consecutive idle-wait cycles before fast-forwarding. */
    Cycles idleFastForwardAfter = 256;

    /** Watchdog: abort runs longer than this many cycles. */
    Cycles maxCycles = 4'000'000'000ull;

    /** Enable the periodic timer interrupt. */
    bool clockInterrupts = true;

    /**
     * Whole-system power budget in watts for the closed-loop DVFS
     * governor; 0 = no budget. Required (> 0) when dvfs is on.
     */
    double powerBudgetW = 0.0;

    /**
     * Close the power loop: a window-granular DVFS governor walks
     * the frequency/voltage ladder against powerBudgetW, throttling
     * the cycle loop and re-pricing the sample log's windows at the
     * chosen operating point.
     */
    bool dvfsEnabled = false;

    /**
     * Adapt the disk spin-down threshold online (replacing the
     * static Table-5 sweep value): back off after observed
     * spin-ups, tighten over quiet windows. Requires
     * disk.config=spindown; the configured disk.threshold_s is the
     * starting point.
     */
    bool adaptiveSpindown = false;

    /**
     * Per-run budget in simulated seconds (cycles / core clock);
     * 0 disables. Unlike the cycle-granular watchdog, expiry is
     * reported as RunOutcome::DeadlineExceeded so sweeps can
     * distinguish "this configuration hung" from "this run was over
     * its time budget". Deterministic: the same configuration
     * expires at the same cycle on every host and jobs= setting.
     */
    double deadlineSeconds = 0.0;

    /**
     * After a Drain cancellation (first SIGINT/SIGTERM), how many
     * additional simulated seconds an in-flight run may consume
     * before it is cut off at a sample-window boundary; 0 lets
     * in-flight runs finish completely.
     */
    double shutdownGraceSeconds = 0.0;

    /**
     * Build from a generic key=value Config. Validates ranges and
     * warns about keys nobody read (likely typos) — harnesses should
     * read their own keys (bench, scale, ...) *before* calling this
     * so they are not flagged.
     */
    static SystemConfig fromConfig(const Config &config);

    /**
     * Fatal on out-of-range values (non-positive timeScale, zero
     * sampleWindow, bad fault rates, ...). fromConfig calls this;
     * call it directly on hand-built configurations.
     */
    void validate() const;
};

/** How a simulation ended. */
enum class RunOutcome
{
    Completed,         ///< The workload ran to completion.
    WatchdogExpired,   ///< maxCycles elapsed first.
    IoFailed,          ///< The disk driver abandoned a request.
    DeadlineExceeded,  ///< The per-run deadline_s budget expired.
    Cancelled,         ///< Cooperative cancellation (signal/drain).
    Failed,            ///< An exception escaped the run (firewall).
};

/** Display name of a run outcome. */
const char *runOutcomeName(RunOutcome outcome);

/**
 * Parse a runOutcomeName() string back into the enum (journal
 * replay). @return false when @p name matches no outcome.
 */
bool runOutcomeFromName(const std::string &name, RunOutcome &out);

/**
 * Structured result of System::run. Anomalies no longer kill the
 * process: the caller decides whether a watchdog expiry or an
 * abandoned I/O request is fatal, and the partial statistics
 * accumulated up to the failure stay inspectable.
 */
struct RunResult
{
    RunOutcome outcome = RunOutcome::Completed;

    /** Simulated cycles at the end of the run. */
    Tick cycles = 0;

    /** Human-readable detail for non-completed outcomes. */
    std::string diagnostics;

    bool ok() const { return outcome == RunOutcome::Completed; }
};

/**
 * A complete simulated machine plus its power models.
 *
 * Implements PowerMeter: the streaming power pass closes each sample
 * window into a PowerReading that the kernel (PowerRead service) and
 * the feedback policies observe while the machine runs.
 */
class System : public PowerMeter
{
  public:
    explicit System(const SystemConfig &config);

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    /**
     * Attach the benchmark: registers its files, pre-maps its heap,
     * and installs it as the kernel's user program.
     */
    void attachWorkload(std::unique_ptr<Workload> workload);

    /**
     * Run until the workload completes, the watchdog or deadline
     * expires, an I/O request is abandoned, or the cancel token
     * fires; the outcome is returned rather than terminating the
     * process.
     */
    RunResult run();

    /**
     * Attach a cooperative-cancellation token (nullptr detaches).
     * The token is polled only at sample-window boundaries, so a
     * cancelled run always ends on a complete sample record: Hard
     * stops at the next boundary; Drain arms the
     * shutdownGraceSeconds budget (0 = finish the run).
     */
    void setCancelToken(const CancelToken *token) { cancel = token; }

    /** Current simulated time in cycles. */
    Tick now() const { return queue.now(); }

    /**
     * Arm periodic autosave checkpoints: once per @p every_seconds
     * of simulated time, run() writes the machine state to
     * @p autosave_path (atomic write-to-temp-then-rename, keeping
     * the previous generation as "<path>.1"). 0 disables.
     *
     * Taking a checkpoint squashes the pipeline at the checkpoint
     * tick (a deterministic perturbation), so bit-identity holds
     * between runs with the SAME checkpoint cadence: an interrupted
     * run restored from an autosave reproduces exactly the results
     * of an uninterrupted run with the same checkpoint_every_s.
     *
     * @p autosave_durability selects the write barrier discipline
     * (Durability::Full = power-cut-safe fsync chains).
     */
    void setCheckpointPolicy(
        double every_seconds, const std::string &autosave_path,
        Durability autosave_durability = Durability::Buffered);

    /**
     * True once a checkpoint autosave failed and the run degraded to
     * checkpoint-less execution. The simulation itself continues
     * unaffected; only crash-resumability inside the run is lost.
     * NOTE: a degraded run stops taking autosave squashes, so its
     * trajectory is only bit-identical to other runs up to the
     * failed autosave — which is why degradation is reported rather
     * than silent.
     */
    bool checkpointingDegraded() const { return ckptDegraded; }

    /**
     * Restore machine state from a checkpoint file. Must be called
     * after attachWorkload() and before run(). Damaged files fall
     * back to the previous autosave generation ("<path>.1"); if both
     * generations are unusable the run starts from scratch and this
     * returns false. A version or configuration-fingerprint mismatch
     * is fatal().
     *
     * Warm start: when the image was taken under a different CPU
     * model, the CPU chunk is skipped and the core starts cold while
     * caches, TLB, disk, OS and workload state are restored — the
     * SimOS mode-switch semantics (warm up under the fast in-order
     * model, study under the detailed superscalar model).
     */
    bool restoreCheckpoint(const std::string &path);

    /**
     * Write a checkpoint of the current machine state to @p path
     * (no generation rotation). The machine must be at a safe point
     * (checkpointSafeNow()); in-flight work is squashed and requeued.
     */
    void writeCheckpointNow(const std::string &path);

    /** True when kernel and disk are both at a safe point. */
    bool
    checkpointSafeNow() const
    {
        return machineKernel->checkpointSafe() &&
               machineDisk->checkpointSafe();
    }

    /**
     * Fingerprint of the checkpoint-relevant configuration: machine,
     * disk, kernel and sampling parameters plus the workload spec.
     * Excludes the CPU model (stored separately, to allow warm-start
     * model switching) and the deadline/grace budgets (host-side
     * run-management, not machine state).
     */
    std::uint64_t checkpointFingerprint() const;

    /** Autosave checkpoints written during run(). */
    std::uint64_t checkpointsTaken() const { return numCheckpoints; }

    /** True when this system was restored from a checkpoint. */
    bool restored() const { return restoredState; }

    // Results.
    const SampleLog &log() const { return sampleLog; }
    const CounterBank &totals() const { return totalsBank; }

    /**
     * The power trace of the run so far. Served from the streaming
     * pass's accumulator (no re-processing); bit-identical to
     * powerCalculator().process(log()) by construction.
     */
    PowerTrace powerTrace() const;

    /** Live view of the streaming pass's accumulated trace. */
    const PowerTrace &streamTrace() const { return stream->trace(); }

    // PowerMeter: the last closed window's power reading.
    const PowerReading &lastReading() const override
    {
        return meterReading;
    }

    /** The DVFS governor, or null when dvfs is off. */
    const DvfsGovernor *dvfsGovernor() const
    {
        return governor.get();
    }

    /** The adaptive spin-down policy, or null when off. */
    const AdaptiveSpindownPolicy *spindownPolicy() const
    {
        return spindown.get();
    }

    /**
     * Totals with disk energy injected. @p conventional_disk reports
     * the disk as the unmanaged baseline (ACTIVE between requests)
     * computed from the same run's residencies.
     */
    PowerBreakdown breakdown(bool conventional_disk = false) const;

    /** Disk energy in paper-equivalent joules (Figure 9). */
    double diskEnergyJ() const { return machineDisk->energyJ(); }

    /** Same run re-priced as the unmanaged conventional disk. */
    double diskEnergyConventionalJ() const;

    Kernel &kernel() { return *machineKernel; }
    const Kernel &kernel() const { return *machineKernel; }
    Disk &disk() { return *machineDisk; }
    const Disk &disk() const { return *machineDisk; }
    Cpu &cpu() { return *machineCpu; }
    const Cpu &cpu() const { return *machineCpu; }
    CacheHierarchy &hierarchy() { return *machineHierarchy; }
    const CacheHierarchy &hierarchy() const
    {
        return *machineHierarchy;
    }
    Tlb &tlb() { return *machineTlb; }
    const Tlb &tlb() const { return *machineTlb; }
    EventQueue &eventQueue() { return queue; }
    const EventQueue &eventQueue() const { return queue; }
    const CpuPowerModel &powerModel() const { return *power; }
    const PowerCalculator &powerCalculator() const
    {
        return *calculator;
    }
    const SystemConfig &config() const { return cfg; }

    /**
     * The runtime invariant registry for this system. Swept at every
     * sample-window boundary and at end of run; enabled by default
     * only in builds that compile contract checks in (see
     * sim/check.hh), and togglable at runtime for tests.
     */
    InvariantChecker &invariants() { return checker; }
    const InvariantChecker &invariants() const { return checker; }

    /** Sweep all registered invariants now (for tests/tools). */
    void checkInvariants(const char *when = "on-demand")
    {
        checker.checkAll(when);
    }

    /**
     * TEST HOOK: mutable access to the totals bank so tests can
     * corrupt a counter and prove the invariant sweep catches it.
     */
    CounterBank &totalsForTest() { return totalsBank; }

    /** Cycles skipped by idle fast-forward. */
    Cycles fastForwardedCycles() const { return ffCycles; }

    /** Cycles executed in detail. */
    Cycles detailedCycles() const { return detailCycles; }

    /** Stall ticks inserted by the DVFS duty-cycle throttle. */
    Cycles throttledCycles() const { return throttleCycles; }

    /**
     * Dump performance statistics (IPC, miss rates, predictor
     * accuracy, TLB/service/disk activity) in gem5-style
     * "name value # description" lines.
     */
    void dumpStats(std::ostream &out) const;

  private:
    SystemConfig cfg;
    EventQueue queue;
    CounterSink sink;
    std::unique_ptr<CacheHierarchy> machineHierarchy;
    std::unique_ptr<Tlb> machineTlb;
    std::unique_ptr<Disk> machineDisk;
    std::unique_ptr<Kernel> machineKernel;
    std::unique_ptr<Cpu> machineCpu;
    std::unique_ptr<CpuPowerModel> power;
    std::unique_ptr<PowerCalculator> calculator;
    std::unique_ptr<PowerStream> stream;
    std::unique_ptr<Workload> workload;

    SampleLog sampleLog;
    CounterBank totalsBank;
    Tick windowStart = 0;

    /** Last closed window's reading (PowerMeter). */
    PowerReading meterReading;

    /** Disk energy at the previous window boundary (for deltas). */
    double lastDiskEnergyJ = 0;

    std::unique_ptr<DvfsGovernor> governor;
    std::unique_ptr<AdaptiveSpindownPolicy> spindown;

    /** Duty-cycle accumulator of the DVFS throttle. */
    std::uint64_t dutyAcc = 0;

    /** Stall ticks inserted by the throttle. */
    Cycles throttleCycles = 0;

    InvariantChecker checker;

    IdleProfile idleProfile;
    bool idleProfileMeasured = false;

    Cycles ffCycles = 0;
    Cycles detailCycles = 0;

    /** Consecutive idle-wait cycles (hoisted from run() so it can
     *  cross a checkpoint: fast-forward timing must not depend on
     *  whether the run was restored). */
    Cycles idleStreak = 0;

    double checkpointEverySeconds = 0;
    std::string autosavePath;
    Durability ckptDurability = Durability::Buffered;
    bool ckptDegraded = false;
    bool restoredState = false;
    std::uint64_t numCheckpoints = 0;

    const CancelToken *cancel = nullptr;

    /** Tick at which the Drain grace budget expires; 0 = unarmed. */
    Tick graceDeadline = 0;

    /** Close the current sample window at @p end_tick. */
    void closeWindow(Tick end_tick);

    /** Operating point the core is currently running at. */
    double currentFreqMhz() const;
    double currentVdd() const;

    /** Fold a freshly closed window into the power meter. */
    void updateMeter(const SampleRecord &rec, const WindowPower &wp);

    /** Run the window-boundary feedback policies. */
    void runPowerPolicies();

    /** One tick of the cycle loop, through the DVFS throttle. */
    bool throttledCpuCycle();

    /** Replay the restored sample log through the power stream. */
    void rebuildPowerStream();

    /**
     * Window-boundary cancellation poll: fills @p result and
     * returns true when the run must stop now.
     */
    bool cancellationRequested(RunResult &result);

    /** Skip ahead to the next event, charging bulk idle activity. */
    void fastForwardToNextEvent();

    /** Squash in-flight work and serialize every component. */
    CheckpointImage buildCheckpointImage();

    /** Load every chunk of a verified image into the components. */
    void applyCheckpointImage(const CheckpointImage &image);

    /** Fingerprint/version gate; throws CheckpointMismatch. */
    void checkCheckpointCompatible(const CheckpointImage &image,
                                   const std::string &source) const;

    /** Autosave one checkpoint to autosavePath. */
    void takeCheckpoint();
};

} // namespace softwatt

#endif // SOFTWATT_CORE_SYSTEM_HH
