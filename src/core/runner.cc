#include "runner.hh"

#include <fstream>
#include <future>

#include "sim/logging.hh"
#include "sim/thread_pool.hh"

#include "json_writer.hh"

namespace softwatt
{

RunSpec &
ExperimentSpec::add(Benchmark bench, const SystemConfig &config,
                    double scale, const std::string &variant)
{
    RunSpec spec;
    spec.bench = bench;
    spec.variant = variant;
    spec.config = config;
    spec.scale = scale;
    runs.push_back(std::move(spec));
    return runs.back();
}

void
ExperimentSpec::addSuite(const SystemConfig &config, double scale,
                         const std::string &variant)
{
    for (Benchmark b : allBenchmarks)
        add(b, config, scale, variant);
}

ExperimentSpec
ExperimentSpec::fromArgs(const std::string &title, const Config &args)
{
    ExperimentSpec spec;
    spec.title = title;
    spec.jobs = int(args.getInt("jobs", 0));
    if (spec.jobs < 0)
        fatal(msg() << "config: jobs must be >= 0 (got " << spec.jobs
                    << "); 0 selects hardware concurrency");
    spec.jsonPath = args.getString("out", "");
    return spec;
}

const BenchmarkRun &
ExperimentResult::at(std::size_t i) const
{
    if (i >= results.size())
        panic("ExperimentResult: run index out of range");
    return results[i];
}

const RunSpec &
ExperimentResult::specAt(std::size_t i) const
{
    if (i >= specs.size())
        panic("ExperimentResult: spec index out of range");
    return specs[i];
}

const BenchmarkRun &
ExperimentResult::run(Benchmark bench,
                      const std::string &variant) const
{
    for (const BenchmarkRun &r : results) {
        if (r.bench == bench && r.variant == variant)
            return r;
    }
    fatal(msg() << "experiment '" << expTitle << "' has no run for "
                << benchmarkName(bench) << " variant '" << variant
                << "'");
}

std::vector<const BenchmarkRun *>
ExperimentResult::variantRuns(const std::string &variant) const
{
    std::vector<const BenchmarkRun *> matching;
    for (const BenchmarkRun &r : results) {
        if (r.variant == variant)
            matching.push_back(&r);
    }
    return matching;
}

std::vector<std::string>
ExperimentResult::names(const std::string &variant) const
{
    std::vector<std::string> names;
    for (const BenchmarkRun *r : variantRuns(variant))
        names.push_back(r->name);
    return names;
}

std::vector<PowerBreakdown>
ExperimentResult::breakdowns(const std::string &variant) const
{
    std::vector<PowerBreakdown> breakdowns;
    for (const BenchmarkRun *r : variantRuns(variant))
        breakdowns.push_back(r->breakdown);
    return breakdowns;
}

std::vector<PowerBreakdown>
ExperimentResult::conventionalBreakdowns(
    const std::string &variant) const
{
    std::vector<PowerBreakdown> breakdowns;
    for (const BenchmarkRun *r : variantRuns(variant))
        breakdowns.push_back(r->conventional);
    return breakdowns;
}

std::vector<CounterBank>
ExperimentResult::counterTotals(const std::string &variant) const
{
    std::vector<CounterBank> totals;
    for (const BenchmarkRun *r : variantRuns(variant))
        totals.push_back(r->system->totals());
    return totals;
}

std::array<ServiceStats, numServices>
ExperimentResult::pooledServiceStats(const std::string &variant) const
{
    std::array<ServiceStats, numServices> pooled{};
    for (const BenchmarkRun *r : variantRuns(variant)) {
        for (ServiceKind kind : allServices) {
            pooled[int(kind)].merge(
                r->system->kernel().serviceStats(kind));
        }
    }
    return pooled;
}

double
ExperimentResult::freqHz() const
{
    if (results.empty())
        return 200e6;
    return results.front()
        .system->powerModel()
        .technology()
        .freqHz();
}

namespace
{

void
writeBreakdownJson(JsonWriter &json, const PowerBreakdown &b)
{
    json.beginObject();
    json.member("freq_hz", b.freqHz);
    json.member("total_cycles", std::uint64_t(b.totalCycles()));
    json.member("seconds", b.seconds());
    json.member("disk_energy_j", b.diskEnergyJ);
    json.member("cpu_mem_energy_j", b.cpuMemEnergyJ());
    json.member("system_avg_power_w", b.systemAvgPowerW());
    json.key("modes");
    json.beginObject();
    for (ExecMode mode : allExecModes) {
        json.key(execModeName(mode));
        json.beginObject();
        json.member("cycles",
                    std::uint64_t(b.cycles[int(mode)]));
        json.member("energy_j", b.modeEnergyJ(mode));
        json.key("component_energy_j");
        json.beginObject();
        for (Component c : allComponents) {
            if (c == Component::Disk)
                continue;  // not mode-attributed
            json.member(componentName(c),
                        b.energyJ[int(mode)][int(c)]);
        }
        json.endObject();
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

void
writeCountersJson(JsonWriter &json, const CounterBank &totals)
{
    json.beginObject();
    for (ExecMode mode : allExecModes) {
        json.key(execModeName(mode));
        json.beginObject();
        for (int i = 0; i < numCounters; ++i) {
            CounterId id = CounterId(i);
            json.member(counterName(id), totals.get(mode, id));
        }
        json.endObject();
    }
    json.endObject();
}

void
writeServicesJson(JsonWriter &json, const System &sys)
{
    json.beginObject();
    for (ServiceKind kind : allServices) {
        const ServiceStats &s = sys.kernel().serviceStats(kind);
        json.key(serviceName(kind));
        json.beginObject();
        json.member("invocations", s.invocations);
        json.member("cycles", s.cycles);
        json.member("energy_j", s.energyJ);
        json.member("mean_energy_j", s.meanEnergyJ());
        json.member("stdev_energy_j", s.stdevEnergyJ());
        json.member("cod_pct", s.coeffOfDeviationPct());
        json.endObject();
    }
    json.endObject();
}

void
writeRunJson(JsonWriter &json, const BenchmarkRun &run)
{
    const System &sys = *run.system;
    json.beginObject();
    json.member("bench", run.name);
    json.member("variant", run.variant);
    json.member("scale", run.scale);
    json.member("outcome", runOutcomeName(run.result.outcome));
    if (!run.result.ok())
        json.member("diagnostics", run.result.diagnostics);
    json.member("cycles", std::uint64_t(sys.now()));
    json.member("detailed_cycles",
                std::uint64_t(sys.detailedCycles()));
    json.member("fast_forwarded_cycles",
                std::uint64_t(sys.fastForwardedCycles()));
    json.member("committed_insts", sys.cpu().committedInsts());
    json.member("ipc", sys.cpu().ipc());
    json.member("sample_windows", std::uint64_t(sys.log().size()));

    json.key("breakdown");
    writeBreakdownJson(json, run.breakdown);
    json.key("conventional_breakdown");
    writeBreakdownJson(json, run.conventional);
    json.key("counters");
    writeCountersJson(json, sys.totals());
    json.key("services");
    writeServicesJson(json, sys);

    json.key("disk");
    json.beginObject();
    json.member("energy_j", sys.diskEnergyJ());
    json.member("conventional_energy_j",
                sys.diskEnergyConventionalJ());
    json.member("spin_ups", sys.disk().spinUps());
    json.member("spin_downs", sys.disk().spinDowns());
    json.member("faults", sys.kernel().diskFaults());
    json.member("retries", sys.kernel().diskRetries());
    json.member("give_ups", sys.kernel().diskGiveUps());
    json.endObject();

    json.endObject();
}

/** Run one spec entry and stamp the runner-level metadata. */
BenchmarkRun
runOne(const std::string &title, const RunSpec &spec)
{
    BenchmarkRun run =
        runBenchmark(spec.bench, spec.config, spec.scale);
    run.variant = spec.variant;
    std::string label = run.name;
    if (!spec.variant.empty())
        label += "/" + spec.variant;
    status(msg() << "[" << title << "] " << label << " done: "
                 << run.system->now() << " cycles");
    return run;
}

} // namespace

void
ExperimentResult::writeJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.member("schema", "softwatt-experiment-v1");
    json.member("experiment", expTitle);
    json.key("runs");
    json.beginArray();
    for (const BenchmarkRun &run : results)
        writeRunJson(json, run);
    json.endArray();
    json.endObject();
    out << '\n';
}

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    ExperimentResult result;
    result.expTitle = spec.title;
    result.specs = spec.runs;

    unsigned jobs = spec.jobs <= 0 ? ThreadPool::defaultThreads()
                                   : unsigned(spec.jobs);
    if (jobs > spec.runs.size())
        jobs = unsigned(spec.runs.size());
    if (jobs == 0)
        jobs = 1;
    result.workerCount = int(jobs);

    result.results.reserve(spec.runs.size());
    if (jobs == 1) {
        // Reference path: strictly serial, on the calling thread.
        for (const RunSpec &rs : spec.runs)
            result.results.push_back(runOne(spec.title, rs));
    } else {
        ThreadPool pool(jobs);
        std::vector<std::future<BenchmarkRun>> futures;
        futures.reserve(spec.runs.size());
        for (const RunSpec &rs : spec.runs) {
            futures.push_back(pool.submit(
                [&title = spec.title, &rs] {
                    return runOne(title, rs);
                }));
        }
        // Collect in submission (= spec) order; completion order is
        // irrelevant because runs share no mutable state.
        for (std::future<BenchmarkRun> &f : futures)
            result.results.push_back(f.get());
    }

    if (!spec.jsonPath.empty()) {
        std::ofstream out(spec.jsonPath);
        if (!out)
            fatal(msg() << "cannot open '" << spec.jsonPath
                        << "' for writing");
        result.writeJson(out);
        status(msg() << "[" << spec.title << "] results written to "
                     << spec.jsonPath);
    }
    return result;
}

} // namespace softwatt
