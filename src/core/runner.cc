#include "runner.hh"

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <utility>

#include "sim/cancel.hh"
#include "sim/logging.hh"
#include "sim/signals.hh"
#include "sim/thread_pool.hh"

#include "journal.hh"
#include "json_writer.hh"

namespace softwatt
{

namespace
{

/**
 * Fail fast on an unwritable out= destination. The probe opens in
 * append mode — never truncating, because an existing file may be a
 * resumable journal — and removes the file again only if it did not
 * exist beforehand.
 */
void
probeWritable(const std::string &path)
{
    bool existed = static_cast<bool>(std::ifstream(path));
    std::ofstream probe(path, std::ios::app);
    if (!probe) {
        fatal(msg() << "config: cannot open '" << path
                    << "' for writing");
    }
    probe.close();
    if (!existed)
        std::remove(path.c_str());
}

double
nonNegativeSeconds(const Config &args, const std::string &key)
{
    double value = args.getDouble(key, 0.0);
    if (!(value >= 0.0) || value > 1e18) {
        fatal(msg() << "config: " << key
                    << " must be a finite number of simulated "
                    << "seconds >= 0 (got " << value << ")");
    }
    return value;
}

bool
boolFlag(const Config &args, const std::string &key)
{
    std::int64_t value = args.getInt(key, 0);
    if (value != 0 && value != 1) {
        fatal(msg() << "config: " << key << " must be 0 or 1 (got "
                    << value << ")");
    }
    return value == 1;
}

double
faultRate(const Config &args, const std::string &key)
{
    double value = args.getDouble(key, 0.0);
    if (!(value >= 0.0) || value > 1.0) {
        fatal(msg() << "config: " << key
                    << " must be a probability in [0, 1] (got "
                    << value << ")");
    }
    return value;
}

std::uint64_t
faultCount(const Config &args, const std::string &key)
{
    std::int64_t value = args.getInt(key, 0);
    if (value < 0) {
        fatal(msg() << "config: " << key << " must be >= 0 (got "
                    << value << "); 0 disables it");
    }
    return std::uint64_t(value);
}

} // namespace

RunSpec &
ExperimentSpec::add(Benchmark bench, const SystemConfig &config,
                    double scale, const std::string &variant)
{
    RunSpec spec;
    spec.bench = bench;
    spec.variant = variant;
    spec.config = config;
    spec.scale = scale;
    runs.push_back(std::move(spec));
    return runs.back();
}

void
ExperimentSpec::addSuite(const SystemConfig &config, double scale,
                         const std::string &variant)
{
    for (Benchmark b : allBenchmarks)
        add(b, config, scale, variant);
}

ExperimentSpec
ExperimentSpec::fromArgs(const std::string &title, const Config &args)
{
    ExperimentSpec spec;
    spec.title = title;
    spec.jobs = int(args.getInt("jobs", 0));
    if (spec.jobs < 0)
        fatal(msg() << "config: jobs must be >= 0 (got " << spec.jobs
                    << "); 0 selects hardware concurrency");
    spec.jsonPath = args.getString("out", "");
    spec.deadlineS = nonNegativeSeconds(args, "deadline_s");
    spec.graceS = nonNegativeSeconds(args, "grace_s");
    spec.resume = boolFlag(args, "resume");
    spec.diagnose = boolFlag(args, "diagnose");
    spec.checkpointEveryS =
        nonNegativeSeconds(args, "checkpoint_every_s");
    spec.restorePath = args.getString("restore", "");

    std::string durable = args.getString("durability", "buffered");
    bool knownDurability = false;
    spec.durability = durabilityFromName(durable, knownDurability);
    if (!knownDurability) {
        fatal(msg() << "config: durability must be 'buffered' or "
                    << "'full' (got '" << durable << "')");
    }

    IoFaultPolicy &faults = spec.ioFaults;
    faults.seed = faultCount(args, "io_fault_seed");
    if (faults.seed == 0)
        faults.seed = 1;
    faults.errorRate = faultRate(args, "io_fault_rate");
    faults.enospcRate = faultRate(args, "io_fault_enospc_rate");
    faults.shortWriteRate =
        faultRate(args, "io_fault_short_write_rate");
    faults.tornRenameRate =
        faultRate(args, "io_fault_torn_rename_rate");
    faults.crashAtOp = faultCount(args, "io_fault_crash_at_op");
    faults.enospcAfterBytes =
        faultCount(args, "io_fault_enospc_after_bytes");
    faults.enabled = faults.errorRate > 0 || faults.enospcRate > 0 ||
                     faults.shortWriteRate > 0 ||
                     faults.tornRenameRate > 0 ||
                     faults.crashAtOp > 0 ||
                     faults.enospcAfterBytes > 0;
    if (spec.resume && spec.jsonPath.empty()) {
        fatal("config: resume=1 requires out= (the resume journal "
              "lives next to the JSON document)");
    }
    if (spec.checkpointEveryS > 0 && spec.jsonPath.empty()) {
        fatal("config: checkpoint_every_s= requires out= (autosave "
              "checkpoints live next to the JSON document)");
    }
    if (!spec.restorePath.empty()) {
        if (spec.resume) {
            fatal("config: restore= cannot be combined with "
                  "resume=1 (the journal replays whole runs, the "
                  "checkpoint resumes inside one)");
        }
        if (!std::ifstream(spec.restorePath)) {
            fatal(msg() << "config: restore= file '"
                        << spec.restorePath
                        << "' does not exist or is not readable");
        }
    }
    if (!spec.jsonPath.empty()) {
        probeWritable(spec.jsonPath);
        probeWritable(journalPathFor(spec.jsonPath));
    }
    return spec;
}

const BenchmarkRun &
ExperimentResult::at(std::size_t i) const
{
    if (i >= results.size())
        panic("ExperimentResult: run index out of range");
    return results[i];
}

const RunSpec &
ExperimentResult::specAt(std::size_t i) const
{
    if (i >= specs.size())
        panic("ExperimentResult: spec index out of range");
    return specs[i];
}

const BenchmarkRun &
ExperimentResult::run(Benchmark bench,
                      const std::string &variant) const
{
    if (const BenchmarkRun *r = find(bench, variant))
        return *r;
    fatal(msg() << "experiment '" << expTitle << "' has no run for "
                << benchmarkName(bench) << " variant '" << variant
                << "'");
}

const BenchmarkRun *
ExperimentResult::find(Benchmark bench,
                       const std::string &variant) const
{
    for (const BenchmarkRun &r : results) {
        if (r.bench == bench && r.variant == variant)
            return &r;
    }
    return nullptr;
}

std::vector<const BenchmarkRun *>
ExperimentResult::variantRuns(const std::string &variant) const
{
    std::vector<const BenchmarkRun *> matching;
    for (const BenchmarkRun &r : results) {
        if (r.variant == variant)
            matching.push_back(&r);
    }
    return matching;
}

std::vector<std::string>
ExperimentResult::names(const std::string &variant) const
{
    std::vector<std::string> names;
    for (const BenchmarkRun *r : variantRuns(variant))
        names.push_back(r->name);
    return names;
}

std::vector<PowerBreakdown>
ExperimentResult::breakdowns(const std::string &variant) const
{
    std::vector<PowerBreakdown> breakdowns;
    for (const BenchmarkRun *r : variantRuns(variant))
        breakdowns.push_back(r->breakdown);
    return breakdowns;
}

std::vector<PowerBreakdown>
ExperimentResult::conventionalBreakdowns(
    const std::string &variant) const
{
    std::vector<PowerBreakdown> breakdowns;
    for (const BenchmarkRun *r : variantRuns(variant))
        breakdowns.push_back(r->conventional);
    return breakdowns;
}

std::vector<CounterBank>
ExperimentResult::counterTotals(const std::string &variant) const
{
    // Dataless runs (failed/skipped/restored) contribute an all-zero
    // bank so the vector stays aligned with names(); renderers show
    // those rows as gaps.
    std::vector<CounterBank> totals;
    for (const BenchmarkRun *r : variantRuns(variant))
        totals.push_back(r->hasData() ? r->system->totals()
                                      : CounterBank{});
    return totals;
}

std::array<ServiceStats, numServices>
ExperimentResult::pooledServiceStats(const std::string &variant) const
{
    std::array<ServiceStats, numServices> pooled{};
    for (const BenchmarkRun *r : variantRuns(variant)) {
        if (!r->hasData())
            continue;  // nothing survived to pool
        for (ServiceKind kind : allServices) {
            pooled[int(kind)].merge(
                r->system->kernel().serviceStats(kind));
        }
    }
    return pooled;
}

double
ExperimentResult::freqHz() const
{
    for (const BenchmarkRun &r : results) {
        if (r.hasData())
            return r.system->powerModel().technology().freqHz();
    }
    return 200e6;
}

std::size_t
ExperimentResult::failedRuns() const
{
    std::size_t count = 0;
    for (const BenchmarkRun &r : results) {
        if (r.result.outcome == RunOutcome::Failed)
            ++count;
    }
    return count;
}

int
ExperimentResult::exitCode() const
{
    if (wasInterrupted)
        return 130;  // 128 + SIGINT, the conventional interrupt code
    return failedRuns() > 0 ? 1 : 0;
}

namespace
{

void
writeBreakdownJson(JsonWriter &json, const PowerBreakdown &b)
{
    json.beginObject();
    json.member("freq_hz", b.freqHz);
    json.member("total_cycles", std::uint64_t(b.totalCycles()));
    json.member("seconds", b.seconds());
    json.member("disk_energy_j", b.diskEnergyJ);
    json.member("cpu_mem_energy_j", b.cpuMemEnergyJ());
    json.member("system_avg_power_w", b.systemAvgPowerW());
    json.key("modes");
    json.beginObject();
    for (ExecMode mode : allExecModes) {
        json.key(execModeName(mode));
        json.beginObject();
        json.member("cycles",
                    std::uint64_t(b.cycles[int(mode)]));
        json.member("energy_j", b.modeEnergyJ(mode));
        json.key("component_energy_j");
        json.beginObject();
        for (Component c : allComponents) {
            if (c == Component::Disk)
                continue;  // not mode-attributed
            json.member(componentName(c),
                        b.energyJ[int(mode)][int(c)]);
        }
        json.endObject();
        json.endObject();
    }
    json.endObject();
    json.endObject();
}

void
writeCountersJson(JsonWriter &json, const CounterBank &totals)
{
    json.beginObject();
    for (ExecMode mode : allExecModes) {
        json.key(execModeName(mode));
        json.beginObject();
        for (int i = 0; i < numCounters; ++i) {
            CounterId id = CounterId(i);
            json.member(counterName(id), totals.get(mode, id));
        }
        json.endObject();
    }
    json.endObject();
}

void
writeServicesJson(JsonWriter &json, const System &sys)
{
    json.beginObject();
    for (ServiceKind kind : allServices) {
        const ServiceStats &s = sys.kernel().serviceStats(kind);
        json.key(serviceName(kind));
        json.beginObject();
        json.member("invocations", s.invocations);
        json.member("cycles", s.cycles);
        json.member("energy_j", s.energyJ);
        json.member("mean_energy_j", s.meanEnergyJ());
        json.member("stdev_energy_j", s.stdevEnergyJ());
        json.member("cod_pct", s.coeffOfDeviationPct());
        json.endObject();
    }
    json.endObject();
}

void
writeRunJson(JsonWriter &json, const BenchmarkRun &run)
{
    json.beginObject();
    json.member("bench", run.name);
    json.member("variant", run.variant);
    json.member("scale", run.scale);
    json.member("outcome", runOutcomeName(run.result.outcome));
    json.member("attempts", run.attempts);
    if (!run.hasData()) {
        // Failed/skipped run: nothing survived past the firewall, so
        // the record carries only identity, outcome, and the error.
        json.member("wall_ms", 0.0);
        json.member("error", run.error.empty()
                                 ? run.result.diagnostics
                                 : run.error);
        json.endObject();
        return;
    }
    const System &sys = *run.system;
    // Simulated machine time, not host time: deterministic across
    // hosts and jobs= settings.
    json.member("wall_ms", run.breakdown.seconds() * 1e3);
    json.member("error", run.result.ok() ? std::string()
                                         : run.result.diagnostics);
    json.member("cycles", std::uint64_t(sys.now()));
    json.member("detailed_cycles",
                std::uint64_t(sys.detailedCycles()));
    json.member("fast_forwarded_cycles",
                std::uint64_t(sys.fastForwardedCycles()));
    json.member("committed_insts", sys.cpu().committedInsts());
    json.member("ipc", sys.cpu().ipc());
    json.member("sample_windows", std::uint64_t(sys.log().size()));

    json.key("breakdown");
    writeBreakdownJson(json, run.breakdown);
    json.key("conventional_breakdown");
    writeBreakdownJson(json, run.conventional);
    json.key("counters");
    writeCountersJson(json, sys.totals());
    json.key("services");
    writeServicesJson(json, sys);

    json.key("disk");
    json.beginObject();
    json.member("energy_j", sys.diskEnergyJ());
    json.member("conventional_energy_j",
                sys.diskEnergyConventionalJ());
    json.member("spin_ups", sys.disk().spinUps());
    json.member("spin_downs", sys.disk().spinDowns());
    json.member("faults", sys.kernel().diskFaults());
    json.member("retries", sys.kernel().diskRetries());
    json.member("give_ups", sys.kernel().diskGiveUps());
    if (const AdaptiveSpindownPolicy *sp = sys.spindownPolicy()) {
        json.member("adaptive_threshold_s", sp->thresholdSeconds());
        json.member("threshold_adjustments", sp->adjustments());
    }
    json.endObject();

    if (const DvfsGovernor *gov = sys.dvfsGovernor()) {
        json.key("dvfs");
        json.beginObject();
        json.member("budget_w", gov->budgetW());
        json.member("level", std::uint64_t(gov->level()));
        json.member("deepest_level",
                    std::uint64_t(gov->deepestLevel()));
        json.member("steps_down", gov->stepsDown());
        json.member("steps_up", gov->stepsUp());
        json.member("throttled_cycles",
                    std::uint64_t(sys.throttledCycles()));
        json.endObject();
    }

    json.endObject();
}

std::string
runLabel(const RunSpec &spec)
{
    std::string label = benchmarkName(spec.bench);
    if (!spec.variant.empty())
        label += "/" + spec.variant;
    return label;
}

/** runLabel made filename-safe for the autosave path suffix. */
std::string
checkpointLabel(const RunSpec &spec)
{
    std::string label = runLabel(spec);
    for (char &c : label) {
        if (c == '/' || c == '\\' || c == ' ')
            c = '-';
    }
    return label;
}

/** A run that died inside the firewall: identity + error only. */
BenchmarkRun
failedRun(const std::string &title, const RunSpec &spec,
          const std::string &what)
{
    warn(msg() << "[" << title << "] " << runLabel(spec)
               << " failed inside the run firewall: " << what);
    BenchmarkRun run;
    run.bench = spec.bench;
    run.name = benchmarkName(spec.bench);
    run.variant = spec.variant;
    run.scale = spec.scale;
    run.result.outcome = RunOutcome::Failed;
    run.result.diagnostics = what;
    run.error = what;
    return run;
}

/** A run skipped because shutdown drained the queue first. */
BenchmarkRun
skippedRun(const RunSpec &spec)
{
    BenchmarkRun run;
    run.bench = spec.bench;
    run.name = benchmarkName(spec.bench);
    run.variant = spec.variant;
    run.scale = spec.scale;
    run.result.outcome = RunOutcome::Cancelled;
    run.result.diagnostics = "cancelled before start (shutdown drain)";
    run.error = run.result.diagnostics;
    return run;
}

/** A run replayed from the resume journal: only its JSON survives. */
BenchmarkRun
restoredRun(const std::string &title, const RunSpec &spec,
            const JournalEntry &entry)
{
    BenchmarkRun run;
    run.bench = spec.bench;
    run.name = benchmarkName(spec.bench);
    run.variant = spec.variant;
    run.scale = spec.scale;
    run.attempts = entry.attempts;
    run.restoredJson = entry.runJson;
    RunOutcome outcome = RunOutcome::Completed;
    if (runOutcomeFromName(entry.outcome, outcome)) {
        run.result.outcome = outcome;
    } else {
        warn(msg() << "journal entry for " << runLabel(spec)
                   << " has unknown outcome '" << entry.outcome
                   << "'; treating it as completed");
    }
    if (!run.result.ok())
        run.result.diagnostics = "(restored from journal)";
    if (run.result.outcome == RunOutcome::Failed)
        run.error = run.result.diagnostics;
    status(msg() << "[" << title << "] " << runLabel(spec)
                 << " restored from journal (" << entry.outcome
                 << ")");
    return run;
}

/**
 * One-shot diagnostic rerun of a Failed spec: invariant sweeps
 * forced on, verbose logging, serial. The rerun replaces the failed
 * record (attempts=2); if it fails again the two errors are joined.
 */
void
diagnoseRun(const std::string &title, const RunSpec &spec,
            const CancelToken &token, BenchmarkRun &into)
{
    status(msg() << "[" << title << "] diagnostic rerun of "
                 << runLabel(spec)
                 << " (invariant sweeps forced on)");
    LogLevel saved = logLevel();
    setLogLevel(LogLevel::Verbose);
    BenchmarkRun retry = runSpecProtected(title, spec, token,
                                          /*forceInvariants=*/true);
    setLogLevel(saved);
    retry.attempts = 2;
    if (retry.result.outcome == RunOutcome::Failed &&
        retry.error != into.error) {
        retry.error =
            into.error + "; diagnostic rerun: " + retry.error;
        retry.result.diagnostics = retry.error;
    }
    into = std::move(retry);
}

} // namespace

BenchmarkRun
runSpecProtected(const std::string &title, const RunSpec &spec,
                 const CancelToken &token, bool forceInvariants)
{
    RunOptions options;
    options.cancel = &token;
    options.forceInvariants = forceInvariants;
    options.checkpointEverySeconds = spec.checkpointEveryS;
    options.checkpointPath = spec.checkpointPath;
    options.restorePath = spec.restorePath;
    options.durability = spec.durability;
    try {
        if (!spec.injectFailure.empty())
            throw SimError(ErrorKind::Fatal, spec.injectFailure);
        BenchmarkRun run =
            runBenchmark(spec.bench, spec.config, spec.scale,
                         options);
        run.variant = spec.variant;
        status(msg() << "[" << title << "] " << runLabel(spec)
                     << " done: " << run.system->now()
                     << " cycles");
        return run;
    } catch (const SimError &e) {
        return failedRun(title, spec, e.what());
    } catch (const std::exception &e) {
        return failedRun(title, spec, e.what());
    }
}

std::string
renderRunJson(const BenchmarkRun &run)
{
    std::ostringstream text;
    {
        JsonWriter json(text);
        writeRunJson(json, run);
    }
    return text.str();
}

void
writeExperimentDocument(std::ostream &out, const std::string &title,
                        bool interrupted,
                        const std::vector<std::string> &runJsons)
{
    JsonWriter json(out);
    json.beginObject();
    json.member("schema", "softwatt-experiment-v2");
    json.member("experiment", title);
    json.member("interrupted", interrupted);
    json.key("runs");
    json.beginArray();
    for (const std::string &text : runJsons)
        json.rawValue(text);
    json.endArray();
    json.endObject();
    out << '\n';
}

void
ExperimentResult::writeJson(std::ostream &out) const
{
    // Restored runs splice their journaled text; live runs are
    // rendered through the exact same path the journal used.
    std::vector<std::string> runJsons;
    runJsons.reserve(results.size());
    for (const BenchmarkRun &run : results) {
        runJsons.push_back(run.restored() ? run.restoredJson
                                          : renderRunJson(run));
    }
    writeExperimentDocument(out, expTitle, wasInterrupted, runJsons);
}

ExperimentResult
runExperiment(const ExperimentSpec &spec)
{
    ExperimentResult result;
    result.expTitle = spec.title;

    // io_fault_* schedule, scoped to this experiment: journal
    // appends, checkpoint autosaves and the final document write all
    // feel it; it is removed again even on exception paths.
    ScopedIoFaults faultScope(spec.ioFaults);

    // Fold the spec-level deadline/grace budgets into each run's
    // config up front, so the executed run, its fingerprint, and the
    // journal all see the same effective configuration.
    std::vector<RunSpec> runs = spec.runs;
    for (RunSpec &rs : runs) {
        rs.durability = spec.durability;
        if (spec.deadlineS > 0.0 && rs.config.deadlineSeconds <= 0.0)
            rs.config.deadlineSeconds = spec.deadlineS;
        if (spec.graceS > 0.0 &&
            rs.config.shutdownGraceSeconds <= 0.0)
            rs.config.shutdownGraceSeconds = spec.graceS;
        if (spec.checkpointEveryS > 0.0 && !spec.jsonPath.empty() &&
            rs.checkpointEveryS <= 0.0) {
            rs.checkpointEveryS = spec.checkpointEveryS;
            rs.checkpointPath =
                spec.jsonPath + "." + checkpointLabel(rs) + ".ckpt";
        }
    }
    if (!spec.restorePath.empty()) {
        // A checkpoint encodes exactly one machine; restoring it
        // into several runs of a sweep is never what anyone means.
        if (runs.size() != 1) {
            fatal(msg() << "restore= needs a single-run spec, but '"
                        << spec.title << "' schedules "
                        << runs.size() << " runs");
        }
        runs.front().restorePath = spec.restorePath;
    }
    result.specs = runs;

    unsigned jobs = spec.jobs <= 0 ? ThreadPool::defaultThreads()
                                   : unsigned(spec.jobs);
    if (jobs > runs.size())
        jobs = unsigned(runs.size());
    if (jobs == 0)
        jobs = 1;
    result.workerCount = int(jobs);

    // Cancellation plumbing: SIGINT/SIGTERM escalate the token
    // (Live -> Drain -> Hard) for the experiment's duration.
    CancelToken localToken;
    CancelToken &token = spec.cancel ? *spec.cancel : localToken;
    SignalGuard signalGuard(token);

    std::vector<std::string> prints;
    prints.reserve(runs.size());
    for (const RunSpec &rs : runs)
        prints.push_back(specFingerprint(rs));

    const std::string journalPath =
        spec.jsonPath.empty() ? std::string()
                              : journalPathFor(spec.jsonPath);

    std::vector<JournalEntry> journaled;
    if (spec.resume) {
        if (journalPath.empty()) {
            fatal("resume=1 requires out= (the resume journal lives "
                  "next to the JSON document)");
        }
        journaled = RunJournal::load(journalPath);
    }
    auto findJournaled =
        [&](std::size_t i) -> const JournalEntry * {
        const RunSpec &rs = runs[i];
        for (const JournalEntry &e : journaled) {
            if (e.experiment == spec.title &&
                e.bench == benchmarkName(rs.bench) &&
                e.variant == rs.variant && e.config == prints[i] &&
                !e.runJson.empty())
                return &e;
        }
        return nullptr;
    };

    RunJournal journal;
    if (!journalPath.empty() &&
        !journal.open(journalPath, /*truncate=*/!spec.resume,
                      spec.durability)) {
        fatal(msg() << "cannot open journal '" << journalPath
                    << "' for writing");
    }

    // A finished run is journaled immediately, EXCEPT Cancelled runs
    // (they must re-execute on resume) and Failed runs (their final
    // attempts count is only known after the optional diagnostic
    // rerun below).
    auto journalIfDurable = [&](std::size_t i,
                                const BenchmarkRun &run) {
        if (!journal.isOpen() || run.restored())
            return;
        RunOutcome outcome = run.result.outcome;
        if (outcome == RunOutcome::Cancelled ||
            outcome == RunOutcome::Failed)
            return;
        journal.append(makeJournalEntry(spec.title, runs[i],
                                        prints[i], run));
    };

    auto executeOne = [&](std::size_t i) -> BenchmarkRun {
        if (token.level() >= CancelToken::Drain)
            return skippedRun(runs[i]);
        return runSpecProtected(spec.title, runs[i], token);
    };

    const std::size_t n = runs.size();
    result.results.resize(n);

    {
    // Exception firewall: while runs execute, fatal()/panic() raise
    // SimError instead of exiting, so one poisoned run cannot take
    // the sweep down; runProtected() catches per run. Scoped to the
    // execution phase only — a fatal() while writing the final
    // document below keeps its normal terminate behaviour.
    ScopedErrorHandler firewall(throwingErrorHandler);

    if (jobs == 1) {
        // Reference path: strictly serial, on the calling thread.
        for (std::size_t i = 0; i < n; ++i) {
            if (const JournalEntry *e = findJournaled(i)) {
                result.results[i] =
                    restoredRun(spec.title, runs[i], *e);
                continue;
            }
            result.results[i] = executeOne(i);
            journalIfDurable(i, result.results[i]);
        }
    } else {
        ThreadPool pool(jobs);
        std::vector<std::pair<std::size_t,
                              std::future<BenchmarkRun>>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            if (const JournalEntry *e = findJournaled(i)) {
                result.results[i] =
                    restoredRun(spec.title, runs[i], *e);
                continue;
            }
            futures.emplace_back(i, pool.submit([&executeOne, i] {
                return executeOne(i);
            }));
        }
        // Collect in submission (= spec) order; completion order is
        // irrelevant because runs share no mutable state. On
        // cancellation, queued-unstarted jobs are discarded; their
        // broken futures read back as skipped runs.
        bool drained = false;
        for (auto &[i, f] : futures) {
            try {
                result.results[i] = f.get();
            } catch (const std::future_error &) {
                result.results[i] = skippedRun(runs[i]);
            }
            journalIfDurable(i, result.results[i]);
            if (!drained && token.cancelled()) {
                pool.cancelPending();
                drained = true;
            }
        }
    }

    // Post-pass over Failed runs: optional diagnostic rerun, then
    // journal their final state.
    for (std::size_t i = 0; i < n; ++i) {
        BenchmarkRun &run = result.results[i];
        if (run.restored() ||
            run.result.outcome != RunOutcome::Failed)
            continue;
        if (spec.diagnose && !token.cancelled())
            diagnoseRun(spec.title, runs[i], token, run);
        if (journal.isOpen()) {
            journal.append(makeJournalEntry(spec.title, runs[i],
                                            prints[i], run));
        }
    }
    }  // firewall scope

    result.wasInterrupted = token.cancelled();
    if (result.wasInterrupted) {
        warn(msg() << "[" << spec.title << "] interrupted: "
                   << "in-flight runs drained, pending runs "
                   << "recorded as cancelled");
    }

    result.degradedStorage = journal.degraded();
    for (const BenchmarkRun &run : result.results)
        result.degradedStorage |= run.storageDegraded;

    if (!spec.jsonPath.empty()) {
        std::ostringstream text;
        result.writeJson(text);
        IoStatus written = hostWriteFileAtomic(
            spec.jsonPath, text.str(), spec.durability);
        if (!written) {
            // The computed results still live in the returned
            // ExperimentResult (and possibly the journal); losing
            // the document file is a degradation, not a sweep
            // failure.
            result.degradedStorage = true;
            warn(msg() << "[" << spec.title << "] cannot write "
                       << "results document (storage degraded): "
                       << written.message);
        } else {
            status(msg() << "[" << spec.title
                         << "] results written to "
                         << spec.jsonPath);
        }
    }
    return result;
}

} // namespace softwatt
