/**
 * @file
 * Shared experiment driver: run one benchmark on a configuration and
 * collect everything the table/figure harnesses need.
 */

#ifndef SOFTWATT_CORE_EXPERIMENT_HH
#define SOFTWATT_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "system.hh"

namespace softwatt
{

/** Results of one benchmark run. */
struct BenchmarkRun
{
    Benchmark bench = Benchmark::Jess;
    std::string name;

    /** Config-variant label assigned by the experiment runner. */
    std::string variant;

    /** Workload scale the run executed at. */
    double scale = 1.0;

    std::unique_ptr<System> system;

    /** How the run ended; breakdowns are partial when not ok(). */
    RunResult result;

    /** Totals priced with the run's own disk configuration. */
    PowerBreakdown breakdown;

    /** Same run re-priced as the conventional (unmanaged) disk. */
    PowerBreakdown conventional;
};

/**
 * Run one benchmark to completion.
 *
 * @param bench Which benchmark.
 * @param config System configuration.
 * @param scale Workload length scale (1.0 = calibrated size; tests
 *        and smoke runs use smaller values).
 */
BenchmarkRun runBenchmark(Benchmark bench, const SystemConfig &config,
                          double scale = 1.0);

/** Average of breakdowns (used for the suite-wide Figs. 5-7). */
PowerBreakdown averageBreakdowns(
    const std::vector<PowerBreakdown> &breakdowns);

/** Usage text for the standard "key=value" command line. */
std::string usageText(const char *argv0);

/**
 * Parse command-line "key=value" overrides into @p out without
 * touching the error handler.
 *
 * @return false on the first malformed argument, with @p error set
 *         to the rejection message ("--help"/"-h" also land here,
 *         with @p error set to the usage text).
 */
bool tryParseArgs(int argc, char **argv, Config &out,
                  std::string &error);

/**
 * Parse command-line "key=value" overrides into a Config.
 *
 * "--help"/"-h" print the usage text on stdout and exit 0; malformed
 * arguments are reported through fatal(), i.e. the
 * SimError/error-handler path, so tests can intercept them.
 */
Config parseArgs(int argc, char **argv);

} // namespace softwatt

#endif // SOFTWATT_CORE_EXPERIMENT_HH
