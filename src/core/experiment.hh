/**
 * @file
 * Shared experiment driver: run one benchmark on a configuration and
 * collect everything the table/figure harnesses need.
 */

#ifndef SOFTWATT_CORE_EXPERIMENT_HH
#define SOFTWATT_CORE_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "system.hh"

namespace softwatt
{

/** Results of one benchmark run. */
struct BenchmarkRun
{
    std::string name;
    std::unique_ptr<System> system;

    /** How the run ended; breakdowns are partial when not ok(). */
    RunResult result;

    /** Totals priced with the run's own disk configuration. */
    PowerBreakdown breakdown;

    /** Same run re-priced as the conventional (unmanaged) disk. */
    PowerBreakdown conventional;
};

/**
 * Run one benchmark to completion.
 *
 * @param bench Which benchmark.
 * @param config System configuration.
 * @param scale Workload length scale (1.0 = calibrated size; tests
 *        and smoke runs use smaller values).
 */
BenchmarkRun runBenchmark(Benchmark bench, const SystemConfig &config,
                          double scale = 1.0);

/** Run the whole six-benchmark suite. */
std::vector<BenchmarkRun> runSuite(const SystemConfig &config,
                                   double scale = 1.0);

/** Average of breakdowns (used for the suite-wide Figs. 5-7). */
PowerBreakdown averageBreakdowns(
    const std::vector<PowerBreakdown> &breakdowns);

/**
 * Parse command-line "key=value" overrides into a Config; exits with
 * a usage message on malformed arguments.
 */
Config parseArgs(int argc, char **argv);

} // namespace softwatt

#endif // SOFTWATT_CORE_EXPERIMENT_HH
