/**
 * @file
 * Shared experiment driver: run one benchmark on a configuration and
 * collect everything the table/figure harnesses need.
 */

#ifndef SOFTWATT_CORE_EXPERIMENT_HH
#define SOFTWATT_CORE_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "system.hh"

namespace softwatt
{

/** Results of one benchmark run. */
struct BenchmarkRun
{
    Benchmark bench = Benchmark::Jess;
    std::string name;

    /** Config-variant label assigned by the experiment runner. */
    std::string variant;

    /** Workload scale the run executed at. */
    double scale = 1.0;

    /**
     * Live simulation state. Null for a run that Failed inside the
     * exception firewall (nothing survived the throw) and for a run
     * replayed from a resume journal (only its JSON survived); use
     * hasData() before touching system-derived statistics.
     */
    std::unique_ptr<System> system;

    /** How the run ended; breakdowns are partial when not ok(). */
    RunResult result;

    /** Executor attempts consumed (2 after a diagnostic rerun). */
    int attempts = 1;

    /** What the firewall caught for a Failed run; "" otherwise. */
    std::string error;

    /**
     * Pre-rendered run-object JSON replayed from the journal; ""
     * for runs executed in this process.
     */
    std::string restoredJson;

    /** Totals priced with the run's own disk configuration. */
    PowerBreakdown breakdown;

    /** Same run re-priced as the conventional (unmanaged) disk. */
    PowerBreakdown conventional;

    /**
     * True when the run resumed from a machine checkpoint instead of
     * simulating from tick zero. Deliberately NOT part of the run's
     * JSON document: checkpointing at a fixed cadence is a
     * deterministic perturbation, so a warm-started run's document
     * is byte-identical to a cold run at the same cadence, and these
     * fields exist only to prove the warm start skipped work.
     */
    bool warmStarted = false;

    /** Simulated tick the run (re)started from; 0 for cold runs. */
    std::uint64_t warmStartTick = 0;

    /** Ticks actually simulated in this process (now - start). */
    std::uint64_t ticksExecuted = 0;

    /**
     * True when the run's storage degraded mid-flight (an autosave
     * failed and the run continued checkpoint-less). Like the
     * warm-start fields, NOT part of the run's JSON document: the
     * simulated results are unaffected, only durability was lost.
     */
    bool storageDegraded = false;

    /** True when live simulation state is attached. */
    bool hasData() const { return system != nullptr; }

    /** True for a run replayed from a resume journal. */
    bool restored() const { return !restoredJson.empty(); }
};

/** Optional knobs for runBenchmark (the experiment runner's hooks). */
struct RunOptions
{
    /** Cooperative-cancellation token polled at window boundaries. */
    const CancelToken *cancel = nullptr;

    /**
     * Diagnostic mode: force the runtime invariant sweeps on (even
     * in builds where they default off) so a rerun of a failed spec
     * pinpoints which contract broke first.
     */
    bool forceInvariants = false;

    /**
     * Autosave a machine checkpoint every this many simulated
     * seconds to checkpointPath; 0 disables. See
     * System::setCheckpointPolicy for the determinism contract.
     */
    double checkpointEverySeconds = 0.0;

    /** Autosave destination (required when autosave is armed). */
    std::string checkpointPath;

    /**
     * Restore machine state from this checkpoint before running;
     * "" starts from scratch. Damaged files fall back one autosave
     * generation (System::restoreCheckpoint).
     */
    std::string restorePath;

    /** Durability level for checkpoint autosaves (see host_io.hh). */
    Durability durability = Durability::Buffered;
};

/**
 * Run one benchmark to completion.
 *
 * @param bench Which benchmark.
 * @param config System configuration.
 * @param scale Workload length scale (1.0 = calibrated size; tests
 *        and smoke runs use smaller values).
 */
BenchmarkRun runBenchmark(Benchmark bench, const SystemConfig &config,
                          double scale = 1.0);

/** runBenchmark with runner hooks (cancellation, diagnostics). */
BenchmarkRun runBenchmark(Benchmark bench, const SystemConfig &config,
                          double scale, const RunOptions &options);

/**
 * The machine+workload checkpoint fingerprint a run of (bench,
 * config, scale) would carry, computed without simulating: builds
 * the System and attaches the workload exactly like runBenchmark,
 * then reads System::checkpointFingerprint(). Two specs that agree
 * on this value can exchange machine checkpoints (the fingerprint
 * excludes run management like deadlines, which restore ignores) —
 * this is the key the serve daemon's warm checkpoint pool indexes.
 */
std::uint64_t machineCheckpointFingerprint(Benchmark bench,
                                           const SystemConfig &config,
                                           double scale);

/** Average of breakdowns (used for the suite-wide Figs. 5-7). */
PowerBreakdown averageBreakdowns(
    const std::vector<PowerBreakdown> &breakdowns);

/** Usage text for the standard "key=value" command line. */
std::string usageText(const char *argv0);

/**
 * Parse command-line "key=value" overrides into @p out without
 * touching the error handler.
 *
 * @return false on the first malformed argument, with @p error set
 *         to the rejection message ("--help"/"-h" also land here,
 *         with @p error set to the usage text).
 */
bool tryParseArgs(int argc, char **argv, Config &out,
                  std::string &error);

/**
 * Parse command-line "key=value" overrides into a Config.
 *
 * Any failure — including "--help"/"-h" — is reported through
 * fatal(), i.e. the SimError/error-handler path, so tests can
 * intercept it. Harness mains should call parseCliArgs() instead,
 * which handles the help/exit-code plumbing without ever calling
 * std::exit from library code.
 */
Config parseArgs(int argc, char **argv);

/**
 * Command-line parse outcome for a harness main().
 *
 * When shouldExit is set the caller must return exitCode from main()
 * immediately: the usage text (exit 0) has already been printed.
 * Malformed arguments never produce a CliArgs — they go through
 * fatal(), which exits 1 in production and throws SimError under an
 * installed error handler — so no library code calls std::exit.
 */
struct CliArgs
{
    Config config;
    bool shouldExit = false;
    int exitCode = 0;
};

/**
 * Parse a harness main()'s command line: "--help"/"-h" print the
 * usage text on stdout and request exit 0; malformed arguments are
 * fatal(); anything else lands in CliArgs::config.
 */
CliArgs parseCliArgs(int argc, char **argv);

} // namespace softwatt

#endif // SOFTWATT_CORE_EXPERIMENT_HH
