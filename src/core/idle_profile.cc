#include "idle_profile.hh"

#include "cpu/inorder_cpu.hh"
#include "cpu/kernel_iface.hh"
#include "cpu/stream_gen.hh"
#include "cpu/superscalar_cpu.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"
#include "os/service_streams.hh"
#include "sim/counter_sink.hh"

namespace softwatt
{

void
IdleProfile::apply(CounterBank &bank, Cycles cycles) const
{
    for (int c = 0; c < numCounters; ++c) {
        if (CounterId(c) == CounterId::Cycles)
            continue;  // cycles are exact, not rate-derived
        double amount = perCycle[c] * double(cycles);
        if (amount > 0) {
            bank.addTo(ExecMode::Idle, CounterId(c),
                       std::uint64_t(amount));
        }
    }
    bank.addTo(ExecMode::Idle, CounterId::Cycles, cycles);
}

namespace
{

/** A kernel that only ever runs the idle loop. */
class IdleOnlyKernel : public KernelIface
{
  public:
    IdleOnlyKernel() : stream(idleLoopSpec(), 0xab1de) {}

    FetchOutcome
    fetchNext(MicroOp &op) override
    {
        return stream.next(op);
    }

    void
    dataTlbMiss(Addr, std::uint32_t, std::vector<MicroOp>) override
    {
    }

    void syscall(const MicroOp &) override {}
    void onCommit(const MicroOp &) override {}
    bool interruptPending() const override { return false; }
    void takeInterrupt(std::vector<MicroOp>) override {}
    void onPipelineEmpty() override {}
    std::uint32_t privilegedTag() const override { return 0; }

    ExecMode
    currentStreamMode() const override
    {
        return ExecMode::Idle;
    }

  private:
    StreamGen stream;
};

} // namespace

IdleProfile
measureIdleProfile(const MachineParams &machine, bool superscalar,
                   Cycles warmup, Cycles measure)
{
    CounterSink sink;
    CacheHierarchy hierarchy(machine, sink);
    Tlb tlb(machine.tlbEntries, machine.pageBytes);
    IdleOnlyKernel kernel;

    std::unique_ptr<Cpu> cpu;
    if (superscalar) {
        cpu = std::make_unique<SuperscalarCpu>(machine, hierarchy, tlb,
                                               sink, kernel);
    } else {
        cpu = std::make_unique<InOrderCpu>(machine, hierarchy, tlb,
                                           sink, kernel);
    }

    for (Cycles i = 0; i < warmup; ++i)
        cpu->cycle();
    sink.global().clear();
    for (Cycles i = 0; i < measure; ++i)
        cpu->cycle();

    IdleProfile profile;
    const CounterBank &bank = sink.global();
    for (int c = 0; c < numCounters; ++c) {
        profile.perCycle[c] =
            double(bank.get(ExecMode::Idle, CounterId(c))) /
            double(measure);
    }
    profile.perCycle[int(CounterId::Cycles)] = 1.0;
    return profile;
}

} // namespace softwatt
