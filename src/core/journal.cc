#include "journal.hh"

#include <charconv>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "sim/logging.hh"

#include "json_writer.hh"

namespace softwatt
{

namespace
{

/**
 * FNV-1a over a canonical field serialization. Doubles go through
 * std::to_chars (shortest round-trip, locale-free), so the stream —
 * and therefore the fingerprint — is identical across hosts.
 */
class Fingerprint
{
  public:
    Fingerprint &
    operator<<(const std::string &text)
    {
        for (char c : text)
            mix(std::uint8_t(c));
        mix(0x1f);  // field separator: "ab"+"c" != "a"+"bc"
        return *this;
    }

    Fingerprint &
    operator<<(const char *text)
    {
        return *this << std::string(text);
    }

    Fingerprint &
    operator<<(double value)
    {
        char buf[64];
        auto [end, ec] =
            std::to_chars(buf, buf + sizeof(buf), value);
        if (ec != std::errc())
            panic("specFingerprint: double conversion failed");
        return *this << std::string(buf, end);
    }

    Fingerprint &
    operator<<(std::uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8)
            mix(std::uint8_t(value >> shift));
        mix(0x1f);
        return *this;
    }

    Fingerprint &
    operator<<(std::int64_t value)
    {
        return *this << std::uint64_t(value);
    }

    Fingerprint &
    operator<<(int value)
    {
        return *this << std::uint64_t(std::int64_t(value));
    }

    Fingerprint &
    operator<<(bool value)
    {
        mix(value ? 1 : 0);
        mix(0x1f);
        return *this;
    }

    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string text(16, '0');
        for (int i = 0; i < 16; ++i)
            text[i] = digits[(state >> (60 - 4 * i)) & 0xf];
        return text;
    }

  private:
    void
    mix(std::uint8_t byte)
    {
        state ^= byte;
        state *= 0x100000001b3ull;
    }

    std::uint64_t state = 0xcbf29ce484222325ull;
};

Fingerprint &
operator<<(Fingerprint &fp, const CacheParams &cache)
{
    return fp << std::uint64_t(cache.sizeBytes) << cache.lineBytes
              << cache.ways << cache.hitLatency;
}

constexpr const char *journalSchema = "softwatt-journal-v1";

} // namespace

std::string
specFingerprint(const RunSpec &spec)
{
    Fingerprint fp;
    fp << benchmarkName(spec.bench) << spec.variant << spec.scale;

    const SystemConfig &c = spec.config;
    const MachineParams &m = c.machine;
    fp << m.instWindowSize << m.intRegs << m.fpRegs << m.lsqSize
       << m.fetchWidth << m.decodeWidth << m.issueWidth
       << m.commitWidth << m.intAlus << m.fpAlus << m.bhtEntries
       << m.btbEntries << m.rasEntries
       << std::uint64_t(m.memorySizeBytes) << m.icache << m.dcache
       << m.l2cache << m.tlbEntries << m.memoryLatency
       << m.pageBytes << m.featureSizeUm << m.vdd << m.freqMhz;

    fp << int(c.cpuModel) << int(c.diskConfig.kind)
       << c.diskConfig.spindownThresholdSeconds;
    const DiskFaultConfig &f = c.diskConfig.fault;
    fp << f.enabled << f.transientErrorRate << f.seekErrorRate
       << f.spinupFailureRate << f.windowStartSeconds
       << f.windowEndSeconds << std::uint64_t(f.seed);

    const Kernel::Params &k = c.kernelParams;
    fp << k.tlbSlowPathProb << k.vfaultProb << k.clockTickSeconds
       << k.timeScale << std::uint64_t(k.fileCacheBlocks)
       << k.haltOnIdle << std::uint64_t(k.seed);
    const ServiceTuning &t = k.tuning;
    fp << std::uint64_t(t.utlbLength)
       << std::uint64_t(t.tlbMissLength)
       << std::uint64_t(t.vfaultLength)
       << std::uint64_t(t.demandZeroLength)
       << std::uint64_t(t.cacheflushLength)
       << std::uint64_t(t.openLength)
       << std::uint64_t(t.openSyncLength)
       << std::uint64_t(t.xstatLength)
       << std::uint64_t(t.duPollLength)
       << std::uint64_t(t.bsdLength)
       << std::uint64_t(t.clockLength)
       << std::uint64_t(t.clockSyncLength)
       << std::uint64_t(t.ioSyncLength)
       << std::uint64_t(t.ioSetupLength)
       << std::uint64_t(t.ioFinishLength)
       << std::uint64_t(t.errorRecoveryLength)
       << std::uint64_t(t.errorRecoverySyncLength)
       << t.openMetadataMissProb;
    fp << k.diskRetry.maxAttempts << k.diskRetry.backoffSeconds
       << k.diskRetry.backoffMultiplier;

    fp << c.timeScale << std::uint64_t(c.sampleWindow)
       << c.useCalibratedPower
       << std::uint64_t(c.idleFastForwardAfter)
       << std::uint64_t(c.maxCycles) << c.clockInterrupts
       << c.deadlineSeconds << c.shutdownGraceSeconds;

    return fp.hex();
}

std::string
journalPathFor(const std::string &json_path)
{
    return json_path + ".journal.jsonl";
}

bool
RunJournal::open(const std::string &path, bool truncate,
                 Durability journal_durability)
{
    std::lock_guard<std::mutex> lock(mutex);
    durability = journal_durability;
    degradedFlag = false;
    IoStatus status = out.open(path, truncate, durability);
    if (!status)
        out.close();
    return out.isOpen();
}

void
RunJournal::append(const JournalEntry &entry)
{
    std::ostringstream line;
    {
        JsonWriter json(line, 0);
        json.beginObject();
        json.member("schema", journalSchema);
        json.member("experiment", entry.experiment);
        json.member("bench", entry.bench);
        json.member("variant", entry.variant);
        json.member("config", entry.config);
        json.member("outcome", entry.outcome);
        json.member("attempts", entry.attempts);
        json.member("run", entry.runJson);
        json.endObject();
    }
    std::lock_guard<std::mutex> lock(mutex);
    if (degradedFlag)
        return;  // Already degraded to non-durable; drop silently.
    if (!out.isOpen())
        panic("RunJournal: append on a closed journal");
    // One write (plus an fdatasync barrier under Durability::Full)
    // per entry: a killed sweep tears at most the final line, which
    // load() detects and skips, and under full durability an entry
    // acknowledged here survives even a power cut.
    IoStatus status = out.write(line.str() + '\n');
    if (status)
        status = out.flush();
    if (status && durability == Durability::Full)
        status = out.sync();
    if (!status) {
        // Structured degradation: the sweep stays alive and keeps
        // producing results, it just stops being crash-resumable.
        degradedFlag = true;
        out.close();
        warn(msg() << "journal: append failed; continuing in "
                   << "non-durable mode (a crash from here on "
                   << "re-executes unjournaled runs): "
                   << status.message);
    }
}

std::vector<JournalEntry>
RunJournal::load(const std::string &path)
{
    std::vector<JournalEntry> entries;
    std::ifstream in(path);
    if (!in)
        return entries;

    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JournalEntry entry;
        std::string schema;
        bool ok = line.front() == '{' && line.back() == '}' &&
                  jsonExtractString(line, "schema", schema) &&
                  schema == journalSchema &&
                  jsonExtractString(line, "experiment",
                                    entry.experiment) &&
                  jsonExtractString(line, "bench", entry.bench) &&
                  jsonExtractString(line, "variant",
                                    entry.variant) &&
                  jsonExtractString(line, "config", entry.config) &&
                  jsonExtractString(line, "outcome",
                                    entry.outcome) &&
                  jsonExtractInt(line, "attempts",
                                 entry.attempts) &&
                  jsonExtractString(line, "run", entry.runJson);
        if (!ok) {
            warn(msg() << "journal '" << path << "' line " << lineno
                       << " is torn or unparseable; ignoring it "
                       << "(the run will be re-executed)");
            continue;
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

std::vector<JournalEntry>
RunJournal::loadLatest(const std::string &path)
{
    // Dedup by identity key, last occurrence winning: a journal that
    // accumulated entries across daemon generations (append mode
    // never truncates) may record the same job several times, and
    // only the newest one reflects the final retry/diagnose state.
    // Key order is first-seen so replay order stays deterministic.
    std::vector<JournalEntry> entries = load(path);
    std::vector<JournalEntry> latest;
    std::vector<std::string> keys;
    for (JournalEntry &entry : entries) {
        std::string key = entry.experiment + '\x1f' + entry.bench +
                          '\x1f' + entry.variant + '\x1f' +
                          entry.config;
        std::size_t slot = keys.size();
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] == key) {
                slot = i;
                break;
            }
        }
        if (slot == keys.size()) {
            keys.push_back(std::move(key));
            latest.push_back(std::move(entry));
        } else {
            latest[slot] = std::move(entry);
        }
    }
    return latest;
}

JournalEntry
makeJournalEntry(const std::string &experiment, const RunSpec &spec,
                 const std::string &fingerprint,
                 const BenchmarkRun &run)
{
    JournalEntry entry;
    entry.experiment = experiment;
    entry.bench = benchmarkName(spec.bench);
    entry.variant = spec.variant;
    entry.config = fingerprint;
    entry.outcome = runOutcomeName(run.result.outcome);
    entry.attempts = run.attempts;
    entry.runJson = run.restored() ? run.restoredJson
                                   : renderRunJson(run);
    return entry;
}

} // namespace softwatt
