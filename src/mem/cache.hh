/**
 * @file
 * Set-associative, write-back, write-allocate cache tag model with
 * true LRU replacement. Tracks tags only (no data), which is all the
 * timing and power models need.
 */

#ifndef SOFTWATT_MEM_CACHE_HH
#define SOFTWATT_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine_params.hh"
#include "sim/types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/** Outcome of a single cache access. */
struct CacheAccessResult
{
    bool hit = false;

    /** A dirty line was evicted and must be written back below. */
    bool writeback = false;

    /** Address of the written-back line (valid iff writeback). */
    Addr writebackAddr = 0;
};

/**
 * Cache tag array.
 *
 * access() performs lookup, LRU update, and (on a miss) allocation
 * with victim selection in one step — the shape every level of the
 * blocking hierarchy needs.
 */
class Cache
{
  public:
    /**
     * @param name For statistics and error messages.
     * @param params Geometry (size, line, ways) and hit latency.
     */
    Cache(std::string name, const CacheParams &params);

    /**
     * Look up @p addr; on a miss, allocate the line, evicting LRU.
     *
     * @param addr Byte address of the access.
     * @param write True marks the line dirty (write-allocate).
     * @return Hit/miss and any writeback of a dirty victim.
     */
    CacheAccessResult access(Addr addr, bool write);

    /** Look up without allocating or touching LRU state. */
    bool probe(Addr addr) const;

    /** Invalidate every line, discarding dirty state (cacheflush). */
    void invalidateAll();

    /** Invalidate one line if present; returns true if it was. */
    bool invalidateLine(Addr addr);

    int hitLatency() const { return params.hitLatency; }
    const std::string &name() const { return cacheName; }

    std::uint64_t refs() const { return numRefs; }
    std::uint64_t hits() const { return numHits; }
    std::uint64_t misses() const { return numMisses; }
    std::uint64_t writebacks() const { return numWritebacks; }

    /** Miss ratio in [0,1]; 0 when no references were made. */
    double
    missRatio() const
    {
        return numRefs ? double(numMisses) / double(numRefs) : 0;
    }

    std::uint64_t numSets() const { return sets; }

    /** Checkpointing: tag array, LRU clock and statistics. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lastUse = 0;
    };

    std::string cacheName;
    CacheParams params;   // ckpt:derived: fixed at construction
    std::uint64_t sets;   // ckpt:derived: computed from params
    int lineShift;        // ckpt:derived: computed from params
    std::vector<Line> lines;  // sets * ways, way-major within a set
    std::uint64_t useCounter = 0;

    std::uint64_t numRefs = 0;
    std::uint64_t numHits = 0;
    std::uint64_t numMisses = 0;
    std::uint64_t numWritebacks = 0;

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
};

} // namespace softwatt

#endif // SOFTWATT_MEM_CACHE_HH
