#include "hierarchy.hh"

namespace softwatt
{

CacheHierarchy::CacheHierarchy(const MachineParams &params,
                               CounterSink &sink)
    : sink(sink),
      l1i("l1i", params.icache),
      l1d("l1d", params.dcache),
      l2("l2", params.l2cache),
      memLatency(params.memoryLatency)
{
}

int
CacheHierarchy::missWalk(Addr addr, bool instruction_side, bool write,
                         ExecMode mode, std::uint32_t tag,
                         MemAccessOutcome &out)
{
    sink.add(mode, instruction_side ? CounterId::L2IRef
                                    : CounterId::L2DRef,
             1, tag);
    CacheAccessResult l2_result = l2.access(addr, write);
    int latency = l2.hitLatency();

    if (!l2_result.hit) {
        out.l2Hit = false;
        out.memAccess = true;
        sink.add(mode, CounterId::L2Miss, 1, tag);
        sink.add(mode, CounterId::MemRef, 1, tag);
        ++numMemAccesses;
        latency += memLatency;
        if (l2_result.writeback) {
            // Dirty L2 victim written back to memory.
            sink.add(mode, CounterId::MemRef, 1, tag);
            ++numMemAccesses;
        }
    }
    return latency;
}

MemAccessOutcome
CacheHierarchy::ifetch(Addr addr, ExecMode mode, std::uint32_t tag)
{
    MemAccessOutcome out;
    sink.add(mode, CounterId::IL1Ref, 1, tag);
    CacheAccessResult l1 = l1i.access(addr, false);
    out.latency = l1i.hitLatency();
    if (!l1.hit) {
        out.l1Hit = false;
        sink.add(mode, CounterId::IL1Miss, 1, tag);
        out.latency += missWalk(addr, true, false, mode, tag, out);
    }
    return out;
}

MemAccessOutcome
CacheHierarchy::dataAccess(Addr addr, bool write, ExecMode mode,
                           std::uint32_t tag)
{
    MemAccessOutcome out;
    sink.add(mode, CounterId::DL1Ref, 1, tag);
    CacheAccessResult l1 = l1d.access(addr, write);
    out.latency = l1d.hitLatency();
    if (!l1.hit) {
        out.l1Hit = false;
        sink.add(mode, CounterId::DL1Miss, 1, tag);
        out.latency += missWalk(addr, false, write, mode, tag, out);
        if (l1.writeback) {
            // Dirty L1 victim written back into the L2.
            sink.add(mode, CounterId::L2DRef, 1, tag);
            CacheAccessResult wb =
                l2.access(l1.writebackAddr, true);
            if (!wb.hit) {
                sink.add(mode, CounterId::L2Miss, 1, tag);
                sink.add(mode, CounterId::MemRef, 1, tag);
                ++numMemAccesses;
            }
        }
    }
    return out;
}

void
CacheHierarchy::flushL1(ExecMode mode)
{
    // Dirty D-cache lines stream back through the L2; charge one
    // L2 write per dirty line flushed.
    (void)mode;
    l1i.invalidateAll();
    l1d.invalidateAll();
}

void
CacheHierarchy::saveState(ChunkWriter &out) const
{
    l1i.saveState(out);
    l1d.saveState(out);
    l2.saveState(out);
    out.u64(numMemAccesses);
}

void
CacheHierarchy::loadState(ChunkReader &in)
{
    l1i.loadState(in);
    l1d.loadState(in);
    l2.loadState(in);
    numMemAccesses = in.u64();
}

} // namespace softwatt
