/**
 * @file
 * Per-process page table: tracks which virtual pages have been
 * touched (and thus demand-zeroed). First touch of a page raises a
 * validity fault (vfault) handled by demand_zero; later TLB misses on
 * the page are pure utlb refills.
 */

#ifndef SOFTWATT_MEM_PAGE_TABLE_HH
#define SOFTWATT_MEM_PAGE_TABLE_HH

#include <cstdint>
#include <unordered_set>

#include "sim/checkpoint.hh"
#include "sim/types.hh"

namespace softwatt
{

/**
 * Sparse page table keyed by virtual page number.
 */
class PageTable : public Checkpointable
{
  public:
    explicit PageTable(int page_bytes = 4096);

    /** Has this page been allocated (demand-zeroed) already? */
    bool isMapped(Addr vaddr) const;

    /** Mark the page mapped; returns false if it already was. */
    bool map(Addr vaddr);

    /** Number of mapped pages. */
    std::uint64_t mappedPages() const { return pages.size(); }

    /** Page size in bytes. */
    int pageBytes() const { return pageSize; }

    /** Drop all mappings (process teardown). */
    void clear() { pages.clear(); }

    // Checkpointable: mapped VPNs, written in sorted order so the
    // byte stream is independent of unordered_set iteration order.
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    int pageSize;   // ckpt:derived: fixed at construction
    int pageShift;  // ckpt:derived: computed from pageSize
    std::unordered_set<Addr> pages;

    Addr vpn(Addr vaddr) const { return vaddr >> pageShift; }
};

} // namespace softwatt

#endif // SOFTWATT_MEM_PAGE_TABLE_HH
