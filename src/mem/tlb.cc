#include "tlb.hh"

#include "sim/logging.hh"

namespace softwatt
{

Tlb::Tlb(int num_entries, int page_bytes)
    : entries(num_entries), pageSize(page_bytes)
{
    if (num_entries <= 0)
        fatal("TLB must have at least one entry");
    if (page_bytes <= 0 || (page_bytes & (page_bytes - 1)) != 0)
        fatal("TLB page size must be a power of two");
    pageShift = 0;
    for (int v = page_bytes; v > 1; v >>= 1)
        ++pageShift;
}

bool
Tlb::lookup(std::uint32_t asid, Addr vaddr)
{
    ++numRefs;
    ++useCounter;
    Addr page = vpn(vaddr);
    for (Entry &e : entries) {
        if (e.valid && e.asid == asid && e.vpn == page) {
            e.lastUse = useCounter;
            return true;
        }
    }
    ++numMisses;
    return false;
}

void
Tlb::insert(std::uint32_t asid, Addr vaddr)
{
    ++useCounter;
    Addr page = vpn(vaddr);

    Entry *victim = &entries[0];
    for (Entry &e : entries) {
        if (e.valid && e.asid == asid && e.vpn == page) {
            e.lastUse = useCounter;  // already present
            return;
        }
        if (!e.valid) {
            victim = &e;
        } else if (victim->valid && e.lastUse < victim->lastUse) {
            victim = &e;
        }
    }
    victim->asid = asid;
    victim->vpn = page;
    victim->valid = true;
    victim->lastUse = useCounter;
}

void
Tlb::invalidateAll()
{
    for (Entry &e : entries)
        e.valid = false;
}

void
Tlb::invalidateAsid(std::uint32_t asid)
{
    for (Entry &e : entries) {
        if (e.asid == asid)
            e.valid = false;
    }
}

void
Tlb::saveState(ChunkWriter &out) const
{
    out.u64(std::uint64_t(entries.size()));
    for (const Entry &e : entries) {
        out.u32(e.asid);
        out.u64(e.vpn);
        out.b(e.valid);
        out.u64(e.lastUse);
    }
    out.u64(useCounter);
    out.u64(numRefs);
    out.u64(numMisses);
}

void
Tlb::loadState(ChunkReader &in)
{
    std::uint64_t count = in.u64();
    if (count != entries.size()) {
        throw CheckpointError(
            msg() << "tlb: checkpoint has " << count
                  << " entries, this configuration has "
                  << entries.size());
    }
    for (Entry &e : entries) {
        e.asid = in.u32();
        e.vpn = in.u64();
        e.valid = in.b();
        e.lastUse = in.u64();
    }
    useCounter = in.u64();
    numRefs = in.u64();
    numMisses = in.u64();
}

} // namespace softwatt
