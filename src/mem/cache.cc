#include "cache.hh"

#include "sim/checkpoint.hh"

#include "sim/logging.hh"

namespace softwatt
{

namespace
{

int
log2Exact(std::uint64_t v, const char *what)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal(msg() << what << " (" << v << ") must be a power of two");
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

Cache::Cache(std::string name, const CacheParams &params)
    : cacheName(std::move(name)), params(params)
{
    if (params.ways <= 0)
        fatal(msg() << cacheName << ": ways must be positive");
    std::uint64_t line_way =
        std::uint64_t(params.lineBytes) * params.ways;
    if (line_way == 0 || params.sizeBytes % line_way != 0)
        fatal(msg() << cacheName
                    << ": size must be a multiple of line * ways");
    sets = params.sizeBytes / line_way;
    log2Exact(sets, "cache sets");
    lineShift = log2Exact(std::uint64_t(params.lineBytes), "line size");
    lines.resize(sets * params.ways);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    std::uint64_t base = setIndex(addr) * params.ways;
    Addr tag = tagOf(addr);
    for (int w = 0; w < params.ways; ++w) {
        Line &line = lines[base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    return const_cast<Cache *>(this)->findLine(addr);
}

CacheAccessResult
Cache::access(Addr addr, bool write)
{
    ++numRefs;
    ++useCounter;

    CacheAccessResult result;
    if (Line *line = findLine(addr)) {
        ++numHits;
        result.hit = true;
        line->lastUse = useCounter;
        line->dirty = line->dirty || write;
        return result;
    }

    ++numMisses;

    // Victim: invalid way first, else true LRU.
    std::uint64_t base = setIndex(addr) * params.ways;
    Line *victim = &lines[base];
    for (int w = 0; w < params.ways; ++w) {
        Line &line = lines[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lastUse < victim->lastUse)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        result.writeback = true;
        result.writebackAddr = victim->tag << lineShift;
        ++numWritebacks;
    }

    victim->tag = tagOf(addr);
    victim->valid = true;
    victim->dirty = write;
    victim->lastUse = useCounter;
    return result;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::invalidateAll()
{
    for (Line &line : lines) {
        line.valid = false;
        line.dirty = false;
    }
}

bool
Cache::invalidateLine(Addr addr)
{
    if (Line *line = findLine(addr)) {
        line->valid = false;
        line->dirty = false;
        return true;
    }
    return false;
}

void
Cache::saveState(ChunkWriter &out) const
{
    // Geometry is derived from the configuration (covered by the
    // image fingerprint); only dynamic state is stored.
    out.u64(std::uint64_t(lines.size()));
    for (const Line &line : lines) {
        out.u64(line.tag);
        out.b(line.valid);
        out.b(line.dirty);
        out.u64(line.lastUse);
    }
    out.u64(useCounter);
    out.u64(numRefs);
    out.u64(numHits);
    out.u64(numMisses);
    out.u64(numWritebacks);
}

void
Cache::loadState(ChunkReader &in)
{
    std::uint64_t count = in.u64();
    if (count != lines.size()) {
        throw CheckpointError(
            msg() << cacheName << ": checkpoint has " << count
                  << " lines, this configuration has "
                  << lines.size());
    }
    for (Line &line : lines) {
        line.tag = in.u64();
        line.valid = in.b();
        line.dirty = in.b();
        line.lastUse = in.u64();
    }
    useCounter = in.u64();
    numRefs = in.u64();
    numHits = in.u64();
    numMisses = in.u64();
    numWritebacks = in.u64();
}

} // namespace softwatt
