/**
 * @file
 * The two-level cache hierarchy of Table 1: split L1 I/D caches above
 * a unified L2 above DRAM. Returns access latencies for the timing
 * models and feeds the counter schema for the power pass.
 */

#ifndef SOFTWATT_MEM_HIERARCHY_HH
#define SOFTWATT_MEM_HIERARCHY_HH

#include "sim/checkpoint.hh"
#include "sim/counter_sink.hh"
#include "sim/machine_params.hh"
#include "sim/types.hh"

#include "cache.hh"

namespace softwatt
{

/** Timing/level outcome of one hierarchy access. */
struct MemAccessOutcome
{
    int latency = 1;       ///< Total cycles to data.
    bool l1Hit = true;
    bool l2Hit = true;     ///< Meaningful only when !l1Hit.
    bool memAccess = false;
};

/**
 * Blocking cache hierarchy.
 *
 * Each ifetch()/dataAccess() models the full walk: L1 lookup, L2 on a
 * miss, DRAM on an L2 miss, plus dirty-victim writebacks, charging
 * each level's reference counters to the requesting execution mode.
 */
class CacheHierarchy : public Checkpointable
{
  public:
    CacheHierarchy(const MachineParams &params, CounterSink &sink);

    /**
     * Instruction fetch of one instruction at @p addr.
     * Counts one IL1Ref per call (the paper's Table 3 metric counts
     * per-instruction references).
     */
    MemAccessOutcome ifetch(Addr addr, ExecMode mode,
                            std::uint32_t tag = 0);

    /** Data access (load or store) at @p addr. */
    MemAccessOutcome dataAccess(Addr addr, bool write, ExecMode mode,
                                std::uint32_t tag = 0);

    /** Flush both L1 caches (the cacheflush kernel service). */
    void flushL1(ExecMode mode);

    Cache &icache() { return l1i; }
    Cache &dcache() { return l1d; }
    Cache &l2cache() { return l2; }
    const Cache &icache() const { return l1i; }
    const Cache &dcache() const { return l1d; }
    const Cache &l2cache() const { return l2; }

    std::uint64_t memAccesses() const { return numMemAccesses; }

    // Checkpointable: all three tag arrays plus the DRAM counter.
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    CounterSink &sink;
    Cache l1i;
    Cache l1d;
    Cache l2;
    int memLatency;  // ckpt:derived: fixed at construction
    std::uint64_t numMemAccesses = 0;

    /** L2 + memory walk shared by both sides. */
    int missWalk(Addr addr, bool instruction_side, bool write,
                 ExecMode mode, std::uint32_t tag,
                 MemAccessOutcome &out);
};

} // namespace softwatt

#endif // SOFTWATT_MEM_HIERARCHY_HH
