#include "page_table.hh"

#include "sim/logging.hh"

namespace softwatt
{

PageTable::PageTable(int page_bytes) : pageSize(page_bytes)
{
    if (page_bytes <= 0 || (page_bytes & (page_bytes - 1)) != 0)
        fatal("page size must be a power of two");
    pageShift = 0;
    for (int v = page_bytes; v > 1; v >>= 1)
        ++pageShift;
}

bool
PageTable::isMapped(Addr vaddr) const
{
    return pages.count(vpn(vaddr)) != 0;
}

bool
PageTable::map(Addr vaddr)
{
    return pages.insert(vpn(vaddr)).second;
}

} // namespace softwatt
