#include "page_table.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace softwatt
{

PageTable::PageTable(int page_bytes) : pageSize(page_bytes)
{
    if (page_bytes <= 0 || (page_bytes & (page_bytes - 1)) != 0)
        fatal("page size must be a power of two");
    pageShift = 0;
    for (int v = page_bytes; v > 1; v >>= 1)
        ++pageShift;
}

bool
PageTable::isMapped(Addr vaddr) const
{
    return pages.count(vpn(vaddr)) != 0;
}

bool
PageTable::map(Addr vaddr)
{
    return pages.insert(vpn(vaddr)).second;
}

void
PageTable::saveState(ChunkWriter &out) const
{
    std::vector<Addr> sorted(pages.begin(), pages.end());
    std::sort(sorted.begin(), sorted.end());
    out.u64(std::uint64_t(sorted.size()));
    for (Addr page : sorted)
        out.u64(page);
}

void
PageTable::loadState(ChunkReader &in)
{
    pages.clear();
    std::uint64_t count = in.u64();
    for (std::uint64_t i = 0; i < count; ++i)
        pages.insert(in.u64());
}

} // namespace softwatt
