/**
 * @file
 * Software-managed, fully-associative unified TLB (Table 1: 64
 * entries). Misses trap to the operating system's utlb handler,
 * exactly as on MIPS; the hardware provides lookup and insert only.
 */

#ifndef SOFTWATT_MEM_TLB_HH
#define SOFTWATT_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/types.hh"

namespace softwatt
{

/**
 * Fully associative TLB with LRU replacement.
 *
 * Entries are keyed by (address-space id, virtual page number).
 * Kernel-mapped (KSEG0-style) addresses bypass the TLB entirely and
 * never reach this class.
 */
class Tlb : public Checkpointable
{
  public:
    explicit Tlb(int num_entries, int page_bytes = 4096);

    /**
     * Look up a virtual address for an address space.
     * @return True on a hit (and refreshes LRU state).
     */
    bool lookup(std::uint32_t asid, Addr vaddr);

    /** Insert a translation (the utlb handler's TLBWR). */
    void insert(std::uint32_t asid, Addr vaddr);

    /** Drop every entry (context-switch flush on ASID exhaustion). */
    void invalidateAll();

    /** Drop entries of one address space. */
    void invalidateAsid(std::uint32_t asid);

    std::uint64_t refs() const { return numRefs; }
    std::uint64_t misses() const { return numMisses; }
    int size() const { return int(entries.size()); }
    int pageBytes() const { return pageSize; }

    /** Virtual page number of an address. */
    Addr vpn(Addr vaddr) const { return vaddr >> pageShift; }

    // Checkpointable: entries, LRU clock and statistics.
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    struct Entry
    {
        std::uint32_t asid = 0;
        Addr vpn = 0;
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> entries;
    int pageSize;   // ckpt:derived: fixed at construction
    int pageShift;  // ckpt:derived: computed from pageSize
    std::uint64_t useCounter = 0;
    std::uint64_t numRefs = 0;
    std::uint64_t numMisses = 0;
};

} // namespace softwatt

#endif // SOFTWATT_MEM_TLB_HH
