#include "session.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace softwatt::serve
{

Session::Session(int fd) : sock(fd) {}

Session::~Session()
{
    if (sock >= 0)
        ::close(sock);
}

bool
Session::readLine(std::string &line)
{
    for (;;) {
        std::size_t nl = inbox.find('\n');
        if (nl != std::string::npos) {
            line = inbox.substr(0, nl);
            inbox.erase(0, nl + 1);
            return true;
        }
        char buffer[4096];
        ssize_t n = ::recv(sock, buffer, sizeof(buffer), 0);
        if (n > 0) {
            inbox.append(buffer, std::size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        // EOF or error: a partial trailing line is torn — the peer
        // died mid-send — and is deliberately dropped.
        if (n < 0)
            brokenFlag.store(true, std::memory_order_release);
        inbox.clear();
        return false;
    }
}

bool
Session::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(writeMutex);
    if (brokenFlag.load(std::memory_order_acquire))
        return false;
    std::string text = line + '\n';
    std::size_t sent = 0;
    while (sent < text.size()) {
        // MSG_NOSIGNAL: a vanished peer must yield EPIPE, not a
        // process-killing SIGPIPE, even when no SignalGuard is
        // active (tests drive sessions without one).
        ssize_t n = ::send(sock, text.data() + sent,
                           text.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += std::size_t(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        brokenFlag.store(true, std::memory_order_release);
        return false;
    }
    return true;
}

void
Session::shutdownBoth()
{
    ::shutdown(sock, SHUT_RDWR);
}

} // namespace softwatt::serve
