#include "checkpoint_pool.hh"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/logging.hh"

namespace softwatt::serve
{

namespace fs = std::filesystem;

namespace
{

/** File size, or 0 when the file is absent/unreadable. */
std::uint64_t
fileBytes(const std::string &path)
{
    return hostFileSize(path);
}

/** Parse a 16-hex-digit prefix; false when it is not one. */
bool
parseKeyPrefix(const std::string &name, std::uint64_t &key)
{
    if (name.size() < 16)
        return false;
    std::uint64_t value = 0;
    for (int i = 0; i < 16; ++i) {
        char c = name[std::size_t(i)];
        value <<= 4;
        if (c >= '0' && c <= '9')
            value |= std::uint64_t(c - '0');
        else if (c >= 'a' && c <= 'f')
            value |= std::uint64_t(c - 'a' + 10);
        else
            return false;
    }
    key = value;
    return true;
}

} // namespace

CheckpointPool::CheckpointPool(std::string directory,
                               std::uint64_t budget_bytes,
                               Durability pool_durability)
    : dir(std::move(directory)), budget(budget_bytes),
      durability(pool_durability)
{
}

std::string
CheckpointPool::keyName(std::uint64_t key)
{
    static const char digits[] = "0123456789abcdef";
    std::string text(16, '0');
    for (int i = 0; i < 16; ++i)
        text[std::size_t(i)] = digits[(key >> (60 - 4 * i)) & 0xf];
    return text + ".ckpt";
}

std::string
CheckpointPool::poolPath(std::uint64_t key) const
{
    return dir + "/" + keyName(key);
}

std::size_t
CheckpointPool::recover()
{
    std::lock_guard<std::mutex> lock(mutex);
    std::error_code ec;
    std::vector<std::string> poolFiles;
    std::vector<std::pair<std::uint64_t, std::string>> orphans;
    std::vector<std::pair<std::uint64_t, std::string>> poolRotated;
    std::vector<std::string> rotated;
    for (const fs::directory_entry &entry :
         fs::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        std::uint64_t key = 0;
        if (!parseKeyPrefix(name, key))
            continue;
        std::string rest = name.substr(16);
        if (rest == ".ckpt") {
            poolFiles.push_back(name);
        } else if (rest == ".ckpt.1") {
            // A rotated pool generation. With its base alive it is
            // budgeted alongside it below; with the base vanished
            // (crash between promote's rotate and rename) it must be
            // promoted back into the slot or deleted, or it is never
            // tracked and leaks across daemon generations.
            poolRotated.emplace_back(key, entry.path().string());
        } else if (rest.compare(0, 10, ".inflight.") == 0) {
            if (rest.size() > 5 &&
                rest.compare(rest.size() - 5, 5, ".ckpt") == 0)
                orphans.emplace_back(key, entry.path().string());
            else
                // A rotated in-flight generation (".ckpt.1"). It
                // must outlive the orphan pass — a torn newest
                // generation falls back to it — so only note it for
                // the final sweep.
                rotated.push_back(entry.path().string());
        }
    }

    // Deterministic order: existing pool entries by name, then
    // orphans by name (a fresh daemon has no usage history to rank
    // them by, and stable order keeps tests reproducible).
    std::sort(poolFiles.begin(), poolFiles.end());
    std::sort(orphans.begin(), orphans.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });

    for (const std::string &name : poolFiles) {
        std::uint64_t key = 0;
        parseKeyPrefix(name, key);
        if (!sizes.count(key))
            lru.push_back(key);
        refreshSizeLocked(key);
    }

    auto verifies = [](const std::string &path) {
        try {
            readCheckpoint(path);
            return true;
        } catch (const CheckpointError &) {
            return false;
        }
    };

    std::size_t promoted = 0;
    std::sort(poolRotated.begin(), poolRotated.end());
    for (const auto &[key, path] : poolRotated) {
        if (sizes.count(key))
            continue;  // Base alive; already budgeted beside it.
        // The newest generation is gone: the survivor becomes the
        // pool slot again when it verifies, and is deleted when torn
        // (or the pool runs in scratch mode).
        if (budget > 0 && verifies(path)) {
            IoStatus moved = hostRename(path, poolPath(key),
                                        durability);
            if (moved) {
                lru.push_back(key);
                refreshSizeLocked(key);
                ++promoted;
                continue;
            }
            warn(msg() << "checkpoint pool: cannot restore rotated "
                       << "generation '" << path
                       << "': " << moved.message);
        }
        hostRemoveBestEffort(path);
    }

    for (const auto &[key, path] : orphans) {
        // Only promote an image that verifies end-to-end: an orphan
        // torn by SIGKILL mid-write must not poison the pool slot.
        // A torn newest generation falls back to its rotated
        // predecessor before the progress is abandoned.
        std::string candidate = path;
        bool usable = verifies(candidate);
        if (!usable) {
            candidate = checkpointPreviousGeneration(path);
            usable = fileBytes(candidate) > 0 && verifies(candidate);
        }
        if (!usable || budget == 0) {
            hostRemoveBestEffort(path);
            hostRemoveBestEffort(checkpointPreviousGeneration(path));
            continue;
        }
        std::string pool = poolPath(key);
        // Each rename is checked on its own: the rotation failing
        // must not be masked by the promote succeeding (or vice
        // versa), and a failed promote leaves the slot's previous
        // contents — already budgeted above — untouched.
        if (hostFileExists(pool)) {
            IoStatus rotated = hostRename(
                pool, checkpointPreviousGeneration(pool),
                durability);
            if (!rotated) {
                warn(msg() << "checkpoint pool: cannot rotate '"
                           << pool << "' for orphan promotion: "
                           << rotated.message);
                hostRemoveBestEffort(path);
                hostRemoveBestEffort(
                    checkpointPreviousGeneration(path));
                continue;
            }
        }
        IoStatus moved = hostRename(candidate, pool, durability);
        hostRemoveBestEffort(path);
        hostRemoveBestEffort(checkpointPreviousGeneration(path));
        if (!moved) {
            warn(msg() << "checkpoint pool: cannot promote orphan '"
                       << candidate << "': " << moved.message);
            refreshSizeLocked(key);
            continue;
        }
        touchLocked(key);
        refreshSizeLocked(key);
        ++promoted;
    }
    // Now that every orphan had its chance to fall back, sweep the
    // rotated generations that remain (strays whose newest image was
    // promoted directly, or whose base vanished entirely).
    for (const std::string &path : rotated)
        hostRemoveBestEffort(path);
    enforceBudgetLocked();
    if (promoted > 0) {
        inform(msg() << "checkpoint pool: promoted " << promoted
                     << " image(s) orphaned by a previous daemon "
                     << "generation");
    }
    return promoted;
}

std::string
CheckpointPool::lookup(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = sizes.find(key);
    if (it == sizes.end())
        return "";
    std::string path = poolPath(key);
    if (fileBytes(path) == 0 &&
        fileBytes(checkpointPreviousGeneration(path)) == 0) {
        // Both generations vanished under us; drop the entry.
        lru.remove(key);
        sizes.erase(it);
        return "";
    }
    touchLocked(key);
    return path;
}

std::string
CheckpointPool::inflightPath(std::uint64_t key)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t seq = inflightSeq++;
    return dir + "/" + keyName(key).substr(0, 16) + ".inflight." +
           std::to_string(seq) + ".ckpt";
}

bool
CheckpointPool::promote(std::uint64_t key,
                        const std::string &inflight_path)
{
    std::lock_guard<std::mutex> lock(mutex);
    std::string previous =
        checkpointPreviousGeneration(inflight_path);
    if (budget == 0 || fileBytes(inflight_path) == 0) {
        hostRemoveBestEffort(inflight_path);
        hostRemoveBestEffort(previous);
        return false;
    }
    std::string pool = poolPath(key);
    // The rotate and the promote are checked separately: the old
    // code funneled both renames through one error_code, so a failed
    // rotation was silently overwritten by a successful promote —
    // destroying the generation the fallback path depends on — and a
    // failed promote could strand the in-flight file while the entry
    // was still indexed.
    if (hostFileExists(pool)) {
        IoStatus rotated = hostRename(
            pool, checkpointPreviousGeneration(pool), durability);
        if (!rotated) {
            warn(msg() << "checkpoint pool: cannot rotate '" << pool
                       << "': " << rotated.message
                       << " (keeping the existing image)");
            hostRemoveBestEffort(inflight_path);
            hostRemoveBestEffort(previous);
            refreshSizeLocked(key);
            return false;
        }
    }
    IoStatus moved = hostRename(inflight_path, pool, durability);
    if (!moved) {
        warn(msg() << "checkpoint pool: cannot promote "
                   << inflight_path << ": " << moved.message);
        hostRemoveBestEffort(inflight_path);
        hostRemoveBestEffort(previous);
        // The slot may now hold only the rotated generation; re-stat
        // so the index never points at files that are not there.
        refreshSizeLocked(key);
        return false;
    }
    hostRemoveBestEffort(previous);
    touchLocked(key);
    refreshSizeLocked(key);
    enforceBudgetLocked();
    return sizes.count(key) != 0;
}

void
CheckpointPool::discard(const std::string &inflight_path)
{
    hostRemoveBestEffort(inflight_path);
    hostRemoveBestEffort(checkpointPreviousGeneration(inflight_path));
}

std::uint64_t
CheckpointPool::bytesUsed() const
{
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t total = 0;
    for (const auto &[key, size] : sizes)
        total += size;
    return total;
}

std::size_t
CheckpointPool::entries() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return sizes.size();
}

std::uint64_t
CheckpointPool::evictions() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return evicted;
}

void
CheckpointPool::refreshSizeLocked(std::uint64_t key)
{
    std::string path = poolPath(key);
    std::uint64_t total =
        fileBytes(path) +
        fileBytes(checkpointPreviousGeneration(path));
    if (total == 0) {
        lru.remove(key);
        sizes.erase(key);
        return;
    }
    sizes[key] = total;
}

void
CheckpointPool::touchLocked(std::uint64_t key)
{
    lru.remove(key);
    lru.push_front(key);
}

void
CheckpointPool::enforceBudgetLocked()
{
    std::uint64_t used = 0;
    for (const auto &[key, size] : sizes)
        used += size;
    while (used > budget && !lru.empty()) {
        std::uint64_t victim = lru.back();
        lru.pop_back();
        std::uint64_t size = sizes[victim];
        std::string path = poolPath(victim);
        hostRemoveBestEffort(path);
        hostRemoveBestEffort(checkpointPreviousGeneration(path));
        sizes.erase(victim);
        used -= size;
        ++evicted;
    }
}

} // namespace softwatt::serve
