#include "client.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace softwatt::serve
{

bool
ServeClient::connect(const std::string &socket_path,
                     std::string &error)
{
    sockaddr_un address{};
    if (socket_path.size() >= sizeof(address.sun_path)) {
        error = msg() << "socket path '" << socket_path
                      << "' is too long for AF_UNIX";
        return false;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = msg() << "socket(): " << std::strerror(errno);
        return false;
    }
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&address),
                  sizeof(address)) != 0) {
        error = msg() << "connect('" << socket_path
                      << "'): " << std::strerror(errno);
        ::close(fd);
        return false;
    }
    link = std::make_unique<Session>(fd);
    return true;
}

bool
ServeClient::send(const ServeRequest &request)
{
    return link && link->writeLine(renderServeRequest(request));
}

bool
ServeClient::receive(ServeResponse &response, std::string &error)
{
    if (!link) {
        error = "not connected";
        return false;
    }
    std::string line;
    if (!link->readLine(line)) {
        error = "daemon closed the connection";
        return false;
    }
    return parseServeResponse(line, response, error);
}

bool
ServeClient::call(const ServeRequest &request,
                  ServeResponse &response, std::string &error)
{
    if (!send(request)) {
        error = "cannot send (connection broken)";
        return false;
    }
    return receive(response, error);
}

void
ServeClient::disconnect()
{
    link.reset();
}

} // namespace softwatt::serve
