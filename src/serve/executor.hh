/**
 * @file
 * Per-job execution policy of the serve daemon: warm-start from the
 * checkpoint pool, bounded retries with exponential backoff, and the
 * evidence (attempts, warm-start tick, executed ticks) the response
 * envelope reports.
 *
 * The executor is deliberately independent of sockets and threads so
 * tests can drive it directly; the daemon calls it from worker
 * threads with a per-job CancelToken.
 */

#ifndef SOFTWATT_SERVE_EXECUTOR_HH
#define SOFTWATT_SERVE_EXECUTOR_HH

#include <cstdint>
#include <string>

#include "core/runner.hh"

#include "checkpoint_pool.hh"

namespace softwatt::serve
{

/** Service-wide execution policy applied to every job. */
struct ServeExecOptions
{
    /** Experiment title used in run logs. */
    std::string title = "serve";

    /**
     * Extra attempts after the first for a run that Failed inside
     * the exception firewall. The final attempt runs with the
     * invariant sweeps forced on, mirroring diagnose=1, so the last
     * error message pinpoints the broken contract.
     */
    int retries = 0;

    /**
     * Base retry backoff; the delay before retry k is
     * retryBackoffMs(backoffMs, k): exponential but clamped.
     */
    std::uint64_t backoffMs = 0;

    /**
     * Autosave cadence in simulated seconds; 0 disables
     * checkpointing entirely (and with it warm starts). Checkpoints
     * are a deterministic perturbation, so every run of a config —
     * warm, cold, or reference — must use the same cadence for
     * byte-identical documents.
     */
    double warmEveryS = 0.0;

    /** Warm image pool; null disables checkpointing like warmEveryS=0. */
    CheckpointPool *pool = nullptr;

    /** Durability level for in-flight autosaves (see host_io.hh). */
    Durability durability = Durability::Buffered;
};

/** Everything the daemon needs to answer for one executed job. */
struct ServeExecResult
{
    BenchmarkRun run;

    /** Pre-rendered run object (journal + document splice text). */
    std::string runJson;

    /** Attempts consumed (1 = no retries needed). */
    int attempts = 1;

    bool warmStarted = false;
    std::uint64_t warmStartTick = 0;
    std::uint64_t ticksExecuted = 0;

    /** True when the run's storage degraded mid-flight (failed
     *  autosave -> checkpoint-less execution); surfaced in the
     *  response envelope's degraded flag. */
    bool storageDegraded = false;
};

/**
 * Execute @p spec under the service policy. Never throws: failures
 * come back as a run with RunOutcome::Failed. Requires a throwing
 * error handler to be installed (the daemon installs one for its
 * lifetime; see runSpecProtected).
 */
ServeExecResult executeServeSpec(RunSpec spec,
                                 const ServeExecOptions &options,
                                 const CancelToken &token);

/**
 * Parse a request's "key=value ..." spec text into a RunSpec: the
 * run keys (bench=, scale=, variant=, deadline_s=, grace_s=) plus
 * every machine key SystemConfig::fromConfig accepts; unknown keys
 * are rejected. The daemon and the client's cold-reference mode both
 * use this, so a spec means the same thing on either side of the
 * socket. Never terminates: errors come back through @p error.
 */
bool parseServeSpec(const std::string &text, RunSpec &spec,
                    std::string &benchName, std::string &error);

/**
 * Backoff before retry @p attempt (1-based index of the attempt that
 * just failed): @p baseMs doubled per attempt, with the growth
 * factor capped at 2^6 and the delay capped at max(baseMs, 5000) ms
 * — defined for every attempt count serve_retries allows.
 */
std::uint64_t retryBackoffMs(std::uint64_t baseMs, int attempt);

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_EXECUTOR_HH
