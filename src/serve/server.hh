/**
 * @file
 * The softwatt-serve daemon core: a crash-tolerant simulation
 * service accepting experiment specs over a local unix socket
 * (newline-delimited JSON, see protocol.hh) and answering each with
 * a complete softwatt-experiment-v2 document.
 *
 * Robustness properties (DESIGN.md §4j):
 *  - Bounded admission with client-fair round-robin scheduling and a
 *    structured `overloaded` rejection once the queue is full.
 *  - Per-job wall and simulated deadlines, cooperative cancellation.
 *  - Bounded retries with exponential backoff behind the exception
 *    firewall; the final retry forces the invariant sweeps on.
 *  - Graceful drain: the first SIGTERM/SIGINT/SIGHUP (bridged to a
 *    CancelToken by the caller's SignalGuard) stops admissions and
 *    finishes admitted + in-flight work; a second signal cancels
 *    queued jobs and hard-stops in-flight ones at their next sample
 *    window.
 *  - Crash recovery: finished runs are journaled (append-only across
 *    daemon generations), so a SIGKILL'd daemon re-answers finished
 *    jobs byte-identically from the journal; orphaned warm-up
 *    checkpoints are promoted into the pool so in-flight progress
 *    survives too.
 *  - Warm checkpoint pool: jobs resume from pooled post-warm-up
 *    images of matching configurations (see checkpoint_pool.hh).
 */

#ifndef SOFTWATT_SERVE_SERVER_HH
#define SOFTWATT_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/journal.hh"
#include "core/runner.hh"
#include "sim/thread_pool.hh"

#include "admission.hh"
#include "checkpoint_pool.hh"
#include "protocol.hh"
#include "session.hh"

namespace softwatt::serve
{

/** Service configuration (see EXPERIMENTS.md for the key reference). */
struct ServeOptions
{
    /** serve_socket=: unix socket path the daemon listens on. */
    std::string socketPath;

    /** serve_state=: directory for the journal and checkpoint pool. */
    std::string statePath;

    /** serve_jobs=: worker threads executing runs. */
    int jobs = 2;

    /** serve_queue_max=: admission bound; 0 = unbounded. */
    std::size_t queueMax = 64;

    /** serve_pool_mb=: warm pool budget; 0 = scratch (cold) mode. */
    double poolMb = 64.0;

    /** serve_warm_s=: autosave cadence in simulated seconds; 0 off. */
    double warmS = 0.0;

    /** serve_retries=: extra attempts for a Failed run. */
    int retries = 1;

    /** serve_backoff_ms=: base retry backoff (doubles per retry). */
    std::uint64_t backoffMs = 100;

    /** serve_wall_timeout_s=: default per-job wall budget; 0 none. */
    double wallTimeoutS = 0.0;

    /**
     * durability=: barrier discipline for the answer journal and
     * the pool's promote chains. Buffered (default) survives
     * SIGKILL; full also survives a power cut (fdatasync per
     * journal append, fsync'd rename chains).
     */
    Durability durability = Durability::Buffered;

    /**
     * Read and range-check every serve_* key; fatal() on nonsense
     * (missing socket/state paths, negative budgets).
     */
    static ServeOptions fromConfig(const Config &args);
};

/**
 * The daemon. Lifecycle: construct, start() (bind + recover state),
 * serveUntil(token) (blocks until the token drains the service).
 * The caller owns signal wiring — the daemon binary bridges
 * SIGINT/SIGTERM/SIGHUP via SignalGuard; tests drive the token
 * directly.
 */
class ServeServer
{
  public:
    explicit ServeServer(ServeOptions options);
    ~ServeServer();

    ServeServer(const ServeServer &) = delete;
    ServeServer &operator=(const ServeServer &) = delete;

    /**
     * Create the state directory, open the journal (append mode —
     * answers accumulate across daemon generations), load journaled
     * answers, recover the checkpoint pool, bind the socket, and
     * start the worker pool. @return false with @p error on failure.
     */
    bool start(std::string &error);

    /**
     * Accept and serve until @p token reports cancellation and all
     * admitted work has finished (Drain) or been cancelled (Hard).
     * Installs the throwing error handler for its duration.
     */
    void serveUntil(CancelToken &token);

    const ServeOptions &options() const { return opts; }
    std::string journalPath() const;
    std::string poolDirectory() const;
    CheckpointPool &pool() { return poolStore; }

    // Service counters (tests and the drain log line).
    std::uint64_t executedJobs() const { return executed.load(); }
    std::uint64_t journalHits() const { return journalHit.load(); }
    std::uint64_t shedJobs() const { return shed.load(); }
    std::uint64_t warmStartedJobs() const { return warmStarted.load(); }

    /**
     * Sessions currently tracked, after reaping finished ones —
     * bounded by the live client count, not the accept history.
     */
    std::size_t sessionCount();

  private:
    /** One admitted run request. */
    struct Job
    {
        ServeRequest request;
        RunSpec spec;
        std::string benchName;
        std::string fingerprint;  ///< specFingerprint(spec)
        std::string identity;     ///< journal answer key
        CancelToken cancel;
        std::shared_ptr<Session> session;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline;
    };
    using JobPtr = std::shared_ptr<Job>;

    /** A journaled answer, replayable byte-identically. */
    struct Answer
    {
        std::string runJson;
        int attempts = 1;
        std::string outcome;
    };

    void sessionLoop(std::shared_ptr<Session> session);
    void handleRun(const std::shared_ptr<Session> &session,
                   ServeRequest request);
    void handleCancel(const std::shared_ptr<Session> &session,
                      const ServeRequest &request);
    void dispatchLoop();
    void deadlineLoop();
    void executeJob(const JobPtr &job);
    void respond(const std::shared_ptr<Session> &session,
                 const ServeResponse &response);

    /** Assemble the one-run experiment document for a response. */
    std::string renderDocument(const std::string &experiment,
                               const std::string &runJson) const;

    static std::string liveKey(const std::string &client,
                               const std::string &id);
    void eraseLive(const JobPtr &job);

    /** Join and drop every session whose reader thread has exited. */
    void reapSessionsLocked();

    ServeOptions opts;
    int listenFd = -1;
    RunJournal journal;
    CheckpointPool poolStore;
    AdmissionQueue<JobPtr> queue;
    std::unique_ptr<ThreadPool> workers;

    const CancelToken *stopToken = nullptr;

    std::mutex answersMutex;
    std::map<std::string, Answer> answers;

    std::mutex liveMutex;
    std::map<std::string, JobPtr> live;

    std::mutex slotMutex;
    std::condition_variable slotFree;

    /**
     * One accepted connection: its session, its reader thread, and
     * the flag the thread raises on exit so the accept loop can join
     * it. A long-lived daemon serves many short-lived clients;
     * finished workers are reaped on every accept, not hoarded until
     * shutdown.
     */
    struct SessionWorker
    {
        std::shared_ptr<Session> session;
        std::shared_ptr<std::atomic<bool>> done;
        std::thread thread;
    };

    std::mutex sessionsMutex;
    std::vector<SessionWorker> sessionWorkers;

    std::atomic<bool> stopDeadline{false};
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> journalHit{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> warmStarted{0};
};

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_SERVER_HH
