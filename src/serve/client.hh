/**
 * @file
 * Client side of the serve protocol: connect to the daemon's unix
 * socket, submit requests, collect responses. Used by the
 * softwatt-serve-client binary, the stress harness, and tests.
 */

#ifndef SOFTWATT_SERVE_CLIENT_HH
#define SOFTWATT_SERVE_CLIENT_HH

#include <memory>
#include <string>

#include "protocol.hh"
#include "session.hh"

namespace softwatt::serve
{

/** A connection to a softwatt-serve daemon. */
class ServeClient
{
  public:
    ServeClient() = default;

    /**
     * Connect to the daemon listening at @p socket_path.
     * @return false with @p error set when the daemon is not there.
     */
    bool connect(const std::string &socket_path, std::string &error);

    bool connected() const { return link != nullptr; }

    /** Send one request line; false on a broken connection. */
    bool send(const ServeRequest &request);

    /**
     * Block for the next response line. @return false with @p error
     * set on disconnect or a malformed line.
     */
    bool receive(ServeResponse &response, std::string &error);

    /** send() + receive() for the simple one-at-a-time pattern. */
    bool call(const ServeRequest &request, ServeResponse &response,
              std::string &error);

    /** Drop the connection (mid-flight jobs keep running server-side). */
    void disconnect();

    /** The underlying session (tests poke at it directly). */
    Session *session() { return link.get(); }

  private:
    std::unique_ptr<Session> link;
};

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_CLIENT_HH
