#include "server.hh"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "core/system.hh"
#include "sim/logging.hh"

#include "executor.hh"

namespace softwatt::serve
{

namespace
{

constexpr char fieldSep = '\x1f';

/**
 * Outcomes worth journaling: the run executed and its document is the
 * permanent answer for this spec. Cancelled runs are a property of
 * one submission (a resubmit should execute), and Failed runs should
 * be retried by a fresh daemon, not replayed.
 */
bool
durableOutcome(RunOutcome outcome)
{
    return outcome != RunOutcome::Cancelled &&
           outcome != RunOutcome::Failed;
}

/** The journal identity key (matches the resume journal's). */
std::string
answerKey(const std::string &experiment, const std::string &bench,
          const std::string &variant, const std::string &fingerprint)
{
    std::string key = experiment;
    key += fieldSep;
    key += bench;
    key += fieldSep;
    key += variant;
    key += fieldSep;
    key += fingerprint;
    return key;
}

} // namespace

ServeOptions
ServeOptions::fromConfig(const Config &args)
{
    ServeOptions options;
    options.socketPath = args.getString("serve_socket", "");
    options.statePath = args.getString("serve_state", "");
    std::int64_t jobs = args.getInt("serve_jobs", 2);
    std::int64_t queueMax = args.getInt("serve_queue_max", 64);
    options.poolMb = args.getDouble("serve_pool_mb", 64.0);
    options.warmS = args.getDouble("serve_warm_s", 0.0);
    std::int64_t retries = args.getInt("serve_retries", 1);
    std::int64_t backoffMs = args.getInt("serve_backoff_ms", 100);
    options.wallTimeoutS = args.getDouble("serve_wall_timeout_s", 0.0);
    std::string durable = args.getString("durability", "buffered");
    bool knownDurability = false;
    options.durability = durabilityFromName(durable, knownDurability);
    if (!knownDurability) {
        fatal(msg() << "config: durability must be 'buffered' or "
                    << "'full' (got '" << durable << "')");
    }

    if (options.socketPath.empty())
        fatal("config: serve_socket= (unix socket path) is required");
    if (options.statePath.empty())
        fatal("config: serve_state= (state directory) is required");
    if (jobs < 1 || jobs > 1024)
        fatal(msg() << "config: serve_jobs must be in [1, 1024] "
                    << "(got " << jobs << ")");
    if (queueMax < 0)
        fatal(msg() << "config: serve_queue_max must be >= 0 "
                    << "(got " << queueMax << ")");
    if (!(options.poolMb >= 0.0) || options.poolMb > 1e9)
        fatal(msg() << "config: serve_pool_mb must be in [0, 1e9] "
                    << "(got " << options.poolMb << ")");
    if (!(options.warmS >= 0.0) || options.warmS > 1e18)
        fatal(msg() << "config: serve_warm_s must be a finite value "
                    << ">= 0 (got " << options.warmS << ")");
    if (retries < 0 || retries > 100)
        fatal(msg() << "config: serve_retries must be in [0, 100] "
                    << "(got " << retries << ")");
    if (backoffMs < 0 || backoffMs > 60000)
        fatal(msg() << "config: serve_backoff_ms must be in "
                    << "[0, 60000] (got " << backoffMs << ")");
    if (!(options.wallTimeoutS >= 0.0) || options.wallTimeoutS > 1e9)
        fatal(msg() << "config: serve_wall_timeout_s must be in "
                    << "[0, 1e9] (got " << options.wallTimeoutS
                    << ")");

    options.jobs = int(jobs);
    options.queueMax = std::size_t(queueMax);
    options.retries = int(retries);
    options.backoffMs = std::uint64_t(backoffMs);
    return options;
}

ServeServer::ServeServer(ServeOptions options)
    : opts(std::move(options)),
      poolStore(opts.statePath + "/pool",
                std::uint64_t(opts.poolMb * 1024.0 * 1024.0),
                opts.durability),
      queue(opts.queueMax)
{
}

ServeServer::~ServeServer()
{
    if (listenFd >= 0) {
        ::close(listenFd);
        ::unlink(opts.socketPath.c_str());
    }
}

std::string
ServeServer::journalPath() const
{
    return opts.statePath + "/serve.journal.jsonl";
}

std::string
ServeServer::poolDirectory() const
{
    return opts.statePath + "/pool";
}

bool
ServeServer::start(std::string &error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(opts.statePath, ec);
    if (ec) {
        error = msg() << "cannot create state directory '"
                      << opts.statePath << "': " << ec.message();
        return false;
    }
    fs::create_directories(poolDirectory(), ec);
    if (ec) {
        error = msg() << "cannot create pool directory '"
                      << poolDirectory() << "': " << ec.message();
        return false;
    }

    // Answers accumulate across daemon generations: open append and
    // replay what previous generations finished.
    for (const JournalEntry &entry :
         RunJournal::loadLatest(journalPath())) {
        RunOutcome outcome;
        if (!runOutcomeFromName(entry.outcome, outcome) ||
            !durableOutcome(outcome)) {
            continue;
        }
        answers[answerKey(entry.experiment, entry.bench,
                          entry.variant, entry.config)] =
            Answer{entry.runJson, entry.attempts, entry.outcome};
    }
    if (!journal.open(journalPath(), /*truncate=*/false,
                      opts.durability)) {
        error = msg() << "cannot open service journal '"
                      << journalPath() << "'";
        return false;
    }
    std::size_t orphans = poolStore.recover();

    sockaddr_un address{};
    if (opts.socketPath.size() >= sizeof(address.sun_path)) {
        error = msg() << "socket path '" << opts.socketPath
                      << "' is too long for AF_UNIX";
        return false;
    }
    ::unlink(opts.socketPath.c_str());
    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        error = msg() << "socket(): " << std::strerror(errno);
        return false;
    }
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, opts.socketPath.c_str(),
                opts.socketPath.size() + 1);
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&address),
               sizeof(address)) != 0) {
        error = msg() << "bind('" << opts.socketPath
                      << "'): " << std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    if (::listen(listenFd, 128) != 0) {
        error = msg() << "listen(): " << std::strerror(errno);
        ::close(listenFd);
        listenFd = -1;
        return false;
    }

    workers = std::make_unique<ThreadPool>(unsigned(opts.jobs));
    // Twice the worker count keeps every worker fed without letting
    // the dispatcher run ahead of the admission queue's fairness.
    workers->setPendingLimit(std::size_t(opts.jobs) * 2);

    status(msg() << "serve: listening on " << opts.socketPath << " ("
                 << answers.size() << " journaled answers, "
                 << poolStore.entries() << " pooled images, "
                 << orphans << " orphans promoted)");
    return true;
}

void
ServeServer::serveUntil(CancelToken &token)
{
    // One throwing error handler for the daemon's lifetime: fatal()
    // and panic() anywhere below surface as SimError, which
    // runSpecProtected converts into Failed run records per job.
    ScopedErrorHandler firewall(throwingErrorHandler);
    stopToken = &token;
    stopDeadline.store(false);
    std::thread dispatcher(&ServeServer::dispatchLoop, this);
    std::thread deadliner(&ServeServer::deadlineLoop, this);

    bool draining = false;
    bool hardCancelled = false;
    for (;;) {
        if (!draining && token.cancelled()) {
            draining = true;
            status("serve: draining (no new admissions)");
            if (listenFd >= 0) {
                ::close(listenFd);
                listenFd = -1;
                ::unlink(opts.socketPath.c_str());
            }
            queue.close();
        }
        if (!hardCancelled && token.level() >= CancelToken::Hard) {
            hardCancelled = true;
            status("serve: hard cancel (dropping queued jobs)");
            for (const JobPtr &job : queue.drain()) {
                eraseLive(job);
                ServeResponse failure;
                failure.id = job->request.id;
                failure.status = statusCancelled;
                failure.error = "cancelled by daemon shutdown";
                respond(job->session, failure);
            }
            std::lock_guard<std::mutex> lock(liveMutex);
            for (auto &entry : live)
                entry.second->cancel.request(CancelToken::Hard);
        }
        if (draining) {
            bool idle;
            {
                std::lock_guard<std::mutex> lock(liveMutex);
                idle = live.empty();
            }
            if (idle && queue.size() == 0)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
            continue;
        }

        pollfd waiter{};
        waiter.fd = listenFd;
        waiter.events = POLLIN;
        int ready = ::poll(&waiter, 1, 200);
        if (ready <= 0 || !(waiter.revents & POLLIN))
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto session = std::make_shared<Session>(fd);
        auto done = std::make_shared<std::atomic<bool>>(false);
        std::lock_guard<std::mutex> lock(sessionsMutex);
        reapSessionsLocked();
        SessionWorker worker;
        worker.session = session;
        worker.done = done;
        worker.thread = std::thread([this, session, done] {
            sessionLoop(session);
            done->store(true);
        });
        sessionWorkers.push_back(std::move(worker));
    }

    // The queue is closed and drained, so the dispatcher exits; the
    // pool destructor then waits for in-flight jobs to finish writing
    // their responses before any session is torn down.
    dispatcher.join();
    workers.reset();
    stopDeadline.store(true);
    deadliner.join();

    std::vector<SessionWorker> leftover;
    {
        std::lock_guard<std::mutex> lock(sessionsMutex);
        leftover.swap(sessionWorkers);
    }
    for (SessionWorker &worker : leftover)
        worker.session->shutdownBoth();
    for (SessionWorker &worker : leftover)
        worker.thread.join();

    status(msg() << "serve: drained (" << executed.load()
                 << " executed, " << journalHit.load()
                 << " journal hits, " << warmStarted.load()
                 << " warm starts, " << shed.load() << " shed)");
    stopToken = nullptr;
}

void
ServeServer::sessionLoop(std::shared_ptr<Session> session)
{
    std::string line;
    while (session->readLine(line)) {
        if (line.empty())
            continue;
        ServeRequest request;
        std::string parseError;
        if (!parseServeRequest(line, request, parseError)) {
            ServeResponse failure;
            failure.id = request.id;
            failure.status = statusBadRequest;
            failure.error = parseError;
            respond(session, failure);
            continue;
        }
        if (request.op == "cancel")
            handleCancel(session, request);
        else
            handleRun(session, std::move(request));
    }
}

void
ServeServer::handleRun(const std::shared_ptr<Session> &session,
                       ServeRequest request)
{
    ServeResponse response;
    response.id = request.id;

    JobPtr job = std::make_shared<Job>();
    std::string specError;
    if (!parseServeSpec(request.spec, job->spec, job->benchName,
                        specError)) {
        response.status = statusBadRequest;
        response.error = specError;
        respond(session, response);
        return;
    }

    job->fingerprint = specFingerprint(job->spec);
    job->identity = answerKey(request.experiment, job->benchName,
                              job->spec.variant, job->fingerprint);

    {
        std::lock_guard<std::mutex> lock(answersMutex);
        auto hit = answers.find(job->identity);
        if (hit != answers.end()) {
            journalHit.fetch_add(1);
            response.status = statusOk;
            response.servedFrom = "journal";
            response.attempts = hit->second.attempts;
            response.document = renderDocument(request.experiment,
                                               hit->second.runJson);
            respond(session, response);
            return;
        }
    }

    job->request = std::move(request);
    job->session = session;
    std::uint64_t wallMs =
        job->request.wallMs
            ? job->request.wallMs
            : std::uint64_t(opts.wallTimeoutS * 1000.0);
    if (wallMs > 0) {
        job->hasDeadline = true;
        job->deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(wallMs);
    }

    const std::string key =
        liveKey(job->request.client, job->request.id);
    {
        std::lock_guard<std::mutex> lock(liveMutex);
        if (live.count(key)) {
            response.status = statusBadRequest;
            response.error = msg()
                << "job id '" << job->request.id
                << "' is already in flight for this client";
            respond(session, response);
            return;
        }
        live.emplace(key, job);
    }

    switch (queue.push(job->request.client, job)) {
      case AdmissionQueue<JobPtr>::Admit::Admitted:
        return;  // The response comes from executeJob.
      case AdmissionQueue<JobPtr>::Admit::Shed:
        shed.fetch_add(1);
        eraseLive(job);
        response.status = statusOverloaded;
        response.error = msg()
            << "admission queue is full (" << queue.size()
            << " jobs pending); retry later";
        respond(session, response);
        return;
      case AdmissionQueue<JobPtr>::Admit::Closed:
        eraseLive(job);
        response.status = statusShuttingDown;
        response.error = "daemon is draining";
        respond(session, response);
        return;
    }
}

void
ServeServer::handleCancel(const std::shared_ptr<Session> &session,
                          const ServeRequest &request)
{
    ServeResponse response;
    response.id = request.id;
    response.status = statusOk;
    {
        std::lock_guard<std::mutex> lock(liveMutex);
        auto it = live.find(liveKey(request.client, request.id));
        if (it != live.end())
            it->second->cancel.request(CancelToken::Hard);
        else
            response.error = "no in-flight job to cancel";
    }
    respond(session, response);
}

void
ServeServer::dispatchLoop()
{
    JobPtr job;
    while (queue.pop(job)) {
        // trySubmit keeps the worker queue bounded; when every slot
        // is taken, wait for a worker to free one (executeJob pokes
        // slotFree on completion) instead of buffering ahead.
        for (;;) {
            auto slot =
                workers->trySubmit([this, job] { executeJob(job); });
            if (slot)
                break;
            std::unique_lock<std::mutex> lock(slotMutex);
            slotFree.wait_for(lock, std::chrono::milliseconds(20));
        }
        job.reset();
    }
}

void
ServeServer::deadlineLoop()
{
    while (!stopDeadline.load()) {
        auto now = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lock(liveMutex);
            for (auto &entry : live) {
                const JobPtr &job = entry.second;
                if (job->hasDeadline && now >= job->deadline)
                    job->cancel.request(CancelToken::Hard);
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

void
ServeServer::executeJob(const JobPtr &job)
{
    ServeResponse response;
    response.id = job->request.id;

    if (job->cancel.cancelled()) {
        // Cancelled (client cancel, wall deadline, or hard shutdown)
        // while still queued: never started, nothing to report.
        response.status = statusCancelled;
        response.error = "cancelled before execution";
    } else {
        ServeExecOptions policy;
        policy.title = job->request.experiment;
        policy.retries = opts.retries;
        policy.backoffMs = opts.backoffMs;
        policy.warmEveryS = opts.warmS;
        policy.pool = &poolStore;
        policy.durability = opts.durability;
        ServeExecResult done =
            executeServeSpec(job->spec, policy, job->cancel);
        executed.fetch_add(1);
        if (done.warmStarted)
            warmStarted.fetch_add(1);

        response.servedFrom = "executed";
        response.attempts = done.attempts;
        response.warmStart = done.warmStarted;
        response.warmStartTick = done.warmStartTick;
        response.ticksExecuted = done.ticksExecuted;
        // Self-monitoring posture: a response computed fine but
        // whose durability machinery failed mid-flight says so,
        // instead of pretending the answer will survive a restart.
        response.degraded =
            done.storageDegraded || journal.degraded();
        RunOutcome outcome = done.run.result.outcome;
        if (outcome == RunOutcome::Failed) {
            response.status = statusFailed;
            response.error = done.run.error;
        } else if (outcome == RunOutcome::Cancelled) {
            response.status = statusCancelled;
            response.error = done.run.result.diagnostics;
        } else {
            response.status = statusOk;
        }
        if (!done.runJson.empty())
            response.document = renderDocument(
                job->request.experiment, done.runJson);

        if (durableOutcome(outcome) && !done.runJson.empty()) {
            JournalEntry entry =
                makeJournalEntry(job->request.experiment, job->spec,
                                 job->fingerprint, done.run);
            std::lock_guard<std::mutex> lock(answersMutex);
            if (answers
                    .emplace(job->identity,
                             Answer{entry.runJson, entry.attempts,
                                    entry.outcome})
                    .second) {
                journal.append(entry);
            }
        }
        // The append above may itself have degraded the journal;
        // this job's answer is then NOT durable and must say so.
        response.degraded |= journal.degraded();
    }

    eraseLive(job);
    slotFree.notify_one();
    if (!job->session->writeLine(renderServeResponse(response))) {
        warn(msg() << "serve: client '" << job->request.client
                   << "' vanished before job '" << job->request.id
                   << "' was answered"
                   << (response.status == statusOk
                           ? " (result journaled)"
                           : ""));
    }
}

void
ServeServer::respond(const std::shared_ptr<Session> &session,
                     const ServeResponse &response)
{
    session->writeLine(renderServeResponse(response));
}

std::string
ServeServer::renderDocument(const std::string &experiment,
                            const std::string &runJson) const
{
    std::ostringstream out;
    writeExperimentDocument(out, experiment, /*interrupted=*/false,
                            {runJson});
    return out.str();
}

std::string
ServeServer::liveKey(const std::string &client, const std::string &id)
{
    std::string key = client;
    key += fieldSep;
    key += id;
    return key;
}

void
ServeServer::eraseLive(const JobPtr &job)
{
    std::lock_guard<std::mutex> lock(liveMutex);
    live.erase(liveKey(job->request.client, job->request.id));
}

void
ServeServer::reapSessionsLocked()
{
    for (auto it = sessionWorkers.begin();
         it != sessionWorkers.end();) {
        if (it->done->load()) {
            it->thread.join();
            it = sessionWorkers.erase(it);
        } else {
            ++it;
        }
    }
}

std::size_t
ServeServer::sessionCount()
{
    std::lock_guard<std::mutex> lock(sessionsMutex);
    reapSessionsLocked();
    return sessionWorkers.size();
}

} // namespace softwatt::serve
