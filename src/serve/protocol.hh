/**
 * @file
 * Wire format of the softwatt-serve daemon: newline-delimited JSON
 * over a local unix socket, one request or response per line.
 *
 * A request carries an experiment spec in the exact "key=value"
 * syntax the command-line harnesses accept (tryParseArgs), so a
 * sweep driven through the service and one driven through a binary
 * read identical configuration. A response carries the complete
 * softwatt-experiment-v2 document as an escaped string member plus
 * service metadata (status, retry count, warm-start evidence).
 *
 * Both directions are rendered by JsonWriter and parsed with the
 * shared jsonExtract* helpers; the protocol only ever parses
 * documents this codebase wrote, so no general JSON parser is
 * needed — exactly the resume journal's contract.
 */

#ifndef SOFTWATT_SERVE_PROTOCOL_HH
#define SOFTWATT_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

namespace softwatt::serve
{

/** Protocol schema tags (one per direction). */
constexpr const char *requestSchema = "softwatt-serve-request-v1";
constexpr const char *responseSchema = "softwatt-serve-response-v1";

/**
 * Response status vocabulary. `ok` covers every run that executed to
 * a recorded outcome (including deadline-exceeded — the document
 * carries the outcome); the others describe why no document exists.
 */
constexpr const char *statusOk = "ok";
constexpr const char *statusFailed = "failed";
constexpr const char *statusCancelled = "cancelled";
constexpr const char *statusOverloaded = "overloaded";
constexpr const char *statusShuttingDown = "shutting-down";
constexpr const char *statusBadRequest = "bad-request";

/** One client request: submit a run, or cancel a submitted one. */
struct ServeRequest
{
    /** "run" (default) or "cancel". */
    std::string op = "run";

    /** Client-chosen job id; (client, id) must be unique. */
    std::string id;

    /** Client name; admission fairness round-robins across these. */
    std::string client;

    /** Experiment title (journal identity + document header). */
    std::string experiment = "serve";

    /**
     * Whitespace-separated "key=value" assignments describing the
     * run — the same keys the harness binaries accept (bench=,
     * scale=, variant=, deadline_s=, machine keys, ...).
     */
    std::string spec;

    /** Wall-clock budget in milliseconds; 0 = server default. */
    std::uint64_t wallMs = 0;
};

/** One daemon response, correlated to the request by id. */
struct ServeResponse
{
    std::string id;
    std::string status;

    /** Human-readable reason when status is not ok. */
    std::string error;

    /** "executed" or "journal"; "" when no run was performed. */
    std::string servedFrom;

    /** Run resumed from a pooled warm checkpoint. */
    bool warmStart = false;

    /** Simulated tick the run resumed from (0 for cold runs). */
    std::uint64_t warmStartTick = 0;

    /** Simulated ticks actually executed in this process. */
    std::uint64_t ticksExecuted = 0;

    /** Executor attempts consumed (retries + 1). */
    int attempts = 0;

    /**
     * True when the daemon's storage degraded while serving this
     * job: the answer journal fell back to non-durable mode, or the
     * run continued checkpoint-less after a failed autosave. The
     * answer itself is complete and correct; it may just not survive
     * a daemon restart. SmartWatts-style self-monitoring: degrade
     * and report rather than fail.
     */
    bool degraded = false;

    /** Complete softwatt-experiment-v2 document; "" on failure. */
    std::string document;
};

/** Render a request as one compact JSON line (no trailing \n). */
std::string renderServeRequest(const ServeRequest &request);

/**
 * Parse one request line. @return false with @p error set when the
 * line is not a well-formed request (wrong schema, missing id or
 * client, unknown op, run without a spec).
 */
bool parseServeRequest(const std::string &line, ServeRequest &out,
                       std::string &error);

/** Render a response as one compact JSON line (no trailing \n). */
std::string renderServeResponse(const ServeResponse &response);

/** Parse one response line; mirrors parseServeRequest. */
bool parseServeResponse(const std::string &line, ServeResponse &out,
                        std::string &error);

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_PROTOCOL_HH
