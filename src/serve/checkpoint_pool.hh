/**
 * @file
 * Warm checkpoint pool: post-warm-up machine images shared across
 * serve jobs with matching configurations.
 *
 * Every executing job autosaves checkpoints (at the service-wide
 * cadence) to a PRIVATE in-flight path, so concurrent jobs with the
 * same configuration never race on one file. When a job completes,
 * its newest image is promoted under the pool path for its machine
 * fingerprint — System::checkpointFingerprint(), which covers the
 * machine and workload but not run management like deadlines — with
 * the previous image kept one generation back, mirroring
 * autosaveCheckpoint's rotation so a corrupt newest image falls back
 * instead of failing. A later job with the same fingerprint restores
 * from the pooled image and skips straight past warm-up.
 *
 * The pool is LRU-bounded by a byte budget. A budget of zero selects
 * scratch mode: jobs still autosave at the cadence (checkpointing is
 * a deterministic perturbation, so the cadence must match for
 * byte-identical documents) but nothing is retained and lookups
 * always miss — this is how cold reference runs are produced.
 *
 * Crash recovery: a SIGKILL'd daemon leaves orphaned in-flight
 * images behind; recover() promotes them into the pool at startup,
 * so even interrupted progress warms future jobs.
 */

#ifndef SOFTWATT_SERVE_CHECKPOINT_POOL_HH
#define SOFTWATT_SERVE_CHECKPOINT_POOL_HH

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>

#include "sim/host_io.hh"

namespace softwatt::serve
{

/** LRU-bounded store of warm machine checkpoints, keyed by machine
 *  fingerprint, with private in-flight paths for concurrent writers. */
class CheckpointPool
{
  public:
    /**
     * @param directory Pool directory (created by the caller).
     * @param budget_bytes LRU size budget; 0 = scratch mode (retain
     *        nothing, always miss).
     * @param pool_durability Durability::Full makes promote/rotate
     *        renames power-cut safe (fsync'd parent directory).
     */
    CheckpointPool(std::string directory, std::uint64_t budget_bytes,
                   Durability pool_durability = Durability::Buffered);

    CheckpointPool(const CheckpointPool &) = delete;
    CheckpointPool &operator=(const CheckpointPool &) = delete;

    /**
     * Scan the directory: index existing pool images, promote
     * in-flight orphans a killed daemon left behind, and recover
     * rotated pool generations whose base image vanished (promoted
     * back into their slot when intact, deleted when torn — never
     * left untracked on disk). @return number of images promoted.
     */
    std::size_t recover();

    /**
     * Path of the warm image for @p key, or "" on a miss. A hit
     * counts as a use for LRU purposes. The returned path may have a
     * previous generation beside it ("<path>.1") which
     * System::restoreCheckpoint falls back to on corruption.
     */
    std::string lookup(std::uint64_t key);

    /**
     * A fresh private autosave destination for one job warming
     * images for @p key. Never collides with another job's path or
     * the pool path itself.
     */
    std::string inflightPath(std::uint64_t key);

    /**
     * Move a finished job's in-flight image into the pool slot for
     * @p key, rotating any existing image one generation back. In
     * scratch mode (or when the job never autosaved) the in-flight
     * files are deleted instead.
     * @return true when the pool retained the image.
     */
    bool promote(std::uint64_t key, const std::string &inflight_path);

    /** Delete a job's in-flight files without promoting them. */
    void discard(const std::string &inflight_path);

    /** Pool file name for a key: 16 hex digits + ".ckpt". */
    static std::string keyName(std::uint64_t key);

    std::uint64_t bytesUsed() const;
    std::size_t entries() const;
    std::uint64_t evictions() const;
    const std::string &directory() const { return dir; }

  private:
    std::string poolPath(std::uint64_t key) const;

    /** Re-stat a key's files and update the accounting (locked). */
    void refreshSizeLocked(std::uint64_t key);

    /** Move @p key to the front of the LRU order (locked). */
    void touchLocked(std::uint64_t key);

    /** Evict least-recently-used entries until within budget. */
    void enforceBudgetLocked();

    std::string dir;
    std::uint64_t budget;
    Durability durability;
    std::uint64_t inflightSeq = 0;
    std::uint64_t evicted = 0;

    /** Most-recently-used first. */
    std::list<std::uint64_t> lru;

    /** key -> bytes on disk (current + previous generation). */
    std::map<std::uint64_t, std::uint64_t> sizes;

    mutable std::mutex mutex;
};

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_CHECKPOINT_POOL_HH
