/**
 * @file
 * Bounded, client-fair admission queue for the serve daemon.
 *
 * Admission control is what keeps the daemon honest under overload:
 * instead of buffering without limit (and turning overload into
 * unbounded latency and memory), push() fails fast with Shed once
 * the bound is reached, and the daemon surfaces a structured
 * `overloaded` rejection the client can retry against.
 *
 * Fairness: items are queued per client and pop() rotates across
 * clients round-robin, so one client submitting hundreds of jobs
 * cannot starve a client submitting one.
 */

#ifndef SOFTWATT_SERVE_ADMISSION_HH
#define SOFTWATT_SERVE_ADMISSION_HH

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace softwatt::serve
{

/**
 * A multi-producer, single-or-multi-consumer queue of T bounded at a
 * fixed total size, drained round-robin across client names.
 */
template <typename T>
class AdmissionQueue
{
  public:
    enum class Admit
    {
        Admitted,  ///< Queued; pop() will deliver it.
        Shed,      ///< Bound reached; caller must reject the work.
        Closed,    ///< Queue closed (shutdown); no new admissions.
    };

    /** @param bound Max queued items across all clients; 0 = no bound. */
    explicit AdmissionQueue(std::size_t bound) : bound(bound) {}

    /** Try to admit @p item under @p client's per-client FIFO. */
    Admit
    push(const std::string &client, T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            if (closedFlag)
                return Admit::Closed;
            if (bound != 0 && count >= bound)
                return Admit::Shed;
            std::deque<T> &fifo = perClient[client];
            if (fifo.empty())
                rotation.push_back(client);
            fifo.push_back(std::move(item));
            ++count;
        }
        ready.notify_one();
        return Admit::Admitted;
    }

    /**
     * Block until an item is available or the queue is closed AND
     * empty. Clients take turns: the head client yields one item and
     * rotates to the back of the order.
     * @return false when closed and fully drained.
     */
    bool
    pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mutex);
        ready.wait(lock,
                   [this] { return count > 0 || closedFlag; });
        if (count == 0)
            return false;
        std::string client = rotation.front();
        rotation.pop_front();
        std::deque<T> &fifo = perClient[client];
        out = std::move(fifo.front());
        fifo.pop_front();
        --count;
        if (!fifo.empty())
            rotation.push_back(client);
        else
            perClient.erase(client);
        return true;
    }

    /** Stop admitting; pop() drains what is already queued. */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            closedFlag = true;
        }
        ready.notify_all();
    }

    /**
     * Remove and return every queued item in the same round-robin
     * order pop() would have delivered them (hard shutdown: the
     * caller rejects each as cancelled).
     */
    std::vector<T>
    drain()
    {
        std::lock_guard<std::mutex> lock(mutex);
        std::vector<T> dropped;
        dropped.reserve(count);
        while (count > 0) {
            std::string client = rotation.front();
            rotation.pop_front();
            std::deque<T> &fifo = perClient[client];
            dropped.push_back(std::move(fifo.front()));
            fifo.pop_front();
            --count;
            if (!fifo.empty())
                rotation.push_back(client);
            else
                perClient.erase(client);
        }
        return dropped;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return count;
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex);
        return closedFlag;
    }

  private:
    std::size_t bound;
    std::size_t count = 0;
    bool closedFlag = false;
    std::map<std::string, std::deque<T>> perClient;
    std::deque<std::string> rotation;
    mutable std::mutex mutex;
    std::condition_variable ready;
};

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_ADMISSION_HH
