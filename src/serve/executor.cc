#include "executor.hh"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "workload/workload.hh"

namespace softwatt::serve
{

std::uint64_t
retryBackoffMs(std::uint64_t baseMs, int attempt)
{
    // serve_retries allows dozens of attempts; an unclamped shift is
    // undefined behaviour from attempt 65 on and a multi-day sleep
    // long before that. Cap the growth at 2^6 and the delay at a few
    // seconds (never below an explicitly larger base) so a worker
    // thread is never wedged on one job's backoff.
    constexpr std::uint64_t maxShift = 6;
    constexpr std::uint64_t capMs = 5000;
    std::uint64_t shift =
        std::min(std::uint64_t(attempt > 0 ? attempt - 1 : 0),
                 maxShift);
    return std::min(baseMs << shift, std::max(baseMs, capMs));
}

bool
parseServeSpec(const std::string &text, RunSpec &spec,
               std::string &benchName, std::string &error)
{
    // The daemon installs one process-wide throwing handler for its
    // whole lifetime (serveUntil), and this runs on its session
    // threads: swapping the global handler per call would race the
    // swaps against each other and against worker threads reading
    // the handler inside running jobs. Install one only when the
    // caller has not (the single-threaded client and test paths).
    std::optional<ScopedErrorHandler> firewall;
    if (!errorHandlerInstalled())
        firewall.emplace(throwingErrorHandler);
    try {
        Config cfg;
        std::istringstream words(text);
        std::string word;
        while (words >> word) {
            if (!cfg.parseAssignment(word)) {
                fatal(msg() << "spec: '" << word
                            << "' is not a key=value assignment");
            }
        }
        std::string name = cfg.getString("bench", "jess");
        double scale = cfg.getDouble("scale", 0.2);
        std::string variant = cfg.getString("variant", "");
        double deadlineS = cfg.getDouble("deadline_s", 0.0);
        double graceS = cfg.getDouble("grace_s", 0.0);
        if (!(scale > 0.0) || scale > 1e6) {
            fatal(msg() << "spec: scale must be in (0, 1e6] (got "
                        << scale << ")");
        }
        spec.bench = benchmarkByName(name);
        spec.variant = variant;
        spec.scale = scale;
        spec.config = SystemConfig::fromConfig(cfg);
        if (spec.config.deadlineSeconds <= 0.0)
            spec.config.deadlineSeconds = deadlineS;
        if (spec.config.shutdownGraceSeconds <= 0.0)
            spec.config.shutdownGraceSeconds = graceS;
        spec.config.validate();
        std::vector<std::string> unused = cfg.unusedKeys();
        if (!unused.empty()) {
            msg report;
            report << "spec: unknown key(s):";
            for (const std::string &key : unused)
                report << " " << key;
            fatal(report);
        }
        benchName = benchmarkName(spec.bench);
        return true;
    } catch (const std::exception &e) {
        error = e.what();
        return false;
    }
}

ServeExecResult
executeServeSpec(RunSpec spec, const ServeExecOptions &options,
                 const CancelToken &token)
{
    ServeExecResult result;

    // Arm the warm-start plumbing: autosave to a private in-flight
    // path (concurrent same-config jobs must never race on one
    // file), and restore from the pool's warm image when one exists.
    bool armed = false;
    std::uint64_t key = 0;
    std::string inflight;
    if (options.pool && options.warmEveryS > 0.0) {
        try {
            key = machineCheckpointFingerprint(spec.bench,
                                               spec.config,
                                               spec.scale);
            inflight = options.pool->inflightPath(key);
            spec.checkpointEveryS = options.warmEveryS;
            spec.checkpointPath = inflight;
            spec.restorePath = options.pool->lookup(key);
            spec.durability = options.durability;
            armed = true;
        } catch (const std::exception &e) {
            // Fingerprinting constructs the machine; a config the
            // machine rejects will fail identically in the run
            // proper, which reports it properly. Run cold here.
            warn(msg() << "serve executor: warm-start disabled for "
                       << "this job (" << e.what() << ")");
            spec.checkpointEveryS = 0.0;
            spec.checkpointPath.clear();
            spec.restorePath.clear();
        }
    }

    int attempt = 0;
    int maxAttempts = 1 + (options.retries > 0 ? options.retries : 0);
    for (;;) {
        ++attempt;
        bool last = attempt >= maxAttempts;
        // The final retry mirrors diagnose=1: invariant sweeps on,
        // so the error that survives names the broken contract.
        result.run = runSpecProtected(options.title, spec, token,
                                      /*forceInvariants=*/last &&
                                          attempt > 1);
        if (result.run.result.outcome != RunOutcome::Failed ||
            last || token.cancelled())
            break;
        // A failure after a warm start could be the image's fault;
        // retry cold. Identical cadence keeps the document bytes
        // unchanged either way.
        spec.restorePath.clear();
        std::uint64_t delay =
            retryBackoffMs(options.backoffMs, attempt);
        // Sleep in slices so a cancel (client, wall deadline, or
        // daemon shutdown) is not held hostage by the backoff.
        auto until = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(delay);
        while (!token.cancelled() &&
               std::chrono::steady_clock::now() < until) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        if (token.cancelled())
            break;
    }

    if (armed) {
        // A degraded run stopped autosaving mid-flight; whatever its
        // in-flight image holds predates the failure, so discard it
        // rather than warm future jobs from a doubtful file.
        if (result.run.hasData() &&
            result.run.result.outcome != RunOutcome::Failed &&
            !result.run.storageDegraded)
            options.pool->promote(key, inflight);
        else
            options.pool->discard(inflight);
    }

    result.attempts = attempt;
    result.run.attempts = attempt;
    result.warmStarted = result.run.warmStarted;
    result.warmStartTick = result.run.warmStartTick;
    result.ticksExecuted = result.run.ticksExecuted;
    result.storageDegraded = result.run.storageDegraded;
    result.runJson = renderRunJson(result.run);
    return result;
}

} // namespace softwatt::serve
