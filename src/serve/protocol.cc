#include "protocol.hh"

#include <sstream>

#include "core/json_writer.hh"
#include "sim/logging.hh"

namespace softwatt::serve
{

std::string
renderServeRequest(const ServeRequest &request)
{
    std::ostringstream line;
    {
        JsonWriter json(line, 0);
        json.beginObject();
        json.member("schema", requestSchema);
        json.member("op", request.op);
        json.member("id", request.id);
        json.member("client", request.client);
        json.member("experiment", request.experiment);
        json.member("spec", request.spec);
        json.member("wall_ms", request.wallMs);
        json.endObject();
    }
    return line.str();
}

bool
parseServeRequest(const std::string &line, ServeRequest &out,
                  std::string &error)
{
    std::string schema;
    if (line.empty() || line.front() != '{' || line.back() != '}' ||
        !jsonExtractString(line, "schema", schema) ||
        schema != requestSchema) {
        error = msg() << "not a " << requestSchema << " line";
        return false;
    }
    if (!jsonExtractString(line, "op", out.op))
        out.op = "run";
    if (out.op != "run" && out.op != "cancel") {
        error = msg() << "unknown op '" << out.op << "'";
        return false;
    }
    if (!jsonExtractString(line, "id", out.id) || out.id.empty()) {
        error = "request is missing an id";
        return false;
    }
    if (!jsonExtractString(line, "client", out.client) ||
        out.client.empty()) {
        error = "request is missing a client name";
        return false;
    }
    if (!jsonExtractString(line, "experiment", out.experiment))
        out.experiment = "serve";
    if (!jsonExtractString(line, "spec", out.spec))
        out.spec.clear();
    if (out.op == "run" && out.spec.empty()) {
        error = "run request carries no spec";
        return false;
    }
    if (!jsonExtractUint64(line, "wall_ms", out.wallMs))
        out.wallMs = 0;
    return true;
}

std::string
renderServeResponse(const ServeResponse &response)
{
    std::ostringstream line;
    {
        JsonWriter json(line, 0);
        json.beginObject();
        json.member("schema", responseSchema);
        json.member("id", response.id);
        json.member("status", response.status);
        json.member("error", response.error);
        json.member("served_from", response.servedFrom);
        json.member("warm_start", response.warmStart ? 1 : 0);
        json.member("warm_start_tick", response.warmStartTick);
        json.member("ticks_executed", response.ticksExecuted);
        json.member("attempts", response.attempts);
        json.member("degraded", response.degraded ? 1 : 0);
        json.member("document", response.document);
        json.endObject();
    }
    return line.str();
}

bool
parseServeResponse(const std::string &line, ServeResponse &out,
                   std::string &error)
{
    std::string schema;
    if (line.empty() || line.front() != '{' || line.back() != '}' ||
        !jsonExtractString(line, "schema", schema) ||
        schema != responseSchema) {
        error = msg() << "not a " << responseSchema << " line";
        return false;
    }
    if (!jsonExtractString(line, "id", out.id)) {
        error = "response is missing an id";
        return false;
    }
    if (!jsonExtractString(line, "status", out.status) ||
        out.status.empty()) {
        error = "response is missing a status";
        return false;
    }
    if (!jsonExtractString(line, "error", out.error))
        out.error.clear();
    if (!jsonExtractString(line, "served_from", out.servedFrom))
        out.servedFrom.clear();
    int warm = 0;
    out.warmStart = jsonExtractInt(line, "warm_start", warm) &&
                    warm != 0;
    if (!jsonExtractUint64(line, "warm_start_tick",
                           out.warmStartTick))
        out.warmStartTick = 0;
    if (!jsonExtractUint64(line, "ticks_executed",
                           out.ticksExecuted))
        out.ticksExecuted = 0;
    if (!jsonExtractInt(line, "attempts", out.attempts))
        out.attempts = 0;
    int degraded = 0;
    out.degraded = jsonExtractInt(line, "degraded", degraded) &&
                   degraded != 0;
    if (!jsonExtractString(line, "document", out.document))
        out.document.clear();
    return true;
}

} // namespace softwatt::serve
