/**
 * @file
 * One connected unix-socket peer, wrapped as line-oriented I/O.
 *
 * Robustness contract: a peer that disconnects mid-write must never
 * kill the daemon. SIGPIPE is already ignored while a SignalGuard is
 * active (sim/signals.hh) and every send() passes MSG_NOSIGNAL as a
 * second line of defense, so a dead peer surfaces as a write error
 * that flips the session's broken() flag — a per-session condition
 * the caller logs and moves past.
 */

#ifndef SOFTWATT_SERVE_SESSION_HH
#define SOFTWATT_SERVE_SESSION_HH

#include <atomic>
#include <mutex>
#include <string>

namespace softwatt::serve
{

/** A connected stream socket with buffered line reads and
 *  mutex-serialized line writes. Owns (and closes) the fd. */
class Session
{
  public:
    /** Take ownership of connected socket @p fd. */
    explicit Session(int fd);
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /**
     * Block until one newline-terminated line arrives (the newline
     * is stripped). @return false on EOF or a read error; a partial
     * line at EOF is discarded as torn.
     */
    bool readLine(std::string &line);

    /**
     * Write @p line plus a newline, atomically with respect to other
     * writers (responses for one connection may come from several
     * worker threads). @return false — and broken() thereafter — on
     * any write error, EPIPE from a vanished peer included.
     */
    bool writeLine(const std::string &line);

    /** Has any read or write on this session failed? */
    bool broken() const
    {
        return brokenFlag.load(std::memory_order_acquire);
    }

    /**
     * Shut the socket down both ways, unblocking a reader stuck in
     * readLine() (shutdown path: the daemon closes lingering
     * sessions after drain).
     */
    void shutdownBoth();

    int fd() const { return sock; }

  private:
    int sock;
    std::atomic<bool> brokenFlag{false};
    std::string inbox;
    std::mutex writeMutex;
};

} // namespace softwatt::serve

#endif // SOFTWATT_SERVE_SESSION_HH
