/**
 * @file
 * The dynamic instruction abstraction flowing through the timing
 * models.
 *
 * SoftWatt workloads are synthetic instruction streams (see
 * src/workload): each MicroOp carries everything the timing and power
 * models consume — class, PC, register operands for dependence
 * tracking, effective address for the cache/TLB models, branch
 * outcome for the predictor, and the execution mode it is attributed
 * to.
 */

#ifndef SOFTWATT_CPU_INST_HH
#define SOFTWATT_CPU_INST_HH

#include <cstdint>

#include "sim/types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/** Operation classes distinguished by the timing/power models. */
enum class InstClass : std::uint8_t
{
    IntAlu = 0,
    FpAlu,
    Load,
    Store,
    Branch,
    Syscall,
    Nop,
};

/** Register id meaning "no operand". */
constexpr std::uint8_t noReg = 0xff;

/** Number of architectural registers visible to the streams. */
constexpr int numArchRegs = 64;

/**
 * One dynamic instruction.
 */
struct MicroOp
{
    Addr pc = 0;
    Addr memAddr = 0;          ///< Loads/stores: virtual address.
    Addr target = 0;           ///< Branches: actual target.
    std::uint64_t syscallArg = 0;

    InstClass cls = InstClass::IntAlu;
    ExecMode mode = ExecMode::User;
    std::uint8_t srcA = noReg;
    std::uint8_t srcB = noReg;
    std::uint8_t dst = noReg;

    std::uint16_t syscallId = 0;
    std::uint32_t asid = 0;    ///< Address space for TLB lookups.

    /** Service-invocation tag for per-invocation accounting. */
    std::uint32_t frameTag = 0;

    bool taken = false;        ///< Branches: actual direction.
    bool isCall = false;
    bool isReturn = false;

    /** Kernel/idle streams run unmapped (KSEG0) — no TLB lookups. */
    bool kernelMapped = false;

    bool isMemOp() const
    {
        return cls == InstClass::Load || cls == InstClass::Store;
    }

    bool isBranch() const { return cls == InstClass::Branch; }
};

/** Checkpointing: serialize one MicroOp field by field. */
void saveMicroOp(ChunkWriter &out, const MicroOp &op);

/** Checkpointing: the inverse of saveMicroOp(). */
MicroOp loadMicroOp(ChunkReader &in);

/** What a fetch attempt produced. */
enum class FetchOutcome
{
    Op,     ///< An instruction was produced.
    Stall,  ///< Nothing to fetch this cycle (transient).
    End,    ///< The simulation's workload is complete.
};

/**
 * Producer of dynamic instructions.
 *
 * Implemented by workload programs, kernel service generators and
 * the idle loop; the OS multiplexes them behind KernelIface.
 */
class InstSource
{
  public:
    virtual ~InstSource() = default;

    /** Produce the next instruction of this stream. */
    virtual FetchOutcome next(MicroOp &op) = 0;
};

} // namespace softwatt

#endif // SOFTWATT_CPU_INST_HH
