/**
 * @file
 * The CPU-to-operating-system interface: stream multiplexing, traps,
 * syscalls and interrupts. Implemented by os::Kernel; depended on by
 * both timing models.
 */

#ifndef SOFTWATT_CPU_KERNEL_IFACE_HH
#define SOFTWATT_CPU_KERNEL_IFACE_HH

#include <vector>

#include "inst.hh"

namespace softwatt
{

/**
 * Services the CPU needs from the kernel model.
 *
 * The kernel owns which stream feeds the CPU (user program, kernel
 * service, idle loop) and performs all mode bookkeeping; the CPU
 * reports the architectural events that cause stream switches.
 */
class KernelIface
{
  public:
    virtual ~KernelIface() = default;

    /**
     * Fetch the next dynamic instruction. Replayed (squashed)
     * instructions are returned before new ones.
     */
    virtual FetchOutcome fetchNext(MicroOp &op) = 0;

    /**
     * A data access missed the TLB. The CPU has squashed the faulting
     * instruction and everything younger; @p replay holds them in
     * program order for re-execution after the handler.
     */
    virtual void dataTlbMiss(Addr vaddr, std::uint32_t asid,
                             std::vector<MicroOp> replay) = 0;

    /** A syscall instruction committed. */
    virtual void syscall(const MicroOp &op) = 0;

    /**
     * Any instruction committed. The kernel uses this to close
     * per-service-invocation accounting without draining the
     * pipeline at service boundaries.
     */
    virtual void onCommit(const MicroOp &op) = 0;

    /** Is an external interrupt awaiting delivery? */
    virtual bool interruptPending() const = 0;

    /**
     * Deliver the pending interrupt. @p replay holds the squashed
     * in-flight instructions in program order.
     */
    virtual void takeInterrupt(std::vector<MicroOp> replay) = 0;

    /**
     * Called by the CPU whenever its pipeline is completely empty;
     * the kernel uses it to finalize service-invocation accounting
     * before switching streams.
     */
    virtual void onPipelineEmpty() = 0;

    /** Execution mode of the stream currently being fetched. */
    virtual ExecMode currentStreamMode() const = 0;

    /**
     * Nonzero while the machine is architecturally in kernel mode
     * (between a trap/syscall and the completion of its service):
     * the frame tag cycles should be charged to. Zero in user mode
     * or while the service is blocked and the idle loop runs.
     */
    virtual std::uint32_t privilegedTag() const = 0;
};

} // namespace softwatt

#endif // SOFTWATT_CPU_KERNEL_IFACE_HH
