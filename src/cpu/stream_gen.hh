/**
 * @file
 * Parametric synthetic instruction-stream generator.
 *
 * Both the kernel-service models and the SPEC JVM98 workload
 * equivalents are built from StreamGen: a deterministic generator
 * shaped by an instruction mix, code footprint, working set, branch
 * behaviour and dependence (ILP) parameters. The timing models then
 * *measure* IPC, cache references per cycle, predictor accuracy and
 * so on — none of those outputs is asserted directly.
 */

#ifndef SOFTWATT_CPU_STREAM_GEN_HH
#define SOFTWATT_CPU_STREAM_GEN_HH

#include <cstdint>

#include "sim/random.hh"
#include "sim/types.hh"

#include "inst.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/** Shape parameters of a synthetic instruction stream. */
struct StreamSpec
{
    // Instruction mix; the remainder after all fractions is IntAlu.
    double fracLoad = 0.22;
    double fracStore = 0.12;
    double fracBranch = 0.12;
    double fracFp = 0.02;
    double fracNop = 0.14;

    // Code behaviour: PCs walk a loop of this footprint.
    Addr codeBase = 0x10000000;
    std::uint64_t codeFootprint = 8 * 1024;

    /**
     * Branch behaviour: fraction of branch sites with a fixed
     * (learnable) direction; the rest flip randomly with
     * probability takenProb.
     */
    double predictability = 0.85;
    double takenProb = 0.6;

    /** Fraction of branches that are call/return pairs. */
    double callFraction = 0.05;

    // Data behaviour.
    Addr dataBase = 0x40000000;
    std::uint64_t dataFootprint = 512 * 1024;

    /** Probability the next access continues a sequential run. */
    double spatialLocality = 0.75;

    /**
     * Probability a data access leaves the hot working set for the
     * full footprint — the knob controlling the TLB miss rate.
     */
    double coldAccessProb = 0.0;
    std::uint64_t hotFootprint = 128 * 1024;

    /**
     * Dependence shaping: probability an operand names the result of
     * one of the last few instructions (serial chains lower ILP).
     */
    double depProb = 0.35;
    int depWindow = 4;

    // Attribution.
    ExecMode mode = ExecMode::User;
    bool kernelMapped = false;
    std::uint32_t asid = 0;

    /** Checkpointing: every shape field, bit-exact. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);
};

/**
 * Infinite deterministic instruction stream with the statistical
 * shape described by a StreamSpec.
 */
class StreamGen : public InstSource
{
  public:
    StreamGen(const StreamSpec &spec, std::uint64_t seed);

    FetchOutcome next(MicroOp &op) override;

    /** Instructions generated so far. */
    std::uint64_t generated() const { return numGenerated; }

    const StreamSpec &spec() const { return streamSpec; }

    /**
     * Checkpointing: the spec plus all dynamic state. loadState
     * replaces this generator's spec with the saved one and rebuilds
     * the (spec-derived, rng-free) class pattern, so a generator
     * restored into a dummy-constructed instance continues the saved
     * stream exactly.
     */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    StreamSpec streamSpec;
    Random rng;

    /** Repeating per-site class pattern with the spec's exact mix. */
    static constexpr int patternLength = 128;
    // ckpt:derived: rebuilt from streamSpec by buildClassPattern()
    std::uint8_t classPattern[patternLength];

    void buildClassPattern();

    Addr pc;
    Addr nextDataAddr;
    std::uint64_t numGenerated = 0;

    /** Rotating destination registers for dependence shaping. */
    std::uint8_t recentDst[8] = {};
    int recentCount = 0;
    int nextDstReg = 1;

    /** Pending return targets for call/return pairing. */
    Addr callStack[16] = {};
    int callDepth = 0;

    std::uint8_t pickSrc();
    std::uint8_t pickDst();
    Addr pickDataAddr();
};

/**
 * Wraps a StreamGen to produce exactly @p length instructions and
 * then report End — the shape of one kernel-service invocation.
 */
class BoundedStream : public InstSource
{
  public:
    BoundedStream(const StreamSpec &spec, std::uint64_t seed,
                  std::uint64_t length)
        : gen(spec, seed), remaining(length)
    {}

    FetchOutcome
    next(MicroOp &op) override
    {
        if (remaining == 0)
            return FetchOutcome::End;
        --remaining;
        return gen.next(op);
    }

    std::uint64_t remainingOps() const { return remaining; }

    /** Checkpointing: the wrapped generator plus the budget. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    StreamGen gen;
    std::uint64_t remaining;
};

} // namespace softwatt

#endif // SOFTWATT_CPU_STREAM_GEN_HH
