/**
 * @file
 * Branch prediction per Table 1: a 1024-entry two-bit branch history
 * table, a 1024-entry branch target buffer, and a 32-entry return
 * address stack.
 */

#ifndef SOFTWATT_CPU_BRANCH_PREDICTOR_HH
#define SOFTWATT_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/counter_sink.hh"
#include "sim/machine_params.hh"
#include "sim/types.hh"

#include "inst.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/**
 * BHT + BTB + RAS predictor.
 *
 * Since SoftWatt never fetches wrong-path instructions (mispredicts
 * charge a fetch-redirect penalty instead), the predictor's job is to
 * decide whether the prediction of a branch would have been correct,
 * to keep its tables trained, and to charge the power counters for
 * every consulted structure.
 */
class BranchPredictor
{
  public:
    BranchPredictor(const MachineParams &params, CounterSink &sink);

    /**
     * Predict-and-train for one fetched branch.
     *
     * @param op The branch (actual direction/target known).
     * @return True if the prediction matched direction and target.
     */
    bool predictAndTrain(const MicroOp &op);

    std::uint64_t lookups() const { return numLookups; }
    std::uint64_t mispredicts() const { return numMispredicts; }

    /** Prediction accuracy in [0,1]. */
    double
    accuracy() const
    {
        return numLookups
                   ? 1.0 - double(numMispredicts) / double(numLookups)
                   : 1.0;
    }

    /** Checkpointing: all predictor tables and statistics. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    CounterSink &sink;
    std::vector<std::uint8_t> bht;   ///< 2-bit saturating counters.
    struct BtbEntry
    {
        Addr tag = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb;
    std::vector<Addr> ras;
    int rasTop = 0;
    int rasDepth = 0;

    std::uint64_t numLookups = 0;
    std::uint64_t numMispredicts = 0;

    std::size_t bhtIndex(Addr pc) const;
    std::size_t btbIndex(Addr pc) const;
};

} // namespace softwatt

#endif // SOFTWATT_CPU_BRANCH_PREDICTOR_HH
