#include "inorder_cpu.hh"

#include "sim/check.hh"

namespace softwatt
{

InOrderCpu::InOrderCpu(const MachineParams &params,
                       CacheHierarchy &hierarchy, Tlb &tlb,
                       CounterSink &sink, KernelIface &kernel)
    : Cpu(params, hierarchy, tlb, sink, kernel)
{
}

bool
InOrderCpu::pipelineEmpty() const
{
    return !hasCurrent;
}

void
InOrderCpu::squashAll()
{
    hasCurrent = false;
    busyCycles = 0;
}

std::vector<MicroOp>
InOrderCpu::squashAllCollect()
{
    std::vector<MicroOp> replay;
    if (hasCurrent)
        replay.push_back(current);
    squashAll();
    return replay;
}

void
InOrderCpu::saveState(ChunkWriter &out) const
{
    SW_CHECK(pipelineEmpty(),
             "InOrderCpu::saveState: pipeline not drained");
    saveBaseState(out);
    out.b(sourceEnded);
}

void
InOrderCpu::loadState(ChunkReader &in)
{
    SW_CHECK(pipelineEmpty(),
             "InOrderCpu::loadState: pipeline not drained");
    loadBaseState(in);
    sourceEnded = in.b();
}

void
InOrderCpu::startInst(const MicroOp &op)
{
    current = op;
    hasCurrent = true;

    // Fetch: one I-cache access per instruction.
    MemAccessOutcome fetch =
        hierarchy.ifetch(op.pc, op.mode, op.frameTag);
    sink.add(op.mode, CounterId::FetchedInsts, 1, op.frameTag);
    std::uint64_t cycles = std::uint64_t(fetch.latency);

    switch (op.cls) {
      case InstClass::Load:
      case InstClass::Store: {
        if (!dataTlbLookup(op)) {
            // Trap: replay just this instruction after the handler.
            hasCurrent = false;
            busyCycles = 0;
            kernel.dataTlbMiss(op.memAddr, op.asid, {op});
            return;
        }
        MemAccessOutcome data = hierarchy.dataAccess(
            op.memAddr, op.cls == InstClass::Store, op.mode,
            op.frameTag);
        cycles += std::uint64_t(data.latency);
        sink.add(op.mode, op.cls == InstClass::Load
                              ? CounterId::LoadInsts
                              : CounterId::StoreInsts,
                 1, op.frameTag);
        break;
      }
      case InstClass::Branch: {
        if (!bpred.predictAndTrain(op))
            cycles += mispredictPenalty;
        break;
      }
      case InstClass::IntAlu:
        sink.add(op.mode, CounterId::IntAluOp, 1, op.frameTag);
        break;
      case InstClass::FpAlu:
        sink.add(op.mode, CounterId::FpAluOp, 1, op.frameTag);
        cycles += 2;  // longer FP latency, not overlapped in-order
        break;
      case InstClass::Syscall:
      case InstClass::Nop:
        break;
    }

    // Register file traffic.
    int reads = (op.srcA != noReg) + (op.srcB != noReg);
    if (reads)
        sink.add(op.mode, CounterId::RegFileRead, reads, op.frameTag);
    if (op.dst != noReg) {
        sink.add(op.mode, CounterId::RegFileWrite, 1, op.frameTag);
        sink.add(op.mode, CounterId::ResultBusOp, 1, op.frameTag);
    }

    busyCycles = cycles > 0 ? cycles : 1;
}

void
InOrderCpu::retireCurrent()
{
    sink.add(current.mode, CounterId::CommittedInsts, 1,
             current.frameTag);
    sink.add(current.mode, CounterId::CommitCycles, 1,
             current.frameTag);
    ++totalCommitted;
    hasCurrent = false;
    if (current.cls == InstClass::Syscall)
        kernel.syscall(current);
    kernel.onCommit(current);
    kernel.onPipelineEmpty();
}

bool
InOrderCpu::cycle()
{
    ++totalCycles;

    if (hasCurrent) {
        std::uint32_t ptag = kernel.privilegedTag();
        if (ptag != 0 && current.mode != ExecMode::Idle) {
            sink.setCycleMode(current.mode == ExecMode::KernelSync
                                  ? ExecMode::KernelSync
                                  : ExecMode::KernelInst,
                              ptag);
        } else {
            sink.setCycleMode(current.mode, current.frameTag);
        }
        sink.addCycle();
        if (--busyCycles == 0)
            retireCurrent();
        return true;
    }

    // Between instructions: deliver any pending interrupt first.
    if (kernel.interruptPending())
        kernel.takeInterrupt({});

    MicroOp op;
    FetchOutcome outcome = kernel.fetchNext(op);
    switch (outcome) {
      case FetchOutcome::Op:
        startInst(op);
        // The fetch cycle itself counts against the new instruction
        // (or whatever stream the trap handler switched us to).
        sink.setCycleMode(op.mode, op.frameTag);
        sink.addCycle();
        if (hasCurrent && --busyCycles == 0)
            retireCurrent();
        return true;
      case FetchOutcome::Stall:
        sink.setCycleMode(kernel.currentStreamMode(), 0);
        sink.addCycle();
        return true;
      case FetchOutcome::End:
        sourceEnded = true;
        sink.setCycleMode(kernel.currentStreamMode(), 0);
        sink.addCycle();
        return false;
    }
    return true;
}

} // namespace softwatt
