/**
 * @file
 * MXS-equivalent CPU: a MIPS R10000-like out-of-order superscalar
 * (Table 1: 4-wide fetch/decode/issue/commit, 64-entry instruction
 * window, 32-entry load/store queue, 2 INT + 2 FP units, BHT/BTB/RAS
 * branch prediction).
 */

#ifndef SOFTWATT_CPU_SUPERSCALAR_CPU_HH
#define SOFTWATT_CPU_SUPERSCALAR_CPU_HH

#include <deque>

#include "cpu.hh"

namespace softwatt
{

/**
 * Out-of-order superscalar timing model.
 *
 * The instruction window is modeled as a unified ROB/issue structure:
 * instructions dispatch in order, issue out of order when their
 * source producers have completed and a functional unit is free, and
 * commit in order. Mispredicted branches stall fetch until they
 * resolve (no wrong-path instructions are consumed from the stream;
 * the redirect penalty is charged instead). Data TLB misses squash
 * the faulting instruction and everything younger, handing them back
 * to the kernel for replay after the utlb handler — the MIPS
 * software-managed TLB protocol.
 */
class SuperscalarCpu : public Cpu
{
  public:
    SuperscalarCpu(const MachineParams &params,
                   CacheHierarchy &hierarchy, Tlb &tlb,
                   CounterSink &sink, KernelIface &kernel);

    bool cycle() override;
    void squashAll() override;
    bool pipelineEmpty() const override;
    std::vector<MicroOp> squashAllCollect() override;

    // Checkpointable (requires a drained pipeline).
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

    /** Cycles in which fetch was blocked on a mispredicted branch. */
    std::uint64_t mispredictStallCycles() const { return mispredStalls; }

  private:
    enum class EntryState : std::uint8_t
    {
        Waiting,
        Issued,
        Completed,
    };

    struct Entry
    {
        MicroOp op;
        std::uint64_t seq = 0;
        std::uint64_t depA = 0;    ///< Producer seq of srcA (0 none).
        std::uint64_t depB = 0;
        std::uint64_t completeAt = 0;
        EntryState state = EntryState::Waiting;
        bool mispredicted = false;
    };

    std::deque<Entry> rob;        // ckpt:derived: empty once drained
    struct FetchedOp
    {
        MicroOp op;
        bool mispredicted = false;
        bool tlbProbed = false;   ///< TLB already consulted once.
        bool tlbMissed = false;   ///< Probe result (valid if probed).
    };
    std::deque<FetchedOp> fetchQueue;  // ckpt:derived: empty once drained

    /** Latest in-flight producer of each architectural register. */
    // ckpt:derived: squashAll() zeroes this before every checkpoint
    std::array<std::uint64_t, numArchRegs> regProducer{};

    std::uint64_t nextSeq = 1;
    std::uint64_t now = 0;

    std::uint64_t fetchBusyUntil = 0;       ///< ckpt:derived: drained.
    std::uint64_t fetchBlockedOnBranch = 0; ///< ckpt:derived: drained.
    std::uint64_t blockedSyscallSeq = 0;    ///< ckpt:derived: drained.
    bool sourceEnded = false;

    std::uint64_t mispredStalls = 0;

    static constexpr int fetchQueueCap = 16;
    static constexpr int issueScanLimit = 32;
    static constexpr int fpLatency = 3;

    /** Entry lookup by sequence number; nullptr if committed/absent. */
    Entry *entryBySeq(std::uint64_t seq);

    /** True when the producer of @p dep has completed (or retired). */
    bool depSatisfied(std::uint64_t dep);

    /**
     * Remove every instruction with seq >= @p from_seq plus the whole
     * fetch queue, returning their MicroOps in program order.
     */
    std::vector<MicroOp> squashFrom(std::uint64_t from_seq);

    void rebuildProducers();

    void doCommit();
    void doWriteback();
    /** @return True if a trap was raised (cycle must end). */
    bool doIssue();
    /** @return True if a dispatch-time TLB miss trapped. */
    bool doDispatch();
    void doFetch();
};

} // namespace softwatt

#endif // SOFTWATT_CPU_SUPERSCALAR_CPU_HH
