#include "stream_gen.hh"

#include "sim/checkpoint.hh"

#include "sim/logging.hh"

namespace softwatt
{

void
saveMicroOp(ChunkWriter &out, const MicroOp &op)
{
    out.u64(op.pc);
    out.u64(op.memAddr);
    out.u64(op.target);
    out.u64(op.syscallArg);
    out.u8(std::uint8_t(op.cls));
    out.u8(std::uint8_t(op.mode));
    out.u8(op.srcA);
    out.u8(op.srcB);
    out.u8(op.dst);
    out.u16(op.syscallId);
    out.u32(op.asid);
    out.u32(op.frameTag);
    out.b(op.taken);
    out.b(op.isCall);
    out.b(op.isReturn);
    out.b(op.kernelMapped);
}

MicroOp
loadMicroOp(ChunkReader &in)
{
    MicroOp op;
    op.pc = in.u64();
    op.memAddr = in.u64();
    op.target = in.u64();
    op.syscallArg = in.u64();
    op.cls = InstClass(in.u8());
    op.mode = ExecMode(in.u8());
    op.srcA = in.u8();
    op.srcB = in.u8();
    op.dst = in.u8();
    op.syscallId = in.u16();
    op.asid = in.u32();
    op.frameTag = in.u32();
    op.taken = in.b();
    op.isCall = in.b();
    op.isReturn = in.b();
    op.kernelMapped = in.b();
    return op;
}

void
StreamSpec::saveState(ChunkWriter &out) const
{
    out.f64(fracLoad);
    out.f64(fracStore);
    out.f64(fracBranch);
    out.f64(fracFp);
    out.f64(fracNop);
    out.u64(codeBase);
    out.u64(codeFootprint);
    out.f64(predictability);
    out.f64(takenProb);
    out.f64(callFraction);
    out.u64(dataBase);
    out.u64(dataFootprint);
    out.f64(spatialLocality);
    out.f64(coldAccessProb);
    out.u64(hotFootprint);
    out.f64(depProb);
    out.u32(std::uint32_t(depWindow));
    out.u8(std::uint8_t(mode));
    out.b(kernelMapped);
    out.u32(asid);
}

void
StreamSpec::loadState(ChunkReader &in)
{
    fracLoad = in.f64();
    fracStore = in.f64();
    fracBranch = in.f64();
    fracFp = in.f64();
    fracNop = in.f64();
    codeBase = in.u64();
    codeFootprint = in.u64();
    predictability = in.f64();
    takenProb = in.f64();
    callFraction = in.f64();
    dataBase = in.u64();
    dataFootprint = in.u64();
    spatialLocality = in.f64();
    coldAccessProb = in.f64();
    hotFootprint = in.u64();
    depProb = in.f64();
    depWindow = int(in.u32());
    mode = ExecMode(in.u8());
    kernelMapped = in.b();
    asid = in.u32();
}

StreamGen::StreamGen(const StreamSpec &spec, std::uint64_t seed)
    : streamSpec(spec), rng(seed), pc(spec.codeBase),
      nextDataAddr(spec.dataBase)
{
    double mix = spec.fracLoad + spec.fracStore + spec.fracBranch +
                 spec.fracFp + spec.fracNop;
    if (mix > 1.0 + 1e-9)
        fatal("stream instruction mix exceeds 1.0");
    if (spec.codeFootprint < 64 || spec.dataFootprint < 64)
        fatal("stream footprints must be at least 64 bytes");
    buildClassPattern();
}

void
StreamGen::buildClassPattern()
{
    // Fill a fixed-length pattern with class counts matching the
    // spec's fractions (largest-remainder rounding), then shuffle it
    // deterministically. The instruction class of a site is the
    // pattern entry at its position, so ANY contiguous stretch of
    // code — whatever orbit the control flow settles into — carries
    // the spec's mix, the way compiler-emitted loop bodies do.
    const StreamSpec &s = streamSpec;
    struct ClassFrac
    {
        InstClass cls;
        double frac;
    };
    ClassFrac fracs[6] = {
        {InstClass::Load, s.fracLoad},
        {InstClass::Store, s.fracStore},
        {InstClass::Branch, s.fracBranch},
        {InstClass::FpAlu, s.fracFp},
        {InstClass::Nop, s.fracNop},
        {InstClass::IntAlu,
         1.0 - s.fracLoad - s.fracStore - s.fracBranch - s.fracFp -
             s.fracNop},
    };
    int counts[6];
    int assigned = 0;
    for (int i = 0; i < 6; ++i) {
        counts[i] = int(fracs[i].frac * patternLength);
        assigned += counts[i];
    }
    // Largest remainders take the leftover slots.
    while (assigned < patternLength) {
        int best = 0;
        double best_rem = -1;
        for (int i = 0; i < 6; ++i) {
            double rem = fracs[i].frac * patternLength - counts[i];
            if (rem > best_rem) {
                best_rem = rem;
                best = i;
            }
        }
        ++counts[best];
        ++assigned;
    }
    // Stripe the classes proportionally (greedy largest-deficit
    // fill): every window of the pattern then carries close to the
    // spec's mix, so the realized mix is robust to whatever subset
    // of sites the control-flow orbit favours.
    int placed[6] = {};
    for (int pos = 0; pos < patternLength; ++pos) {
        int best = -1;
        double best_deficit = -1e9;
        for (int i = 0; i < 6; ++i) {
            if (placed[i] >= counts[i])
                continue;
            double want = double(counts[i]) * (pos + 1) /
                          patternLength;
            double deficit = want - placed[i];
            if (deficit > best_deficit) {
                best_deficit = deficit;
                best = i;
            }
        }
        if (best < 0)
            best = 5;  // IntAlu absorbs rounding leftovers
        classPattern[pos] = std::uint8_t(fracs[best].cls);
        ++placed[best];
    }
}

std::uint8_t
StreamGen::pickDst()
{
    // Rotate through registers 1..47, remembering recent producers.
    std::uint8_t reg = std::uint8_t(nextDstReg);
    nextDstReg = nextDstReg >= 47 ? 1 : nextDstReg + 1;
    recentDst[recentCount % 8] = reg;
    ++recentCount;
    return reg;
}

std::uint8_t
StreamGen::pickSrc()
{
    if (recentCount > 0 && rng.chance(streamSpec.depProb)) {
        // Depend on one of the last depWindow results.
        int window = streamSpec.depWindow < recentCount
                         ? streamSpec.depWindow
                         : recentCount;
        int back = 1 + int(rng.below(std::uint64_t(window)));
        int idx = (recentCount - back) % 8;
        return recentDst[idx < 0 ? idx + 8 : idx];
    }
    // A long-dead register: almost certainly ready.
    return std::uint8_t(48 + rng.below(15));
}

Addr
StreamGen::pickDataAddr()
{
    const StreamSpec &s = streamSpec;
    std::uint64_t hot = s.hotFootprint < s.dataFootprint
                            ? s.hotFootprint
                            : s.dataFootprint;
    if (rng.chance(s.spatialLocality)) {
        nextDataAddr += 8;
        if (nextDataAddr >= s.dataBase + hot)
            nextDataAddr = s.dataBase;
        return nextDataAddr;
    }
    if (s.coldAccessProb > 0 && rng.chance(s.coldAccessProb)) {
        // Cold access across the full footprint: the TLB-miss source.
        return s.dataBase + (rng.below(s.dataFootprint) & ~Addr(7));
    }
    Addr addr = s.dataBase + (rng.below(hot) & ~Addr(7));
    nextDataAddr = addr;
    return addr;
}

namespace
{

/** Deterministic per-PC hash: a PC's class/behaviour is a fixed
 *  property of the site, as in real code, so the branch predictor
 *  and I-cache see stable structure. */
std::uint64_t
siteHash(Addr pc)
{
    std::uint64_t h = pc >> 2;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    h *= 0xc4ceb9fe1a85ec53ull;
    h ^= h >> 32;
    return h;
}

} // namespace

FetchOutcome
StreamGen::next(MicroOp &op)
{
    const StreamSpec &s = streamSpec;
    op = MicroOp{};
    op.pc = pc;
    op.mode = s.mode;
    op.kernelMapped = s.kernelMapped;
    op.asid = s.asid;

    std::uint64_t site = siteHash(pc);
    InstClass site_class = InstClass(
        classPattern[((pc - s.codeBase) >> 2) % patternLength]);
    if (site_class == InstClass::Load) {
        op.cls = InstClass::Load;
        op.memAddr = pickDataAddr();
        op.srcA = pickSrc();
        op.dst = pickDst();
    } else if (site_class == InstClass::Store) {
        op.cls = InstClass::Store;
        op.memAddr = pickDataAddr();
        op.srcA = pickSrc();
        op.srcB = pickSrc();
    } else if (site_class == InstClass::Branch) {
        op.cls = InstClass::Branch;
        op.srcA = pickSrc();

        // Call/return/plain is a fixed property of the site.
        bool site_is_return =
            ((site >> 40) & 0xff) <
            std::uint64_t(s.callFraction * 256.0);
        bool site_is_call =
            !site_is_return && ((site >> 32) & 0xff) <
                                   std::uint64_t(s.callFraction *
                                                 256.0);

        if (site_is_return && callDepth > 0) {
            op.isReturn = true;
            op.taken = true;
            op.target = callStack[--callDepth];
        } else {
            // Direction: predictable sites keep a per-PC fixed
            // direction; the rest flip randomly per visit.
            bool predictable_site =
                ((site >> 16) & 0xff) <
                std::uint64_t(s.predictability * 256.0);
            if (predictable_site) {
                op.taken = ((site >> 24) & 7) != 0;  // mostly taken
            } else {
                op.taken = rng.chance(s.takenProb);
            }
            if (op.taken) {
                // The target is a fixed, BTB-learnable property of
                // the site, spread across the whole code footprint
                // so the control-flow walk covers it ergodically
                // (keeping the realized instruction mix close to
                // the spec's site distribution).
                std::uint64_t off =
                    ((site >> 8) % s.codeFootprint) & ~Addr(3);
                op.target = s.codeBase + off;
                if (op.target == op.pc)
                    op.target = s.codeBase;
            }
            if (site_is_call && callDepth < 16) {
                op.isCall = true;
                callStack[callDepth++] = op.pc + 4;
            }
        }
    } else if (site_class == InstClass::FpAlu) {
        op.cls = InstClass::FpAlu;
        op.srcA = pickSrc();
        op.srcB = pickSrc();
        op.dst = pickDst();
    } else if (site_class == InstClass::Nop) {
        op.cls = InstClass::Nop;
    } else {
        op.cls = InstClass::IntAlu;
        op.srcA = pickSrc();
        op.srcB = pickSrc();
        op.dst = pickDst();
    }

    // Advance the PC: sequential, or redirect at taken branches.
    if (op.isBranch() && op.taken) {
        pc = op.target;
    } else {
        pc += 4;
        if (pc >= s.codeBase + s.codeFootprint)
            pc = s.codeBase;
    }

    ++numGenerated;
    return FetchOutcome::Op;
}

void
StreamGen::saveState(ChunkWriter &out) const
{
    streamSpec.saveState(out);
    out.u64(rng.rawState());
    out.u64(pc);
    out.u64(nextDataAddr);
    out.u64(numGenerated);
    for (std::uint8_t reg : recentDst)
        out.u8(reg);
    out.u32(std::uint32_t(recentCount));
    out.u32(std::uint32_t(nextDstReg));
    for (Addr addr : callStack)
        out.u64(addr);
    out.u32(std::uint32_t(callDepth));
}

void
StreamGen::loadState(ChunkReader &in)
{
    streamSpec.loadState(in);
    buildClassPattern();  // spec-derived, rng-free
    rng.setRawState(in.u64());
    pc = in.u64();
    nextDataAddr = in.u64();
    numGenerated = in.u64();
    for (std::uint8_t &reg : recentDst)
        reg = in.u8();
    recentCount = int(in.u32());
    nextDstReg = int(in.u32());
    for (Addr &addr : callStack)
        addr = in.u64();
    callDepth = int(in.u32());
}

void
BoundedStream::saveState(ChunkWriter &out) const
{
    gen.saveState(out);
    out.u64(remaining);
}

void
BoundedStream::loadState(ChunkReader &in)
{
    gen.loadState(in);
    remaining = in.u64();
}

} // namespace softwatt
