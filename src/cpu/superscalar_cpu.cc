#include "superscalar_cpu.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace softwatt
{

SuperscalarCpu::SuperscalarCpu(const MachineParams &params,
                               CacheHierarchy &hierarchy, Tlb &tlb,
                               CounterSink &sink, KernelIface &kernel)
    : Cpu(params, hierarchy, tlb, sink, kernel)
{
}

bool
SuperscalarCpu::pipelineEmpty() const
{
    return rob.empty() && fetchQueue.empty();
}

SuperscalarCpu::Entry *
SuperscalarCpu::entryBySeq(std::uint64_t seq)
{
    if (rob.empty() || seq < rob.front().seq ||
        seq > rob.back().seq) {
        return nullptr;
    }
    return &rob[seq - rob.front().seq];
}

bool
SuperscalarCpu::depSatisfied(std::uint64_t dep)
{
    if (dep == 0)
        return true;
    Entry *producer = entryBySeq(dep);
    return producer == nullptr ||
           producer->state == EntryState::Completed;
}

void
SuperscalarCpu::rebuildProducers()
{
    regProducer.fill(0);
    for (const Entry &entry : rob) {
        if (entry.op.dst != noReg &&
            entry.state != EntryState::Completed) {
            regProducer[entry.op.dst] = entry.seq;
        }
    }
}

std::vector<MicroOp>
SuperscalarCpu::squashFrom(std::uint64_t from_seq)
{
    std::vector<MicroOp> replay;
    while (!rob.empty() && rob.back().seq >= from_seq) {
        replay.push_back(rob.back().op);
        rob.pop_back();
    }
    std::reverse(replay.begin(), replay.end());
    for (const FetchedOp &fetched : fetchQueue)
        replay.push_back(fetched.op);
    fetchQueue.clear();

    if (fetchBlockedOnBranch >= from_seq)
        fetchBlockedOnBranch = 0;
    if (blockedSyscallSeq >= from_seq)
        blockedSyscallSeq = 0;
    // Reuse the squashed sequence numbers so entryBySeq's contiguous
    // index arithmetic stays valid (replays are re-dispatched).
    nextSeq = from_seq;
    rebuildProducers();
    return replay;
}

std::vector<MicroOp>
SuperscalarCpu::squashAllCollect()
{
    std::vector<MicroOp> replay =
        rob.empty() ? std::vector<MicroOp>{}
                    : squashFrom(rob.front().seq);
    if (rob.empty() && replay.empty() && !fetchQueue.empty()) {
        for (const FetchedOp &f : fetchQueue)
            replay.push_back(f.op);
        fetchQueue.clear();
    }
    squashAll();
    return replay;
}

void
SuperscalarCpu::squashAll()
{
    rob.clear();
    fetchQueue.clear();
    regProducer.fill(0);
    fetchBlockedOnBranch = 0;
    blockedSyscallSeq = 0;
    fetchBusyUntil = 0;
}

void
SuperscalarCpu::saveState(ChunkWriter &out) const
{
    SW_CHECK(pipelineEmpty(),
             "SuperscalarCpu::saveState: pipeline not drained");
    saveBaseState(out);
    out.b(sourceEnded);
    out.u64(nextSeq);
    out.u64(now);
    out.u64(mispredStalls);
}

void
SuperscalarCpu::loadState(ChunkReader &in)
{
    SW_CHECK(pipelineEmpty(),
             "SuperscalarCpu::loadState: pipeline not drained");
    loadBaseState(in);
    sourceEnded = in.b();
    nextSeq = in.u64();
    now = in.u64();
    mispredStalls = in.u64();
}

void
SuperscalarCpu::doCommit()
{
    int committed = 0;
    while (committed < params.commitWidth && !rob.empty() &&
           rob.front().state == EntryState::Completed) {
        Entry entry = rob.front();
        rob.pop_front();
        ++committed;
        ++totalCommitted;
        sink.add(entry.op.mode, CounterId::CommittedInsts, 1,
                 entry.op.frameTag);
        if (regProducer[entry.op.dst != noReg ? entry.op.dst : 0] ==
                entry.seq &&
            entry.op.dst != noReg) {
            regProducer[entry.op.dst] = 0;
        }
        if (entry.op.cls == InstClass::Syscall) {
            if (blockedSyscallSeq == entry.seq)
                blockedSyscallSeq = 0;
            kernel.syscall(entry.op);
        }
        kernel.onCommit(entry.op);
    }
    if (committed > 0) {
        sink.add(sink.cycleMode(), CounterId::CommitCycles, 1,
                 sink.cycleTag());
    }
}

void
SuperscalarCpu::doWriteback()
{
    for (Entry &entry : rob) {
        if (entry.state == EntryState::Issued &&
            entry.completeAt <= now) {
            entry.state = EntryState::Completed;
            if (entry.op.dst != noReg) {
                sink.add(entry.op.mode, CounterId::RegFileWrite, 1,
                         entry.op.frameTag);
                sink.add(entry.op.mode, CounterId::ResultBusOp, 1,
                         entry.op.frameTag);
            }
            if (entry.mispredicted &&
                fetchBlockedOnBranch == entry.seq) {
                fetchBlockedOnBranch = 0;  // redirect resolved
            }
        }
    }
}

bool
SuperscalarCpu::doIssue()
{
    int issued = 0;
    int int_units = params.intAlus;
    int fp_units = params.fpAlus;
    int mem_ports = 2;
    int scanned = 0;

    for (Entry &entry : rob) {
        if (issued >= params.issueWidth || ++scanned > issueScanLimit)
            break;
        if (entry.state != EntryState::Waiting)
            continue;
        if (!depSatisfied(entry.depA) || !depSatisfied(entry.depB))
            continue;

        const MicroOp &op = entry.op;
        switch (op.cls) {
          case InstClass::IntAlu:
          case InstClass::Branch:
            if (int_units == 0)
                continue;
            break;
          case InstClass::FpAlu:
            if (fp_units == 0)
                continue;
            break;
          case InstClass::Load:
          case InstClass::Store:
            if (mem_ports == 0)
                continue;
            break;
          default:
            break;
        }

        // Register file reads and wakeup/select on issue.
        int reads = (op.srcA != noReg) + (op.srcB != noReg);
        if (reads)
            sink.add(op.mode, CounterId::RegFileRead, reads,
                     op.frameTag);
        sink.add(op.mode, CounterId::IssueWindowOp, 1, op.frameTag);

        std::uint64_t latency = 1;
        switch (op.cls) {
          case InstClass::IntAlu:
            --int_units;
            sink.add(op.mode, CounterId::IntAluOp, 1, op.frameTag);
            break;
          case InstClass::Branch:
            --int_units;
            break;
          case InstClass::FpAlu:
            --fp_units;
            sink.add(op.mode, CounterId::FpAluOp, 1, op.frameTag);
            latency = fpLatency;
            break;
          case InstClass::Load:
          case InstClass::Store: {
            --mem_ports;
            sink.add(op.mode, CounterId::LsqOp, 1, op.frameTag);
            bool is_store = op.cls == InstClass::Store;
            MemAccessOutcome data = hierarchy.dataAccess(
                op.memAddr, is_store, op.mode, op.frameTag);
            sink.add(op.mode, is_store ? CounterId::StoreInsts
                                       : CounterId::LoadInsts,
                     1, op.frameTag);
            latency = is_store ? 1 : std::uint64_t(data.latency);
            break;
          }
          default:
            break;
        }

        entry.state = EntryState::Issued;
        entry.completeAt = now + latency;
        ++issued;
    }
    return false;
}

bool
SuperscalarCpu::doDispatch()
{
    int dispatched = 0;
    while (dispatched < params.decodeWidth && !fetchQueue.empty() &&
           int(rob.size()) < params.instWindowSize) {
        FetchedOp fetched = fetchQueue.front();
        fetchQueue.pop_front();

        // Software-managed TLB: probe at dispatch (the effective
        // address is available). A miss is a precise exception: the
        // faulting instruction waits at dispatch until every older
        // instruction has committed, then traps — so the refill
        // handler runs unoverlapped, as on the R10000.
        if (fetched.op.isMemOp() && !fetched.tlbProbed) {
            fetched.tlbProbed = true;
            fetched.tlbMissed = !dataTlbLookup(fetched.op);
        }
        if (fetched.tlbMissed) {
            if (!rob.empty()) {
                // Hold at dispatch while older work drains.
                fetchQueue.push_front(fetched);
                return false;
            }
            std::vector<MicroOp> replay;
            replay.push_back(fetched.op);
            for (const FetchedOp &f : fetchQueue)
                replay.push_back(f.op);
            fetchQueue.clear();
            if (blockedSyscallSeq == ~std::uint64_t(0))
                blockedSyscallSeq = 0;
            kernel.dataTlbMiss(fetched.op.memAddr, fetched.op.asid,
                               std::move(replay));
            return true;
        }

        Entry entry;
        entry.op = fetched.op;
        entry.seq = nextSeq++;
        entry.mispredicted = fetched.mispredicted;
        if (fetched.mispredicted && fetchBlockedOnBranch == 0)
            fetchBlockedOnBranch = entry.seq;

        if (entry.op.srcA != noReg)
            entry.depA = regProducer[entry.op.srcA];
        if (entry.op.srcB != noReg)
            entry.depB = regProducer[entry.op.srcB];
        if (entry.op.dst != noReg)
            regProducer[entry.op.dst] = entry.seq;

        sink.add(entry.op.mode, CounterId::RenameOp, 1,
                 entry.op.frameTag);
        sink.add(entry.op.mode, CounterId::IssueWindowOp, 1,
                 entry.op.frameTag);  // insert
        if (entry.op.isMemOp()) {
            sink.add(entry.op.mode, CounterId::LsqOp, 1,
                     entry.op.frameTag);  // allocate
        }

        rob.push_back(entry);
        ++dispatched;
    }
    return false;
}

void
SuperscalarCpu::doFetch()
{
    if (now < fetchBusyUntil)
        return;
    if (fetchBlockedOnBranch != 0) {
        ++mispredStalls;
        return;
    }
    if (blockedSyscallSeq != 0 || sourceEnded)
        return;

    int fetched = 0;
    while (fetched < params.fetchWidth &&
           int(fetchQueue.size()) < fetchQueueCap) {
        MicroOp op;
        FetchOutcome outcome = kernel.fetchNext(op);
        if (outcome == FetchOutcome::End) {
            sourceEnded = true;
            return;
        }
        if (outcome == FetchOutcome::Stall)
            return;

        sink.add(op.mode, CounterId::FetchedInsts, 1, op.frameTag);
        MemAccessOutcome fetch_mem =
            hierarchy.ifetch(op.pc, op.mode, op.frameTag);

        FetchedOp entry;
        entry.op = op;

        bool stop = false;
        if (fetch_mem.latency > 1) {
            // I-cache miss: fetch is blocked for the walk.
            fetchBusyUntil = now + std::uint64_t(fetch_mem.latency) - 1;
            stop = true;
        }

        if (op.isBranch()) {
            bool correct = bpred.predictAndTrain(op);
            if (!correct) {
                entry.mispredicted = true;
                stop = true;  // redirect once the branch resolves
            } else if (op.taken) {
                stop = true;  // fetch break at taken branch
            }
        }

        if (op.cls == InstClass::Syscall) {
            // Serialize: stop fetching until the syscall commits.
            fetchQueue.push_back(entry);
            ++fetched;
            blockedSyscallSeq = ~std::uint64_t(0);  // fixed at dispatch
            break;
        }

        fetchQueue.push_back(entry);
        ++fetched;
        if (stop)
            break;
    }
}

bool
SuperscalarCpu::cycle()
{
    ++now;
    ++totalCycles;

    // Cycle attribution: while the machine is architecturally in
    // kernel mode (trap taken, service not yet complete), cycles
    // belong to the kernel and to the active service invocation;
    // otherwise to the oldest instruction in flight.
    const MicroOp *oldest =
        !rob.empty() ? &rob.front().op
                     : (!fetchQueue.empty() ? &fetchQueue.front().op
                                            : nullptr);
    std::uint32_t ptag = kernel.privilegedTag();
    if (ptag != 0 && oldest && oldest->mode != ExecMode::User &&
        oldest->mode != ExecMode::Idle) {
        // In kernel mode with kernel work at the commit point:
        // charge the active service invocation.
        sink.setCycleMode(oldest->mode, ptag);
    } else if (oldest) {
        sink.setCycleMode(oldest->mode, oldest->frameTag);
    } else {
        sink.setCycleMode(kernel.currentStreamMode(), 0);
    }
    sink.addCycle();

    if (kernel.interruptPending() && blockedSyscallSeq == 0) {
        std::vector<MicroOp> replay =
            rob.empty() ? std::vector<MicroOp>{}
                        : squashFrom(rob.front().seq);
        if (rob.empty() && replay.empty() && !fetchQueue.empty()) {
            for (const FetchedOp &f : fetchQueue)
                replay.push_back(f.op);
            fetchQueue.clear();
        }
        kernel.takeInterrupt(std::move(replay));
    }

    doCommit();
    doWriteback();
    bool trapped = doIssue();
    if (!trapped)
        trapped = doDispatch();
    if (!trapped)
        doFetch();

    // Fix up the syscall-serialization seq now that dispatch ran.
    if (blockedSyscallSeq == ~std::uint64_t(0)) {
        for (const Entry &entry : rob) {
            if (entry.op.cls == InstClass::Syscall)
                blockedSyscallSeq = entry.seq;
        }
        // Still in the fetch queue: keep the sentinel; dispatch will
        // run again next cycle.
    }

    if (pipelineEmpty())
        kernel.onPipelineEmpty();

    return !(sourceEnded && pipelineEmpty());
}

} // namespace softwatt
