#include "branch_predictor.hh"

namespace softwatt
{

BranchPredictor::BranchPredictor(const MachineParams &params,
                                 CounterSink &sink)
    : sink(sink), bht(params.bhtEntries, 1),
      btb(params.btbEntries), ras(params.rasEntries, 0)
{
}

std::size_t
BranchPredictor::bhtIndex(Addr pc) const
{
    return (pc >> 2) & (bht.size() - 1);
}

std::size_t
BranchPredictor::btbIndex(Addr pc) const
{
    return (pc >> 2) & (btb.size() - 1);
}

bool
BranchPredictor::predictAndTrain(const MicroOp &op)
{
    ++numLookups;
    bool correct = true;

    if (op.isReturn) {
        // Return address stack pop.
        sink.add(op.mode, CounterId::RasRef, 1, op.frameTag);
        Addr predicted = 0;
        if (rasDepth > 0) {
            rasTop = (rasTop + int(ras.size()) - 1) % int(ras.size());
            predicted = ras[rasTop];
            --rasDepth;
        }
        correct = (predicted == op.target);
    } else {
        // Direction from the BHT.
        sink.add(op.mode, CounterId::BhtRef, 1, op.frameTag);
        std::uint8_t &counter = bht[bhtIndex(op.pc)];
        bool pred_taken = counter >= 2;
        if (pred_taken != op.taken)
            correct = false;

        // Train the two-bit counter.
        if (op.taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }

        // Target from the BTB for taken branches.
        if (op.taken) {
            sink.add(op.mode, CounterId::BtbRef, 1, op.frameTag);
            BtbEntry &entry = btb[btbIndex(op.pc)];
            if (!entry.valid || entry.tag != op.pc ||
                entry.target != op.target) {
                if (pred_taken)
                    correct = false;  // direction right, target wrong
                entry.tag = op.pc;
                entry.target = op.target;
                entry.valid = true;
            }
        }
    }

    if (op.isCall) {
        // Push the return address.
        sink.add(op.mode, CounterId::RasRef, 1, op.frameTag);
        ras[rasTop] = op.pc + 4;
        rasTop = (rasTop + 1) % int(ras.size());
        if (rasDepth < int(ras.size()))
            ++rasDepth;
    }

    if (!correct)
        ++numMispredicts;
    sink.add(op.mode, CounterId::BranchInsts, 1, op.frameTag);
    if (!correct)
        sink.add(op.mode, CounterId::BranchMispred, 1, op.frameTag);
    return correct;
}

} // namespace softwatt
