#include "branch_predictor.hh"

#include "sim/checkpoint.hh"

namespace softwatt
{

BranchPredictor::BranchPredictor(const MachineParams &params,
                                 CounterSink &sink)
    : sink(sink), bht(params.bhtEntries, 1),
      btb(params.btbEntries), ras(params.rasEntries, 0)
{
}

std::size_t
BranchPredictor::bhtIndex(Addr pc) const
{
    return (pc >> 2) & (bht.size() - 1);
}

std::size_t
BranchPredictor::btbIndex(Addr pc) const
{
    return (pc >> 2) & (btb.size() - 1);
}

bool
BranchPredictor::predictAndTrain(const MicroOp &op)
{
    ++numLookups;
    bool correct = true;

    if (op.isReturn) {
        // Return address stack pop.
        sink.add(op.mode, CounterId::RasRef, 1, op.frameTag);
        Addr predicted = 0;
        if (rasDepth > 0) {
            rasTop = (rasTop + int(ras.size()) - 1) % int(ras.size());
            predicted = ras[rasTop];
            --rasDepth;
        }
        correct = (predicted == op.target);
    } else {
        // Direction from the BHT.
        sink.add(op.mode, CounterId::BhtRef, 1, op.frameTag);
        std::uint8_t &counter = bht[bhtIndex(op.pc)];
        bool pred_taken = counter >= 2;
        if (pred_taken != op.taken)
            correct = false;

        // Train the two-bit counter.
        if (op.taken) {
            if (counter < 3)
                ++counter;
        } else {
            if (counter > 0)
                --counter;
        }

        // Target from the BTB for taken branches.
        if (op.taken) {
            sink.add(op.mode, CounterId::BtbRef, 1, op.frameTag);
            BtbEntry &entry = btb[btbIndex(op.pc)];
            if (!entry.valid || entry.tag != op.pc ||
                entry.target != op.target) {
                if (pred_taken)
                    correct = false;  // direction right, target wrong
                entry.tag = op.pc;
                entry.target = op.target;
                entry.valid = true;
            }
        }
    }

    if (op.isCall) {
        // Push the return address.
        sink.add(op.mode, CounterId::RasRef, 1, op.frameTag);
        ras[rasTop] = op.pc + 4;
        rasTop = (rasTop + 1) % int(ras.size());
        if (rasDepth < int(ras.size()))
            ++rasDepth;
    }

    if (!correct)
        ++numMispredicts;
    sink.add(op.mode, CounterId::BranchInsts, 1, op.frameTag);
    if (!correct)
        sink.add(op.mode, CounterId::BranchMispred, 1, op.frameTag);
    return correct;
}

void
BranchPredictor::saveState(ChunkWriter &out) const
{
    out.u64(std::uint64_t(bht.size()));
    for (std::uint8_t counter : bht)
        out.u8(counter);
    out.u64(std::uint64_t(btb.size()));
    for (const BtbEntry &entry : btb) {
        out.u64(entry.tag);
        out.u64(entry.target);
        out.b(entry.valid);
    }
    out.u64(std::uint64_t(ras.size()));
    for (Addr addr : ras)
        out.u64(addr);
    out.u32(std::uint32_t(rasTop));
    out.u32(std::uint32_t(rasDepth));
    out.u64(numLookups);
    out.u64(numMispredicts);
}

void
BranchPredictor::loadState(ChunkReader &in)
{
    if (in.u64() != bht.size())
        throw CheckpointError("bpred: BHT size mismatch");
    for (std::uint8_t &counter : bht)
        counter = in.u8();
    if (in.u64() != btb.size())
        throw CheckpointError("bpred: BTB size mismatch");
    for (BtbEntry &entry : btb) {
        entry.tag = in.u64();
        entry.target = in.u64();
        entry.valid = in.b();
    }
    if (in.u64() != ras.size())
        throw CheckpointError("bpred: RAS size mismatch");
    for (Addr &addr : ras)
        addr = in.u64();
    rasTop = int(in.u32());
    rasDepth = int(in.u32());
    numLookups = in.u64();
    numMispredicts = in.u64();
}

} // namespace softwatt
