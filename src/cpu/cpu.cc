#include "cpu.hh"

namespace softwatt
{

Cpu::Cpu(const MachineParams &params, CacheHierarchy &hierarchy,
         Tlb &tlb, CounterSink &sink, KernelIface &kernel)
    : params(params), hierarchy(hierarchy), tlb(tlb), sink(sink),
      kernel(kernel), bpred(params, sink)
{
}

void
Cpu::saveBaseState(ChunkWriter &out) const
{
    out.u64(totalCycles);
    out.u64(totalCommitted);
    bpred.saveState(out);
}

void
Cpu::loadBaseState(ChunkReader &in)
{
    totalCycles = in.u64();
    totalCommitted = in.u64();
    bpred.loadState(in);
}

bool
Cpu::dataTlbLookup(const MicroOp &op)
{
    if (op.kernelMapped)
        return true;
    sink.add(op.mode, CounterId::TlbRef, 1, op.frameTag);
    if (tlb.lookup(op.asid, op.memAddr))
        return true;
    sink.add(op.mode, CounterId::TlbMiss, 1, op.frameTag);
    return false;
}

} // namespace softwatt
