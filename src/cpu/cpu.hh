/**
 * @file
 * Common base of the two CPU timing models: Mipsy-like in-order
 * (InOrderCpu) and MXS-like out-of-order superscalar
 * (SuperscalarCpu).
 */

#ifndef SOFTWATT_CPU_CPU_HH
#define SOFTWATT_CPU_CPU_HH

#include <cstdint>

#include "mem/hierarchy.hh"
#include "mem/tlb.hh"
#include "sim/counter_sink.hh"
#include "sim/machine_params.hh"

#include "branch_predictor.hh"
#include "kernel_iface.hh"

namespace softwatt
{

/**
 * A CPU timing model driven one cycle at a time by the System loop.
 *
 * Checkpointable, with a drained-pipeline precondition: the system
 * squashes in-flight work back to the kernel before saving, so only
 * persistent model state (totals, predictor tables, sequence
 * counters) crosses the checkpoint.
 */
class Cpu : public Checkpointable
{
  public:
    Cpu(const MachineParams &params, CacheHierarchy &hierarchy,
        Tlb &tlb, CounterSink &sink, KernelIface &kernel);
    virtual ~Cpu() = default;

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /**
     * Advance one cycle of detailed execution.
     * @return False once the kernel has reported end-of-workload and
     *         the pipeline has drained.
     */
    virtual bool cycle() = 0;

    /**
     * Discard all in-flight work without replay. Used before idle
     * fast-forward, where the discarded instructions are idle-loop
     * busy-waiting whose effect is accounted analytically.
     */
    virtual void squashAll() = 0;

    /** True when no instruction is in flight. */
    virtual bool pipelineEmpty() const = 0;

    /**
     * Discard all in-flight work, returning the squashed
     * instructions in program order so the caller can requeue them.
     */
    virtual std::vector<MicroOp> squashAllCollect() = 0;

    std::uint64_t cyclesRun() const { return totalCycles; }
    std::uint64_t committedInsts() const { return totalCommitted; }

    /** Committed instructions per cycle over the whole run. */
    double
    ipc() const
    {
        return totalCycles ? double(totalCommitted) / double(totalCycles)
                           : 0;
    }

    BranchPredictor &predictor() { return bpred; }

  protected:
    /** Totals + predictor serialization shared by both models. */
    void saveBaseState(ChunkWriter &out) const;
    void loadBaseState(ChunkReader &in);

    MachineParams params;
    CacheHierarchy &hierarchy;
    Tlb &tlb;
    CounterSink &sink;
    KernelIface &kernel;
    BranchPredictor bpred;

    std::uint64_t totalCycles = 0;
    std::uint64_t totalCommitted = 0;

    /**
     * TLB lookup for a data access; charges TlbRef (and TlbMiss).
     * @return True on a hit or for kernel-mapped accesses.
     */
    bool dataTlbLookup(const MicroOp &op);
};

} // namespace softwatt

#endif // SOFTWATT_CPU_CPU_HH
