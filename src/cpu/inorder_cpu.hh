/**
 * @file
 * Mipsy-equivalent CPU: single-issue, in-order, blocking caches
 * (MIPS R4000-like). Used for the memory-system characterization
 * (Figure 3) and as the fast first pass, as in the paper.
 */

#ifndef SOFTWATT_CPU_INORDER_CPU_HH
#define SOFTWATT_CPU_INORDER_CPU_HH

#include "cpu.hh"

namespace softwatt
{

/**
 * Single-issue in-order pipeline with blocking caches.
 *
 * One instruction occupies the machine at a time; every cache miss
 * stalls, branch mispredictions cost a fixed redirect penalty. The
 * model still performs TLB lookups, raises traps and delivers
 * interrupts through the same KernelIface protocol as the
 * superscalar model.
 */
class InOrderCpu : public Cpu
{
  public:
    InOrderCpu(const MachineParams &params, CacheHierarchy &hierarchy,
               Tlb &tlb, CounterSink &sink, KernelIface &kernel);

    bool cycle() override;
    void squashAll() override;
    bool pipelineEmpty() const override;
    std::vector<MicroOp> squashAllCollect() override;

    // Checkpointable (requires a drained pipeline).
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    /** Cycles the current instruction still needs before finishing. */
    std::uint64_t busyCycles = 0;  // ckpt:derived: zero once drained

    /** Instruction being executed (valid while busyCycles > 0). */
    MicroOp current;               // ckpt:derived: empty once drained
    bool hasCurrent = false;       // ckpt:derived: false once drained

    bool sourceEnded = false;

    /** Fixed mispredict redirect penalty for the short pipeline. */
    static constexpr int mispredictPenalty = 2;

    /** Finish the current instruction: commit-side bookkeeping. */
    void retireCurrent();

    /** Start executing a newly fetched instruction. */
    void startInst(const MicroOp &op);
};

} // namespace softwatt

#endif // SOFTWATT_CPU_INORDER_CPU_HH
