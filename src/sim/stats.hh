/**
 * @file
 * A compact statistics package in the spirit of gem5's Stats: named,
 * self-describing performance statistics that modules register into a
 * group and the simulation dumps at the end of a run.
 */

#ifndef SOFTWATT_SIM_STATS_HH
#define SOFTWATT_SIM_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace softwatt
{
namespace stats
{

class Group;

/** Base of every statistic: a name, a description, and a text dump. */
class StatBase
{
  public:
    StatBase(Group &group, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Write "name value # desc" lines to @p out. */
    virtual void dump(std::ostream &out, const std::string &prefix)
        const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A single accumulating value. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &operator+=(double v) { total += v; return *this; }
    Scalar &operator++() { total += 1; return *this; }
    void set(double v) { total = v; }
    double value() const { return total; }

    void dump(std::ostream &out, const std::string &prefix)
        const override;
    void reset() override { total = 0; }

  private:
    double total = 0;
};

/** A fixed-length vector of accumulating values with bucket names. */
class Vector : public StatBase
{
  public:
    Vector(Group &group, std::string name, std::string desc,
           std::vector<std::string> bucket_names);

    void add(std::size_t bucket, double v = 1);
    double value(std::size_t bucket) const;
    double total() const;
    std::size_t size() const { return buckets.size(); }

    void dump(std::ostream &out, const std::string &prefix)
        const override;
    void reset() override;

  private:
    std::vector<std::string> names;
    std::vector<double> buckets;
};

/** Mean/min/max/stdev over individually sampled values. */
class Distribution : public StatBase
{
  public:
    using StatBase::StatBase;

    void sample(double v);
    std::uint64_t count() const { return n; }
    double mean() const { return n ? sum / double(n) : 0; }
    double minimum() const { return n ? minVal : 0; }
    double maximum() const { return n ? maxVal : 0; }

    /** Sample standard deviation; 0 when fewer than two samples. */
    double stdev() const;

    /** Coefficient of deviation, percent: 100 * stdev / mean. */
    double coeffOfDeviationPct() const;

    void dump(std::ostream &out, const std::string &prefix)
        const override;
    void reset() override;

  private:
    std::uint64_t n = 0;
    double sum = 0;
    double sumSq = 0;
    double minVal = 0;
    double maxVal = 0;
};

/**
 * Owner of a set of statistics. Modules hold a Group and construct
 * their stats against it; System dumps all groups at end of run.
 */
class Group
{
  public:
    explicit Group(std::string name) : groupName(std::move(name)) {}

    const std::string &name() const { return groupName; }

    /** Registration hook used by StatBase's constructor. */
    void registerStat(StatBase *stat) { statList.push_back(stat); }

    /** Dump every registered stat, prefixed with the group name. */
    void dump(std::ostream &out) const;

    /** Reset every registered stat. */
    void resetAll();

    const std::vector<StatBase *> &all() const { return statList; }

  private:
    std::string groupName;
    std::vector<StatBase *> statList;
};

} // namespace stats
} // namespace softwatt

#endif // SOFTWATT_SIM_STATS_HH
