/**
 * @file
 * Fundamental scalar types shared by every SoftWatt module.
 */

#ifndef SOFTWATT_SIM_TYPES_HH
#define SOFTWATT_SIM_TYPES_HH

#include <cstdint>
#include <string>

namespace softwatt
{

/** Simulated time, measured in processor cycles of the core clock. */
using Tick = std::uint64_t;

/** A duration expressed in core-clock cycles. */
using Cycles = std::uint64_t;

/** Virtual or physical byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Largest representable tick; used as "never" for timeouts. */
constexpr Tick maxTick = ~Tick(0);

/**
 * Software execution mode of the simulated machine.
 *
 * The paper characterizes four modes: user code, kernel instruction
 * execution, kernel synchronization, and the idle process. Every
 * hardware access counter is tagged with the mode that caused it.
 */
enum class ExecMode : std::uint8_t
{
    User = 0,
    KernelInst,
    KernelSync,
    Idle,
};

/** Number of distinct ExecMode values. */
constexpr int numExecModes = 4;

/** Human-readable name of an execution mode. */
const char *execModeName(ExecMode mode);

/** All modes, in a fixed iteration order. */
constexpr ExecMode allExecModes[numExecModes] = {
    ExecMode::User, ExecMode::KernelInst, ExecMode::KernelSync,
    ExecMode::Idle,
};

} // namespace softwatt

#endif // SOFTWATT_SIM_TYPES_HH
