#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace softwatt
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Normal};

/**
 * Guards the global error handler. std::function cannot be atomic,
 * and the serve daemon's worker threads read the handler inside
 * fatal()/panic() while other threads may install one, so every
 * access goes through this mutex; fatal()/panic() copy the handler
 * out and invoke it unlocked (a handler is free to throw or to
 * install another handler).
 */
std::mutex &
handlerMutex()
{
    static std::mutex m;
    return m;
}

ErrorHandler globalErrorHandler;  // guarded by handlerMutex()

ErrorHandler
currentErrorHandler()
{
    std::lock_guard<std::mutex> lock(handlerMutex());
    return globalErrorHandler;
}

/**
 * Serializes message emission: experiment runs execute on a thread
 * pool, so concurrent warn()/status() calls must not interleave
 * their bytes. (The level setter stays a main-thread operation;
 * only emission is contended.)
 */
std::mutex &
outputMutex()
{
    static std::mutex m;
    return m;
}

void
emit(const char *prefix, const std::string &message)
{
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
}

} // namespace

ErrorHandler
setErrorHandler(ErrorHandler handler)
{
    std::lock_guard<std::mutex> lock(handlerMutex());
    ErrorHandler previous = std::move(globalErrorHandler);
    globalErrorHandler = std::move(handler);
    return previous;
}

bool
errorHandlerInstalled()
{
    std::lock_guard<std::mutex> lock(handlerMutex());
    return bool(globalErrorHandler);
}

void
throwingErrorHandler(ErrorKind kind, const std::string &message)
{
    throw SimError(kind, message);
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
fatal(const std::string &message)
{
    if (ErrorHandler handler = currentErrorHandler()) {
        handler(ErrorKind::Fatal, message);
        // A handler that returns must not fall through to exit():
        // with a handler installed the process belongs to a test or
        // an embedding application, which is never hard-killed.
        throw SimError(ErrorKind::Fatal, message);
    }
    emit("fatal: ", message);
    std::exit(1);
}

void
panic(const std::string &message)
{
    if (ErrorHandler handler = currentErrorHandler()) {
        handler(ErrorKind::Panic, message);
        throw SimError(ErrorKind::Panic, message);
    }
    emit("panic: ", message);
    std::abort();
}

void
warn(const std::string &message)
{
    if (logLevel() >= LogLevel::Normal)
        emit("warn: ", message);
}

void
status(const std::string &message)
{
    if (logLevel() >= LogLevel::Normal)
        emit("", message);
}

void
inform(const std::string &message)
{
    if (logLevel() >= LogLevel::Verbose)
        emit("info: ", message);
}

} // namespace softwatt
