#include "logging.hh"

#include <cstdio>
#include <cstdlib>

namespace softwatt
{

namespace
{
LogLevel globalLevel = LogLevel::Normal;
ErrorHandler globalErrorHandler;
} // namespace

ErrorHandler
setErrorHandler(ErrorHandler handler)
{
    ErrorHandler previous = std::move(globalErrorHandler);
    globalErrorHandler = std::move(handler);
    return previous;
}

void
throwingErrorHandler(ErrorKind kind, const std::string &message)
{
    throw SimError(kind, message);
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
fatal(const std::string &message)
{
    if (globalErrorHandler)
        globalErrorHandler(ErrorKind::Fatal, message);
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    if (globalErrorHandler)
        globalErrorHandler(ErrorKind::Panic, message);
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
warn(const std::string &message)
{
    if (globalLevel >= LogLevel::Normal)
        std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const std::string &message)
{
    if (globalLevel >= LogLevel::Verbose)
        std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace softwatt
