#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace softwatt
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Normal};
ErrorHandler globalErrorHandler;

/**
 * Serializes message emission: experiment runs execute on a thread
 * pool, so concurrent warn()/status() calls must not interleave
 * their bytes. (The level and handler setters stay main-thread
 * operations; only emission is contended.)
 */
std::mutex &
outputMutex()
{
    static std::mutex m;
    return m;
}

void
emit(const char *prefix, const std::string &message)
{
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "%s%s\n", prefix, message.c_str());
}

} // namespace

ErrorHandler
setErrorHandler(ErrorHandler handler)
{
    ErrorHandler previous = std::move(globalErrorHandler);
    globalErrorHandler = std::move(handler);
    return previous;
}

void
throwingErrorHandler(ErrorKind kind, const std::string &message)
{
    throw SimError(kind, message);
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
fatal(const std::string &message)
{
    if (globalErrorHandler) {
        globalErrorHandler(ErrorKind::Fatal, message);
        // A handler that returns must not fall through to exit():
        // with a handler installed the process belongs to a test or
        // an embedding application, which is never hard-killed.
        throw SimError(ErrorKind::Fatal, message);
    }
    emit("fatal: ", message);
    std::exit(1);
}

void
panic(const std::string &message)
{
    if (globalErrorHandler) {
        globalErrorHandler(ErrorKind::Panic, message);
        throw SimError(ErrorKind::Panic, message);
    }
    emit("panic: ", message);
    std::abort();
}

void
warn(const std::string &message)
{
    if (logLevel() >= LogLevel::Normal)
        emit("warn: ", message);
}

void
status(const std::string &message)
{
    if (logLevel() >= LogLevel::Normal)
        emit("", message);
}

void
inform(const std::string &message)
{
    if (logLevel() >= LogLevel::Verbose)
        emit("info: ", message);
}

} // namespace softwatt
