#include "signals.hh"

#include "logging.hh"

namespace softwatt
{

namespace
{

/**
 * The token the active guard routes signals into, plus a delivery
 * counter for diagnostics. Both are lock-free atomics: the handler
 * runs in signal context and may only touch async-signal-safe
 * state.
 */
std::atomic<CancelToken *> activeToken{nullptr};
std::atomic<int> signalCount{0};

extern "C" void
forwardSignalToToken(int)
{
    CancelToken *token =
        activeToken.load(std::memory_order_acquire);
    if (token)
        token->escalate();
    signalCount.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

SignalGuard::SignalGuard(CancelToken &token)
{
    CancelToken *expected = nullptr;
    if (!activeToken.compare_exchange_strong(
            expected, &token, std::memory_order_acq_rel)) {
        panic("SignalGuard: a guard is already installed; only the "
              "experiment runner may own signal disposition");
    }
    signalCount.store(0, std::memory_order_relaxed);

    struct sigaction action = {};
    action.sa_handler = forwardSignalToToken;
    sigemptyset(&action.sa_mask);
    // No SA_RESTART: a blocked f.get()/condition wait in the runner
    // is fine (futures are signal-agnostic), but interruptible I/O
    // should see EINTR rather than hang past a cancellation.
    action.sa_flags = 0;
    // SIGHUP takes the same path as SIGTERM: a vanished controlling
    // terminal means "wrap up", not "die mid-write".
    // SIGPIPE is ignored outright: a disconnected peer must surface
    // as an EPIPE write error handled per-session, never as a
    // process-killing signal.
    struct sigaction ignore = {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    ignore.sa_flags = 0;
    if (sigaction(SIGINT, &action, &previousInt) != 0 ||
        sigaction(SIGTERM, &action, &previousTerm) != 0 ||
        sigaction(SIGHUP, &action, &previousHup) != 0 ||
        sigaction(SIGPIPE, &ignore, &previousPipe) != 0) {
        activeToken.store(nullptr, std::memory_order_release);
        panic("SignalGuard: sigaction failed");
    }
}

SignalGuard::~SignalGuard()
{
    sigaction(SIGINT, &previousInt, nullptr);
    sigaction(SIGTERM, &previousTerm, nullptr);
    sigaction(SIGHUP, &previousHup, nullptr);
    sigaction(SIGPIPE, &previousPipe, nullptr);
    activeToken.store(nullptr, std::memory_order_release);
}

bool
SignalGuard::active()
{
    return activeToken.load(std::memory_order_acquire) != nullptr;
}

int
SignalGuard::deliveredSignals()
{
    return signalCount.load(std::memory_order_relaxed);
}

} // namespace softwatt
