#include "counters.hh"

#include "sim/checkpoint.hh"

#include "logging.hh"

namespace softwatt
{

const char *
counterName(CounterId id)
{
    switch (id) {
      case CounterId::Cycles: return "cycles";
      case CounterId::CommitCycles: return "commit_cycles";
      case CounterId::FetchedInsts: return "fetched_insts";
      case CounterId::CommittedInsts: return "committed_insts";
      case CounterId::IL1Ref: return "il1_ref";
      case CounterId::IL1Miss: return "il1_miss";
      case CounterId::DL1Ref: return "dl1_ref";
      case CounterId::DL1Miss: return "dl1_miss";
      case CounterId::L2IRef: return "l2i_ref";
      case CounterId::L2DRef: return "l2d_ref";
      case CounterId::L2Miss: return "l2_miss";
      case CounterId::MemRef: return "mem_ref";
      case CounterId::TlbRef: return "tlb_ref";
      case CounterId::TlbMiss: return "tlb_miss";
      case CounterId::IntAluOp: return "int_alu_op";
      case CounterId::FpAluOp: return "fp_alu_op";
      case CounterId::RegFileRead: return "regfile_read";
      case CounterId::RegFileWrite: return "regfile_write";
      case CounterId::RenameOp: return "rename_op";
      case CounterId::IssueWindowOp: return "issue_window_op";
      case CounterId::LsqOp: return "lsq_op";
      case CounterId::ResultBusOp: return "result_bus_op";
      case CounterId::BhtRef: return "bht_ref";
      case CounterId::BtbRef: return "btb_ref";
      case CounterId::RasRef: return "ras_ref";
      case CounterId::BranchInsts: return "branch_insts";
      case CounterId::BranchMispred: return "branch_mispred";
      case CounterId::LoadInsts: return "load_insts";
      case CounterId::StoreInsts: return "store_insts";
      case CounterId::DiskFault: return "disk_fault";
      case CounterId::DiskRetry: return "disk_retry";
      case CounterId::DiskGiveUp: return "disk_giveup";
      case CounterId::NumCounters: break;
    }
    panic("counterName: invalid counter id");
}

std::uint64_t
CounterBank::total(CounterId id) const
{
    std::uint64_t sum = 0;
    for (int m = 0; m < numExecModes; ++m)
        sum += values[m][static_cast<int>(id)];
    return sum;
}

void
CounterBank::clear()
{
    for (auto &row : values)
        row.fill(0);
}

void
CounterBank::accumulate(const CounterBank &other)
{
    for (int m = 0; m < numExecModes; ++m)
        for (int c = 0; c < numCounters; ++c)
            values[m][c] += other.values[m][c];
}

void
CounterBank::saveState(ChunkWriter &out) const
{
    out.u32(std::uint32_t(currentMode));
    for (const auto &row : values)
        for (std::uint64_t cell : row)
            out.u64(cell);
}

void
CounterBank::loadState(ChunkReader &in)
{
    currentMode = int(in.u32());
    for (auto &row : values)
        for (std::uint64_t &cell : row)
            cell = in.u64();
}

} // namespace softwatt
