#include "stats.hh"

#include <cmath>
#include <ostream>

#include "logging.hh"

namespace softwatt
{
namespace stats
{

StatBase::StatBase(Group &group, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    group.registerStat(this);
}

void
Scalar::dump(std::ostream &out, const std::string &prefix) const
{
    out << prefix << name() << ' ' << total << " # " << desc() << '\n';
}

Vector::Vector(Group &group, std::string name, std::string desc,
               std::vector<std::string> bucket_names)
    : StatBase(group, std::move(name), std::move(desc)),
      names(std::move(bucket_names)), buckets(names.size(), 0)
{
}

void
Vector::add(std::size_t bucket, double v)
{
    if (bucket >= buckets.size())
        panic(msg() << "Vector::add: bucket " << bucket
                    << " out of range for " << name());
    buckets[bucket] += v;
}

double
Vector::value(std::size_t bucket) const
{
    if (bucket >= buckets.size())
        panic(msg() << "Vector::value: bucket " << bucket
                    << " out of range for " << name());
    return buckets[bucket];
}

double
Vector::total() const
{
    double sum = 0;
    for (double b : buckets)
        sum += b;
    return sum;
}

void
Vector::dump(std::ostream &out, const std::string &prefix) const
{
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        out << prefix << name() << "::" << names[i] << ' ' << buckets[i]
            << " # " << desc() << '\n';
    }
}

void
Vector::reset()
{
    for (double &b : buckets)
        b = 0;
}

void
Distribution::sample(double v)
{
    if (n == 0) {
        minVal = maxVal = v;
    } else {
        if (v < minVal)
            minVal = v;
        if (v > maxVal)
            maxVal = v;
    }
    ++n;
    sum += v;
    sumSq += v * v;
}

double
Distribution::stdev() const
{
    if (n < 2)
        return 0;
    double m = mean();
    double var = (sumSq - double(n) * m * m) / double(n - 1);
    return var > 0 ? std::sqrt(var) : 0;
}

double
Distribution::coeffOfDeviationPct() const
{
    double m = mean();
    return m != 0 ? 100.0 * stdev() / m : 0;
}

void
Distribution::dump(std::ostream &out, const std::string &prefix) const
{
    out << prefix << name() << "::count " << n << " # " << desc() << '\n'
        << prefix << name() << "::mean " << mean() << '\n'
        << prefix << name() << "::stdev " << stdev() << '\n'
        << prefix << name() << "::min " << minimum() << '\n'
        << prefix << name() << "::max " << maximum() << '\n';
}

void
Distribution::reset()
{
    n = 0;
    sum = sumSq = minVal = maxVal = 0;
}

void
Group::dump(std::ostream &out) const
{
    std::string prefix = groupName.empty() ? "" : groupName + ".";
    for (const StatBase *stat : statList)
        stat->dump(out, prefix);
}

void
Group::resetAll()
{
    for (StatBase *stat : statList)
        stat->reset();
}

} // namespace stats
} // namespace softwatt
