/**
 * @file
 * Fan-out point for hardware event counters: every event goes to the
 * global sampled bank and — when the event belongs to a kernel
 * service invocation — to that invocation's private bank, selected by
 * the instruction's frame tag. This is how SoftWatt gets exact
 * per-invocation service energies (Table 5 / Figure 8) even with
 * multiple invocations' instructions in flight at once.
 */

#ifndef SOFTWATT_SIM_COUNTER_SINK_HH
#define SOFTWATT_SIM_COUNTER_SINK_HH

#include <cstdint>
#include <vector>

#include "sim/checkpoint.hh"

#include "check.hh"
#include "counters.hh"
#include "types.hh"

namespace softwatt
{

/**
 * Routes counter increments to the global bank plus the private bank
 * of the service invocation identified by the event's frame tag.
 */
class CounterSink
{
  public:
    CounterSink() = default;

    /** The sampled global bank (cleared each log window). */
    CounterBank &global() { return globalBank; }
    const CounterBank &global() const { return globalBank; }

    /** Attach a per-invocation bank under a frame tag. */
    void
    registerBank(std::uint32_t tag, CounterBank *bank)
    {
        banks.push_back(TaggedBank{tag, bank});
    }

    /** Detach a per-invocation bank; idempotent. */
    void
    unregisterBank(std::uint32_t tag)
    {
        for (std::size_t i = 0; i < banks.size(); ++i) {
            if (banks[i].tag == tag) {
                banks[i] = banks.back();
                banks.pop_back();
                return;
            }
        }
    }

    /** Number of live per-invocation banks. */
    std::size_t liveBanks() const { return banks.size(); }

    /**
     * Record @p n events of kind @p id in mode @p mode, belonging to
     * the service invocation @p tag (0 = none). Only kernel-mode
     * events are forwarded to the invocation's bank.
     */
    void
    add(ExecMode mode, CounterId id, std::uint64_t n = 1,
        std::uint32_t tag = 0)
    {
        globalBank.addTo(mode, id, n);
        if (tag != 0 && (mode == ExecMode::KernelInst ||
                         mode == ExecMode::KernelSync)) {
            for (const TaggedBank &entry : banks) {
                if (entry.tag == tag) {
                    entry.bank->addTo(mode, id, n);
                    break;
                }
            }
        }
    }

    /** Mode/tag used for per-cycle charges (set by the CPU). */
    void
    setCycleMode(ExecMode mode, std::uint32_t tag = 0)
    {
        cycleModeValue = mode;
        cycleTagValue = tag;
    }

    ExecMode cycleMode() const { return cycleModeValue; }
    std::uint32_t cycleTag() const { return cycleTagValue; }

    /** Charge one elapsed cycle to the current cycle mode. */
    void
    addCycle()
    {
        add(cycleModeValue, CounterId::Cycles, 1, cycleTagValue);
    }

    /** Charge @p n elapsed cycles to the current cycle mode. */
    void
    addCycles(std::uint64_t n)
    {
        add(cycleModeValue, CounterId::Cycles, n, cycleTagValue);
    }

    /**
     * Checkpointing. Per-invocation banks are owned by live kernel
     * service frames, which cannot exist at a checkpoint-safe point,
     * so only the global bank and the cycle attribution are saved.
     */
    void
    saveState(ChunkWriter &out) const
    {
        SW_CHECK(banks.empty(),
                 "CounterSink::saveState with live service banks");
        globalBank.saveState(out);
        out.u8(std::uint8_t(cycleModeValue));
        out.u32(cycleTagValue);
    }

    void
    loadState(ChunkReader &in)
    {
        SW_CHECK(banks.empty(),
                 "CounterSink::loadState with live service banks");
        globalBank.loadState(in);
        cycleModeValue = ExecMode(in.u8());
        cycleTagValue = in.u32();
    }

  private:
    struct TaggedBank
    {
        std::uint32_t tag;
        CounterBank *bank;
    };

    CounterBank globalBank;
    std::vector<TaggedBank> banks;
    ExecMode cycleModeValue = ExecMode::User;
    std::uint32_t cycleTagValue = 0;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_COUNTER_SINK_HH
