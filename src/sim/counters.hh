/**
 * @file
 * The hardware access-counter contract between the timing models and
 * the power post-processor.
 *
 * Every countable hardware event has a CounterId. The CounterBank
 * accumulates events tagged with the current execution mode; the
 * system samples and resets the bank on every log window, producing
 * the SampleLog consumed by the PowerCalculator.
 */

#ifndef SOFTWATT_SIM_COUNTERS_HH
#define SOFTWATT_SIM_COUNTERS_HH

#include <array>
#include <cstdint>

#include "types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/**
 * Identifiers for every hardware event the power models consume.
 *
 * The paper's post-processing pass reads sampled activity counts from
 * the simulation log; this enum is the schema of those records.
 */
enum class CounterId : std::uint32_t
{
    Cycles = 0,        ///< Core cycles spent in the mode.
    CommitCycles,      ///< Cycles in which at least one inst committed.
    FetchedInsts,      ///< Instructions fetched (incl. wrong path).
    CommittedInsts,    ///< Instructions retired.
    IL1Ref,            ///< L1 I-cache references.
    IL1Miss,           ///< L1 I-cache misses.
    DL1Ref,            ///< L1 D-cache references.
    DL1Miss,           ///< L1 D-cache misses.
    L2IRef,            ///< Unified L2 references on the I-side.
    L2DRef,            ///< Unified L2 references on the D-side.
    L2Miss,            ///< Unified L2 misses (both sides).
    MemRef,            ///< Main-memory accesses.
    TlbRef,            ///< Unified TLB lookups.
    TlbMiss,           ///< TLB misses (trap to utlb handler).
    IntAluOp,          ///< Integer ALU operations executed.
    FpAluOp,           ///< Floating-point operations executed.
    RegFileRead,       ///< Register-file read ports exercised.
    RegFileWrite,      ///< Register-file write ports exercised.
    RenameOp,          ///< Register-rename table operations.
    IssueWindowOp,     ///< Issue-window wakeup/select operations.
    LsqOp,             ///< Load/store queue operations.
    ResultBusOp,       ///< Result-bus transfers.
    BhtRef,            ///< Branch history table lookups/updates.
    BtbRef,            ///< Branch target buffer lookups/updates.
    RasRef,            ///< Return address stack pushes/pops.
    BranchInsts,       ///< Conditional branches executed.
    BranchMispred,     ///< Branch mispredictions.
    LoadInsts,         ///< Loads committed.
    StoreInsts,        ///< Stores committed.
    DiskFault,         ///< Disk completions with an error status.
    DiskRetry,         ///< Driver retries after disk faults.
    DiskGiveUp,        ///< Requests abandoned by the driver.
    NumCounters,
};

/** Number of counters in the schema. */
constexpr int numCounters = static_cast<int>(CounterId::NumCounters);

/** Stable text name for a counter (used in CSV logs). */
const char *counterName(CounterId id);

/**
 * Live per-mode accumulation of hardware event counts.
 *
 * Timing models call add() on every countable event; the bank tags the
 * event with the current execution mode set by the OS model. The bank
 * is sampled and cleared once per log window.
 */
class CounterBank
{
  public:
    CounterBank() { clear(); }

    /** Set the mode that subsequent events will be attributed to. */
    void setMode(ExecMode mode) { currentMode = static_cast<int>(mode); }

    /** Mode currently being charged. */
    ExecMode mode() const { return static_cast<ExecMode>(currentMode); }

    /** Record @p n events of kind @p id against the current mode. */
    void
    add(CounterId id, std::uint64_t n = 1)
    {
        values[currentMode][static_cast<int>(id)] += n;
    }

    /** Record @p n events against an explicit mode. */
    void
    addTo(ExecMode mode, CounterId id, std::uint64_t n)
    {
        values[static_cast<int>(mode)][static_cast<int>(id)] += n;
    }

    /** Read one cell. */
    std::uint64_t
    get(ExecMode mode, CounterId id) const
    {
        return values[static_cast<int>(mode)][static_cast<int>(id)];
    }

    /** Sum a counter across all modes. */
    std::uint64_t total(CounterId id) const;

    /** Zero every cell. */
    void clear();

    /** Raw matrix access for sampling. */
    using Matrix =
        std::array<std::array<std::uint64_t, numCounters>, numExecModes>;
    const Matrix &raw() const { return values; }

    /** Element-wise accumulate another bank into this one. */
    void accumulate(const CounterBank &other);

    /** Checkpointing: the current mode plus the whole matrix. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    int currentMode = 0;
    Matrix values;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_COUNTERS_HH
