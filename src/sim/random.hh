/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * A small xorshift64* generator is used instead of <random> engines so
 * that streams are cheap, reproducible across standard library
 * implementations, and embeddable in hot simulation loops.
 */

#ifndef SOFTWATT_SIM_RANDOM_HH
#define SOFTWATT_SIM_RANDOM_HH

#include <cstdint>

namespace softwatt
{

/**
 * xorshift64* pseudo-random generator.
 *
 * Deterministic for a given seed; passes BigCrush for the purposes of
 * workload synthesis. Zero seeds are remapped to a fixed constant since
 * the all-zero state is absorbing.
 */
class Random
{
  public:
    /** Construct with a seed; seed 0 is remapped to a nonzero state. */
    explicit Random(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Geometric-ish burst length: 1 + number of successes of
     * probability p, capped at max.
     */
    std::uint64_t
    burst(double p, std::uint64_t max)
    {
        std::uint64_t n = 1;
        while (n < max && chance(p))
            ++n;
        return n;
    }

    /** Internal generator state, for checkpointing. */
    std::uint64_t rawState() const { return state; }

    /** Restore a state captured by rawState(). */
    void
    setRawState(std::uint64_t raw)
    {
        state = raw ? raw : 0x9e3779b97f4a7c15ull;
    }

  private:
    std::uint64_t state;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_RANDOM_HH
