/**
 * @file
 * Sampled simulation log — SoftWatt's post-processing interface.
 *
 * The paper computes power in a post-processing pass over the
 * simulation log files: counters are sampled at a coarse granularity,
 * so per-cycle information is lost but the simulation itself is not
 * slowed down. SampleLog is that log: one SampleRecord per window,
 * holding the per-mode counter matrix for the window.
 */

#ifndef SOFTWATT_SIM_SAMPLE_LOG_HH
#define SOFTWATT_SIM_SAMPLE_LOG_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "counters.hh"
#include "types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/** One sampling window of the simulation log. */
struct SampleRecord
{
    Tick startTick = 0;
    Tick endTick = 0;
    CounterBank counters;

    /**
     * Operating point the window executed at (DVFS): core frequency
     * in MHz and supply voltage in volts. 0 means "nominal", so
     * hand-built records and logs from before the field existed
     * price identically to the unscaled path. Stored in the log so
     * the power pass stays a pure function of the log even when a
     * governor re-points the core mid-run.
     */
    double freqMhz = 0;
    double vdd = 0;

    /** Window length in cycles. */
    Cycles length() const { return endTick - startTick; }
};

/**
 * Append-only store of sampled counter windows.
 *
 * Held in memory during simulation; can be serialized to CSV so the
 * power pass can also run against an on-disk log, mirroring the
 * SimOS log-file workflow.
 */
class SampleLog
{
  public:
    /** Append a completed window. */
    void
    append(SampleRecord record)
    {
        records.push_back(std::move(record));
    }

    const std::vector<SampleRecord> &all() const { return records; }

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
    const SampleRecord &at(std::size_t i) const { return records.at(i); }

    /** Sum every window into a single counter bank. */
    CounterBank totals() const;

    /** Total simulated cycles covered by the log. */
    Cycles totalCycles() const;

    /** Serialize as CSV: one row per (window, mode). */
    void writeCsv(std::ostream &out) const;

    /** Parse a CSV produced by writeCsv(). Returns false on error. */
    static bool readCsv(std::istream &in, SampleLog &out);

    /** Checkpointing: every closed window, bit-exact. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    std::vector<SampleRecord> records;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_SAMPLE_LOG_HH
