#include "sim/checkpoint.hh"

#include <cstring>
#include <fstream>

#include "sim/logging.hh"

namespace softwatt
{

namespace
{

constexpr char checkpointMagic[6] = {'S', 'W', 'C', 'K', 'P', 'T'};

/** Practical ceilings that keep a damaged length field from driving
 *  a multi-gigabyte allocation before the checksum catches it. */
constexpr std::uint64_t maxChunkBytes = 1ull << 32;
constexpr std::uint32_t maxChunks = 1u << 16;
constexpr std::uint32_t maxNameBytes = 1u << 12;

void
putLeFile(std::string &out, std::uint64_t value, int n)
{
    for (int i = 0; i < n; ++i)
        out.push_back(char(std::uint8_t(value >> (8 * i))));
}

class FileCursor
{
  public:
    FileCursor(const std::string &bytes, const std::string &path)
        : data(bytes), file(path)
    {}

    std::uint64_t
    le(int n)
    {
        if (data.size() - cursor < std::size_t(n))
            truncated();
        std::uint64_t value = 0;
        for (int i = 0; i < n; ++i) {
            value |= std::uint64_t(std::uint8_t(data[cursor++]))
                     << (8 * i);
        }
        return value;
    }

    std::string
    raw(std::uint64_t n)
    {
        if (data.size() - cursor < n)
            truncated();
        std::string out = data.substr(cursor, n);
        cursor += n;
        return out;
    }

    bool atEnd() const { return cursor == data.size(); }

  private:
    [[noreturn]] void
    truncated() const
    {
        throw CheckpointError(msg()
                              << "checkpoint '" << file
                              << "' is truncated (at byte " << cursor
                              << " of " << data.size() << ")");
    }

    const std::string &data;
    std::string file;
    std::size_t cursor = 0;
};

} // namespace

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t size)
{
    std::uint64_t state = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        state ^= data[i];
        state *= 0x100000001b3ull;
    }
    return state;
}

void
ChunkWriter::f64(double value)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
}

void
ChunkWriter::str(const std::string &text)
{
    u32(std::uint32_t(text.size()));
    for (char c : text)
        buffer.push_back(std::uint8_t(c));
}

double
ChunkReader::f64()
{
    std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

std::string
ChunkReader::str()
{
    std::uint32_t len = u32();
    need(len);
    std::string out(reinterpret_cast<const char *>(&data[cursor]),
                    len);
    cursor += len;
    return out;
}

void
ChunkReader::need(std::size_t n) const
{
    if (data.size() - cursor < n) {
        throw CheckpointError(
            msg() << "chunk '" << name << "': payload underrun ("
                  << n << " bytes needed, " << (data.size() - cursor)
                  << " left)");
    }
}

void
ChunkReader::finish() const
{
    if (cursor != data.size()) {
        throw CheckpointError(
            msg() << "chunk '" << name << "': "
                  << (data.size() - cursor)
                  << " trailing bytes after deserialization");
    }
}

void
CheckpointImage::add(const std::string &name,
                     const ChunkWriter &writer)
{
    chunks.push_back(CheckpointChunk{name, writer.bytes()});
}

const CheckpointChunk *
CheckpointImage::find(const std::string &name) const
{
    for (const CheckpointChunk &chunk : chunks) {
        if (chunk.name == name)
            return &chunk;
    }
    return nullptr;
}

void
writeCheckpoint(const std::string &path,
                const CheckpointImage &image, Durability durability)
{
    std::string bytes;
    bytes.append(checkpointMagic, sizeof(checkpointMagic));
    putLeFile(bytes, image.version, 2);
    putLeFile(bytes, image.configFingerprint, 8);
    putLeFile(bytes, image.cpuModel, 1);
    putLeFile(bytes, std::uint32_t(image.chunks.size()), 4);
    for (const CheckpointChunk &chunk : image.chunks) {
        putLeFile(bytes, std::uint32_t(chunk.name.size()), 4);
        bytes.append(chunk.name);
        putLeFile(bytes, std::uint64_t(chunk.payload.size()), 8);
        putLeFile(bytes,
                  fnv1a64(chunk.payload.data(),
                          chunk.payload.size()),
                  8);
        bytes.append(
            reinterpret_cast<const char *>(chunk.payload.data()),
            chunk.payload.size());
    }

    // Temp-then-rename through the host-I/O seam: under
    // Durability::Full the temp file is fsynced before the rename
    // and the parent directory afterwards, so a power cut can never
    // leave a zero-length or torn file under the final name.
    IoStatus status = hostWriteFileAtomic(path, bytes, durability);
    if (!status) {
        throw CheckpointError(msg() << "checkpoint: cannot write '"
                                    << path
                                    << "': " << status.message);
    }
}

std::string
checkpointPreviousGeneration(const std::string &path)
{
    return path + ".1";
}

void
autosaveCheckpoint(const std::string &path,
                   const CheckpointImage &image,
                   Durability durability)
{
    // Rotate the current file to the previous generation first; the
    // write itself goes through tmp+rename, so at every instant at
    // least one complete generation exists on disk. A rotation
    // failure is survivable — the overwrite still lands atomically,
    // the pool just keeps a single generation for this cycle — so
    // warn instead of failing the autosave.
    std::string previous = checkpointPreviousGeneration(path);
    if (hostFileExists(path)) {
        hostRemoveBestEffort(previous);
        IoStatus rotated = hostRename(path, previous, durability);
        if (!rotated) {
            warn(msg() << "checkpoint: cannot rotate '" << path
                       << "' to '" << previous
                       << "' (keeping a single generation): "
                       << rotated.message);
        }
    }
    writeCheckpoint(path, image, durability);
}

CheckpointImage
readCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw CheckpointError(msg() << "checkpoint: cannot open '"
                                    << path << "' for reading");
    }
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (in.bad()) {
        throw CheckpointError(msg() << "checkpoint: read error on '"
                                    << path << "'");
    }

    FileCursor cursor(bytes, path);
    std::string magic = cursor.raw(sizeof(checkpointMagic));
    if (std::memcmp(magic.data(), checkpointMagic,
                    sizeof(checkpointMagic)) != 0) {
        throw CheckpointError(msg() << "'" << path << "' is not a "
                                    << "SoftWatt checkpoint (bad "
                                    << "magic)");
    }

    CheckpointImage image;
    image.version = std::uint16_t(cursor.le(2));
    if (image.version != checkpointFormatVersion) {
        throw CheckpointMismatch(
            msg() << "checkpoint '" << path << "' has format version "
                  << image.version << "; this build reads version "
                  << checkpointFormatVersion);
    }
    image.configFingerprint = cursor.le(8);
    image.cpuModel = std::uint8_t(cursor.le(1));

    std::uint32_t count = std::uint32_t(cursor.le(4));
    if (count > maxChunks) {
        throw CheckpointError(msg() << "checkpoint '" << path
                                    << "': implausible chunk count "
                                    << count);
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint32_t name_len = std::uint32_t(cursor.le(4));
        if (name_len > maxNameBytes) {
            throw CheckpointError(
                msg() << "checkpoint '" << path << "': implausible "
                      << "chunk name length " << name_len);
        }
        CheckpointChunk chunk;
        chunk.name = cursor.raw(name_len);
        std::uint64_t payload_len = cursor.le(8);
        if (payload_len > maxChunkBytes) {
            throw CheckpointError(
                msg() << "checkpoint '" << path << "': implausible "
                      << "payload length " << payload_len
                      << " in chunk '" << chunk.name << "'");
        }
        std::uint64_t checksum = cursor.le(8);
        std::string payload = cursor.raw(payload_len);
        chunk.payload.assign(payload.begin(), payload.end());
        std::uint64_t actual =
            fnv1a64(chunk.payload.data(), chunk.payload.size());
        if (actual != checksum) {
            throw CheckpointError(
                msg() << "checkpoint '" << path << "': checksum "
                      << "mismatch in chunk '" << chunk.name << "'");
        }
        image.chunks.push_back(std::move(chunk));
    }
    if (!cursor.atEnd()) {
        throw CheckpointError(msg()
                              << "checkpoint '" << path
                              << "': trailing garbage after the last "
                              << "chunk");
    }
    return image;
}

} // namespace softwatt
