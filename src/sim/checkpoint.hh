/**
 * @file
 * Versioned, chunked binary machine checkpoints.
 *
 * A checkpoint file holds the complete state of a simulated machine at
 * a quiescent point, one length-prefixed and checksummed chunk per
 * component, so a run can be restored and continued bit-identically to
 * an uninterrupted execution (SimOS-style save/restore; the paper's
 * warm-start methodology hands such an image from the fast in-order
 * model to the detailed superscalar model).
 *
 * File layout (all integers little-endian):
 *
 *   magic            6 bytes  "SWCKPT"
 *   version          u16      checkpointFormatVersion
 *   fingerprint      u64      machine+workload config fingerprint
 *   cpuModel         u8       CpuModel the image was taken under
 *   chunkCount       u32
 *   chunk*           chunkCount times:
 *     nameLen        u32
 *     name           nameLen bytes
 *     payloadLen     u64
 *     checksum       u64      FNV-1a-64 of the payload bytes
 *     payload        payloadLen bytes
 *
 * Corruption (truncation, flipped bytes, bad magic) raises
 * CheckpointError and is recoverable by falling back to an older
 * autosave generation; a version or fingerprint mismatch raises
 * CheckpointMismatch and is rejected outright — no older generation
 * of the same file can fix an incompatible configuration.
 */

#ifndef SOFTWATT_SIM_CHECKPOINT_HH
#define SOFTWATT_SIM_CHECKPOINT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/host_io.hh"

namespace softwatt
{

/** Recoverable checkpoint damage: truncation, bit flips, I/O errors. */
class CheckpointError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Unrecoverable incompatibility: unknown format version, or an image
 * written under a different machine/workload configuration. Retrying
 * an older generation cannot help; callers must reject the restore.
 */
class CheckpointMismatch : public CheckpointError
{
  public:
    using CheckpointError::CheckpointError;
};

/** Bumped whenever the chunk contents change incompatibly. */
constexpr std::uint16_t checkpointFormatVersion = 1;

/** FNV-1a-64 of a byte range (the per-chunk payload checksum). */
std::uint64_t fnv1a64(const std::uint8_t *data, std::size_t size);

/**
 * Little-endian byte-stream builder for one chunk payload.
 *
 * Doubles are stored by bit pattern, so every value — including NaNs
 * and signed zeros — round-trips exactly.
 */
class ChunkWriter
{
  public:
    void u8(std::uint8_t value) { buffer.push_back(value); }

    void
    u16(std::uint16_t value)
    {
        putLe(value, 2);
    }

    void
    u32(std::uint32_t value)
    {
        putLe(value, 4);
    }

    void
    u64(std::uint64_t value)
    {
        putLe(value, 8);
    }

    void b(bool value) { u8(value ? 1 : 0); }

    void f64(double value);

    void str(const std::string &text);

    const std::vector<std::uint8_t> &bytes() const { return buffer; }

  private:
    void
    putLe(std::uint64_t value, int n)
    {
        for (int i = 0; i < n; ++i)
            buffer.push_back(std::uint8_t(value >> (8 * i)));
    }

    std::vector<std::uint8_t> buffer;
};

/**
 * Cursor over one chunk payload. Reading past the end throws
 * CheckpointError, so a damaged (but checksum-colliding) or
 * version-skewed payload fails loudly instead of yielding garbage.
 */
class ChunkReader
{
  public:
    ChunkReader(const std::vector<std::uint8_t> &payload,
                std::string chunk_name)
        : data(payload), name(std::move(chunk_name))
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return data[cursor++];
    }

    std::uint16_t u16() { return std::uint16_t(getLe(2)); }
    std::uint32_t u32() { return std::uint32_t(getLe(4)); }
    std::uint64_t u64() { return getLe(8); }

    bool b() { return u8() != 0; }

    double f64();

    std::string str();

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return data.size() - cursor; }

    /** Throws unless the payload was consumed exactly. */
    void finish() const;

  private:
    void need(std::size_t n) const;

    std::uint64_t
    getLe(int n)
    {
        need(std::size_t(n));
        std::uint64_t value = 0;
        for (int i = 0; i < n; ++i)
            value |= std::uint64_t(data[cursor++]) << (8 * i);
        return value;
    }

    const std::vector<std::uint8_t> &data;
    std::string name;
    std::size_t cursor = 0;
};

/**
 * Serialize/deserialize interface implemented by every stateful
 * layer of the machine (CPUs, caches, TLB, page table, disk, kernel,
 * workload, event queue, counters, sample log).
 *
 * Contract: loadState() must consume exactly the bytes saveState()
 * produced, and a component restored from its own saved state must
 * behave bit-identically to one that never stopped.
 */
class Checkpointable
{
  public:
    virtual ~Checkpointable() = default;

    virtual void saveState(ChunkWriter &out) const = 0;
    virtual void loadState(ChunkReader &in) = 0;
};

/** One named component payload inside an image. */
struct CheckpointChunk
{
    std::string name;
    std::vector<std::uint8_t> payload;
};

/** In-memory form of a checkpoint file. */
struct CheckpointImage
{
    std::uint16_t version = checkpointFormatVersion;
    std::uint64_t configFingerprint = 0;
    std::uint8_t cpuModel = 0;
    std::vector<CheckpointChunk> chunks;

    /** Append a chunk from a writer's accumulated bytes. */
    void add(const std::string &name, const ChunkWriter &writer);

    /** Find a chunk by name; nullptr when absent. */
    const CheckpointChunk *find(const std::string &name) const;
};

/**
 * Serialize @p image to @p path atomically: the bytes are written to
 * "<path>.tmp" and renamed over @p path, so a crash mid-write never
 * leaves a half-written file under the final name. Under
 * Durability::Full the temp file is fsynced before the rename and
 * the parent directory after it, so the image also survives a power
 * cut. Throws CheckpointError on I/O failure (the temp file is
 * cleaned up and @p path keeps its previous complete contents).
 */
void writeCheckpoint(const std::string &path,
                     const CheckpointImage &image,
                     Durability durability = Durability::Buffered);

/**
 * Autosave @p image to @p path keeping the last two generations:
 * the previous @p path (if any) is rotated to "<path>.1" before the
 * atomic write, so a crash — or corruption of the newest file — can
 * always fall back one generation. A failed rotation is survivable
 * (warn and overwrite in place, keeping a single generation); a
 * failed write throws CheckpointError with the prior generation
 * still intact on disk.
 */
void autosaveCheckpoint(const std::string &path,
                        const CheckpointImage &image,
                        Durability durability = Durability::Buffered);

/** The older-generation autosave path for @p path ("<path>.1"). */
std::string checkpointPreviousGeneration(const std::string &path);

/**
 * Parse and fully verify a checkpoint file: magic, version, chunk
 * framing and every payload checksum. Throws CheckpointMismatch on an
 * unsupported version and CheckpointError on any damage.
 */
CheckpointImage readCheckpoint(const std::string &path);

} // namespace softwatt

#endif // SOFTWATT_SIM_CHECKPOINT_HH
