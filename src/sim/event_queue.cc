#include "event_queue.hh"

#include "sim/checkpoint.hh"

#include "check.hh"
#include "logging.hh"

namespace softwatt
{

EventQueue::EventId
EventQueue::schedule(Tick when, Callback cb)
{
    SW_CHECK(when >= currentTick,
             msg() << "event scheduled in the past: " << when << " < "
                   << currentTick);
    EventId id = nextId++;
    heap.push(Entry{when, id, std::move(cb)});
    ++liveCount;
    return id;
}

EventQueue::EventId
EventQueue::scheduleIn(Cycles delta, Callback cb)
{
    return schedule(currentTick + delta, std::move(cb));
}

void
EventQueue::cancel(EventId id)
{
    // Lazy deletion: the entry is skipped when it reaches the top.
    if (cancelled.insert(id).second && liveCount > 0)
        --liveCount;
}

void
EventQueue::skipCancelled()
{
    while (!heap.empty()) {
        auto it = cancelled.find(heap.top().id);
        if (it == cancelled.end())
            return;
        cancelled.erase(it);
        heap.pop();
    }
}

Tick
EventQueue::nextEventTick() const
{
    // The heap may hold cancelled entries above live ones; walk a copy
    // only when cancellations are pending (rare).
    auto *self = const_cast<EventQueue *>(this);
    self->skipCancelled();
    return heap.empty() ? maxTick : heap.top().when;
}

void
EventQueue::advanceTo(Tick target)
{
    SW_CHECK(target >= currentTick,
             "advanceTo: time would move backwards");
    while (true) {
        skipCancelled();
        if (heap.empty() || heap.top().when > target)
            break;
        Entry entry = heap.top();
        heap.pop();
        --liveCount;
        currentTick = entry.when;
        ++executedCount;
        entry.cb();
    }
    currentTick = target;
}

void
EventQueue::saveState(ChunkWriter &out) const
{
    out.u64(currentTick);
    out.u64(nextId);
    out.u64(executedCount);
}

void
EventQueue::loadState(ChunkReader &in)
{
    // Checkpoints are taken at quiescent points where every live
    // event is owned by a component that re-registers it during its
    // own restore; the heap must be empty here.
    SW_CHECK(liveCount == 0 && heap.empty(),
             "EventQueue::loadState on a non-empty queue");
    currentTick = in.u64();
    nextId = in.u64();
    executedCount = in.u64();
}

void
EventQueue::restoreEvent(Tick when, EventId id, Callback cb)
{
    SW_CHECK(when >= currentTick,
             msg() << "restoreEvent: event in the past: " << when
                   << " < " << currentTick);
    SW_CHECK(id < nextId,
             msg() << "restoreEvent: id " << id << " does not "
                   << "predate the saved id counter " << nextId);
    heap.push(Entry{when, id, std::move(cb)});
    ++liveCount;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (true) {
        skipCancelled();
        if (heap.empty() || heap.top().when > limit)
            break;
        Entry entry = heap.top();
        heap.pop();
        --liveCount;
        currentTick = entry.when;
        ++executedCount;
        entry.cb();
    }
    if (limit != maxTick && limit > currentTick)
        currentTick = limit;
    return currentTick;
}

} // namespace softwatt
