/**
 * @file
 * Host-I/O seam: every durability-critical filesystem operation in
 * the tree (journal appends, checkpoint temp-then-rename chains, the
 * serve pool's promote/rotate/recover moves, the runner's results
 * writer) goes through this module instead of calling the libc or
 * std::filesystem primitives directly.
 *
 * The seam buys three things:
 *
 *  1. A real durability contract. `Durability::Buffered` matches the
 *     historical behaviour (write + flush; survives SIGKILL but not a
 *     power cut), while `Durability::Full` adds fdatasync barriers on
 *     journal appends and fsync-file + fsync-parent-directory around
 *     atomic renames, so acknowledged data survives a power cut.
 *
 *  2. Deterministic fault injection. A seeded policy can fail ops
 *     with EIO/ENOSPC, truncate writes, tear renames, cut power after
 *     op N, or fail every write once a byte budget is exhausted
 *     (disk-full emulation) — all driven by softwatt::Random so a
 *     failing schedule replays exactly.
 *
 *  3. Crash-consistency replay. Record mode logs every op with its
 *     payload; replayCrashPrefix() materializes the on-disk state a
 *     crash after the first K ops could leave behind — under an
 *     everything-persisted view, a synced-only view (only data that
 *     crossed an fsync/dir-sync barrier survives), or a torn-tail
 *     view (unsynced suffixes partially lost) — so recovery code can
 *     be driven over every barrier window of a recorded session.
 *
 * All functions report failures as IoStatus values instead of
 * throwing or dying: durability callers degrade structurally (warn
 * and continue without the failing facility) rather than aborting a
 * simulation that is otherwise healthy.
 */

#ifndef SOFTWATT_SIM_HOST_IO_HH
#define SOFTWATT_SIM_HOST_IO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace softwatt
{

/**
 * How hard a writer must try to make its bytes survive.
 *
 * Buffered: write + stream flush only. Data reaches the kernel, so
 * it survives SIGKILL, but a power cut may lose or tear anything
 * not yet written back.
 *
 * Full: fdatasync after durable appends, fsync the temp file before
 * an atomic rename and the parent directory after it. Acknowledged
 * data survives a power cut.
 */
enum class Durability
{
    Buffered = 0,
    Full,
};

/** "buffered"/"full" for messages and config echo. */
const char *durabilityName(Durability durability);

/** Parse a durability= value; @p ok is false for unknown names. */
Durability durabilityFromName(const std::string &name, bool &ok);

/** Outcome of one host-I/O operation. */
struct IoStatus
{
    bool ok = true;
    std::string message;  ///< Failure detail; empty on success.

    explicit operator bool() const { return ok; }

    static IoStatus
    good()
    {
        return IoStatus{};
    }

    static IoStatus
    failure(std::string detail)
    {
        return IoStatus{false, std::move(detail)};
    }
};

/** Kinds of operation the seam mediates (and records). */
enum class IoOpKind : std::uint8_t
{
    Open = 0,  ///< Create/open a file for writing.
    Write,     ///< Append bytes to an open file.
    Flush,     ///< Stream flush (no durability barrier).
    Sync,      ///< fdatasync-style barrier on one file.
    Rename,    ///< Atomic rename path -> path2.
    Remove,    ///< Unlink path.
    DirSync,   ///< fsync a directory (persist entries).
};

/** Stable lowercase name for an op kind. */
const char *ioOpName(IoOpKind kind);

/** One recorded host-I/O operation. */
struct IoRecord
{
    IoOpKind kind = IoOpKind::Open;
    std::string path;      ///< Primary path.
    std::string path2;     ///< Rename destination; else empty.
    std::string data;      ///< Bytes written (Write only).
    bool truncate = false; ///< Open with truncation vs append.
};

/**
 * Deterministic, seeded fault schedule applied to every op that goes
 * through the seam. Rates are per-op Bernoulli draws from one
 * xorshift64* stream, so a given (seed, op sequence) pair always
 * fails the same ops. All-zero (the default) injects nothing.
 */
struct IoFaultPolicy
{
    bool enabled = false;
    std::uint64_t seed = 1;

    double errorRate = 0.0;       ///< Generic EIO on any op.
    double enospcRate = 0.0;      ///< ENOSPC on writes/opens.
    double shortWriteRate = 0.0;  ///< Truncate a write mid-buffer.
    double tornRenameRate = 0.0;  ///< Rename leaves a torn target.

    /** Power cut after this many ops (1-based); 0 = never. Every op
     *  after the cut fails without touching the disk. */
    std::uint64_t crashAtOp = 0;

    /** Fail every write with ENOSPC once this many bytes have been
     *  written through the seam (disk-full emulation); 0 = never. */
    std::uint64_t enospcAfterBytes = 0;
};

/**
 * Process-wide seam state: fault policy, op accounting and the
 * record-mode log. All entry points are thread-safe.
 */
class HostIo
{
  public:
    static HostIo &instance();

    /** Install @p policy (replacing any previous one) and reset the
     *  op/byte counters and the power-cut latch. */
    void setFaultPolicy(const IoFaultPolicy &policy);

    /** Remove fault injection and clear the power-cut latch. */
    void clearFaultPolicy();

    /** True once a crash-at-op-N schedule has fired; every later op
     *  fails until the policy is cleared or reinstalled. */
    bool powerLost() const;

    /** Ops issued through the seam since the last policy install (or
     *  recording start, whichever is later in the caller's hands:
     *  the counter is global and monotonic until reset). */
    std::uint64_t opsIssued() const;

    /** Begin logging every op (clears any previous log). */
    void startRecording();

    /** Stop logging and return the recorded ops. */
    std::vector<IoRecord> stopRecording();

    bool recording() const;

  private:
    HostIo() = default;

    friend class HostFile;
    friend IoStatus hostWriteFileAtomic(const std::string &,
                                        const std::string &,
                                        Durability);
    friend IoStatus hostRename(const std::string &,
                               const std::string &, Durability);
    friend IoStatus hostRemove(const std::string &);
    friend void hostRemoveBestEffort(const std::string &);
    friend IoStatus hostSyncDir(const std::string &);

    /**
     * Account, record and (possibly) fault one op. On injected
     * failure returns the failure status and the caller must not
     * touch the disk — except for a torn rename, where @p torn is
     * set and the caller materializes the torn destination. A short
     * write truncates @p data in place before returning success;
     * the caller writes the truncated buffer and reports failure.
     */
    IoStatus gate(IoOpKind kind, const std::string &path,
                  const std::string &path2, std::string *data,
                  bool truncate, bool *torn, bool *shortened);

    struct Impl;
    Impl &impl() const;
};

/**
 * RAII installer for a fault policy: installs on construction (when
 * the policy is enabled), clears on destruction. The runner uses it
 * to scope io_fault_* keys to one experiment.
 */
class ScopedIoFaults
{
  public:
    explicit ScopedIoFaults(const IoFaultPolicy &policy)
        : active(policy.enabled)
    {
        if (active)
            HostIo::instance().setFaultPolicy(policy);
    }

    ~ScopedIoFaults()
    {
        if (active)
            HostIo::instance().clearFaultPolicy();
    }

    ScopedIoFaults(const ScopedIoFaults &) = delete;
    ScopedIoFaults &operator=(const ScopedIoFaults &) = delete;

  private:
    bool active;
};

/**
 * A host file open for writing through the seam. Append-oriented:
 * the journal holds one across a sweep; atomic writers use it on
 * their temp file. Closes (without syncing) on destruction.
 */
class HostFile
{
  public:
    HostFile() = default;
    ~HostFile();

    HostFile(const HostFile &) = delete;
    HostFile &operator=(const HostFile &) = delete;

    /**
     * Open @p path for writing (@p truncate discards existing
     * contents, otherwise appends), creating it if needed. Under
     * Durability::Full the parent directory is synced after a
     * create, so the entry itself survives a power cut.
     */
    IoStatus open(const std::string &path, bool truncate,
                  Durability durability = Durability::Buffered);

    bool isOpen() const { return fd >= 0; }

    /** Write all of @p bytes (an injected short write truncates). */
    IoStatus write(const std::string &bytes);

    /** Stream-level flush record; no durability barrier. */
    IoStatus flush();

    /** fdatasync barrier: bytes written so far survive a power cut. */
    IoStatus sync();

    void close();

    const std::string &path() const { return filePath; }

  private:
    int fd = -1;
    std::string filePath;
};

/**
 * Write @p bytes to @p path atomically via "<path>.tmp" + rename.
 * Under Durability::Full the temp file is fsynced before the rename
 * and the parent directory after it. On failure the temp file is
 * cleaned up best-effort and @p path is untouched (or still holds
 * its previous complete contents).
 */
IoStatus hostWriteFileAtomic(const std::string &path,
                             const std::string &bytes,
                             Durability durability);

/** Atomic rename; under Durability::Full the destination's parent
 *  directory is synced afterwards so the move survives a power cut. */
IoStatus hostRename(const std::string &from, const std::string &to,
                    Durability durability);

/** Unlink @p path; missing files are not an error. */
IoStatus hostRemove(const std::string &path);

/** Unlink @p path ignoring any failure (cleanup of scratch files
 *  whose loss is harmless; exempt from the durability-io analyzer
 *  rule on discarded statuses). */
void hostRemoveBestEffort(const std::string &path);

/** fsync a directory, persisting its entries. */
IoStatus hostSyncDir(const std::string &dir);

/** Existence probe (not gated/recorded: read-only). */
bool hostFileExists(const std::string &path);

/** File size in bytes, or 0 when absent/unreadable. */
std::uint64_t hostFileSize(const std::string &path);

/** Parent directory of @p path ("." when it has no separator). */
std::string hostParentDir(const std::string &path);

/**
 * Persistence views a crash can leave behind after a given op
 * prefix. Recovery must cope with every one of them.
 */
enum class CrashVariant
{
    /** Only data/entries that crossed a Sync/DirSync barrier
     *  survive; everything else is lost (harshest power cut). */
    SyncedOnly = 0,

    /** Every issued op persisted (kindest crash: SIGKILL, or a
     *  power cut that caught a clean cache). */
    Everything,

    /** Like Everything, but each file's unsynced suffix is torn:
     *  the synced prefix survives intact, half of the unsynced
     *  tail persists, the rest is lost. */
    TornTail,
};

constexpr CrashVariant crashVariants[] = {
    CrashVariant::SyncedOnly,
    CrashVariant::Everything,
    CrashVariant::TornTail,
};

/** Stable lowercase name for a crash variant. */
const char *crashVariantName(CrashVariant variant);

/**
 * Materialize into @p scratchRoot the on-disk state that a crash
 * after the first @p prefix ops of @p log could leave behind, under
 * @p variant's persistence rules. Paths in the log must live under
 * @p recordRoot; they are rewritten to @p scratchRoot. The scratch
 * directory is cleared first. Rename/remove are modelled as volatile
 * directory operations until a DirSync covers their directory;
 * fsync persists a file's bytes and its directory entry (ext4-like
 * journalling), tracked per inode so a renamed-after-fsync temp file
 * carries its durable contents to the new name.
 */
void replayCrashPrefix(const std::vector<IoRecord> &log,
                       std::size_t prefix, CrashVariant variant,
                       const std::string &recordRoot,
                       const std::string &scratchRoot);

} // namespace softwatt

#endif // SOFTWATT_SIM_HOST_IO_HH
