/**
 * @file
 * Fixed-size worker pool for scheduling independent simulation runs.
 *
 * Jobs are arbitrary callables; submit() returns a std::future so
 * callers collect results in *submission* order regardless of
 * completion order, which is what keeps parallel experiment output
 * bit-identical to serial execution. Exceptions thrown by a job are
 * captured in its future and rethrown at get().
 */

#ifndef SOFTWATT_SIM_THREAD_POOL_HH
#define SOFTWATT_SIM_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace softwatt
{

/**
 * A fixed-size pool of worker threads draining a FIFO job queue.
 *
 * The destructor waits for every queued job to run to completion
 * before joining the workers (no job submitted before destruction is
 * ever dropped). A single-threaded pool executes jobs strictly in
 * submission order.
 */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; 0 is clamped to 1. Use
     *        defaultThreads() for "one per hardware thread".
     */
    explicit ThreadPool(unsigned num_threads);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains all queued work, then joins the workers. */
    ~ThreadPool();

    /** Number of worker threads. */
    unsigned threads() const { return unsigned(workers.size()); }

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned defaultThreads();

    /**
     * Enqueue a callable; its result (or exception) is delivered
     * through the returned future. Never rejects: submit() ignores
     * the pending-queue bound (see setPendingLimit), so existing
     * callers keep their unbounded-queue semantics.
     */
    template <typename F>
    auto
    submit(F &&job) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(job));
        std::future<R> result = task->get_future();
        enqueue([task] { (*task)(); });
        return result;
    }

    /**
     * Bound on queued-but-unstarted jobs that trySubmit() enforces;
     * 0 (the default) means unlimited. This is the admission-control
     * primitive: a server sheds load by bounding the pending queue
     * and failing fast instead of buffering without limit.
     */
    void setPendingLimit(std::size_t limit);

    /** Jobs queued but not yet picked up by a worker. */
    std::size_t pendingJobs() const;

    /**
     * submit() that fails fast under load: when the pending queue
     * already holds setPendingLimit() jobs, nothing is enqueued and
     * nullopt is returned so the caller can shed or retry. With no
     * limit configured it behaves exactly like submit().
     */
    template <typename F>
    auto
    trySubmit(F &&job)
        -> std::optional<std::future<std::invoke_result_t<F>>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(job));
        std::future<R> result = task->get_future();
        if (!tryEnqueue([task] { (*task)(); }))
            return std::nullopt;
        return result;
    }

    /** Jobs executed so far (for tests and diagnostics). */
    std::uint64_t completedJobs() const;

    /**
     * Discard every queued-but-unstarted job and return how many
     * were dropped. In-flight jobs are unaffected. The future of a
     * discarded job reports std::future_error(broken_promise) at
     * get(), which is how a draining experiment distinguishes
     * "never ran" from "ran and failed".
     */
    std::size_t cancelPending();

  private:
    void enqueue(std::function<void()> job);
    bool tryEnqueue(std::function<void()> job);
    void workerLoop();

    mutable std::mutex mutex;
    std::condition_variable wakeWorkers;
    std::deque<std::function<void()>> jobs;
    std::vector<std::thread> workers;
    std::uint64_t numCompleted = 0;
    std::size_t pendingLimit = 0;
    bool shuttingDown = false;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_THREAD_POOL_HH
