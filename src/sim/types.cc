#include "types.hh"

#include "logging.hh"

namespace softwatt
{

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::User:
        return "user";
      case ExecMode::KernelInst:
        return "kernel";
      case ExecMode::KernelSync:
        return "sync";
      case ExecMode::Idle:
        return "idle";
    }
    panic("execModeName: invalid mode");
}

} // namespace softwatt
