#include "thread_pool.hh"

namespace softwatt
{

ThreadPool::ThreadPool(unsigned num_threads)
{
    if (num_threads == 0)
        num_threads = 1;
    workers.reserve(num_threads);
    for (unsigned i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        shuttingDown = true;
    }
    wakeWorkers.notify_all();
    for (std::thread &worker : workers)
        worker.join();
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::uint64_t
ThreadPool::completedJobs() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return numCompleted;
}

std::size_t
ThreadPool::cancelPending()
{
    std::deque<std::function<void()>> dropped;
    {
        std::lock_guard<std::mutex> lock(mutex);
        dropped.swap(jobs);
    }
    // Destroy outside the lock: dropping a packaged_task breaks its
    // promise, which may run arbitrary future-side destructors.
    return dropped.size();
}

void
ThreadPool::setPendingLimit(std::size_t limit)
{
    std::lock_guard<std::mutex> lock(mutex);
    pendingLimit = limit;
}

std::size_t
ThreadPool::pendingJobs() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return jobs.size();
}

void
ThreadPool::enqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        jobs.push_back(std::move(job));
    }
    wakeWorkers.notify_one();
}

bool
ThreadPool::tryEnqueue(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (pendingLimit != 0 && jobs.size() >= pendingLimit)
            return false;
        jobs.push_back(std::move(job));
    }
    wakeWorkers.notify_one();
    return true;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex);
            wakeWorkers.wait(lock, [this] {
                return shuttingDown || !jobs.empty();
            });
            // Drain the queue even when shutting down: jobs
            // submitted before the destructor must all run.
            if (jobs.empty())
                return;
            job = std::move(jobs.front());
            jobs.pop_front();
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex);
            ++numCompleted;
        }
    }
}

} // namespace softwatt
