/**
 * @file
 * Tick-ordered event queue driving everything that is not stepped
 * cycle-by-cycle (disk request completion, spin-up timers, sampling).
 */

#ifndef SOFTWATT_SIM_EVENT_QUEUE_HH
#define SOFTWATT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/**
 * Time-ordered queue of callbacks.
 *
 * Events are closures scheduled at an absolute tick. The queue owns the
 * notion of "now"; the top-level simulation loop advances time either
 * cycle-by-cycle (detailed execution) or by jumping to the next event
 * (idle fast-forward).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Opaque handle used to cancel a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue() = default;

    /** Current simulated time in ticks. */
    Tick now() const { return currentTick; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick, must be >= now().
     * @param cb Callback invoked when time reaches @p when.
     * @return Handle usable with cancel().
     */
    EventId schedule(Tick when, Callback cb);

    /** Schedule a callback @p delta ticks in the future. */
    EventId scheduleIn(Cycles delta, Callback cb);

    /** Cancel a previously scheduled event; idempotent. */
    void cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveCount == 0; }

    /** Tick of the earliest live event; maxTick if none. */
    Tick nextEventTick() const;

    /**
     * Advance time to @p target, running every event scheduled at or
     * before it in timestamp order. Time never moves backwards.
     */
    void advanceTo(Tick target);

    /**
     * Run events until the queue drains or @p limit is reached.
     * @return Final value of now().
     */
    Tick runUntil(Tick limit = maxTick);

    /** Number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return executedCount; }

    /**
     * Checkpointing. Callbacks are opaque closures, so the queue
     * serializes only its clock and id counters; each component that
     * had a live event at the checkpoint re-registers it afterwards
     * with restoreEvent(), quoting the original id so the heap's
     * same-tick tie-breaking (smaller id first) is preserved exactly.
     */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

    /**
     * Re-register an event captured in a checkpoint under its
     * original id. @p when must be >= now() and @p id must predate
     * the saved id counter.
     */
    void restoreEvent(Tick when, EventId id, Callback cb);

  private:
    struct Entry
    {
        Tick when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    Tick currentTick = 0;
    EventId nextId = 1;
    std::uint64_t liveCount = 0;
    std::uint64_t executedCount = 0;
    // ckpt:derived: drained with the heap at quiescent points
    std::unordered_set<EventId> cancelled;
    std::priority_queue<Entry, std::vector<Entry>, Later> heap;

    /** Drop cancelled entries sitting at the top of the heap. */
    void skipCancelled();
};

} // namespace softwatt

#endif // SOFTWATT_SIM_EVENT_QUEUE_HH
