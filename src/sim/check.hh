/**
 * @file
 * Contract macros for internal invariants.
 *
 * SW_CHECK(cond, detail) is always compiled: use it for cheap guards
 * on module boundaries (an event scheduled in the past, a window that
 * ends before it starts). SW_ASSERT(cond, detail) is for checks that
 * are too hot for release builds: it is compiled out when NDEBUG is
 * defined unless the build sets -DSOFTWATT_CHECKS=ON (which defines
 * SOFTWATT_ENABLE_CHECKS).
 *
 * Both macros route failures through panic(), i.e. through the
 * SimError/error-handler contract of sim/logging.hh, so tests can
 * intercept a violated contract as a thrown SimError instead of a
 * process abort. Never use raw assert() in simulation code — the
 * determinism linter (tools/lint) flags it.
 */

#ifndef SOFTWATT_SIM_CHECK_HH
#define SOFTWATT_SIM_CHECK_HH

#include <string>

namespace softwatt
{

/**
 * Report a violated SW_CHECK/SW_ASSERT and terminate through the
 * panic()/error-handler path. @p detail may be empty.
 */
[[noreturn]] void contractFailure(const char *kind, const char *expr,
                                  const char *file, int line,
                                  const std::string &detail);

} // namespace softwatt

/** Always-on contract check; fails through the panic()/SimError path. */
#define SW_CHECK(cond, detail)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::softwatt::contractFailure("SW_CHECK", #cond, __FILE__,  \
                                        __LINE__, (detail));          \
        }                                                             \
    } while (0)

#if defined(SOFTWATT_ENABLE_CHECKS) || !defined(NDEBUG)
#define SOFTWATT_CHECKS_ACTIVE 1
#else
#define SOFTWATT_CHECKS_ACTIVE 0
#endif

#if SOFTWATT_CHECKS_ACTIVE
/**
 * Debug/checked-build contract check: live when SOFTWATT_CHECKS=ON or
 * NDEBUG is not defined; otherwise compiled out (the condition and the
 * detail expression are not evaluated).
 */
#define SW_ASSERT(cond, detail)                                       \
    do {                                                              \
        if (!(cond)) {                                                \
            ::softwatt::contractFailure("SW_ASSERT", #cond, __FILE__, \
                                        __LINE__, (detail));          \
        }                                                             \
    } while (0)
#else
#define SW_ASSERT(cond, detail) ((void)0)
#endif

namespace softwatt
{

/** True when SW_ASSERT (and default-on invariant checking) is live. */
constexpr bool
checksEnabled()
{
    return SOFTWATT_CHECKS_ACTIVE != 0;
}

} // namespace softwatt

#endif // SOFTWATT_SIM_CHECK_HH
