#include "config.hh"

#include <cstdlib>

#include "logging.hh"

namespace softwatt
{

void
Config::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

void
Config::set(const std::string &key, std::int64_t value)
{
    values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, double value)
{
    values[key] = std::to_string(value);
}

void
Config::set(const std::string &key, bool value)
{
    values[key] = value ? "true" : "false";
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 0);
    if (end == it->second.c_str() || *end != '\0')
        fatal(msg() << "config key '" << key << "': '" << it->second
                    << "' is not an integer");
    return v;
}

double
Config::getDouble(const std::string &key, double def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal(msg() << "config key '" << key << "': '" << it->second
                    << "' is not a number");
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    const std::string &v = it->second;
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    fatal(msg() << "config key '" << key << "': '" << v
                << "' is not a boolean");
}

bool
Config::parseAssignment(const std::string &text)
{
    auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    set(text.substr(0, eq), text.substr(eq + 1));
    return true;
}

void
Config::merge(const Config &other)
{
    for (const auto &[k, v] : other.values)
        values[k] = v;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values.size());
    for (const auto &[k, v] : values)
        out.push_back(k);
    return out;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values) {
        if (readKeys.count(k) == 0)
            out.push_back(k);
    }
    return out;
}

} // namespace softwatt
