#include "check.hh"

#include "logging.hh"

namespace softwatt
{

void
contractFailure(const char *kind, const char *expr, const char *file,
                int line, const std::string &detail)
{
    msg m;
    m << kind << " failed: " << expr << " at " << file << ":" << line;
    if (!detail.empty())
        m << ": " << detail;
    panic(m);
}

} // namespace softwatt
