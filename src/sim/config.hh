/**
 * @file
 * Typed key/value configuration store with defaults, used to describe
 * machine parameters (Table 1 of the paper) and experiment settings.
 */

#ifndef SOFTWATT_SIM_CONFIG_HH
#define SOFTWATT_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace softwatt
{

/**
 * A flat map of string keys to scalar values.
 *
 * Values are stored as strings and converted on read; readers supply
 * the default that applies when the key is absent, so a Config never
 * needs a schema. Unknown-key detection is available for validating
 * user-supplied overrides.
 */
class Config
{
  public:
    Config() = default;

    /** Set a value, overwriting any existing one. */
    void set(const std::string &key, const std::string &value);
    void set(const std::string &key, std::int64_t value);
    void set(const std::string &key, double value);
    void set(const std::string &key, bool value);

    /** True if the key has been set. */
    bool has(const std::string &key) const;

    /** Read with a default; fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &def) const;
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;

    /**
     * Parse a "key=value" assignment into the store.
     * @return false if the text is not of that shape.
     */
    bool parseAssignment(const std::string &text);

    /** Merge another config on top of this one (other wins). */
    void merge(const Config &other);

    /** All keys in sorted order. */
    std::vector<std::string> keys() const;

    /**
     * Keys that were set but never read by any getX(), in sorted
     * order. Reads are tracked across the Config's whole lifetime,
     * so consumers that read their keys before asking are never
     * reported; what remains is almost always a typo.
     */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> values;

    /** Keys ever passed to a getX() read (even if absent then). */
    mutable std::set<std::string> readKeys;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_CONFIG_HH
