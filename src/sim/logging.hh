/**
 * @file
 * Status and error reporting, following the gem5 fatal/panic split:
 * fatal() is the user's fault (bad configuration), panic() is an
 * internal invariant violation (a SoftWatt bug).
 */

#ifndef SOFTWATT_SIM_LOGGING_HH
#define SOFTWATT_SIM_LOGGING_HH

#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace softwatt
{

/** Verbosity levels for status messages. */
enum class LogLevel
{
    Quiet = 0,
    Normal,
    Verbose,
};

/** Set the global verbosity for inform()/warn(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Terminate the simulation due to a user error (bad configuration or
 * arguments). Exits with status 1, unless an error handler is
 * installed — then the error surfaces as a SimError instead.
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Terminate the simulation due to an internal invariant violation.
 * Aborts so a debugger or core dump can capture the state, unless an
 * error handler is installed — then the violation surfaces as a
 * SimError instead.
 */
[[noreturn]] void panic(const std::string &message);

/** Which termination path an error handler intercepted. */
enum class ErrorKind
{
    Fatal,  ///< User error; default action is exit(1).
    Panic,  ///< Internal invariant violation; default action is abort().
};

/**
 * Hook called by fatal()/panic() instead of terminating. If the
 * handler throws, the exception propagates to the caller; if it
 * merely returns (e.g. it only logs), a SimError is thrown on its
 * behalf. Either way, a process with a handler installed never
 * hard-exits on fatal()/panic() — the default exit(1)/abort() is
 * taken only when no handler is set.
 */
using ErrorHandler =
    std::function<void(ErrorKind, const std::string &)>;

/**
 * Install an error handler; pass nullptr to restore the default
 * terminate behaviour. @return the previously installed handler.
 * The handler storage is synchronized: worker threads may hit
 * fatal()/panic() while another thread installs a handler.
 */
ErrorHandler setErrorHandler(ErrorHandler handler);

/** Whether an error handler is currently installed. */
bool errorHandlerInstalled();

/** Exception thrown by throwingErrorHandler(). */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &message)
        : std::runtime_error(message), errorKind(kind)
    {}

    ErrorKind kind() const { return errorKind; }

  private:
    ErrorKind errorKind;
};

/**
 * Ready-made handler that converts fatal()/panic() into a thrown
 * SimError, letting tests assert on error paths without dying:
 *
 *     setErrorHandler(throwingErrorHandler);
 *     EXPECT_THROW(SystemConfig::fromConfig(bad), SimError);
 *     setErrorHandler(nullptr);
 */
void throwingErrorHandler(ErrorKind kind, const std::string &message);

/** Print a warning about questionable but survivable behaviour. */
void warn(const std::string &message);

/**
 * Print an unprefixed progress line to stderr (shown unless Quiet).
 * Used by the experiment runner for per-run completion notices, which
 * may arrive from worker threads in any order; emission is serialized
 * so lines never interleave.
 */
void status(const std::string &message);

/** Print an informational status message. */
void inform(const std::string &message);

/**
 * Build a message from stream-formatted parts.
 *
 * Usage: fatal(msg() << "bad size " << size);
 */
class msg
{
  public:
    template <typename T>
    msg &
    operator<<(const T &value)
    {
        stream << value;
        return *this;
    }

    operator std::string() const { return stream.str(); }

  private:
    std::ostringstream stream;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_LOGGING_HH
