#include "machine_params.hh"

#include "config.hh"

namespace softwatt
{

void
MachineParams::applyConfig(const Config &config)
{
    instWindowSize =
        int(config.getInt("cpu.inst_window", instWindowSize));
    lsqSize = int(config.getInt("cpu.lsq_size", lsqSize));
    fetchWidth = int(config.getInt("cpu.fetch_width", fetchWidth));
    decodeWidth = int(config.getInt("cpu.decode_width", decodeWidth));
    issueWidth = int(config.getInt("cpu.issue_width", issueWidth));
    commitWidth = int(config.getInt("cpu.commit_width", commitWidth));
    intAlus = int(config.getInt("cpu.int_alus", intAlus));
    fpAlus = int(config.getInt("cpu.fp_alus", fpAlus));
    bhtEntries = int(config.getInt("cpu.bht_entries", bhtEntries));
    btbEntries = int(config.getInt("cpu.btb_entries", btbEntries));
    rasEntries = int(config.getInt("cpu.ras_entries", rasEntries));

    icache.sizeBytes = std::uint64_t(
        config.getInt("icache.size_kb", icache.sizeBytes / 1024)) *
        1024;
    icache.lineBytes = int(config.getInt("icache.line", icache.lineBytes));
    icache.ways = int(config.getInt("icache.ways", icache.ways));
    dcache.sizeBytes = std::uint64_t(
        config.getInt("dcache.size_kb", dcache.sizeBytes / 1024)) *
        1024;
    dcache.lineBytes = int(config.getInt("dcache.line", dcache.lineBytes));
    dcache.ways = int(config.getInt("dcache.ways", dcache.ways));
    l2cache.sizeBytes = std::uint64_t(
        config.getInt("l2.size_kb", l2cache.sizeBytes / 1024)) *
        1024;
    l2cache.lineBytes = int(config.getInt("l2.line", l2cache.lineBytes));
    l2cache.ways = int(config.getInt("l2.ways", l2cache.ways));
    l2cache.hitLatency =
        int(config.getInt("l2.latency", l2cache.hitLatency));

    tlbEntries = int(config.getInt("tlb.entries", tlbEntries));
    memoryLatency = int(config.getInt("mem.latency", memoryLatency));
    memorySizeBytes = std::uint64_t(config.getInt(
        "mem.size_mb", memorySizeBytes / (1024 * 1024))) *
        1024 * 1024;

    featureSizeUm = config.getDouble("tech.feature_um", featureSizeUm);
    vdd = config.getDouble("tech.vdd", vdd);
    freqMhz = config.getDouble("tech.mhz", freqMhz);
}

} // namespace softwatt
