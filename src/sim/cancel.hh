/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is a tiny shared flag with two escalation levels:
 * Drain asks the experiment runner to stop dispatching new runs and
 * let in-flight runs finish (bounded by an optional grace budget);
 * Hard asks in-flight runs to stop at their next sample-window
 * boundary. System::run polls its token only at window boundaries,
 * so cancellation never tears a sample record in half and a
 * cancelled run's partial statistics remain consistent.
 *
 * The token is written from signal handlers (see sim/signals.hh), so
 * every mutation is a lock-free atomic operation and escalation is
 * monotonic: a level can only increase, never reset while a consumer
 * might still be polling (reset() is for test reuse only).
 */

#ifndef SOFTWATT_SIM_CANCEL_HH
#define SOFTWATT_SIM_CANCEL_HH

#include <atomic>

namespace softwatt
{

/** Shared cancellation flag, safe to set from a signal handler. */
class CancelToken
{
  public:
    enum Level : int
    {
        Live = 0,   ///< Not cancelled.
        Drain = 1,  ///< Finish in-flight runs, start no new ones.
        Hard = 2,   ///< Stop at the next sample-window boundary.
    };

    /** Raise to @p level; never lowers an existing request. */
    void
    request(Level level) noexcept
    {
        int current = state.load(std::memory_order_relaxed);
        while (current < level &&
               !state.compare_exchange_weak(
                   current, int(level), std::memory_order_release,
                   std::memory_order_relaxed)) {
        }
    }

    /**
     * One step up the ladder (Live -> Drain -> Hard). This is what a
     * signal handler calls: the first SIGINT drains, the second
     * hard-cancels. Async-signal-safe on lock-free atomics.
     */
    void
    escalate() noexcept
    {
        int current = state.load(std::memory_order_relaxed);
        while (current < int(Hard) &&
               !state.compare_exchange_weak(
                   current, current + 1, std::memory_order_release,
                   std::memory_order_relaxed)) {
        }
    }

    Level
    level() const noexcept
    {
        return Level(state.load(std::memory_order_acquire));
    }

    /** True once any cancellation (Drain or Hard) was requested. */
    bool cancelled() const noexcept { return level() != Live; }

    /** TEST HOOK: rearm a token between sequential experiments. */
    void
    reset() noexcept
    {
        state.store(0, std::memory_order_release);
    }

  private:
    std::atomic<int> state{0};
};

} // namespace softwatt

#endif // SOFTWATT_SIM_CANCEL_HH
