/**
 * @file
 * The simulated machine's architectural parameters — Table 1 of the
 * paper. Shared by the timing models (src/cpu, src/mem) and the
 * power models (src/power).
 */

#ifndef SOFTWATT_SIM_MACHINE_PARAMS_HH
#define SOFTWATT_SIM_MACHINE_PARAMS_HH

#include <cstdint>

namespace softwatt
{

class Config;

/** Parameters of one cache level. */
struct CacheParams
{
    std::uint64_t sizeBytes;
    int lineBytes;
    int ways;
    int hitLatency;    ///< Cycles.
};

/**
 * The complete machine configuration (paper Table 1 defaults).
 */
struct MachineParams
{
    // Out-of-order core.
    int instWindowSize = 64;
    int intRegs = 34;
    int fpRegs = 32;
    int lsqSize = 32;
    int fetchWidth = 4;
    int decodeWidth = 4;
    int issueWidth = 4;
    int commitWidth = 4;
    int intAlus = 2;
    int fpAlus = 2;

    // Branch prediction.
    int bhtEntries = 1024;
    int btbEntries = 1024;
    int rasEntries = 32;

    // Memory system.
    std::uint64_t memorySizeBytes = 128ull * 1024 * 1024;
    CacheParams icache{32 * 1024, 64, 2, 1};
    CacheParams dcache{32 * 1024, 64, 2, 1};
    CacheParams l2cache{1024 * 1024, 128, 2, 10};
    int tlbEntries = 64;
    int memoryLatency = 60;    ///< Cycles from L2 miss to data.
    int pageBytes = 4096;

    // Process / clock (Table 1: 0.35 um, 3.3 V, 200 MHz).
    double featureSizeUm = 0.35;
    double vdd = 3.3;
    double freqMhz = 200.0;

    /** Cycles per simulated second at the configured clock. */
    std::uint64_t
    cyclesPerSecond() const
    {
        return std::uint64_t(freqMhz * 1.0e6);
    }

    /** Override fields from a Config ("icache.size_kb", ...). */
    void applyConfig(const Config &config);
};

} // namespace softwatt

#endif // SOFTWATT_SIM_MACHINE_PARAMS_HH
