#include "sample_log.hh"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/checkpoint.hh"

namespace softwatt
{

namespace
{

/**
 * Shortest round-trip decimal form of a double (std::to_chars), so
 * the CSV is deterministic and readCsv restores the exact value.
 */
std::string
csvDouble(double value)
{
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, res.ptr);
}

} // namespace

void
SampleLog::saveState(ChunkWriter &out) const
{
    out.u64(records.size());
    for (const SampleRecord &rec : records) {
        out.u64(rec.startTick);
        out.u64(rec.endTick);
        out.f64(rec.freqMhz);
        out.f64(rec.vdd);
        rec.counters.saveState(out);
    }
}

void
SampleLog::loadState(ChunkReader &in)
{
    records.clear();
    std::uint64_t count = in.u64();
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        SampleRecord rec;
        rec.startTick = in.u64();
        rec.endTick = in.u64();
        rec.freqMhz = in.f64();
        rec.vdd = in.f64();
        rec.counters.loadState(in);
        records.push_back(std::move(rec));
    }
}

CounterBank
SampleLog::totals() const
{
    CounterBank bank;
    for (const auto &rec : records)
        bank.accumulate(rec.counters);
    return bank;
}

Cycles
SampleLog::totalCycles() const
{
    Cycles sum = 0;
    for (const auto &rec : records)
        sum += rec.length();
    return sum;
}

void
SampleLog::writeCsv(std::ostream &out) const
{
    out << "window,start,end,freq_mhz,vdd,mode";
    for (int c = 0; c < numCounters; ++c)
        out << ',' << counterName(static_cast<CounterId>(c));
    out << '\n';
    for (std::size_t w = 0; w < records.size(); ++w) {
        const auto &rec = records[w];
        for (ExecMode mode : allExecModes) {
            out << w << ',' << rec.startTick << ',' << rec.endTick << ','
                << csvDouble(rec.freqMhz) << ','
                << csvDouble(rec.vdd) << ','
                << execModeName(mode);
            for (int c = 0; c < numCounters; ++c) {
                out << ','
                    << rec.counters.get(mode, static_cast<CounterId>(c));
            }
            out << '\n';
        }
    }
}

bool
SampleLog::readCsv(std::istream &in, SampleLog &out)
{
    std::string line;
    if (!std::getline(in, line))
        return false; // missing header

    SampleRecord current;
    std::size_t current_window = ~std::size_t(0);
    bool have_window = false;
    int mode_index = 0;

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::istringstream row(line);
        std::string field;

        if (!std::getline(row, field, ','))
            return false;
        std::size_t window = std::stoull(field);

        if (!std::getline(row, field, ','))
            return false;
        Tick start = std::stoull(field);
        if (!std::getline(row, field, ','))
            return false;
        Tick end = std::stoull(field);

        if (!std::getline(row, field, ','))
            return false;
        double freq_mhz = std::stod(field);
        if (!std::getline(row, field, ','))
            return false;
        double vdd = std::stod(field);

        if (!std::getline(row, field, ','))
            return false; // mode name; row order is fixed

        if (!have_window || window != current_window) {
            if (have_window)
                out.append(current);
            current = SampleRecord{};
            current.startTick = start;
            current.endTick = end;
            current.freqMhz = freq_mhz;
            current.vdd = vdd;
            current_window = window;
            have_window = true;
            mode_index = 0;
        }
        if (mode_index >= numExecModes)
            return false;
        ExecMode mode = allExecModes[mode_index++];

        for (int c = 0; c < numCounters; ++c) {
            if (!std::getline(row, field, ','))
                return false;
            current.counters.addTo(mode, static_cast<CounterId>(c),
                                   std::stoull(field));
        }
    }
    if (have_window)
        out.append(current);
    return true;
}

} // namespace softwatt
