#include "sim/host_io.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "sim/check.hh"
#include "sim/logging.hh"
#include "sim/random.hh"

namespace softwatt
{

namespace fs = std::filesystem;

const char *
durabilityName(Durability durability)
{
    switch (durability) {
      case Durability::Buffered:
        return "buffered";
      case Durability::Full:
        return "full";
    }
    return "?";
}

Durability
durabilityFromName(const std::string &name, bool &ok)
{
    ok = true;
    if (name == "buffered")
        return Durability::Buffered;
    if (name == "full")
        return Durability::Full;
    ok = false;
    return Durability::Buffered;
}

const char *
ioOpName(IoOpKind kind)
{
    switch (kind) {
      case IoOpKind::Open:
        return "open";
      case IoOpKind::Write:
        return "write";
      case IoOpKind::Flush:
        return "flush";
      case IoOpKind::Sync:
        return "sync";
      case IoOpKind::Rename:
        return "rename";
      case IoOpKind::Remove:
        return "remove";
      case IoOpKind::DirSync:
        return "dirsync";
    }
    return "?";
}

const char *
crashVariantName(CrashVariant variant)
{
    switch (variant) {
      case CrashVariant::SyncedOnly:
        return "synced-only";
      case CrashVariant::Everything:
        return "everything";
      case CrashVariant::TornTail:
        return "torn-tail";
    }
    return "?";
}

struct HostIo::Impl
{
    std::mutex mutex;
    IoFaultPolicy policy;
    Random rng;
    std::uint64_t ops = 0;
    std::uint64_t bytesWritten = 0;
    bool cut = false;  ///< crash-at-op latch: power is "lost".
    bool logging = false;
    std::vector<IoRecord> log;
};

HostIo &
HostIo::instance()
{
    static HostIo io;
    return io;
}

HostIo::Impl &
HostIo::impl() const
{
    static Impl state;
    return state;
}

void
HostIo::setFaultPolicy(const IoFaultPolicy &policy)
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.policy = policy;
    s.rng = Random(policy.seed);
    s.ops = 0;
    s.bytesWritten = 0;
    s.cut = false;
}

void
HostIo::clearFaultPolicy()
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.policy = IoFaultPolicy{};
    s.cut = false;
}

bool
HostIo::powerLost() const
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.cut;
}

std::uint64_t
HostIo::opsIssued() const
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.ops;
}

void
HostIo::startRecording()
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.log.clear();
    s.logging = true;
}

std::vector<IoRecord>
HostIo::stopRecording()
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.logging = false;
    std::vector<IoRecord> out;
    out.swap(s.log);
    return out;
}

bool
HostIo::recording() const
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.logging;
}

IoStatus
HostIo::gate(IoOpKind kind, const std::string &path,
             const std::string &path2, std::string *data,
             bool truncate, bool *torn, bool *shortened)
{
    Impl &s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    ++s.ops;

    if (s.policy.enabled) {
        const IoFaultPolicy &p = s.policy;
        if (s.cut ||
            (p.crashAtOp != 0 && s.ops > p.crashAtOp)) {
            s.cut = true;
            return IoStatus::failure(
                msg() << ioOpName(kind) << " '" << path
                      << "': simulated power cut "
                      << "(io_fault_crash_at_op)");
        }
        bool writeLike = kind == IoOpKind::Open ||
                         kind == IoOpKind::Write;
        if (p.enospcAfterBytes != 0 && kind == IoOpKind::Write &&
            s.bytesWritten + (data ? data->size() : 0) >
                p.enospcAfterBytes) {
            return IoStatus::failure(
                msg() << "write '" << path << "': no space left on "
                      << "device (simulated ENOSPC, byte budget "
                      << p.enospcAfterBytes << " exhausted)");
        }
        if (p.errorRate > 0 && s.rng.chance(p.errorRate)) {
            return IoStatus::failure(msg()
                                     << ioOpName(kind) << " '" << path
                                     << "': input/output error "
                                     << "(injected EIO)");
        }
        if (p.enospcRate > 0 && writeLike &&
            s.rng.chance(p.enospcRate)) {
            return IoStatus::failure(
                msg() << ioOpName(kind) << " '" << path
                      << "': no space left on device "
                      << "(injected ENOSPC)");
        }
        if (p.shortWriteRate > 0 && kind == IoOpKind::Write && data &&
            !data->empty() && s.rng.chance(p.shortWriteRate)) {
            data->resize(std::size_t(s.rng.below(data->size())));
            if (shortened)
                *shortened = true;
        }
        if (p.tornRenameRate > 0 && kind == IoOpKind::Rename &&
            s.rng.chance(p.tornRenameRate)) {
            if (torn)
                *torn = true;
        }
    }

    if (kind == IoOpKind::Write)
        s.bytesWritten += data ? data->size() : 0;

    if (s.logging) {
        IoRecord record;
        record.kind = kind;
        record.path = path;
        record.path2 = path2;
        if (data)
            record.data = *data;
        record.truncate = truncate;
        s.log.push_back(std::move(record));
    }
    return IoStatus::good();
}

namespace
{

std::string
errnoText()
{
    return std::strerror(errno);
}

/** True when the parent directory entry for @p path was created by
 *  this open (used to decide whether to dir-sync under Full). */
bool
openCreatesEntry(const std::string &path)
{
    return ::access(path.c_str(), F_OK) != 0;
}

} // namespace

HostFile::~HostFile()
{
    close();
}

IoStatus
HostFile::open(const std::string &path, bool truncate,
               Durability durability)
{
    SW_CHECK(fd < 0, "HostFile::open on an already-open file");
    bool fresh = openCreatesEntry(path);
    IoStatus gated = HostIo::instance().gate(
        IoOpKind::Open, path, "", nullptr, truncate, nullptr,
        nullptr);
    if (!gated)
        return gated;
    int flags = O_WRONLY | O_CREAT | (truncate ? O_TRUNC : O_APPEND);
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
        return IoStatus::failure(msg() << "open '" << path
                                       << "': " << errnoText());
    }
    filePath = path;
    if (durability == Durability::Full && fresh) {
        // Persist the new directory entry itself: without this a
        // power cut can forget the file ever existed even after its
        // bytes were fdatasync'd.
        IoStatus dir = hostSyncDir(hostParentDir(path));
        if (!dir)
            return dir;
    }
    return IoStatus::good();
}

IoStatus
HostFile::write(const std::string &bytes)
{
    SW_CHECK(fd >= 0, "HostFile::write on a closed file");
    std::string payload = bytes;
    bool shortened = false;
    IoStatus gated = HostIo::instance().gate(
        IoOpKind::Write, filePath, "", &payload, false, nullptr,
        &shortened);
    if (!gated)
        return gated;
    std::size_t done = 0;
    while (done < payload.size()) {
        ssize_t n = ::write(fd, payload.data() + done,
                            payload.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return IoStatus::failure(msg() << "write '" << filePath
                                           << "': " << errnoText());
        }
        done += std::size_t(n);
    }
    if (shortened) {
        // The truncated payload really hit the disk (that is the
        // point: readers must cope with the torn record), but the
        // writer is told the truth.
        return IoStatus::failure(
            msg() << "write '" << filePath << "': short write ("
                  << payload.size() << " of " << bytes.size()
                  << " bytes; injected fault)");
    }
    return IoStatus::good();
}

IoStatus
HostFile::flush()
{
    SW_CHECK(fd >= 0, "HostFile::flush on a closed file");
    // Unbuffered fd writes have nothing to flush; the op is gated
    // and recorded so fault schedules and op logs see the boundary.
    return HostIo::instance().gate(IoOpKind::Flush, filePath, "",
                                   nullptr, false, nullptr, nullptr);
}

IoStatus
HostFile::sync()
{
    SW_CHECK(fd >= 0, "HostFile::sync on a closed file");
    IoStatus gated = HostIo::instance().gate(
        IoOpKind::Sync, filePath, "", nullptr, false, nullptr,
        nullptr);
    if (!gated)
        return gated;
    if (::fdatasync(fd) != 0) {
        return IoStatus::failure(msg() << "fdatasync '" << filePath
                                       << "': " << errnoText());
    }
    return IoStatus::good();
}

void
HostFile::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
        filePath.clear();
    }
}

IoStatus
hostWriteFileAtomic(const std::string &path, const std::string &bytes,
                    Durability durability)
{
    std::string tmp = path + ".tmp";
    HostFile file;
    IoStatus st = file.open(tmp, true, durability);
    if (st)
        st = file.write(bytes);
    if (st && durability == Durability::Full)
        st = file.sync();
    file.close();
    if (!st) {
        hostRemoveBestEffort(tmp);
        return st;
    }
    st = hostRename(tmp, path, durability);
    if (!st)
        hostRemoveBestEffort(tmp);
    return st;
}

IoStatus
hostRename(const std::string &from, const std::string &to,
           Durability durability)
{
    bool torn = false;
    IoStatus gated = HostIo::instance().gate(
        IoOpKind::Rename, from, to, nullptr, false, &torn, nullptr);
    if (!gated)
        return gated;
    if (torn) {
        // Model a rename a power cut caught half-way: the source
        // entry is gone but the destination is a zero-length stub
        // instead of the complete file.
        std::ofstream stub(to, std::ios::binary | std::ios::trunc);
        stub.close();
        ::unlink(from.c_str());
        return IoStatus::failure(
            msg() << "rename '" << from << "' -> '" << to
                  << "': torn rename (injected fault)");
    }
    if (::rename(from.c_str(), to.c_str()) != 0) {
        return IoStatus::failure(msg() << "rename '" << from
                                       << "' -> '" << to
                                       << "': " << errnoText());
    }
    if (durability == Durability::Full)
        return hostSyncDir(hostParentDir(to));
    return IoStatus::good();
}

IoStatus
hostRemove(const std::string &path)
{
    IoStatus gated = HostIo::instance().gate(
        IoOpKind::Remove, path, "", nullptr, false, nullptr,
        nullptr);
    if (!gated)
        return gated;
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
        return IoStatus::failure(msg() << "remove '" << path
                                       << "': " << errnoText());
    }
    return IoStatus::good();
}

void
hostRemoveBestEffort(const std::string &path)
{
    IoStatus st = hostRemove(path);
    (void)st;
}

IoStatus
hostSyncDir(const std::string &dir)
{
    IoStatus gated = HostIo::instance().gate(
        IoOpKind::DirSync, dir, "", nullptr, false, nullptr,
        nullptr);
    if (!gated)
        return gated;
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
        return IoStatus::failure(msg() << "open dir '" << dir
                                       << "': " << errnoText());
    }
    IoStatus st = IoStatus::good();
    if (::fsync(fd) != 0) {
        st = IoStatus::failure(msg() << "fsync dir '" << dir
                                     << "': " << errnoText());
    }
    ::close(fd);
    return st;
}

bool
hostFileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

std::uint64_t
hostFileSize(const std::string &path)
{
    std::error_code ec;
    std::uint64_t size = std::uint64_t(fs::file_size(path, ec));
    return ec ? 0 : size;
}

std::string
hostParentDir(const std::string &path)
{
    std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

namespace
{

/** One file's content in the replay model: the volatile (page
 *  cache) view and the snapshot as of its last fsync. Shared so a
 *  rename carries the durable snapshot with the inode. */
struct ReplayInode
{
    std::string vol;
    std::string dur;
    bool synced = false;
};

using InodePtr = std::shared_ptr<ReplayInode>;

} // namespace

void
replayCrashPrefix(const std::vector<IoRecord> &log,
                  std::size_t prefix, CrashVariant variant,
                  const std::string &recordRoot,
                  const std::string &scratchRoot)
{
    if (prefix > log.size())
        prefix = log.size();

    // Two views of the namespace: VOL has every op applied; DUR has
    // only what crossed a barrier. A Sync persists an inode's bytes
    // and (ext4 journalling-like) its directory entry; Rename and
    // Remove stay volatile until a DirSync covers their directory.
    std::map<std::string, InodePtr> volFs;
    std::map<std::string, InodePtr> durFs;

    for (std::size_t i = 0; i < prefix; ++i) {
        const IoRecord &op = log[i];
        switch (op.kind) {
          case IoOpKind::Open: {
              InodePtr &slot = volFs[op.path];
              if (!slot)
                  slot = std::make_shared<ReplayInode>();
              if (op.truncate)
                  slot->vol.clear();
              break;
          }
          case IoOpKind::Write: {
              InodePtr &slot = volFs[op.path];
              if (!slot)
                  slot = std::make_shared<ReplayInode>();
              slot->vol += op.data;
              break;
          }
          case IoOpKind::Flush:
              break;
          case IoOpKind::Sync: {
              auto it = volFs.find(op.path);
              if (it == volFs.end())
                  break;
              it->second->dur = it->second->vol;
              it->second->synced = true;
              durFs[op.path] = it->second;
              break;
          }
          case IoOpKind::Rename: {
              auto it = volFs.find(op.path);
              if (it == volFs.end())
                  break;
              volFs[op.path2] = it->second;
              volFs.erase(it);
              break;
          }
          case IoOpKind::Remove:
              volFs.erase(op.path);
              break;
          case IoOpKind::DirSync: {
              // Persist this directory's entries: DUR's view of the
              // directory becomes VOL's.
              for (auto it = durFs.begin(); it != durFs.end();) {
                  if (hostParentDir(it->first) == op.path &&
                      !volFs.count(it->first))
                      it = durFs.erase(it);
                  else
                      ++it;
              }
              for (const auto &[path, inode] : volFs) {
                  if (hostParentDir(path) == op.path)
                      durFs[path] = inode;
              }
              break;
          }
        }
    }

    // Pick the surviving content per the variant.
    std::map<std::string, std::string> files;
    if (variant == CrashVariant::SyncedOnly) {
        for (const auto &[path, inode] : durFs) {
            // An entry persisted by a dir-sync whose bytes never
            // crossed an fsync comes back zero-length.
            files[path] = inode->synced ? inode->dur : std::string();
        }
    } else {
        for (const auto &[path, inode] : volFs) {
            if (variant == CrashVariant::Everything) {
                files[path] = inode->vol;
                continue;
            }
            const std::string &vol = inode->vol;
            std::size_t base =
                inode->synced
                    ? std::min(inode->dur.size(), vol.size())
                    : 0;
            std::size_t unsynced = vol.size() - base;
            files[path] = vol.substr(0, base + (unsynced + 1) / 2);
        }
    }

    // Materialize into the scratch root, rewriting the recording
    // root prefix. Directories are assumed to predate the recorded
    // session, so every path's parent is created even when the file
    // itself did not survive.
    std::error_code ec;
    fs::remove_all(scratchRoot, ec);
    fs::create_directories(scratchRoot, ec);
    SW_CHECK(!ec, "replayCrashPrefix: cannot create scratch root");

    auto mapPath = [&](const std::string &path) {
        SW_CHECK(path.compare(0, recordRoot.size(), recordRoot) == 0,
                 "replayCrashPrefix: op path outside record root: " +
                     path);
        return scratchRoot + path.substr(recordRoot.size());
    };

    for (std::size_t i = 0; i < prefix; ++i) {
        const IoRecord &op = log[i];
        if (!op.path.empty() && op.kind != IoOpKind::DirSync)
            fs::create_directories(hostParentDir(mapPath(op.path)),
                                   ec);
        if (!op.path2.empty())
            fs::create_directories(hostParentDir(mapPath(op.path2)),
                                   ec);
    }

    for (const auto &[path, content] : files) {
        std::string mapped = mapPath(path);
        fs::create_directories(hostParentDir(mapped), ec);
        std::ofstream out(mapped, std::ios::binary | std::ios::trunc);
        out.write(content.data(), std::streamsize(content.size()));
        out.flush();
        SW_CHECK(out.good(),
                 "replayCrashPrefix: cannot materialize " + mapped);
    }
}

} // namespace softwatt
