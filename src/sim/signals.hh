/**
 * @file
 * The one place in SoftWatt that may install process signal
 * handlers. A SignalGuard routes SIGINT/SIGTERM/SIGHUP into a
 * CancelToken: the first signal escalates the token to Drain (the
 * experiment runner stops dispatching runs and lets in-flight work
 * finish up to its grace budget), the second to Hard (in-flight runs
 * stop at their next sample-window boundary). SIGHUP gets the same
 * graceful-drain treatment as SIGTERM so a closed terminal or a
 * dropped ssh connection checkpoints and journals in-flight work
 * instead of killing the sweep. While a guard is active, SIGPIPE is
 * ignored: a peer that disconnects mid-write (a serve client gone
 * away, a closed pipe on the report stream) surfaces as an EPIPE
 * write error the caller can handle per-session instead of a signal
 * that kills the process. The guard restores the previous handlers
 * on destruction, so signal disposition never leaks past the
 * experiment (or daemon) that installed it.
 *
 * The determinism linter (tools/lint, rule raw-signal) bans
 * signal()/sigaction() everywhere else: ad-hoc handlers would race
 * with this protocol and reintroduce kill-on-Ctrl-C semantics.
 */

#ifndef SOFTWATT_SIM_SIGNALS_HH
#define SOFTWATT_SIM_SIGNALS_HH

#include <csignal>

#include "cancel.hh"

namespace softwatt
{

/**
 * RAII installer of the SIGINT/SIGTERM/SIGHUP -> CancelToken bridge.
 *
 * Only one guard may be active at a time (the experiment runner
 * creates one per runExperiment call); nesting panics. The token
 * must outlive the guard.
 */
class SignalGuard
{
  public:
    explicit SignalGuard(CancelToken &token);
    ~SignalGuard();

    SignalGuard(const SignalGuard &) = delete;
    SignalGuard &operator=(const SignalGuard &) = delete;

    /** Is any guard currently installed (for tests)? */
    static bool active();

    /** Signals delivered to the active guard so far. */
    static int deliveredSignals();

  private:
    struct sigaction previousInt;
    struct sigaction previousTerm;
    struct sigaction previousHup;
    struct sigaction previousPipe;
};

} // namespace softwatt

#endif // SOFTWATT_SIM_SIGNALS_HH
