#include "power_calculator.hh"

#include <algorithm>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace softwatt
{

Cycles
PowerBreakdown::totalCycles() const
{
    Cycles sum = 0;
    for (Cycles c : cycles)
        sum += c;
    return sum;
}

double
PowerBreakdown::seconds() const
{
    return double(totalCycles()) / freqHz;
}

double
PowerBreakdown::cpuMemEnergyJ() const
{
    double sum = 0;
    for (int m = 0; m < numExecModes; ++m)
        for (int c = 0; c < numComponents; ++c)
            if (Component(c) != Component::Disk)
                sum += energyJ[m][c];
    return sum;
}

double
PowerBreakdown::modeEnergyJ(ExecMode mode) const
{
    double sum = 0;
    const auto &row = energyJ[int(mode)];
    for (int c = 0; c < numComponents; ++c)
        if (Component(c) != Component::Disk)
            sum += row[c];
    return sum;
}

double
PowerBreakdown::componentEnergyJ(Component c) const
{
    if (c == Component::Disk)
        return diskEnergyJ;
    double sum = 0;
    for (int m = 0; m < numExecModes; ++m)
        sum += energyJ[m][int(c)];
    return sum;
}

double
PowerBreakdown::componentAvgPowerW(Component c) const
{
    double s = seconds();
    return s > 0 ? componentEnergyJ(c) / s : 0;
}

double
PowerBreakdown::modeAvgPowerW(ExecMode mode) const
{
    double s = double(cycles[int(mode)]) / freqHz;
    return s > 0 ? modeEnergyJ(mode) / s : 0;
}

double
PowerBreakdown::modeComponentPowerW(ExecMode mode, Component c) const
{
    double s = double(cycles[int(mode)]) / freqHz;
    return s > 0 ? energyJ[int(mode)][int(c)] / s : 0;
}

double
PowerBreakdown::systemAvgPowerW() const
{
    double s = seconds();
    return s > 0 ? (cpuMemEnergyJ() + diskEnergyJ) / s : 0;
}

double
PowerBreakdown::componentSharePct(Component c) const
{
    double total = cpuMemEnergyJ() + diskEnergyJ;
    return total > 0 ? 100.0 * componentEnergyJ(c) / total : 0;
}

void
PowerBreakdown::accumulate(const PowerBreakdown &other)
{
    for (int m = 0; m < numExecModes; ++m) {
        cycles[m] += other.cycles[m];
        for (int c = 0; c < numComponents; ++c)
            energyJ[m][c] += other.energyJ[m][c];
    }
    diskEnergyJ += other.diskEnergyJ;
}

PowerCalculator::PowerCalculator(const CpuPowerModel &model,
                                 bool conditional_clocking)
    : powerModel(model), conditionalClocking(conditional_clocking)
{
}

namespace
{

/** Unit duty cycle, clipped to [0,1]. */
double
duty(std::uint64_t refs, double ports, Cycles cycles)
{
    if (cycles == 0 || ports <= 0)
        return 0;
    double d = double(refs) / (ports * double(cycles));
    return std::min(d, 1.0);
}

} // namespace

double
PowerCalculator::clockActivity(const CounterBank &bank, ExecMode mode,
                               Cycles mode_cycles) const
{
    if (mode_cycles == 0)
        return 0;
    const PortCounts &p = powerModel.ports();
    auto ref = [&](CounterId id) { return bank.get(mode, id); };

    // Weights: each clocked unit's share of the machine's clocked
    // capacitance (fetch path, datapath structures, memory pipes).
    double activity = 0;
    activity += 0.20 * duty(ref(CounterId::IL1Ref), p.il1, mode_cycles);
    activity += 0.05 * duty(ref(CounterId::DL1Ref), p.dl1, mode_cycles);
    activity += 0.20 * duty(ref(CounterId::IssueWindowOp),
                            p.issueWindow, mode_cycles);
    activity += 0.05 * duty(ref(CounterId::RenameOp), p.rename,
                            mode_cycles);
    activity += 0.15 * duty(ref(CounterId::RegFileRead) +
                                ref(CounterId::RegFileWrite),
                            p.regRead + p.regWrite, mode_cycles);
    activity += 0.15 * duty(ref(CounterId::IntAluOp) +
                                ref(CounterId::FpAluOp),
                            p.intAlu + p.fpAlu, mode_cycles);
    activity += 0.05 * duty(ref(CounterId::LsqOp), p.lsq, mode_cycles);
    activity += 0.10 * duty(ref(CounterId::ResultBusOp), p.resultBus,
                            mode_cycles);
    activity += 0.05 * duty(ref(CounterId::BhtRef) +
                                ref(CounterId::BtbRef),
                            p.bht + p.btb, mode_cycles);
    return std::min(activity, 1.0);
}

ComponentEnergy
PowerCalculator::energiesForMode(const CounterBank &bank, ExecMode mode,
                                 Cycles mode_cycles) const
{
    const UnitEnergies &e = powerModel.energies();
    const double nj = 1e-9;
    auto ref = [&](CounterId id) { return double(bank.get(mode, id)); };

    ComponentEnergy out{};

    out[int(Component::L1ICache)] = ref(CounterId::IL1Ref) *
                                    e.il1ReadNj * nj;
    out[int(Component::L1DCache)] = ref(CounterId::DL1Ref) *
                                    e.dl1AccessNj * nj;
    out[int(Component::L2ICache)] = ref(CounterId::L2IRef) *
                                    e.l2AccessNj * nj;
    out[int(Component::L2DCache)] = ref(CounterId::L2DRef) *
                                    e.l2AccessNj * nj;

    double datapath =
        ref(CounterId::TlbRef) * e.tlbSearchNj +
        ref(CounterId::TlbMiss) * e.tlbWriteNj +
        ref(CounterId::IssueWindowOp) * e.issueWindowOpNj +
        ref(CounterId::RenameOp) * e.renameOpNj +
        ref(CounterId::RegFileRead) * e.regfileReadNj +
        ref(CounterId::RegFileWrite) * e.regfileWriteNj +
        ref(CounterId::IntAluOp) * e.intAluOpNj +
        ref(CounterId::FpAluOp) * e.fpAluOpNj +
        ref(CounterId::LsqOp) * e.lsqOpNj +
        ref(CounterId::ResultBusOp) * e.resultBusNj +
        ref(CounterId::BhtRef) * e.bhtRefNj +
        ref(CounterId::BtbRef) * e.btbRefNj +
        ref(CounterId::RasRef) * e.rasRefNj;
    out[int(Component::Datapath)] = datapath * nj;

    double seconds =
        double(mode_cycles) / powerModel.technology().freqHz();

    // Memory: per-access energy plus background power for the mode's
    // share of wall-clock time.
    out[int(Component::Memory)] =
        ref(CounterId::MemRef) * e.memAccessNj * nj +
        powerModel.memoryModel().backgroundPowerW() * seconds;

    // Clock: conditional-clocking load scaled by unit duty cycles
    // (or fully loaded under the always-clocked ablation).
    double activity = conditionalClocking
                          ? clockActivity(bank, mode, mode_cycles)
                          : 1.0;
    out[int(Component::Clock)] =
        powerModel.clockModel().powerW(activity) * seconds;

    return out;
}

ComponentEnergy
PowerCalculator::energiesForRecord(const SampleRecord &rec,
                                   ExecMode mode,
                                   Cycles mode_cycles) const
{
    ComponentEnergy out =
        energiesForMode(rec.counters, mode, mode_cycles);
    const Technology &tech = powerModel.technology();
    double vr = rec.vdd > 0 ? rec.vdd / tech.vdd : 1.0;
    double fr = rec.freqMhz > 0 ? rec.freqMhz / tech.freqMhz : 1.0;
    if (vr == 1.0 && fr == 1.0)
        return out;
    // First-order DVFS scaling: switching energy goes with Vdd^2;
    // the clock tree's power also drops linearly with frequency
    // while the window's wall-clock time (ticks at the nominal tick
    // rate) is unchanged, so its energy picks up the extra factor.
    double vsq = vr * vr;
    for (int c = 0; c < numComponents; ++c)
        out[c] *= vsq;
    out[int(Component::Clock)] *= fr;
    return out;
}

PowerTrace
PowerCalculator::process(const SampleLog &log) const
{
    PowerStream stream(*this);
    stream.beginRun();
    for (const SampleRecord &rec : log.all())
        stream.onWindow(rec);
    return stream.finish();
}

PowerStream::PowerStream(const PowerCalculator &calc) : calc(calc)
{
    beginRun();
}

void
PowerStream::beginRun()
{
    acc = PowerTrace{};
    acc.total.freqHz = calc.model().technology().freqHz();
    done = false;
}

const WindowPower &
PowerStream::onWindow(const SampleRecord &rec)
{
    SW_CHECK(!done, "PowerStream::onWindow after finish()");

    WindowPower wp;
    wp.startTick = rec.startTick;
    wp.endTick = rec.endTick;
    wp.freqMhz = rec.freqMhz;
    wp.vdd = rec.vdd;

    double window_seconds = double(rec.length()) / acc.total.freqHz;

    for (ExecMode mode : allExecModes) {
        int m = int(mode);
        Cycles mode_cycles = rec.counters.get(mode, CounterId::Cycles);
        wp.cycles[m] = mode_cycles;
        acc.total.cycles[m] += mode_cycles;

        ComponentEnergy energy =
            calc.energiesForRecord(rec, mode, mode_cycles);
        double mode_energy = 0;
        for (int c = 0; c < numComponents; ++c) {
            acc.total.energyJ[m][c] += energy[c];
            mode_energy += energy[c];
            if (window_seconds > 0)
                wp.componentPowerW[c] += energy[c] / window_seconds;
        }
        double mode_seconds = double(mode_cycles) / acc.total.freqHz;
        wp.modePowerW[m] =
            mode_seconds > 0 ? mode_energy / mode_seconds : 0;
    }
    acc.windows.push_back(wp);
    return acc.windows.back();
}

const PowerTrace &
PowerStream::finish()
{
    done = true;
    return acc;
}

const WindowPower &
PowerStream::lastWindow() const
{
    SW_CHECK(!acc.windows.empty(),
             "PowerStream::lastWindow on an empty trace");
    return acc.windows.back();
}

double
peakWindowPowerW(const PowerTrace &trace)
{
    double peak = 0;
    for (const WindowPower &wp : trace.windows) {
        double len = double(wp.endTick - wp.startTick);
        if (len <= 0)
            continue;
        double power = 0;
        for (int m = 0; m < numExecModes; ++m)
            power += wp.modePowerW[m] * double(wp.cycles[m]) / len;
        if (power > peak)
            peak = power;
    }
    return peak;
}

double
PowerCalculator::totalEnergyJ(const CounterBank &bank) const
{
    ComponentEnergy energy = componentEnergiesOf(bank);
    double sum = 0;
    for (double e : energy)
        sum += e;
    return sum;
}

ComponentEnergy
PowerCalculator::componentEnergiesOf(const CounterBank &bank) const
{
    ComponentEnergy out{};
    for (ExecMode mode : allExecModes) {
        Cycles mode_cycles = bank.get(mode, CounterId::Cycles);
        ComponentEnergy energy =
            energiesForMode(bank, mode, mode_cycles);
        for (int c = 0; c < numComponents; ++c)
            out[c] += energy[c];
    }
    return out;
}

} // namespace softwatt
