#include "technology.hh"

namespace softwatt
{

Technology
r10000Technology()
{
    return Technology{};
}

} // namespace softwatt
