#include "components.hh"

#include "sim/logging.hh"

namespace softwatt
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::Datapath: return "Datapath";
      case Component::L1DCache: return "L1 D-Cache";
      case Component::L2DCache: return "L2 D-Cache";
      case Component::L1ICache: return "L1 I-Cache";
      case Component::L2ICache: return "L2 I-Cache";
      case Component::Clock: return "Clock";
      case Component::Memory: return "Memory";
      case Component::Disk: return "Disk";
      case Component::NumComponents: break;
    }
    panic("componentName: invalid component");
}

} // namespace softwatt
