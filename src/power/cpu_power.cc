#include "cpu_power.hh"

#include <cmath>

namespace softwatt
{

UnitEnergies
UnitEnergies::calibrated()
{
    return UnitEnergies{};
}

UnitEnergies
UnitEnergies::fromModels(const Technology &tech,
                         const MachineParams &machine)
{
    UnitEnergies e;

    CacheGeometry il1;
    il1.sizeBytes = machine.icache.sizeBytes;
    il1.ways = machine.icache.ways;
    il1.lineBytes = machine.icache.lineBytes;
    il1.accessBytes = 4 * machine.fetchWidth;
    il1.readsFullLine = true;
    e.il1ReadNj = CacheEnergyModel(tech, il1).readEnergyNj();

    CacheGeometry dl1;
    dl1.sizeBytes = machine.dcache.sizeBytes;
    dl1.ways = machine.dcache.ways;
    dl1.lineBytes = machine.dcache.lineBytes;
    dl1.accessBytes = 8;
    dl1.readsFullLine = false;
    e.dl1AccessNj = CacheEnergyModel(tech, dl1).readEnergyNj();

    CacheGeometry l2;
    l2.sizeBytes = machine.l2cache.sizeBytes;
    l2.ways = machine.l2cache.ways;
    l2.lineBytes = machine.l2cache.lineBytes;
    l2.accessBytes = machine.icache.lineBytes;
    l2.readsFullLine = false;
    e.l2AccessNj = CacheEnergyModel(tech, l2).readEnergyNj();

    CamGeometry tlb;
    tlb.entries = machine.tlbEntries;
    tlb.tagBits = 27;
    tlb.dataBits = 40;
    tlb.broadcastWireCapF = 1.0;
    e.tlbSearchNj = CamEnergyModel(tech, tlb).searchEnergyNj();
    e.tlbWriteNj = CamEnergyModel(tech, tlb).writeEnergyNj();

    CamGeometry window;
    window.entries = machine.instWindowSize;
    window.tagBits = 2 * 8;   // two source tags broadcast per op
    window.dataBits = 64;     // payload read at issue
    window.broadcastWireCapF = 12.0;
    e.issueWindowOpNj = CamEnergyModel(tech, window).searchEnergyNj();

    ArrayGeometry rename;
    rename.entries = machine.intRegs + machine.fpRegs;
    rename.widthBits = 8;
    rename.ports = machine.decodeWidth * 2;
    e.renameOpNj = ArrayEnergyModel(tech, rename).readEnergyNj() +
                   ArrayEnergyModel(tech, rename).writeEnergyNj();

    ArrayGeometry regfile;
    regfile.entries = machine.intRegs + machine.fpRegs;
    regfile.widthBits = 64;
    // Port count sized for the issue width: two reads and one write
    // per issued instruction.
    regfile.ports = 3 * machine.issueWidth - 3;
    ArrayEnergyModel rf(tech, regfile);
    e.regfileReadNj = rf.readEnergyNj();
    e.regfileWriteNj = rf.writeEnergyNj();

    CamGeometry lsq;
    lsq.entries = machine.lsqSize;
    lsq.tagBits = 40;
    lsq.dataBits = 64;
    lsq.broadcastWireCapF = 8.0;
    e.lsqOpNj = CamEnergyModel(tech, lsq).searchEnergyNj();

    // Effective switched capacitance per 64-bit operation.
    e.intAluOpNj = FunctionalUnitEnergyModel(tech, 119.0).opEnergyNj();
    e.fpAluOpNj = FunctionalUnitEnergyModel(tech, 202.0).opEnergyNj();
    e.resultBusNj = ResultBusEnergyModel(tech, 41.0).transferEnergyNj();

    ArrayGeometry bht;
    bht.entries = machine.bhtEntries;
    bht.widthBits = 2;
    bht.ports = 2;
    e.bhtRefNj = ArrayEnergyModel(tech, bht).readEnergyNj() * 4.0;

    ArrayGeometry btb;
    btb.entries = machine.btbEntries;
    btb.widthBits = 70;
    btb.ports = 2;
    e.btbRefNj = ArrayEnergyModel(tech, btb).readEnergyNj();

    ArrayGeometry ras;
    ras.entries = machine.rasEntries;
    ras.widthBits = 40;
    ras.ports = 1;
    e.rasRefNj = ArrayEnergyModel(tech, ras).readEnergyNj();

    e.memAccessNj = 60.0;
    return e;
}

PortCounts
PortCounts::fromMachine(const MachineParams &machine)
{
    PortCounts p;
    p.il1 = machine.fetchWidth;
    p.dl1 = 2;
    p.l2 = 1;
    p.tlb = 2;
    p.issueWindow = machine.decodeWidth + machine.issueWidth;
    p.rename = machine.decodeWidth;
    p.regRead = 2 * machine.issueWidth;
    p.regWrite = machine.commitWidth;
    p.intAlu = machine.intAlus;
    p.fpAlu = machine.fpAlus;
    p.lsq = 2;
    p.resultBus = machine.issueWidth;
    p.bht = 2;
    p.btb = 2;
    p.ras = 1;
    p.mem = 0.25;
    return p;
}

CpuPowerModel::CpuPowerModel(const MachineParams &machine,
                             bool use_calibrated)
    : tech(Technology{machine.featureSizeUm, machine.vdd,
                      machine.freqMhz}),
      machine(machine),
      units(use_calibrated ? UnitEnergies::calibrated()
                           : UnitEnergies::fromModels(tech, machine)),
      portCounts(PortCounts::fromMachine(machine)),
      clock(tech),
      memory(),
      pads(tech)
{
}

double
CpuPowerModel::maxUnitPowerW() const
{
    const UnitEnergies &e = units;
    const PortCounts &p = portCounts;
    double per_cycle_nj =
        p.il1 * e.il1ReadNj + p.dl1 * e.dl1AccessNj +
        p.l2 * e.l2AccessNj + p.tlb * e.tlbSearchNj +
        p.issueWindow * e.issueWindowOpNj + p.rename * e.renameOpNj +
        p.regRead * e.regfileReadNj + p.regWrite * e.regfileWriteNj +
        p.intAlu * e.intAluOpNj + p.fpAlu * e.fpAluOpNj +
        p.lsq * e.lsqOpNj + p.resultBus * e.resultBusNj +
        p.bht * e.bhtRefNj + p.btb * e.btbRefNj + p.ras * e.rasRefNj;
    return per_cycle_nj * 1e-9 * tech.freqHz();
}

double
CpuPowerModel::maxPowerW() const
{
    return maxUnitPowerW() + clock.maxPowerW() + pads.maxPowerW();
}

} // namespace softwatt
