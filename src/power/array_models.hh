/**
 * @file
 * Analytical energy models for the processor's non-cache structures:
 * RAM arrays (register file, branch predictor tables), CAM-based
 * associative structures (TLB, issue-window wakeup, LSQ search, as in
 * Palacharla et al. [25] / Wattch [4]), functional units, result bus,
 * the Duarte clock generation/distribution network [9], DRAM, and the
 * external pad drivers used in the maximum-power validation.
 */

#ifndef SOFTWATT_POWER_ARRAY_MODELS_HH
#define SOFTWATT_POWER_ARRAY_MODELS_HH

#include "technology.hh"

namespace softwatt
{

/** Geometry of a multi-ported RAM array. */
struct ArrayGeometry
{
    int entries = 64;      ///< Number of rows.
    int widthBits = 64;    ///< Row width in bits.
    int ports = 2;         ///< Read + write ports (cap per cell scales).
    int maxRowsPerSubbank = 512;
};

/**
 * Multi-ported RAM array (register file, BHT, BTB, RAS).
 *
 * Same bitline-dominated decomposition as the cache model; each port
 * adds its own bitlines and pass transistors, so the effective cell
 * drain capacitance scales with the port count.
 */
class ArrayEnergyModel
{
  public:
    ArrayEnergyModel(const Technology &tech, const ArrayGeometry &geom);

    /** Per read access, nanojoules. */
    double readEnergyNj() const;

    /** Per write access, nanojoules (about half the columns flip). */
    double writeEnergyNj() const;

  private:
    Technology tech;
    ArrayGeometry geom;

    double bitlineCapF() const;
    int subbankRows() const;
};

/** Geometry of a CAM (fully associative search structure). */
struct CamGeometry
{
    int entries = 64;     ///< Number of searchable entries.
    int tagBits = 27;     ///< Match field width.
    int dataBits = 40;    ///< Payload read on a match.

    /** Broadcast wire capacitance per entry crossed, femtofarads. */
    double broadcastWireCapF = 4.0;
};

/**
 * CAM search energy: tag broadcast across every entry's comparators
 * plus the matched payload read. Used for the TLB, the issue-window
 * wakeup logic, and the LSQ address search.
 */
class CamEnergyModel
{
  public:
    CamEnergyModel(const Technology &tech, const CamGeometry &geom);

    /** Per search (broadcast + match + payload read), nanojoules. */
    double searchEnergyNj() const;

    /** Per entry write/update, nanojoules. */
    double writeEnergyNj() const;

  private:
    Technology tech;
    CamGeometry geom;
};

/**
 * Functional-unit energy: an effective switched capacitance per
 * operation, the standard architecture-level treatment.
 */
class FunctionalUnitEnergyModel
{
  public:
    /**
     * @param tech Process parameters.
     * @param switched_cap_pf Effective switched capacitance per op.
     */
    FunctionalUnitEnergyModel(const Technology &tech,
                              double switched_cap_pf)
        : tech(tech), switchedCapPf(switched_cap_pf)
    {}

    /** Per operation, nanojoules. */
    double
    opEnergyNj() const
    {
        return switchedCapPf * 1e-12 * tech.vddSq() *
               tech.featureScale() * 1e9;
    }

  private:
    Technology tech;
    double switchedCapPf;
};

/**
 * Result bus: wire capacitance proportional to datapath span driven
 * once per transferred result.
 */
class ResultBusEnergyModel
{
  public:
    ResultBusEnergyModel(const Technology &tech, double wire_cap_pf)
        : tech(tech), wireCapPf(wire_cap_pf)
    {}

    /** Per transfer, nanojoules. */
    double
    transferEnergyNj() const
    {
        return wireCapPf * 1e-12 * tech.vddSq() * tech.featureScale() *
               1e9;
    }

  private:
    Technology tech;
    double wireCapPf;
};

/**
 * Duarte et al. clock generation and distribution model [9]: an
 * always-on PLL and global H-tree, plus a clocked load (latches,
 * local buffers, precharge) whose power scales with the fraction of
 * the machine's clocked capacitance that is active — SoftWatt's
 * conditional clocking assumption applied to the clock network.
 */
class ClockEnergyModel
{
  public:
    /**
     * @param tech Process parameters.
     * @param pll_w PLL / clock-generation power, watts (always on).
     * @param tree_cap_nf Global distribution tree capacitance, nF.
     * @param load_cap_nf Total clocked load capacitance, nF.
     */
    ClockEnergyModel(const Technology &tech, double pll_w = 0.205,
                     double tree_cap_nf = 0.274,
                     double load_cap_nf = 2.26)
        : tech(tech), pllW(pll_w), treeCapNf(tree_cap_nf),
          loadCapNf(load_cap_nf)
    {}

    /** Power at a given active-load fraction in [0,1], watts. */
    double powerW(double activity) const;

    /** Power with every clocked element active, watts. */
    double maxPowerW() const { return powerW(1.0); }

    /** Constant (PLL + tree) part, watts. */
    double basePowerW() const { return powerW(0.0); }

  private:
    Technology tech;
    double pllW;
    double treeCapNf;
    double loadCapNf;
};

/**
 * DRAM main-memory energy: a per-access activation/transfer cost plus
 * a constant background (refresh, control) power.
 */
class MemoryEnergyModel
{
  public:
    explicit MemoryEnergyModel(double access_nj = 60.0,
                               double background_w = 0.45)
        : accessNj(access_nj), backgroundW(background_w)
    {}

    double accessEnergyNj() const { return accessNj; }
    double backgroundPowerW() const { return backgroundW; }

  private:
    double accessNj;
    double backgroundW;
};

/**
 * External pad / system-interface drivers. The R10000's 3.3 V pad
 * ring is a large share of its datasheet maximum power; it is part of
 * the maximum-power validation but folded into L2/memory access
 * energies in characterization (the paper's component list has no
 * pad slice).
 */
class PadEnergyModel
{
  public:
    PadEnergyModel(const Technology &tech, int signal_pins = 91,
                   double pad_cap_pf = 50.0,
                   double max_switching_fraction = 0.5)
        : tech(tech), signalPins(signal_pins), padCapPf(pad_cap_pf),
          maxSwitchingFraction(max_switching_fraction)
    {}

    /** Maximum sustained pad power, watts. */
    double maxPowerW() const;

  private:
    Technology tech;
    int signalPins;
    double padCapPf;
    double maxSwitchingFraction;
};

} // namespace softwatt

#endif // SOFTWATT_POWER_ARRAY_MODELS_HH
