/**
 * @file
 * Aggregate CPU power model: per-access energies for every counted
 * unit, port counts, and the maximum-power validation experiment.
 */

#ifndef SOFTWATT_POWER_CPU_POWER_HH
#define SOFTWATT_POWER_CPU_POWER_HH

#include "sim/machine_params.hh"

#include "array_models.hh"
#include "cache_model.hh"
#include "technology.hh"

namespace softwatt
{

/**
 * Per-access energies (nanojoules) for every unit the counter schema
 * tracks. Produced either analytically from the structure models or
 * from the calibrated preset that reproduces the paper's validation
 * point (25.3 W maximum for the R10000 configuration).
 */
struct UnitEnergies
{
    double il1ReadNj = 6.99;
    double dl1AccessNj = 1.16;
    double l2AccessNj = 15.1;
    double tlbSearchNj = 0.137;
    double tlbWriteNj = 0.206;
    double issueWindowOpNj = 0.617;
    double renameOpNj = 0.343;
    double regfileReadNj = 0.48;
    double regfileWriteNj = 0.685;
    double intAluOpNj = 1.78;
    double fpAluOpNj = 3.01;
    double lsqOpNj = 0.822;
    double resultBusNj = 0.617;
    double bhtRefNj = 0.206;
    double btbRefNj = 0.274;
    double rasRefNj = 0.069;
    double memAccessNj = 60.0;

    /**
     * The calibrated preset: per-access energies tuned, via the
     * maximum-power validation, to the paper's process point. This is
     * the configuration every reproduction experiment uses.
     */
    static UnitEnergies calibrated();

    /**
     * Derive energies from the analytical structure models for an
     * arbitrary machine/technology. Used for design-space exploration
     * and to sanity-check the calibrated preset.
     */
    static UnitEnergies fromModels(const Technology &tech,
                                   const MachineParams &machine);
};

/** Peak per-cycle port/access counts used for maximum power. */
struct PortCounts
{
    double il1 = 4;      ///< Fetch width.
    double dl1 = 2;      ///< D-cache ports.
    double l2 = 1;
    double tlb = 2;
    double issueWindow = 8;   ///< Dispatch + issue per cycle.
    double rename = 4;
    double regRead = 8;
    double regWrite = 4;
    double intAlu = 2;
    double fpAlu = 2;
    double lsq = 2;
    double resultBus = 4;
    double bht = 2;
    double btb = 2;
    double ras = 1;
    double mem = 0.25;   ///< Bus-limited memory accesses per cycle.

    /** Port counts implied by a machine configuration. */
    static PortCounts fromMachine(const MachineParams &machine);
};

/**
 * The complete CPU power model: unit energies, port counts, clock,
 * memory and pad submodels, and the maximum-power computation used
 * for the R10000 validation experiment in Section 2 of the paper.
 */
class CpuPowerModel
{
  public:
    /**
     * Build the model for a machine.
     *
     * @param machine Architectural configuration (Table 1 defaults).
     * @param use_calibrated Use the calibrated preset (the paper's
     *        reproduction path) instead of raw analytical energies.
     */
    explicit CpuPowerModel(const MachineParams &machine,
                           bool use_calibrated = true);

    const UnitEnergies &energies() const { return units; }
    const PortCounts &ports() const { return portCounts; }
    const Technology &technology() const { return tech; }
    const ClockEnergyModel &clockModel() const { return clock; }
    const MemoryEnergyModel &memoryModel() const { return memory; }

    /**
     * Maximum sustained CPU power in watts: every port of every unit
     * accessed each cycle, clock fully loaded, pads switching at the
     * maximum rate. The paper reports 25.3 W for the R10000
     * configuration against the 30 W datasheet value.
     */
    double maxPowerW() const;

    /** Max-power contribution of the core units only (no clock/pads). */
    double maxUnitPowerW() const;

  private:
    Technology tech;
    MachineParams machine;
    UnitEnergies units;
    PortCounts portCounts;
    ClockEnergyModel clock;
    MemoryEnergyModel memory;
    PadEnergyModel pads;
};

} // namespace softwatt

#endif // SOFTWATT_POWER_CPU_POWER_HH
