/**
 * @file
 * Reporting components: the slices of the paper's power-budget pies.
 */

#ifndef SOFTWATT_POWER_COMPONENTS_HH
#define SOFTWATT_POWER_COMPONENTS_HH

#include <array>
#include <cstdint>

namespace softwatt
{

/**
 * Hardware components as reported in the paper's figures: the
 * datapath lump (LSQ, issue window, rename, result bus, register
 * file, ALUs), the four cache slices, clock, memory and disk.
 */
enum class Component : std::uint8_t
{
    Datapath = 0,
    L1DCache,
    L2DCache,
    L1ICache,
    L2ICache,
    Clock,
    Memory,
    Disk,
    NumComponents,
};

/** Number of reporting components. */
constexpr int numComponents = static_cast<int>(Component::NumComponents);

/** Display name matching the paper's legends. */
const char *componentName(Component c);

/** All components in legend order. */
constexpr std::array<Component, numComponents> allComponents = {
    Component::Datapath, Component::L1DCache, Component::L2DCache,
    Component::L1ICache, Component::L2ICache, Component::Clock,
    Component::Memory, Component::Disk,
};

} // namespace softwatt

#endif // SOFTWATT_POWER_COMPONENTS_HH
