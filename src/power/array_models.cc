#include "array_models.hh"

#include "sim/logging.hh"

namespace softwatt
{

ArrayEnergyModel::ArrayEnergyModel(const Technology &tech,
                                   const ArrayGeometry &geom)
    : tech(tech), geom(geom)
{
    if (geom.entries <= 0 || geom.widthBits <= 0 || geom.ports <= 0)
        fatal("array geometry fields must be positive");
}

int
ArrayEnergyModel::subbankRows() const
{
    return geom.entries < geom.maxRowsPerSubbank
               ? geom.entries
               : geom.maxRowsPerSubbank;
}

double
ArrayEnergyModel::bitlineCapF() const
{
    // Each port adds a pass transistor per cell, so drain capacitance
    // scales with the port count; wire capacitance scales with height.
    double per_cell = (tech.cellDrainCapF * geom.ports +
                       tech.bitlineWireCapF) *
                      1e-15 * tech.featureScale();
    return double(subbankRows()) * per_cell;
}

double
ArrayEnergyModel::readEnergyNj() const
{
    double bitline = double(geom.widthBits) * bitlineCapF() * tech.vdd *
                     (tech.bitlineSwing * tech.vdd);
    double wordline = double(geom.widthBits) *
                      (tech.cellGateCapF + tech.wordlineWireCapF) *
                      1e-15 * tech.featureScale() * tech.vddSq();
    double sense = double(geom.widthBits) * tech.senseAmpEnergyFj *
                   1e-15 * (tech.vddSq() / (3.3 * 3.3));
    return (bitline + wordline + sense) * 1e9;
}

double
ArrayEnergyModel::writeEnergyNj() const
{
    // Writes drive roughly half the columns rail to rail.
    double bitline = 0.5 * double(geom.widthBits) * bitlineCapF() *
                     tech.vddSq();
    double wordline = double(geom.widthBits) *
                      (tech.cellGateCapF + tech.wordlineWireCapF) *
                      1e-15 * tech.featureScale() * tech.vddSq();
    return (bitline + wordline) * 1e9;
}

CamEnergyModel::CamEnergyModel(const Technology &tech,
                               const CamGeometry &geom)
    : tech(tech), geom(geom)
{
    if (geom.entries <= 0 || geom.tagBits <= 0)
        fatal("CAM geometry fields must be positive");
}

double
CamEnergyModel::searchEnergyNj() const
{
    // Tag broadcast: every entry's comparators plus the match wire.
    double compare = double(geom.entries) * geom.tagBits *
                     (tech.compareCapPerBitF + geom.broadcastWireCapF) *
                     1e-15 * tech.featureScale() * tech.vddSq();
    // Matched payload read: treat as a 1-port array row read.
    double payload = double(geom.dataBits) *
                     (tech.cellDrainCapF + tech.bitlineWireCapF) *
                     1e-15 * tech.featureScale() * double(geom.entries) *
                     tech.vdd * (tech.bitlineSwing * tech.vdd) /
                     double(geom.entries > 0 ? geom.entries : 1);
    return (compare + payload) * 1e9;
}

double
CamEnergyModel::writeEnergyNj() const
{
    double cells = double(geom.tagBits + geom.dataBits) *
                   (tech.cellDrainCapF + tech.bitlineWireCapF) * 1e-15 *
                   tech.featureScale() * tech.vddSq();
    return cells * 1e9 * 4.0;
}

double
ClockEnergyModel::powerW(double activity) const
{
    if (activity < 0)
        activity = 0;
    if (activity > 1)
        activity = 1;
    double tree = treeCapNf * 1e-9 * tech.vddSq() * tech.freqHz();
    double load =
        loadCapNf * 1e-9 * tech.vddSq() * tech.freqHz() * activity;
    return pllW + tree + load;
}

double
PadEnergyModel::maxPowerW() const
{
    return double(signalPins) * padCapPf * 1e-12 * tech.vddSq() *
           tech.freqHz() * maxSwitchingFraction;
}

} // namespace softwatt
