/**
 * @file
 * Kamble & Ghose style analytical cache energy model [17], as used by
 * Wattch [4] and the paper: per-access energy decomposed into decoder,
 * wordline, bitline, sense amplifier, tag compare and output drive.
 */

#ifndef SOFTWATT_POWER_CACHE_MODEL_HH
#define SOFTWATT_POWER_CACHE_MODEL_HH

#include <cstdint>

#include "technology.hh"

namespace softwatt
{

/** Physical organization of a cache array. */
struct CacheGeometry
{
    /** Total capacity in bytes. */
    std::uint64_t sizeBytes = 32 * 1024;

    /** Associativity. */
    int ways = 2;

    /** Line size in bytes. */
    int lineBytes = 64;

    /**
     * Bytes driven out of the data array per access. Instruction
     * caches stream whole line segments across all ways to the fetch
     * buffer (no column multiplexing), data caches mux down to the
     * requested word.
     */
    int accessBytes = 8;

    /**
     * True if a read senses the full line in every way (I-cache style
     * wide fetch path); false if column muxing narrows the sensed
     * columns to accessBytes per way.
     */
    bool readsFullLine = false;

    /** Maximum rows per subbank before the array is split. */
    int maxRowsPerSubbank = 512;

    /** Physical address bits used for the tag computation. */
    int addressBits = 40;

    /** Number of sets (rows before subbanking). */
    std::uint64_t sets() const;

    /** Tag width in bits. */
    int tagBits() const;
};

/** Per-access energy broken into the model's physical terms. */
struct CacheAccessEnergy
{
    double decodeNj = 0;
    double wordlineNj = 0;
    double bitlineNj = 0;
    double senseAmpNj = 0;
    double tagCompareNj = 0;
    double outputNj = 0;

    double
    totalNj() const
    {
        return decodeNj + wordlineNj + bitlineNj + senseAmpNj +
               tagCompareNj + outputNj;
    }
};

/**
 * Analytical per-access energy for a set-associative SRAM cache.
 *
 * The model follows Kamble & Ghose: bitline energy dominates and is
 * proportional to the number of sensed columns times the bitline
 * capacitance (cell drains plus wire) swung through a reduced voltage
 * on reads or rail-to-rail on writes.
 */
class CacheEnergyModel
{
  public:
    CacheEnergyModel(const Technology &tech, const CacheGeometry &geom);

    /** Energy terms for a read access. */
    CacheAccessEnergy readEnergy() const;

    /** Energy terms for a write access (full-swing written columns). */
    CacheAccessEnergy writeEnergy() const;

    /** Convenience: total read energy in nanojoules. */
    double readEnergyNj() const { return readEnergy().totalNj(); }

    /** Convenience: total write energy in nanojoules. */
    double writeEnergyNj() const { return writeEnergy().totalNj(); }

    const CacheGeometry &geometry() const { return geom; }

  private:
    Technology tech;
    CacheGeometry geom;

    /** Rows per subbank after splitting. */
    std::uint64_t subbankRows() const;

    /** Bitline capacitance per column in farads. */
    double bitlineCapF() const;

    /** Number of data columns sensed on a read. */
    std::uint64_t sensedDataColumns() const;

    CacheAccessEnergy accessEnergy(bool is_write) const;
};

} // namespace softwatt

#endif // SOFTWATT_POWER_CACHE_MODEL_HH
