#include "cache_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace softwatt
{

namespace
{

/** Integer log2 for exact powers of two; fatal otherwise. */
int
exactLog2(std::uint64_t v)
{
    if (v == 0 || (v & (v - 1)) != 0)
        fatal(msg() << "cache parameter " << v
                    << " must be a power of two");
    int n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

} // namespace

std::uint64_t
CacheGeometry::sets() const
{
    std::uint64_t line_way = std::uint64_t(lineBytes) * ways;
    if (line_way == 0 || sizeBytes % line_way != 0)
        fatal("cache size must be a multiple of lineBytes * ways");
    return sizeBytes / line_way;
}

int
CacheGeometry::tagBits() const
{
    return addressBits - exactLog2(sets()) - exactLog2(lineBytes);
}

CacheEnergyModel::CacheEnergyModel(const Technology &tech,
                                   const CacheGeometry &geom)
    : tech(tech), geom(geom)
{
    if (geom.ways <= 0 || geom.lineBytes <= 0 || geom.accessBytes <= 0)
        fatal("cache geometry fields must be positive");
    (void)geom.sets();    // validate divisibility early
    (void)geom.tagBits();  // validate power-of-two sets/lines early
}

std::uint64_t
CacheEnergyModel::subbankRows() const
{
    std::uint64_t rows = geom.sets();
    std::uint64_t max_rows = std::uint64_t(geom.maxRowsPerSubbank);
    return rows < max_rows ? rows : max_rows;
}

double
CacheEnergyModel::bitlineCapF() const
{
    double per_cell =
        (tech.cellDrainCapF + tech.bitlineWireCapF) * 1e-15 *
        tech.featureScale();
    return double(subbankRows()) * per_cell;
}

std::uint64_t
CacheEnergyModel::sensedDataColumns() const
{
    if (geom.readsFullLine)
        return std::uint64_t(geom.lineBytes) * 8 * geom.ways;
    return std::uint64_t(geom.accessBytes) * 8 * geom.ways;
}

CacheAccessEnergy
CacheEnergyModel::accessEnergy(bool is_write) const
{
    CacheAccessEnergy e;
    const double vdd_sq = tech.vddSq();
    const double scale = tech.featureScale();

    // Columns: sensed data columns plus all ways' tags.
    std::uint64_t tag_columns =
        std::uint64_t(geom.tagBits()) * geom.ways;
    std::uint64_t data_columns =
        is_write ? std::uint64_t(geom.accessBytes) * 8
                 : sensedDataColumns();
    std::uint64_t columns = data_columns + tag_columns;

    // Bitlines: reads swing a fraction of Vdd on precharged lines,
    // writes drive written columns rail to rail.
    double swing = is_write ? tech.vdd : tech.bitlineSwing * tech.vdd;
    e.bitlineNj =
        double(columns) * bitlineCapF() * tech.vdd * swing * 1e9;

    // Wordline: gate plus wire capacitance along the activated row of
    // the subbank (all ways share the row in this organization).
    std::uint64_t row_columns =
        std::uint64_t(geom.lineBytes) * 8 * geom.ways + tag_columns;
    double wl_cap = double(row_columns) *
                    (tech.cellGateCapF + tech.wordlineWireCapF) * 1e-15 *
                    scale;
    e.wordlineNj = wl_cap * vdd_sq * 1e9;

    // Decoder: address bits driving per-bank predecode lines.
    int index_bits = 0;
    for (std::uint64_t r = subbankRows(); r > 1; r >>= 1)
        ++index_bits;
    e.decodeNj = double(index_bits) * tech.decodeCapPerBitF * 1e-15 *
                 scale * vdd_sq * 1e9 * 8.0;

    // Sense amps: one per sensed column on reads.
    if (!is_write) {
        e.senseAmpNj = double(columns) * tech.senseAmpEnergyFj * 1e-15 *
                       (vdd_sq / (3.3 * 3.3)) * 1e9;
    }

    // Tag comparators across all ways.
    e.tagCompareNj = double(tag_columns) * tech.compareCapPerBitF *
                     1e-15 * scale * vdd_sq * 1e9;

    // Output drivers for the returned data.
    e.outputNj = double(geom.accessBytes) * 8 * tech.outputCapPerBitF *
                 1e-15 * scale * vdd_sq * 1e9;

    return e;
}

CacheAccessEnergy
CacheEnergyModel::readEnergy() const
{
    return accessEnergy(false);
}

CacheAccessEnergy
CacheEnergyModel::writeEnergy() const
{
    return accessEnergy(true);
}

} // namespace softwatt
