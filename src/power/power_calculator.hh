/**
 * @file
 * The power pass: turns sampled counter logs into per-mode,
 * per-component energy and power, mirroring the paper's log-file
 * post-processing design (Section 2).
 *
 * The pass is incremental: PowerStream consumes one SampleRecord as
 * its window closes and accumulates the PowerTrace online, so the
 * simulated machine can observe its own power while running. The
 * batch process() entry point is a thin wrapper that streams the
 * whole log through the same path, making the two bit-identical by
 * construction.
 */

#ifndef SOFTWATT_POWER_POWER_CALCULATOR_HH
#define SOFTWATT_POWER_POWER_CALCULATOR_HH

#include <array>
#include <vector>

#include "sim/counters.hh"
#include "sim/sample_log.hh"
#include "sim/types.hh"

#include "components.hh"
#include "cpu_power.hh"

namespace softwatt
{

/** Energy per reporting component, joules. */
using ComponentEnergy = std::array<double, numComponents>;

/**
 * Totals of a power pass: energy per (mode, component), cycles per
 * mode, and the clock frequency needed to convert to power.
 */
struct PowerBreakdown
{
    /** Energy in joules, indexed [mode][component]. */
    std::array<ComponentEnergy, numExecModes> energyJ{};

    /** Cycles spent per mode. */
    std::array<Cycles, numExecModes> cycles{};

    /** Core clock in hertz (for power conversion). */
    double freqHz = 200e6;

    /** Disk energy in joules (not mode-attributed). */
    double diskEnergyJ = 0;

    Cycles totalCycles() const;
    double seconds() const;

    /** Total CPU + memory-hierarchy energy (no disk), joules. */
    double cpuMemEnergyJ() const;

    /** Energy of one mode across components (no disk), joules. */
    double modeEnergyJ(ExecMode mode) const;

    /** Energy of one component across modes, joules (incl. disk). */
    double componentEnergyJ(Component c) const;

    /** Average power of one component over the whole run, watts. */
    double componentAvgPowerW(Component c) const;

    /** Average CPU+memory power while executing in a mode, watts. */
    double modeAvgPowerW(ExecMode mode) const;

    /** Per-component average power within one mode, watts. */
    double modeComponentPowerW(ExecMode mode, Component c) const;

    /** Whole-system average power including disk, watts. */
    double systemAvgPowerW() const;

    /** Component share of the whole-system average power, percent. */
    double componentSharePct(Component c) const;

    /** Element-wise accumulate another breakdown. */
    void accumulate(const PowerBreakdown &other);
};

/** Per-window results for time-series profiles (Figs. 3 and 4). */
struct WindowPower
{
    Tick startTick = 0;
    Tick endTick = 0;
    std::array<Cycles, numExecModes> cycles{};

    /** Average CPU+memory power of each mode over the window, W. */
    std::array<double, numExecModes> modePowerW{};

    /** Average power of each component over the window, W. */
    ComponentEnergy componentPowerW{};

    /** Operating point the window ran at (0 = nominal). */
    double freqMhz = 0;
    double vdd = 0;

    /** Whole-window CPU+memory average power, watts. */
    double cpuMemPowerW() const
    {
        double sum = 0;
        for (double w : componentPowerW)
            sum += w;
        return sum;
    }
};

/** Full output of a power pass: totals plus the window series. */
struct PowerTrace
{
    PowerBreakdown total;
    std::vector<WindowPower> windows;
};

/**
 * The analytical power pass.
 *
 * Applies the unit energy models to sampled counters; implements the
 * conditional clocking assumption (a unit consumes access energy only
 * when exercised; the clock load scales with the fraction of clocked
 * capacitance active).
 */
class PowerCalculator
{
  public:
    /**
     * @param model Unit energies and submodels.
     * @param conditional_clocking When false (ablation), the clock
     *        load is charged at full activity every cycle instead of
     *        scaling with unit duty cycles.
     */
    explicit PowerCalculator(const CpuPowerModel &model,
                             bool conditional_clocking = true);

    /**
     * Energy of one mode's counters accumulated over @p mode_cycles
     * cycles, per component (datapath/caches/clock/memory), joules,
     * at the nominal operating point.
     */
    ComponentEnergy energiesForMode(const CounterBank &bank,
                                    ExecMode mode,
                                    Cycles mode_cycles) const;

    /**
     * energiesForMode scaled to the record's operating point: all
     * switching energy scales with (Vdd/Vnom)^2 and the clock tree
     * additionally with (f/fnom) — the first-order DVFS model. A
     * record at the nominal point (or with the fields unset, 0) is
     * bit-identical to the unscaled path.
     */
    ComponentEnergy energiesForRecord(const SampleRecord &rec,
                                      ExecMode mode,
                                      Cycles mode_cycles) const;

    /**
     * Clock-load activity in [0,1] for one mode's counters: the
     * duty-cycle of each clocked unit weighted by its share of the
     * clocked capacitance.
     */
    double clockActivity(const CounterBank &bank, ExecMode mode,
                         Cycles mode_cycles) const;

    /**
     * Run the full pass over a sample log. Implemented as a thin
     * wrapper over PowerStream (beginRun/onWindow/finish), so the
     * batch result is bit-identical to the incremental one.
     */
    PowerTrace process(const SampleLog &log) const;

    /**
     * Total CPU+memory energy of a counter bank, joules. Used for
     * online per-invocation service energy accounting.
     */
    double totalEnergyJ(const CounterBank &bank) const;

    /**
     * Per-component CPU+memory energy of a counter bank summed over
     * all modes, joules (Figure 8's per-service component split).
     */
    ComponentEnergy componentEnergiesOf(const CounterBank &bank) const;

    const CpuPowerModel &model() const { return powerModel; }

  private:
    const CpuPowerModel &powerModel;
    bool conditionalClocking;
};

/**
 * The incremental power pass.
 *
 * Feed each SampleRecord through onWindow() as its window closes;
 * the accumulated PowerTrace is available at any time through
 * trace(), and the per-window result is returned so callers (the
 * System's power meter) can act on it immediately. finish() marks
 * the run complete and returns the final trace.
 *
 * The batch PowerCalculator::process() streams the whole log through
 * this class, so incremental and post-processed results are
 * bit-identical by construction.
 */
class PowerStream
{
  public:
    explicit PowerStream(const PowerCalculator &calc);

    /** Reset accumulation for a new run. */
    void beginRun();

    /** Consume one closed window; returns its per-window power. */
    const WindowPower &onWindow(const SampleRecord &rec);

    /** Mark the run complete; returns the accumulated trace. */
    const PowerTrace &finish();

    /** The trace accumulated so far (valid mid-run). */
    const PowerTrace &trace() const { return acc; }

    std::size_t windowCount() const { return acc.windows.size(); }
    bool hasWindows() const { return !acc.windows.empty(); }

    /** The most recently closed window; hasWindows() must hold. */
    const WindowPower &lastWindow() const;

  private:
    const PowerCalculator &calc;
    PowerTrace acc;
    bool done = false;
};

/**
 * Peak CPU+memory power over the trace's sampling windows, watts.
 * The paper notes the tool can report peak as well as average power.
 */
double peakWindowPowerW(const PowerTrace &trace);

} // namespace softwatt

#endif // SOFTWATT_POWER_POWER_CALCULATOR_HH
