/**
 * @file
 * Process-technology parameters and derived electrical constants.
 *
 * All analytical energy models in SoftWatt are parameterized by a
 * Technology record (feature size, supply voltage, clock frequency)
 * from which per-structure capacitances are derived, following the
 * style of Kamble & Ghose [17] and Wattch [4]. The default instance
 * is the paper's 0.35 um / 3.3 V / 200 MHz R10000-class process.
 */

#ifndef SOFTWATT_POWER_TECHNOLOGY_HH
#define SOFTWATT_POWER_TECHNOLOGY_HH

namespace softwatt
{

/**
 * Electrical process parameters.
 *
 * Capacitance constants are expressed per drawn feature at the
 * reference 0.35 um node and scaled linearly with feature size, the
 * usual first-order treatment at architecture level. The constants
 * were calibrated so that the aggregate CPU model configured as an
 * R10000 dissipates ~25 W maximum against the 30 W datasheet value,
 * mirroring the paper's validation experiment.
 */
struct Technology
{
    /** Drawn feature size in micrometers. */
    double featureSizeUm = 0.35;

    /** Supply voltage in volts. */
    double vdd = 3.3;

    /** Core clock frequency in MHz. */
    double freqMhz = 200.0;

    /** Bitline voltage swing as a fraction of Vdd for reads. */
    double bitlineSwing = 0.45;

    /**
     * Drain capacitance a memory cell adds to its bitline, in
     * femtofarads, at the reference node.
     */
    double cellDrainCapF = 2.9;

    /** Bitline metal capacitance per cell pitch, fF. */
    double bitlineWireCapF = 0.9;

    /** Gate capacitance a cell presents to its wordline, fF. */
    double cellGateCapF = 1.8;

    /** Wordline metal capacitance per cell pitch, fF. */
    double wordlineWireCapF = 0.7;

    /** Sense-amplifier energy per sensed column, fJ at Vdd=3.3. */
    double senseAmpEnergyFj = 110.0;

    /** Comparator (CAM / tag match) capacitance per bit, fF. */
    double compareCapPerBitF = 3.4;

    /** Output-driver capacitance per bit of access width, fF. */
    double outputCapPerBitF = 24.0;

    /** Decoder capacitance per address bit per row bank, fF. */
    double decodeCapPerBitF = 5.8;

    /** Clock cycle time in nanoseconds. */
    double cycleNs() const { return 1000.0 / freqMhz; }

    /** Clock frequency in hertz. */
    double freqHz() const { return freqMhz * 1.0e6; }

    /** Linear feature-size scale factor relative to 0.35 um. */
    double featureScale() const { return featureSizeUm / 0.35; }

    /** Voltage-squared energy scale, joules per farad: Vdd^2. */
    double vddSq() const { return vdd * vdd; }
};

/** The paper's Table 1 process point: 0.35 um, 3.3 V, 200 MHz. */
Technology r10000Technology();

} // namespace softwatt

#endif // SOFTWATT_POWER_TECHNOLOGY_HH
