/**
 * @file
 * Window-granular power feedback policies.
 *
 * DvfsGovernor closes the loop the paper's Table-3 style frequency/
 * voltage sweep leaves open: instead of fixing one operating point
 * per run, it walks a discrete f/V ladder one step per sample window
 * to keep the measured whole-system power under a configured budget.
 * AdaptiveSpindownPolicy replaces the static Table-5 spin-down
 * threshold with one that backs off after observed spin-ups and
 * tightens during quiet windows.
 *
 * Both policies are pure functions of the window reading sequence,
 * so runs stay deterministic and checkpoint/restore reproduces the
 * uninterrupted trajectory.
 */

#ifndef SOFTWATT_OS_POWER_GOVERNOR_HH
#define SOFTWATT_OS_POWER_GOVERNOR_HH

#include <cstdint>
#include <vector>

#include "sim/checkpoint.hh"

#include "power_meter.hh"

namespace softwatt
{

/**
 * Closed-loop DVFS governor.
 *
 * The ladder mirrors the historical open-loop sweep of
 * examples/dvfs_explorer — {1.0, 0.83, 0.665, 0.5, 0.33} of nominal
 * frequency paired with {33, 30, 27, 24, 21}/33 of nominal Vdd (the
 * 200 MHz / 3.3 V point maps to exactly 200/166/133/100/66 MHz at
 * 3.3/3.0/2.7/2.4/2.1 V). Each observed window moves at most one
 * step: down when the window's system power exceeded the budget, up
 * when it fell below budget * headroom.
 *
 * Frequency ratios are carried as exact integer duty fractions so
 * the System can throttle the cycle loop deterministically (execute
 * dutyNum of every dutyDen ticks).
 */
class DvfsGovernor
{
  public:
    /** One rung of the frequency/voltage ladder. */
    struct Point
    {
        double freqMhz = 0;
        double vdd = 0;

        /** Exact duty fraction of nominal frequency. */
        std::uint64_t dutyNum = 1;
        std::uint64_t dutyDen = 1;
    };

    /**
     * @param nominal_freq_mhz Ladder anchor (machine frequency).
     * @param nominal_vdd Ladder anchor (machine supply).
     * @param budget_w Whole-system power budget, watts (> 0).
     * @param headroom Step-up threshold fraction of the budget.
     */
    DvfsGovernor(double nominal_freq_mhz, double nominal_vdd,
                 double budget_w, double headroom = 0.9);

    /**
     * Consume one window reading; @return true when the operating
     * point changed (the kernel should account the governor's work).
     */
    bool observe(const PowerReading &reading);

    /** Current operating point. */
    const Point &point() const { return ladder[std::size_t(idx)]; }

    /** Ladder rung index (0 = nominal, larger = slower). */
    int level() const { return idx; }

    int ladderSize() const { return int(ladder.size()); }
    double budgetW() const { return budget; }

    std::uint64_t stepsDown() const { return numStepsDown; }
    std::uint64_t stepsUp() const { return numStepsUp; }

    /** Total operating-point changes (both directions). */
    std::uint64_t changes() const { return numStepsDown + numStepsUp; }

    /** Slowest rung reached so far. */
    int deepestLevel() const { return deepest; }

    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    std::vector<Point> ladder;
    double budget;    // ckpt:derived: fixed at construction
    double headroom;  // ckpt:derived: fixed at construction

    int idx = 0;
    int deepest = 0;
    std::uint64_t numStepsDown = 0;
    std::uint64_t numStepsUp = 0;
};

/**
 * Adaptive disk spin-down threshold.
 *
 * Starts from the configured (Table-5 style) threshold. A window in
 * which the disk spun up doubles the threshold (a spin-up means the
 * idle period was shorter than the wait already paid for); after
 * quietWindows consecutive windows without a spin-up the threshold
 * decays by shrink, creeping back toward aggressive spin-down. The
 * threshold is clamped to [minSeconds, maxSeconds].
 */
class AdaptiveSpindownPolicy
{
  public:
    explicit AdaptiveSpindownPolicy(double initial_threshold_s,
                                    double min_s = 0.25,
                                    double max_s = 16.0,
                                    double grow = 2.0,
                                    double shrink = 0.9,
                                    int quiet_windows = 8);

    /**
     * Consume one window's cumulative spin-up count; @return true
     * when the threshold changed (the caller re-arms the disk).
     */
    bool observe(std::uint64_t total_spin_ups);

    double thresholdSeconds() const { return thresholdS; }
    std::uint64_t adjustments() const { return numAdjustments; }

    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    double thresholdS;
    double minS;          // ckpt:derived: fixed at construction
    double maxS;          // ckpt:derived: fixed at construction
    double growFactor;    // ckpt:derived: fixed at construction
    double shrinkFactor;  // ckpt:derived: fixed at construction
    int quietWindows;     // ckpt:derived: fixed at construction

    std::uint64_t lastSpinUps = 0;
    int quietStreak = 0;
    std::uint64_t numAdjustments = 0;
};

} // namespace softwatt

#endif // SOFTWATT_OS_POWER_GOVERNOR_HH
