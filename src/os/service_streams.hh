/**
 * @file
 * Instruction-stream models of the IRIX kernel services.
 *
 * Each service invocation is an instruction stream with a
 * characteristic shape: utlb is a short, fixed-length, non-data-
 * intensive refill (hence its low power and near-zero per-invocation
 * variance in the paper); demand_zero streams stores across a page;
 * the I/O syscalls walk the buffer cache under a lock (kernel-sync
 * ops), copy data, and block the process on misses.
 */

#ifndef SOFTWATT_OS_SERVICE_STREAMS_HH
#define SOFTWATT_OS_SERVICE_STREAMS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cpu/inst.hh"
#include "cpu/stream_gen.hh"

#include "file_system.hh"
#include "service.hh"

namespace softwatt
{

/**
 * What an I/O service needs from the kernel: the filesystem, the
 * buffer cache, and a way to start a disk transfer with a completion
 * callback. Implemented by Kernel.
 */
class IoContext
{
  public:
    virtual ~IoContext() = default;
    virtual FileSystem &fs() = 0;
    virtual FileCache &fileCache() = 0;
    virtual void requestDiskBlocks(std::uint64_t block,
                                   std::uint32_t num_blocks,
                                   std::function<void()> done) = 0;
};

/** Tunable lengths of the fixed kernel services (instructions). */
struct ServiceTuning
{
    std::uint64_t utlbLength = 18;
    std::uint64_t tlbMissLength = 130;
    std::uint64_t vfaultLength = 220;
    std::uint64_t demandZeroLength = 620;
    std::uint64_t cacheflushLength = 1600;
    std::uint64_t openLength = 700;
    std::uint64_t openSyncLength = 60;
    std::uint64_t xstatLength = 420;
    std::uint64_t duPollLength = 360;
    std::uint64_t bsdLength = 520;
    std::uint64_t clockLength = 300;
    std::uint64_t clockSyncLength = 20;
    std::uint64_t ioSyncLength = 150;
    std::uint64_t ioSetupLength = 120;
    std::uint64_t ioFinishLength = 60;
    std::uint64_t errorRecoveryLength = 360;
    std::uint64_t errorRecoverySyncLength = 40;
    std::uint64_t powerReadLength = 90;

    /** Probability an open() needs a metadata block from disk. */
    double openMetadataMissProb = 0.05;
};

/** Concatenation of child streams, run to End one after another. */
class SequenceStream : public InstSource
{
  public:
    void
    append(std::unique_ptr<InstSource> part)
    {
        parts.push_back(std::move(part));
    }

    FetchOutcome next(MicroOp &op) override;

    // Checkpoint access: the owner (who knows the concrete part
    // types it appended) serializes each part and the cursor.
    std::size_t partCount() const { return parts.size(); }
    InstSource &part(std::size_t i) { return *parts[i]; }
    const InstSource &part(std::size_t i) const { return *parts[i]; }
    std::size_t partIndex() const { return index; }
    void setPartIndex(std::size_t i) { index = i; }

  private:
    std::vector<std::unique_ptr<InstSource>> parts;
    std::size_t index = 0;
};

/**
 * read()/write(): buffer-cache walk under a lock, per-block copy
 * loops, and blocking disk I/O on misses (reads only; writes dirty
 * the cache).
 */
class IoService : public InstSource
{
  public:
    /**
     * @param io Kernel-provided filesystem/cache/disk access.
     * @param file_id Target file.
     * @param offset Byte offset of the transfer.
     * @param bytes Transfer size.
     * @param is_write Write (dirty cache, no blocking read).
     * @param tuning Service shape parameters.
     * @param seed Deterministic stream seed.
     */
    IoService(IoContext &io, std::uint32_t file_id,
              std::uint64_t offset, std::uint32_t bytes, bool is_write,
              const ServiceTuning &tuning, std::uint64_t seed);

    FetchOutcome next(MicroOp &op) override;

    /** True while blocked waiting for the disk. */
    bool waitingForIo() const { return waiting; }

  private:
    enum class Phase
    {
        Lock,      ///< Sync-mode cache-lock section.
        Setup,     ///< Argument validation, vnode walk.
        NextBlock, ///< Decide hit/miss for the next block.
        Copy,      ///< Per-block copy loop.
        Finish,    ///< Return path.
        Done,
    };

    IoContext &io;
    std::uint32_t fileId;
    std::uint64_t offset;
    std::uint32_t bytes;
    bool isWrite;
    ServiceTuning tuning;
    std::uint64_t seed;

    Phase phase = Phase::Lock;
    std::uint64_t currentBlock = 0;
    std::uint64_t lastBlock = 0;
    bool waiting = false;
    std::unique_ptr<InstSource> segment;

    /** Build the stream segment for the current phase. */
    void enterPhase(Phase next);
};

/**
 * Build the stream for one invocation of a fixed (non-I/O) service.
 */
std::unique_ptr<InstSource> makeFixedService(ServiceKind kind,
                                             const ServiceTuning &t,
                                             std::uint64_t seed);

/** Stream spec used for the idle process's busy-wait loop. */
StreamSpec idleLoopSpec();

/** Stream spec template for kernel-mode code. */
StreamSpec kernelCodeSpec(ExecMode mode);

} // namespace softwatt

#endif // SOFTWATT_OS_SERVICE_STREAMS_HH
