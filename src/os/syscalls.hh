/**
 * @file
 * The syscall ABI between workload instruction streams and the
 * kernel: syscall numbers and the packed argument encoding carried in
 * a Syscall MicroOp.
 */

#ifndef SOFTWATT_OS_SYSCALLS_HH
#define SOFTWATT_OS_SYSCALLS_HH

#include <cstdint>

namespace softwatt
{

/** Syscall numbers issued by workload streams. */
enum class SyscallId : std::uint16_t
{
    Read = 1,
    Write,
    Open,
    Xstat,
    DuPoll,
    Bsd,
    CacheFlush,
    PowerRead,
};

/**
 * Pack an I/O syscall argument: file id (16 bits), byte offset
 * (28 bits, so files up to 256 MB), transfer size (20 bits, up to
 * 1 MB).
 */
inline std::uint64_t
encodeIoArg(std::uint32_t file_id, std::uint64_t offset,
            std::uint32_t bytes)
{
    return (std::uint64_t(file_id & 0xffff) << 48) |
           ((offset & 0xfffffff) << 20) | (bytes & 0xfffff);
}

/** Unpack the file id. */
inline std::uint32_t
ioArgFileId(std::uint64_t arg)
{
    return std::uint32_t(arg >> 48) & 0xffff;
}

/** Unpack the byte offset. */
inline std::uint64_t
ioArgOffset(std::uint64_t arg)
{
    return (arg >> 20) & 0xfffffff;
}

/** Unpack the transfer size in bytes. */
inline std::uint32_t
ioArgBytes(std::uint64_t arg)
{
    return std::uint32_t(arg & 0xfffff);
}

} // namespace softwatt

#endif // SOFTWATT_OS_SYSCALLS_HH
