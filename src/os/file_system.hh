/**
 * @file
 * The minimal filesystem substrate under the syscall layer: a flat
 * file namespace mapped onto disk blocks, plus the buffer (file)
 * cache whose hit behaviour shapes the paper's I/O results — warm
 * file caches make the disk go quiet, misses block the process and
 * schedule the idle loop.
 */

#ifndef SOFTWATT_OS_FILE_SYSTEM_HH
#define SOFTWATT_OS_FILE_SYSTEM_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/** A file: identity, length, and location on disk. */
struct FileInfo
{
    std::uint32_t fileId = 0;
    std::uint64_t sizeBytes = 0;
    std::uint64_t firstBlock = 0;  ///< First disk block.
};

/**
 * Flat filesystem: files are extents of consecutive disk blocks.
 */
class FileSystem
{
  public:
    explicit FileSystem(int block_bytes = 4096);

    /** Create a file of @p size_bytes; returns its id. */
    std::uint32_t createFile(std::uint64_t size_bytes);

    /** Look up a file; fatal() on unknown ids. */
    const FileInfo &info(std::uint32_t file_id) const;

    /** Disk block holding byte @p offset of the file. */
    std::uint64_t blockOf(std::uint32_t file_id,
                          std::uint64_t offset) const;

    int blockBytes() const { return blockSize; }
    std::size_t fileCount() const { return files.size(); }

    /** Checkpointing: allocation cursor plus the file table. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    int blockSize;  // ckpt:derived: fixed at construction
    std::uint64_t nextBlock = 64;  // superblock area reserved
    std::vector<FileInfo> files;
};

/**
 * LRU buffer cache of disk blocks, keyed by absolute block number.
 */
class FileCache
{
  public:
    /** @param capacity_blocks Cache size in blocks. */
    explicit FileCache(std::size_t capacity_blocks = 2048);

    /** Look up a block; refreshes LRU on a hit. */
    bool contains(std::uint64_t block);

    /** Insert a block, evicting LRU if full. */
    void insert(std::uint64_t block);

    /** Mark a cached block dirty (writes); inserts if absent. */
    void insertDirty(std::uint64_t block);

    /** Number of dirty blocks currently cached. */
    std::size_t dirtyBlocks() const { return dirtyCount; }

    /** Clean every dirty block (modelled flush). */
    void cleanAll();

    /** Drop everything. */
    void clear();

    std::size_t size() const { return map.size(); }
    std::size_t capacity() const { return capacityBlocks; }
    std::uint64_t hits() const { return numHits; }
    std::uint64_t lookups() const { return numLookups; }

    /** Hit ratio in [0,1]. */
    double
    hitRatio() const
    {
        return numLookups ? double(numHits) / double(numLookups) : 0;
    }

    /**
     * Checkpointing: the LRU list is written front (most recent) to
     * back and the block map rebuilt on load, so recency order — and
     * therefore every future eviction — survives the round trip.
     */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    struct Node
    {
        std::uint64_t block;
        bool dirty;
    };

    std::size_t capacityBlocks;
    std::list<Node> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Node>::iterator> map;
    std::size_t dirtyCount = 0;
    std::uint64_t numHits = 0;
    std::uint64_t numLookups = 0;
};

} // namespace softwatt

#endif // SOFTWATT_OS_FILE_SYSTEM_HH
