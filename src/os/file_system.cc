#include "file_system.hh"

#include "sim/checkpoint.hh"

#include "sim/logging.hh"

namespace softwatt
{

FileSystem::FileSystem(int block_bytes) : blockSize(block_bytes)
{
    if (block_bytes <= 0 || (block_bytes & (block_bytes - 1)) != 0)
        fatal("filesystem block size must be a power of two");
}

std::uint32_t
FileSystem::createFile(std::uint64_t size_bytes)
{
    FileInfo file;
    file.fileId = std::uint32_t(files.size());
    file.sizeBytes = size_bytes;
    file.firstBlock = nextBlock;
    std::uint64_t blocks =
        (size_bytes + std::uint64_t(blockSize) - 1) / blockSize;
    nextBlock += blocks > 0 ? blocks : 1;
    files.push_back(file);
    return file.fileId;
}

const FileInfo &
FileSystem::info(std::uint32_t file_id) const
{
    if (file_id >= files.size())
        fatal(msg() << "unknown file id " << file_id);
    return files[file_id];
}

std::uint64_t
FileSystem::blockOf(std::uint32_t file_id, std::uint64_t offset) const
{
    const FileInfo &file = info(file_id);
    return file.firstBlock + offset / std::uint64_t(blockSize);
}

void
FileSystem::saveState(ChunkWriter &out) const
{
    out.u64(nextBlock);
    out.u64(files.size());
    for (const FileInfo &file : files) {
        out.u32(file.fileId);
        out.u64(file.sizeBytes);
        out.u64(file.firstBlock);
    }
}

void
FileSystem::loadState(ChunkReader &in)
{
    nextBlock = in.u64();
    std::uint64_t count = in.u64();
    files.clear();
    files.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        FileInfo file;
        file.fileId = in.u32();
        file.sizeBytes = in.u64();
        file.firstBlock = in.u64();
        files.push_back(file);
    }
}

FileCache::FileCache(std::size_t capacity_blocks)
    : capacityBlocks(capacity_blocks)
{
    if (capacity_blocks == 0)
        fatal("file cache must hold at least one block");
}

bool
FileCache::contains(std::uint64_t block)
{
    ++numLookups;
    auto it = map.find(block);
    if (it == map.end())
        return false;
    ++numHits;
    lru.splice(lru.begin(), lru, it->second);
    return true;
}

void
FileCache::insert(std::uint64_t block)
{
    auto it = map.find(block);
    if (it != map.end()) {
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    if (map.size() >= capacityBlocks) {
        Node victim = lru.back();
        if (victim.dirty)
            --dirtyCount;
        map.erase(victim.block);
        lru.pop_back();
    }
    lru.push_front(Node{block, false});
    map[block] = lru.begin();
}

void
FileCache::insertDirty(std::uint64_t block)
{
    insert(block);
    auto it = map.find(block);
    if (!it->second->dirty) {
        it->second->dirty = true;
        ++dirtyCount;
    }
}

void
FileCache::cleanAll()
{
    for (Node &node : lru)
        node.dirty = false;
    dirtyCount = 0;
}

void
FileCache::clear()
{
    lru.clear();
    map.clear();
    dirtyCount = 0;
}

void
FileCache::saveState(ChunkWriter &out) const
{
    out.u64(lru.size());
    for (const Node &node : lru) {  // front (MRU) to back (LRU)
        out.u64(node.block);
        out.b(node.dirty);
    }
    out.u64(numHits);
    out.u64(numLookups);
}

void
FileCache::loadState(ChunkReader &in)
{
    clear();
    std::uint64_t count = in.u64();
    if (count > capacityBlocks) {
        throw CheckpointError(
            msg() << "file cache holds " << count
                  << " blocks in the checkpoint but only "
                  << capacityBlocks << " fit");
    }
    for (std::uint64_t i = 0; i < count; ++i) {
        Node node;
        node.block = in.u64();
        node.dirty = in.b();
        if (node.dirty)
            ++dirtyCount;
        lru.push_back(node);
        map[node.block] = std::prev(lru.end());
    }
    numHits = in.u64();
    numLookups = in.u64();
}

} // namespace softwatt
