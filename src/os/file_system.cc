#include "file_system.hh"

#include "sim/logging.hh"

namespace softwatt
{

FileSystem::FileSystem(int block_bytes) : blockSize(block_bytes)
{
    if (block_bytes <= 0 || (block_bytes & (block_bytes - 1)) != 0)
        fatal("filesystem block size must be a power of two");
}

std::uint32_t
FileSystem::createFile(std::uint64_t size_bytes)
{
    FileInfo file;
    file.fileId = std::uint32_t(files.size());
    file.sizeBytes = size_bytes;
    file.firstBlock = nextBlock;
    std::uint64_t blocks =
        (size_bytes + std::uint64_t(blockSize) - 1) / blockSize;
    nextBlock += blocks > 0 ? blocks : 1;
    files.push_back(file);
    return file.fileId;
}

const FileInfo &
FileSystem::info(std::uint32_t file_id) const
{
    if (file_id >= files.size())
        fatal(msg() << "unknown file id " << file_id);
    return files[file_id];
}

std::uint64_t
FileSystem::blockOf(std::uint32_t file_id, std::uint64_t offset) const
{
    const FileInfo &file = info(file_id);
    return file.firstBlock + offset / std::uint64_t(blockSize);
}

FileCache::FileCache(std::size_t capacity_blocks)
    : capacityBlocks(capacity_blocks)
{
    if (capacity_blocks == 0)
        fatal("file cache must hold at least one block");
}

bool
FileCache::contains(std::uint64_t block)
{
    ++numLookups;
    auto it = map.find(block);
    if (it == map.end())
        return false;
    ++numHits;
    lru.splice(lru.begin(), lru, it->second);
    return true;
}

void
FileCache::insert(std::uint64_t block)
{
    auto it = map.find(block);
    if (it != map.end()) {
        lru.splice(lru.begin(), lru, it->second);
        return;
    }
    if (map.size() >= capacityBlocks) {
        Node victim = lru.back();
        if (victim.dirty)
            --dirtyCount;
        map.erase(victim.block);
        lru.pop_back();
    }
    lru.push_front(Node{block, false});
    map[block] = lru.begin();
}

void
FileCache::insertDirty(std::uint64_t block)
{
    insert(block);
    auto it = map.find(block);
    if (!it->second->dirty) {
        it->second->dirty = true;
        ++dirtyCount;
    }
}

void
FileCache::cleanAll()
{
    for (Node &node : lru)
        node.dirty = false;
    dirtyCount = 0;
}

void
FileCache::clear()
{
    lru.clear();
    map.clear();
    dirtyCount = 0;
}

} // namespace softwatt
