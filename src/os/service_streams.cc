#include "service_streams.hh"

#include "sim/logging.hh"

namespace softwatt
{

namespace
{

/** Base for all kernel-mode streams: unmapped, asid 0. */
StreamSpec
kernelBase(ExecMode mode)
{
    StreamSpec spec;
    spec.mode = mode;
    spec.kernelMapped = true;
    spec.asid = 0;
    return spec;
}

/** The short, non-data-intensive utlb refill handler. */
StreamSpec
utlbSpec()
{
    StreamSpec s = kernelBase(ExecMode::KernelInst);
    s.fracLoad = 0.12;   // a couple of PTE loads
    s.fracStore = 0.03;
    s.fracBranch = 0.10;
    s.fracFp = 0;
    s.fracNop = 0.30;
    s.codeBase = 0x80000000;
    s.codeFootprint = 64;       // single-line resident handler
    s.dataBase = 0x81000000;    // hot page-table lines
    s.dataFootprint = 4096;
    s.hotFootprint = 4096;
    s.spatialLocality = 0.90;
    s.depProb = 1.0;   // strictly serial refill sequence
    s.depWindow = 1;
    s.predictability = 0.9;
    return s;
}

/** Page-zeroing loop: streaming stores across one page. */
StreamSpec
demandZeroSpec(std::uint64_t seed)
{
    StreamSpec s = kernelBase(ExecMode::KernelInst);
    s.fracLoad = 0.02;
    s.fracStore = 0.78;
    s.fracBranch = 0.08;
    s.fracFp = 0;
    s.fracNop = 0.04;
    s.codeBase = 0x80002000;
    s.codeFootprint = 256;
    // Each invocation zeroes a different page.
    s.dataBase = 0x82000000 + ((seed * 4096) & 0x3ffff);
    s.dataFootprint = 4096;
    s.spatialLocality = 0.98;
    s.depProb = 0.15;
    return s;
}

/** Cache-flush loop: index arithmetic and branches, little data. */
StreamSpec
cacheflushSpec()
{
    StreamSpec s = kernelBase(ExecMode::KernelInst);
    s.fracLoad = 0.05;
    s.fracStore = 0.02;
    s.fracBranch = 0.28;
    s.fracFp = 0;
    s.fracNop = 0.15;
    s.codeBase = 0x80004000;
    s.codeFootprint = 512;
    s.dataBase = 0x83000000;
    s.dataFootprint = 8 * 1024;
    s.spatialLocality = 0.9;
    s.depProb = 0.35;
    s.predictability = 0.97;
    return s;
}

/** Tight spin-loop synchronization section. */
StreamSpec
syncSpec()
{
    StreamSpec s = kernelBase(ExecMode::KernelSync);
    s.fracLoad = 0.11;
    s.fracStore = 0.01;
    s.fracBranch = 0.22;
    s.fracFp = 0;
    s.fracNop = 0.28;
    s.codeBase = 0x80006000;
    s.codeFootprint = 128;
    s.dataBase = 0x83800000;
    s.dataFootprint = 256;
    s.spatialLocality = 0.95;
    s.depProb = 0.05;
    s.depWindow = 4;
    s.predictability = 0.98;
    return s;
}

/** Per-block copy loop of the I/O path (uiomove/bcopy). */
StreamSpec
copySpec(std::uint64_t seed)
{
    StreamSpec s = kernelBase(ExecMode::KernelInst);
    s.fracLoad = 0.42;
    s.fracStore = 0.42;
    s.fracBranch = 0.08;
    s.fracFp = 0;
    s.fracNop = 0.02;
    s.codeBase = 0x80008000;
    s.codeFootprint = 256;
    (void)seed;
    // Fixed kernel bounce buffer: stays warm in the D-cache, which
    // is what makes read/write the power-hungry services (Fig. 8).
    s.dataBase = 0x84000000;
    s.dataFootprint = 8 * 1024;
    s.spatialLocality = 0.97;
    s.depProb = 0.12;
    s.predictability = 0.97;
    return s;
}

std::unique_ptr<InstSource>
bounded(const StreamSpec &spec, std::uint64_t seed, std::uint64_t len)
{
    return std::make_unique<BoundedStream>(spec, seed, len);
}

} // namespace

StreamSpec
kernelCodeSpec(ExecMode mode)
{
    StreamSpec s = kernelBase(mode);
    s.fracLoad = 0.12;
    s.fracStore = 0.06;
    s.fracBranch = 0.16;
    s.fracFp = 0;
    s.fracNop = 0.24;
    s.codeBase = 0x8000a000;
    s.codeFootprint = 12 * 1024;
    s.dataBase = 0x85000000;
    s.dataFootprint = 256 * 1024;
    s.hotFootprint = 256 * 1024;
    s.spatialLocality = 0.30;
    s.depProb = 0.85;
    s.depWindow = 1;
    s.predictability = 0.70;
    return s;
}

StreamSpec
idleLoopSpec()
{
    StreamSpec s = kernelBase(ExecMode::Idle);
    s.fracLoad = 0.36;
    s.fracStore = 0.10;
    s.fracBranch = 0.18;
    s.fracFp = 0;
    s.fracNop = 0.06;
    s.codeBase = 0x80010000;
    s.codeFootprint = 512;
    s.dataBase = 0x86000000;
    s.dataFootprint = 64 * 1024;
    s.hotFootprint = 64 * 1024;
    s.spatialLocality = 0.35;
    s.depProb = 0.93;
    s.depWindow = 1;
    s.predictability = 0.95;
    return s;
}

FetchOutcome
SequenceStream::next(MicroOp &op)
{
    while (index < parts.size()) {
        FetchOutcome outcome = parts[index]->next(op);
        if (outcome == FetchOutcome::End) {
            ++index;
            continue;
        }
        return outcome;
    }
    return FetchOutcome::End;
}

std::unique_ptr<InstSource>
makeFixedService(ServiceKind kind, const ServiceTuning &t,
                 std::uint64_t seed)
{
    switch (kind) {
      case ServiceKind::Utlb:
        // Fixed seed: the refill handler is the same code every
        // time, which is why its per-invocation energy variation is
        // near zero (Table 5).
        return bounded(utlbSpec(), 0x171b, t.utlbLength);
      case ServiceKind::TlbMiss:
        return bounded(kernelCodeSpec(ExecMode::KernelInst), 0x71b,
                       t.tlbMissLength);
      case ServiceKind::Vfault:
        return bounded(kernelCodeSpec(ExecMode::KernelInst), 0xfa17,
                       t.vfaultLength);
      case ServiceKind::DemandZero:
        // Deterministic zeroing loop; only the page differs.
        return bounded(demandZeroSpec(seed), 0xde20,
                       t.demandZeroLength);
      case ServiceKind::CacheFlush:
        return bounded(cacheflushSpec(), 0xcf15, t.cacheflushLength);
      case ServiceKind::Xstat:
        return bounded(kernelCodeSpec(ExecMode::KernelInst), seed,
                       t.xstatLength);
      case ServiceKind::DuPoll:
        return bounded(kernelCodeSpec(ExecMode::KernelInst), seed,
                       t.duPollLength);
      case ServiceKind::Bsd:
        return bounded(kernelCodeSpec(ExecMode::KernelInst), seed,
                       t.bsdLength);
      case ServiceKind::ClockInt: {
        auto seq = std::make_unique<SequenceStream>();
        seq->append(bounded(syncSpec(), seed, t.clockSyncLength));
        seq->append(bounded(kernelCodeSpec(ExecMode::KernelInst),
                            seed + 1, t.clockLength));
        return seq;
      }
      case ServiceKind::Open: {
        auto seq = std::make_unique<SequenceStream>();
        seq->append(bounded(syncSpec(), seed, t.openSyncLength));
        seq->append(bounded(kernelCodeSpec(ExecMode::KernelInst),
                            seed + 1, t.openLength));
        return seq;
      }
      case ServiceKind::ErrorRecovery: {
        // Sense the device under the controller lock, then walk the
        // driver's error path (decode status, log, rebuild the
        // request) before the backoff-delayed resubmission.
        auto seq = std::make_unique<SequenceStream>();
        seq->append(bounded(syncSpec(), seed,
                            t.errorRecoverySyncLength));
        seq->append(bounded(kernelCodeSpec(ExecMode::KernelInst),
                            seed + 1, t.errorRecoveryLength));
        return seq;
      }
      case ServiceKind::PowerRead:
        // Read and unpack the kernel's power-meter record: a short
        // register-and-load sequence, like xstat but smaller.
        return bounded(kernelCodeSpec(ExecMode::KernelInst), seed,
                       t.powerReadLength);
      case ServiceKind::Read:
      case ServiceKind::Write:
        panic("I/O services are built via IoService, not "
              "makeFixedService");
      case ServiceKind::NumServices:
        break;
    }
    panic("makeFixedService: invalid service kind");
}

IoService::IoService(IoContext &io, std::uint32_t file_id,
                     std::uint64_t offset, std::uint32_t bytes,
                     bool is_write, const ServiceTuning &tuning,
                     std::uint64_t seed)
    : io(io), fileId(file_id), offset(offset), bytes(bytes),
      isWrite(is_write), tuning(tuning), seed(seed)
{
    const FileInfo &file = io.fs().info(file_id);
    std::uint64_t end = offset + bytes;
    if (end > file.sizeBytes)
        end = file.sizeBytes;
    std::uint64_t bb = std::uint64_t(io.fs().blockBytes());
    currentBlock = io.fs().blockOf(file_id, offset);
    lastBlock = end > offset ? io.fs().blockOf(file_id, end - 1)
                             : currentBlock;
    (void)bb;
    enterPhase(Phase::Lock);
}

void
IoService::enterPhase(Phase next)
{
    phase = next;
    switch (phase) {
      case Phase::Lock:
        segment = std::make_unique<BoundedStream>(syncSpec(), seed,
                                                  tuning.ioSyncLength);
        break;
      case Phase::Setup:
        segment = std::make_unique<BoundedStream>(
            kernelCodeSpec(ExecMode::KernelInst), seed + 1,
            tuning.ioSetupLength);
        break;
      case Phase::NextBlock:
        segment.reset();
        break;
      case Phase::Copy: {
        // This block's copy loop: ~2 ops per 8 bytes actually
        // transferred, plus loop overhead.
        std::uint64_t bb = std::uint64_t(io.fs().blockBytes());
        std::uint64_t block_start =
            (currentBlock - io.fs().info(fileId).firstBlock) * bb;
        std::uint64_t xfer_begin =
            offset > block_start ? offset : block_start;
        std::uint64_t xfer_end = offset + bytes;
        if (xfer_end > block_start + bb)
            xfer_end = block_start + bb;
        std::uint64_t xfer =
            xfer_end > xfer_begin ? xfer_end - xfer_begin : bb;
        std::uint64_t len = xfer / 8 * 2 + 64;
        segment = std::make_unique<BoundedStream>(
            copySpec(seed + currentBlock), seed + currentBlock, len);
        break;
      }
      case Phase::Finish:
        segment = std::make_unique<BoundedStream>(
            kernelCodeSpec(ExecMode::KernelInst), seed + 2,
            tuning.ioFinishLength);
        break;
      case Phase::Done:
        segment.reset();
        break;
    }
}

FetchOutcome
IoService::next(MicroOp &op)
{
    while (true) {
        switch (phase) {
          case Phase::Lock:
          case Phase::Setup:
          case Phase::Copy:
          case Phase::Finish: {
            FetchOutcome outcome = segment->next(op);
            if (outcome != FetchOutcome::End)
                return outcome;
            // Segment finished: advance the phase machine.
            if (phase == Phase::Lock) {
                enterPhase(Phase::Setup);
            } else if (phase == Phase::Setup) {
                enterPhase(Phase::NextBlock);
            } else if (phase == Phase::Copy) {
                ++currentBlock;
                enterPhase(Phase::NextBlock);
            } else {
                enterPhase(Phase::Done);
            }
            break;
          }
          case Phase::NextBlock: {
            if (currentBlock > lastBlock) {
                enterPhase(Phase::Finish);
                break;
            }
            if (waiting)
                return FetchOutcome::Stall;
            if (isWrite) {
                // Writes land in the cache and are flushed later.
                io.fileCache().insertDirty(currentBlock);
                enterPhase(Phase::Copy);
                break;
            }
            if (io.fileCache().contains(currentBlock)) {
                enterPhase(Phase::Copy);
                break;
            }
            // Miss: read ahead over the consecutive missing run —
            // past the request's end, up to the prefetch window or
            // the end of the file (sequential-read prefetching).
            const FileInfo &file = io.fs().info(fileId);
            std::uint64_t file_end =
                file.firstBlock +
                (file.sizeBytes +
                 std::uint64_t(io.fs().blockBytes()) - 1) /
                    std::uint64_t(io.fs().blockBytes());
            std::uint32_t run = 1;
            while (run < 32 && currentBlock + run < file_end &&
                   !io.fileCache().contains(currentBlock + run)) {
                ++run;
            }
            waiting = true;
            std::uint64_t block = currentBlock;
            io.requestDiskBlocks(block, run, [this, block, run] {
                for (std::uint32_t i = 0; i < run; ++i)
                    io.fileCache().insert(block + i);
                waiting = false;
                enterPhase(Phase::Copy);
            });
            return FetchOutcome::Stall;
          }
          case Phase::Done:
            return FetchOutcome::End;
        }
    }
}

} // namespace softwatt
