/**
 * @file
 * Kernel service identities and per-service accounting — the basis
 * of the paper's Tables 4/5 and Figure 8.
 */

#ifndef SOFTWATT_OS_SERVICE_HH
#define SOFTWATT_OS_SERVICE_HH

#include <array>
#include <cstdint>

#include "power/components.hh"
#include "sim/types.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/**
 * The operating system services the paper attributes kernel time and
 * energy to (Table 4).
 */
enum class ServiceKind : std::uint8_t
{
    Utlb = 0,       ///< Fast software TLB refill.
    TlbMiss,        ///< Slow/general TLB miss path.
    Vfault,         ///< Validity fault handler.
    DemandZero,     ///< Zeroing a newly allocated page.
    CacheFlush,     ///< I-/D-cache flush routine.
    Read,           ///< read() syscall.
    Write,          ///< write() syscall.
    Open,           ///< open() syscall.
    Xstat,          ///< stat() family.
    DuPoll,         ///< Device polling.
    Bsd,            ///< BSD networking / misc syscall layer.
    ClockInt,       ///< Timer interrupt.
    ErrorRecovery,  ///< Disk-error retry/recovery handler.
    PowerRead,      ///< Power-meter read (PowerMeter interface).
    NumServices,
};

/** Number of service kinds. */
constexpr int numServices = int(ServiceKind::NumServices);

/** Table-4 style name of a service. */
const char *serviceName(ServiceKind kind);

/** All services, in reporting order. */
constexpr std::array<ServiceKind, numServices> allServices = {
    ServiceKind::Utlb,      ServiceKind::TlbMiss,
    ServiceKind::Vfault,    ServiceKind::DemandZero,
    ServiceKind::CacheFlush, ServiceKind::Read,
    ServiceKind::Write,     ServiceKind::Open,
    ServiceKind::Xstat,     ServiceKind::DuPoll,
    ServiceKind::Bsd,       ServiceKind::ClockInt,
    ServiceKind::ErrorRecovery, ServiceKind::PowerRead,
};

/**
 * Accumulated accounting of one service: invocation count, cycles,
 * energy, and the per-invocation energy moments used for Table 5's
 * coefficient of deviation.
 */
struct ServiceStats
{
    std::uint64_t invocations = 0;
    std::uint64_t cycles = 0;
    double energyJ = 0;

    /** Energy split by hardware component (Figure 8's stacking). */
    std::array<double, numComponents> componentEnergyJ{};

    // Per-invocation energy moments.
    double energySum = 0;
    double energySumSq = 0;
    double energyMin = 0;
    double energyMax = 0;

    /** Record one completed invocation. */
    void record(std::uint64_t inv_cycles, double inv_energy_j);

    /** Pool another benchmark's accounting into this one. */
    void merge(const ServiceStats &other);

    double meanEnergyJ() const;
    double stdevEnergyJ() const;

    /** Coefficient of deviation, percent (Table 5). */
    double coeffOfDeviationPct() const;

    /** Average power over the service's own cycles, watts. */
    double avgPowerW(double freq_hz) const;

    /** Checkpointing: every accumulator, bit-exact. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);
};

} // namespace softwatt

#endif // SOFTWATT_OS_SERVICE_HH
