#include "service.hh"

#include <cmath>

#include "sim/checkpoint.hh"

#include "sim/logging.hh"

namespace softwatt
{

const char *
serviceName(ServiceKind kind)
{
    switch (kind) {
      case ServiceKind::Utlb: return "utlb";
      case ServiceKind::TlbMiss: return "tlb_miss";
      case ServiceKind::Vfault: return "vfault";
      case ServiceKind::DemandZero: return "demand_zero";
      case ServiceKind::CacheFlush: return "cacheflush";
      case ServiceKind::Read: return "read";
      case ServiceKind::Write: return "write";
      case ServiceKind::Open: return "open";
      case ServiceKind::Xstat: return "xstat";
      case ServiceKind::DuPoll: return "du_poll";
      case ServiceKind::Bsd: return "BSD";
      case ServiceKind::ClockInt: return "clock";
      case ServiceKind::ErrorRecovery: return "error_recovery";
      case ServiceKind::PowerRead: return "power_read";
      case ServiceKind::NumServices: break;
    }
    panic("serviceName: invalid service kind");
}

void
ServiceStats::record(std::uint64_t inv_cycles, double inv_energy_j)
{
    if (invocations == 0) {
        energyMin = energyMax = inv_energy_j;
    } else {
        if (inv_energy_j < energyMin)
            energyMin = inv_energy_j;
        if (inv_energy_j > energyMax)
            energyMax = inv_energy_j;
    }
    ++invocations;
    cycles += inv_cycles;
    energyJ += inv_energy_j;
    energySum += inv_energy_j;
    energySumSq += inv_energy_j * inv_energy_j;
}

void
ServiceStats::merge(const ServiceStats &other)
{
    if (other.invocations == 0)
        return;
    if (invocations == 0) {
        energyMin = other.energyMin;
        energyMax = other.energyMax;
    } else {
        if (other.energyMin < energyMin)
            energyMin = other.energyMin;
        if (other.energyMax > energyMax)
            energyMax = other.energyMax;
    }
    invocations += other.invocations;
    cycles += other.cycles;
    energyJ += other.energyJ;
    energySum += other.energySum;
    energySumSq += other.energySumSq;
    for (int c = 0; c < numComponents; ++c)
        componentEnergyJ[c] += other.componentEnergyJ[c];
}

double
ServiceStats::meanEnergyJ() const
{
    return invocations ? energySum / double(invocations) : 0;
}

double
ServiceStats::stdevEnergyJ() const
{
    if (invocations < 2)
        return 0;
    double n = double(invocations);
    double mean = energySum / n;
    double var = (energySumSq - n * mean * mean) / (n - 1);
    return var > 0 ? std::sqrt(var) : 0;
}

double
ServiceStats::coeffOfDeviationPct() const
{
    double mean = meanEnergyJ();
    return mean > 0 ? 100.0 * stdevEnergyJ() / mean : 0;
}

double
ServiceStats::avgPowerW(double freq_hz) const
{
    if (cycles == 0)
        return 0;
    double seconds = double(cycles) / freq_hz;
    return energyJ / seconds;
}

void
ServiceStats::saveState(ChunkWriter &out) const
{
    out.u64(invocations);
    out.u64(cycles);
    out.f64(energyJ);
    for (double j : componentEnergyJ)
        out.f64(j);
    out.f64(energySum);
    out.f64(energySumSq);
    out.f64(energyMin);
    out.f64(energyMax);
}

void
ServiceStats::loadState(ChunkReader &in)
{
    invocations = in.u64();
    cycles = in.u64();
    energyJ = in.f64();
    for (double &j : componentEnergyJ)
        j = in.f64();
    energySum = in.f64();
    energySumSq = in.f64();
    energyMin = in.f64();
    energyMax = in.f64();
}

} // namespace softwatt
