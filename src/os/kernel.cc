#include "kernel.hh"

#include <algorithm>
#include <cmath>

#include "sim/check.hh"
#include "sim/logging.hh"

#include "syscalls.hh"

namespace softwatt
{

void
Kernel::DiskRetryPolicy::validate(const char *context) const
{
    if (maxAttempts < 1) {
        fatal(msg() << context << ": disk retry max attempts must be "
                    << ">= 1 (got " << maxAttempts
                    << "); 1 means no retries at all");
    }
    if (backoffSeconds <= 0) {
        fatal(msg() << context << ": disk retry backoff must be > 0 "
                    << "seconds (got " << backoffSeconds << ")");
    }
    if (backoffMultiplier < 1.0) {
        fatal(msg() << context << ": disk retry backoff multiplier "
                    << "must be >= 1 (got " << backoffMultiplier
                    << "); use 1 for constant backoff");
    }
}

std::string
Kernel::IoFailure::describe() const
{
    if (!failed)
        return "no I/O failure";
    return msg() << "disk request for block " << block << " ("
                 << numBlocks << " blocks) abandoned after "
                 << attempts << " attempts; last error: "
                 << diskIoStatusName(lastStatus);
}

Kernel::Kernel(EventQueue &queue, Tlb &tlb, CacheHierarchy &hierarchy,
               Disk &disk, const MachineParams &machine,
               const Params &params, CounterSink &sink)
    : queue(queue), tlb(tlb), hierarchy(hierarchy), disk(disk),
      machine(machine), cfg(params), sink(sink),
      fileSystem(4096), bufferCache(params.fileCacheBlocks),
      pages(machine.pageBytes), rng(params.seed),
      idleStream(idleLoopSpec(), params.seed ^ 0x1d1e)
{
    cfg.diskRetry.validate("kernel params");
}

void
Kernel::setUserProgram(InstSource *program, std::uint32_t asid)
{
    userProgram = program;
    userAsid = asid;
    userDone = false;
}

void
Kernel::setEnergyFn(EnergyFn fn)
{
    energyFn = std::move(fn);
}

void
Kernel::scheduleClockTick()
{
    double sim_seconds = cfg.clockTickSeconds / cfg.timeScale;
    Cycles delta =
        Cycles(sim_seconds * machine.freqMhz * 1e6);
    if (delta == 0)
        delta = 1;
    nextClockTick = queue.now() + delta;
    clockEvent =
        queue.schedule(nextClockTick, [this] { onClockTick(); });
}

void
Kernel::onClockTick()
{
    if (!clockRunning)
        return;
    pendingClockInt = true;
    scheduleClockTick();
}

void
Kernel::startClock()
{
    if (clockRunning)
        return;
    clockRunning = true;
    scheduleClockTick();
}

void
Kernel::pushService(ServiceKind kind,
                    std::unique_ptr<InstSource> stream,
                    std::function<void()> on_complete,
                    IoService *io_service)
{
    auto frame = std::make_unique<Frame>();
    frame->src = std::move(stream);
    frame->service = kind;
    frame->onComplete = std::move(on_complete);
    frame->ioService = io_service;
    frame->tag = nextFrameTag++;
    sink.registerBank(frame->tag, &frame->bank);
    stack.push_back(std::move(frame));
}

Kernel::Frame *
Kernel::activeFrame() const
{
    for (std::size_t i = stack.size(); i-- > 0;) {
        Frame *frame = stack[i].get();
        if (!frame->replay.empty() || !frame->endPending)
            return frame;
    }
    return nullptr;
}

void
Kernel::finalizeService(std::size_t index, bool force)
{
    Frame &frame = *stack[index];
    if (!force &&
        (!frame.endPending || !frame.replay.empty() ||
         frame.committed < frame.emitted)) {
        return;
    }
    std::uint64_t cycles =
        frame.bank.get(ExecMode::KernelInst, CounterId::Cycles) +
        frame.bank.get(ExecMode::KernelSync, CounterId::Cycles);
    std::array<double, numComponents> by_component{};
    if (energyFn)
        by_component = energyFn(frame.bank);
    double energy = 0;
    ServiceStats &entry = stats[int(frame.service)];
    for (int c = 0; c < numComponents; ++c) {
        energy += by_component[c];
        entry.componentEnergyJ[c] += by_component[c];
    }
    entry.record(cycles, energy);
    if (frame.onComplete)
        frame.onComplete();

    sink.unregisterBank(frame.tag);
    stack.erase(stack.begin() +
                static_cast<std::ptrdiff_t>(index));
}

void
Kernel::maybeFinalize(std::size_t index)
{
    Frame &frame = *stack[index];
    if (frame.endPending && frame.replay.empty() &&
        frame.committed >= frame.emitted) {
        finalizeService(index);
    }
}

void
Kernel::stashReplay(std::vector<MicroOp> replay)
{
    Frame *active = activeFrame();
    std::deque<MicroOp> &target =
        active ? active->replay : baseReplay;
    // Prepend in order, dropping idle-loop filler.
    for (auto it = replay.rbegin(); it != replay.rend(); ++it) {
        if (it->mode != ExecMode::Idle)
            target.push_front(*it);
    }
}

void
Kernel::requeue(std::vector<MicroOp> replay)
{
    stashReplay(std::move(replay));
}

std::uint32_t
Kernel::privilegedTag() const
{
    if (stack.empty())
        return 0;
    const Frame &top = *stack.back();
    if (top.ioService && top.ioService->waitingForIo())
        return 0;  // blocked on the disk: the idle process runs
    return top.tag;
}

FetchOutcome
Kernel::fetchNext(MicroOp &op)
{
    // Service frames, newest first. Frames that have ended but whose
    // instructions are still in flight are skipped (no drain stall);
    // their accounting closes when their last instruction commits.
    for (std::size_t i = stack.size(); i-- > 0;) {
        Frame &frame = *stack[i];
        if (!frame.replay.empty()) {
            op = frame.replay.front();
            frame.replay.pop_front();
            return FetchOutcome::Op;
        }
        if (frame.endPending)
            continue;
        FetchOutcome outcome = frame.src->next(op);
        switch (outcome) {
          case FetchOutcome::Op:
            op.frameTag = frame.tag;
            ++frame.emitted;
            return FetchOutcome::Op;
          case FetchOutcome::Stall:
            // Blocked on I/O: the scheduler runs the idle process,
            // or halts the core if the halt extension is enabled.
            if (cfg.haltOnIdle)
                return FetchOutcome::Stall;
            return idleStream.next(op);
          case FetchOutcome::End:
            frame.endPending = true;
            maybeFinalize(i);
            // Fall through to the frame below (or the user program).
            i = stack.size();
            continue;
        }
    }

    if (!baseReplay.empty()) {
        op = baseReplay.front();
        baseReplay.pop_front();
        return FetchOutcome::Op;
    }

    if (userProgram && !userDone) {
        FetchOutcome outcome = userProgram->next(op);
        switch (outcome) {
          case FetchOutcome::Op:
            return FetchOutcome::Op;
          case FetchOutcome::Stall:
            if (cfg.haltOnIdle)
                return FetchOutcome::Stall;
            return idleStream.next(op);
          case FetchOutcome::End:
            userDone = true;
            break;
        }
    }
    return FetchOutcome::End;
}

void
Kernel::onCommit(const MicroOp &op)
{
    if (op.frameTag == 0)
        return;
    for (std::size_t i = stack.size(); i-- > 0;) {
        if (stack[i]->tag == op.frameTag) {
            ++stack[i]->committed;
            maybeFinalize(i);
            return;
        }
    }
}

void
Kernel::dataTlbMiss(Addr vaddr, std::uint32_t asid,
                    std::vector<MicroOp> replay)
{
    stashReplay(std::move(replay));

    bool first_touch = !pages.isMapped(vaddr);
    std::uint64_t seed = serviceSeed++;

    // Install the translation now: the faulting instruction can only
    // re-dispatch after the handler stream has been fetched (the
    // handler frame sits above the replay), so the handler's timing
    // is still charged, but the retry is guaranteed to hit.
    pages.map(vaddr);
    tlb.insert(asid, vaddr);

    if (first_touch) {
        // utlb discovers the invalid PTE; vfault validates (on a
        // fraction of touches the fault is resolved inside utlb);
        // demand_zero allocates and zeroes the page. LIFO push order
        // is the reverse of execution order.
        bool with_vfault = rng.chance(cfg.vfaultProb);
        pushService(ServiceKind::DemandZero,
                    makeFixedService(ServiceKind::DemandZero,
                                     cfg.tuning, seed),
                    {});
        if (with_vfault) {
            pushService(ServiceKind::Vfault,
                        makeFixedService(ServiceKind::Vfault,
                                         cfg.tuning, seed + 7),
                        {});
        }
        pushService(ServiceKind::Utlb,
                    makeFixedService(ServiceKind::Utlb, cfg.tuning,
                                     seed + 13),
                    {});
        return;
    }

    bool slow_path = rng.chance(cfg.tlbSlowPathProb);
    ServiceKind kind =
        slow_path ? ServiceKind::TlbMiss : ServiceKind::Utlb;
    pushService(kind, makeFixedService(kind, cfg.tuning, seed), {});
}

void
Kernel::syscall(const MicroOp &op)
{
    std::uint64_t seed = serviceSeed++;
    switch (SyscallId(op.syscallId)) {
      case SyscallId::Read:
      case SyscallId::Write: {
        bool is_write = SyscallId(op.syscallId) == SyscallId::Write;
        auto service = std::make_unique<IoService>(
            *this, ioArgFileId(op.syscallArg),
            ioArgOffset(op.syscallArg), ioArgBytes(op.syscallArg),
            is_write, cfg.tuning, seed);
        IoService *raw = service.get();
        pushService(is_write ? ServiceKind::Write : ServiceKind::Read,
                    std::move(service), {}, raw);
        return;
      }
      case SyscallId::Open: {
        auto seq = std::make_unique<SequenceStream>();
        auto body = makeFixedService(ServiceKind::Open, cfg.tuning,
                                     seed);
        seq->append(std::move(body));
        IoService *raw = nullptr;
        if (rng.chance(cfg.tuning.openMetadataMissProb)) {
            // Cold open: fetch the file's first (metadata) block.
            auto meta = std::make_unique<IoService>(
                *this, ioArgFileId(op.syscallArg), 0, 512, false,
                cfg.tuning, seed + 3);
            raw = meta.get();
            seq->append(std::move(meta));
        }
        pushService(ServiceKind::Open, std::move(seq), {}, raw);
        return;
      }
      case SyscallId::Xstat:
        pushService(ServiceKind::Xstat,
                    makeFixedService(ServiceKind::Xstat, cfg.tuning,
                                     seed),
                    {});
        return;
      case SyscallId::DuPoll:
        pushService(ServiceKind::DuPoll,
                    makeFixedService(ServiceKind::DuPoll, cfg.tuning,
                                     seed),
                    {});
        return;
      case SyscallId::Bsd:
        pushService(ServiceKind::Bsd,
                    makeFixedService(ServiceKind::Bsd, cfg.tuning,
                                     seed),
                    {});
        return;
      case SyscallId::CacheFlush:
        pushService(ServiceKind::CacheFlush,
                    makeFixedService(ServiceKind::CacheFlush,
                                     cfg.tuning, seed),
                    [this] {
                        hierarchy.flushL1(ExecMode::KernelInst);
                    });
        return;
      case SyscallId::PowerRead:
        pollPowerMeter();
        return;
    }
    warn(msg() << "unknown syscall id " << op.syscallId);
}

void
Kernel::pollPowerMeter()
{
    if (meter)
        lastPowerRead = meter->lastReading();
    pushService(ServiceKind::PowerRead,
                makeFixedService(ServiceKind::PowerRead, cfg.tuning,
                                 serviceSeed++),
                {});
}

bool
Kernel::interruptPending() const
{
    return pendingClockInt;
}

void
Kernel::takeInterrupt(std::vector<MicroOp> replay)
{
    if (!pendingClockInt)
        return;
    pendingClockInt = false;
    ++numClockInts;
    stashReplay(std::move(replay));
    pushService(ServiceKind::ClockInt,
                makeFixedService(ServiceKind::ClockInt, cfg.tuning,
                                 serviceSeed++),
                {});
}

void
Kernel::onPipelineEmpty()
{
    // Safety net: with nothing in flight, every ended frame can be
    // closed even if some of its instructions were discarded.
    for (std::size_t i = stack.size(); i-- > 0;) {
        Frame &frame = *stack[i];
        if (frame.endPending && frame.replay.empty())
            finalizeService(i, true);
    }
}

ExecMode
Kernel::currentStreamMode() const
{
    if (const Frame *frame = activeFrame()) {
        if (frame->ioService && frame->ioService->waitingForIo())
            return ExecMode::Idle;
        return ExecMode::KernelInst;
    }
    if (userProgram && !userDone)
        return ExecMode::User;
    return ExecMode::Idle;
}

Tick
Kernel::ticksForEquivSeconds(double seconds) const
{
    double ticks =
        seconds / cfg.timeScale * machine.freqMhz * 1e6;
    return ticks < 1 ? 1 : Tick(ticks);
}

void
Kernel::submitDiskAttempt(std::uint64_t block,
                          std::uint32_t num_blocks,
                          std::function<void()> done, int attempt)
{
    disk.submit(
        block, num_blocks,
        [this, block, num_blocks, done = std::move(done),
         attempt](DiskIoStatus status) mutable {
            if (status == DiskIoStatus::Ok) {
                if (done)
                    done();
                return;
            }
            ++numDiskFaults;
            sink.global().addTo(ExecMode::KernelInst,
                                CounterId::DiskFault, 1);
            if (attempt >= cfg.diskRetry.maxAttempts) {
                ++numDiskGiveUps;
                sink.global().addTo(ExecMode::KernelInst,
                                    CounterId::DiskGiveUp, 1);
                if (!ioFailureInfo.failed) {
                    ioFailureInfo.failed = true;
                    ioFailureInfo.block = block;
                    ioFailureInfo.numBlocks = num_blocks;
                    ioFailureInfo.attempts = attempt;
                    ioFailureInfo.lastStatus = status;
                }
                warn(msg() << "disk driver: "
                           << IoFailure{true, block, num_blocks,
                                        attempt, status}
                                  .describe());
                // The blocked service never resumes; the run loop
                // observes ioFailed() and ends with a structured
                // io-failed result.
                return;
            }
            ++numDiskRetries;
            sink.global().addTo(ExecMode::KernelInst,
                                CounterId::DiskRetry, 1);
            // The recovery handler runs now (sense + error path);
            // the resubmission waits out the exponential backoff.
            pushService(ServiceKind::ErrorRecovery,
                        makeFixedService(ServiceKind::ErrorRecovery,
                                         cfg.tuning, serviceSeed++),
                        {});
            double delay =
                cfg.diskRetry.backoffSeconds *
                std::pow(cfg.diskRetry.backoffMultiplier,
                         attempt - 1);
            queue.scheduleIn(
                ticksForEquivSeconds(delay),
                [this, block, num_blocks, done = std::move(done),
                 attempt]() mutable {
                    submitDiskAttempt(block, num_blocks,
                                      std::move(done), attempt + 1);
                });
        });
}

void
Kernel::requestDiskBlocks(std::uint64_t block,
                          std::uint32_t num_blocks,
                          std::function<void()> done)
{
    submitDiskAttempt(block, num_blocks, std::move(done), 1);
}

bool
Kernel::idleWaiting() const
{
    if (pendingClockInt)
        return false;
    const Frame *frame = activeFrame();
    return frame != nullptr && frame->ioService != nullptr &&
           frame->ioService->waitingForIo();
}

std::uint64_t
Kernel::totalServiceCycles() const
{
    std::uint64_t sum = 0;
    for (const ServiceStats &s : stats)
        sum += s.cycles;
    return sum;
}

void
Kernel::saveState(ChunkWriter &out) const
{
    SW_CHECK(checkpointSafe(),
             "Kernel::saveState with live service frames");
    out.u64(rng.rawState());
    out.u64(serviceSeed);
    out.u32(nextFrameTag);
    out.b(userDone);
    out.u32(userAsid);
    out.b(pendingClockInt);
    out.u64(numClockInts);
    out.b(clockRunning);
    if (clockRunning) {
        out.u64(nextClockTick);
        out.u64(clockEvent);
    }
    for (const ServiceStats &entry : stats)
        entry.saveState(out);
    out.u64(numDiskFaults);
    out.u64(numDiskRetries);
    out.u64(numDiskGiveUps);
    out.b(ioFailureInfo.failed);
    out.u64(ioFailureInfo.block);
    out.u32(ioFailureInfo.numBlocks);
    out.u32(std::uint32_t(ioFailureInfo.attempts));
    out.u8(std::uint8_t(ioFailureInfo.lastStatus));
    out.u64(baseReplay.size());
    for (const MicroOp &op : baseReplay)
        saveMicroOp(out, op);
    fileSystem.saveState(out);
    bufferCache.saveState(out);
    pages.saveState(out);
    idleStream.saveState(out);
    lastPowerRead.saveState(out);
}

void
Kernel::loadState(ChunkReader &in)
{
    SW_CHECK(checkpointSafe(),
             "Kernel::loadState with live service frames");
    rng.setRawState(in.u64());
    serviceSeed = in.u64();
    nextFrameTag = in.u32();
    userDone = in.b();
    userAsid = in.u32();
    pendingClockInt = in.b();
    numClockInts = in.u64();
    clockRunning = in.b();
    if (clockRunning) {
        nextClockTick = in.u64();
        clockEvent = in.u64();
        queue.restoreEvent(nextClockTick, clockEvent,
                           [this] { onClockTick(); });
    }
    for (ServiceStats &entry : stats)
        entry.loadState(in);
    numDiskFaults = in.u64();
    numDiskRetries = in.u64();
    numDiskGiveUps = in.u64();
    ioFailureInfo.failed = in.b();
    ioFailureInfo.block = in.u64();
    ioFailureInfo.numBlocks = in.u32();
    ioFailureInfo.attempts = int(in.u32());
    ioFailureInfo.lastStatus = DiskIoStatus(in.u8());
    baseReplay.clear();
    std::uint64_t replay_count = in.u64();
    for (std::uint64_t i = 0; i < replay_count; ++i)
        baseReplay.push_back(loadMicroOp(in));
    fileSystem.loadState(in);
    bufferCache.loadState(in);
    pages.loadState(in);
    idleStream.loadState(in);
    lastPowerRead.loadState(in);
}

} // namespace softwatt
