/**
 * @file
 * The kernel-visible power meter.
 *
 * The streaming power pass (power/power_calculator.hh) produces one
 * reading per closed sample window; the System publishes the latest
 * one through this interface so the simulated kernel can observe the
 * machine's own power — the capability ROADMAP item 5 calls out as
 * impossible under the batch post-processing design. The kernel
 * reaches it through the PowerRead syscall/service, energy-attributed
 * like any other service, and the feedback policies
 * (os/power_governor.hh) consume the same readings.
 */

#ifndef SOFTWATT_OS_POWER_METER_HH
#define SOFTWATT_OS_POWER_METER_HH

#include <cstdint>

#include "sim/checkpoint.hh"
#include "sim/types.hh"

namespace softwatt
{

/** One sample window's power, as exposed to the kernel. */
struct PowerReading
{
    /** Index of the window in the sample log. */
    std::uint64_t windowIndex = 0;

    Tick startTick = 0;
    Tick endTick = 0;

    /** Average CPU + memory-hierarchy power over the window, W. */
    double cpuMemPowerW = 0;

    /** Average disk power over the window (paper-equivalent), W. */
    double diskPowerW = 0;

    /** Whole-system average power over the window, W. */
    double systemPowerW = 0;

    /** Operating point the window executed at. */
    double freqMhz = 0;
    double vdd = 0;

    /** False until the first window closes. */
    bool valid = false;

    void
    saveState(ChunkWriter &out) const
    {
        out.u64(windowIndex);
        out.u64(startTick);
        out.u64(endTick);
        out.f64(cpuMemPowerW);
        out.f64(diskPowerW);
        out.f64(systemPowerW);
        out.f64(freqMhz);
        out.f64(vdd);
        out.b(valid);
    }

    void
    loadState(ChunkReader &in)
    {
        windowIndex = in.u64();
        startTick = in.u64();
        endTick = in.u64();
        cpuMemPowerW = in.f64();
        diskPowerW = in.f64();
        systemPowerW = in.f64();
        freqMhz = in.f64();
        vdd = in.f64();
        valid = in.b();
    }
};

/**
 * Provider of the last closed window's power reading. Implemented by
 * System, consumed by the kernel's PowerRead service and the
 * window-boundary feedback policies.
 */
class PowerMeter
{
  public:
    virtual ~PowerMeter() = default;

    /** The most recent window's reading (valid=false before any). */
    virtual const PowerReading &lastReading() const = 0;
};

} // namespace softwatt

#endif // SOFTWATT_OS_POWER_METER_HH
