#include "power_governor.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace softwatt
{

DvfsGovernor::DvfsGovernor(double nominal_freq_mhz,
                           double nominal_vdd, double budget_w,
                           double headroom)
    : budget(budget_w), headroom(headroom)
{
    if (!(budget_w > 0)) {
        fatal(msg() << "DvfsGovernor needs a positive power budget "
                    << "(got " << budget_w << " W)");
    }
    if (!(headroom > 0) || headroom >= 1.0) {
        fatal(msg() << "DvfsGovernor headroom must be in (0, 1) "
                    << "(got " << headroom << ")");
    }

    // The dvfs_explorer ladder, expressed as exact fractions of the
    // nominal point so the 200 MHz / 3.3 V machine lands on the
    // historical 200/166/133/100/66 MHz at 3.3/3.0/2.7/2.4/2.1 V.
    struct Rung
    {
        std::uint64_t freqNum;
        std::uint64_t vddNum;
    };
    constexpr Rung rungs[] = {
        {200, 33}, {166, 30}, {133, 27}, {100, 24}, {66, 21},
    };
    for (const Rung &r : rungs) {
        Point p;
        p.freqMhz = nominal_freq_mhz * double(r.freqNum) / 200.0;
        p.vdd = nominal_vdd * double(r.vddNum) / 33.0;
        p.dutyNum = r.freqNum;
        p.dutyDen = 200;
        ladder.push_back(p);
    }
}

bool
DvfsGovernor::observe(const PowerReading &reading)
{
    if (!reading.valid)
        return false;
    int next = idx;
    if (reading.systemPowerW > budget) {
        next = std::min(idx + 1, int(ladder.size()) - 1);
    } else if (reading.systemPowerW < budget * headroom) {
        next = std::max(idx - 1, 0);
    }
    if (next == idx)
        return false;
    if (next > idx)
        ++numStepsDown;
    else
        ++numStepsUp;
    idx = next;
    deepest = std::max(deepest, idx);
    return true;
}

void
DvfsGovernor::saveState(ChunkWriter &out) const
{
    out.u64(std::uint64_t(idx));
    out.u64(std::uint64_t(deepest));
    out.u64(numStepsDown);
    out.u64(numStepsUp);
}

void
DvfsGovernor::loadState(ChunkReader &in)
{
    idx = int(in.u64());
    deepest = int(in.u64());
    numStepsDown = in.u64();
    numStepsUp = in.u64();
    if (idx < 0 || idx >= int(ladder.size())) {
        fatal(msg() << "restored DVFS ladder index " << idx
                    << " is outside the " << ladder.size()
                    << "-rung ladder");
    }
}

AdaptiveSpindownPolicy::AdaptiveSpindownPolicy(
    double initial_threshold_s, double min_s, double max_s,
    double grow, double shrink, int quiet_windows)
    : thresholdS(initial_threshold_s), minS(min_s), maxS(max_s),
      growFactor(grow), shrinkFactor(shrink),
      quietWindows(quiet_windows)
{
    if (!(initial_threshold_s > 0)) {
        fatal(msg() << "adaptive spin-down needs a positive initial "
                    << "threshold (got " << initial_threshold_s
                    << " s)");
    }
    if (!(min_s > 0) || !(max_s >= min_s)) {
        fatal(msg() << "adaptive spin-down clamp range ["
                    << min_s << ", " << max_s << "] is invalid");
    }
    if (!(grow > 1.0) || !(shrink > 0) || !(shrink < 1.0) ||
        quiet_windows < 1) {
        fatal("adaptive spin-down tuning out of range (grow > 1, "
              "0 < shrink < 1, quiet windows >= 1)");
    }
    thresholdS = std::clamp(thresholdS, minS, maxS);
}

bool
AdaptiveSpindownPolicy::observe(std::uint64_t total_spin_ups)
{
    double next = thresholdS;
    if (total_spin_ups > lastSpinUps) {
        // The disk spun up this window: the last spin-down was too
        // eager, back off.
        next = std::min(thresholdS * growFactor, maxS);
        quietStreak = 0;
    } else if (++quietStreak >= quietWindows) {
        next = std::max(thresholdS * shrinkFactor, minS);
        quietStreak = 0;
    }
    lastSpinUps = total_spin_ups;
    if (next == thresholdS)
        return false;
    thresholdS = next;
    ++numAdjustments;
    return true;
}

void
AdaptiveSpindownPolicy::saveState(ChunkWriter &out) const
{
    out.f64(thresholdS);
    out.u64(lastSpinUps);
    out.u64(std::uint64_t(std::int64_t(quietStreak)));
    out.u64(numAdjustments);
}

void
AdaptiveSpindownPolicy::loadState(ChunkReader &in)
{
    thresholdS = in.f64();
    lastSpinUps = in.u64();
    quietStreak = int(std::int64_t(in.u64()));
    numAdjustments = in.u64();
}

} // namespace softwatt
