/**
 * @file
 * The MiniOS kernel: stream multiplexing between user program, kernel
 * services and the idle loop; software TLB-refill and page-fault
 * handling; the syscall layer over the filesystem and disk; periodic
 * clock interrupts; and per-invocation service energy accounting.
 */

#ifndef SOFTWATT_OS_KERNEL_HH
#define SOFTWATT_OS_KERNEL_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/checkpoint.hh"
#include "cpu/kernel_iface.hh"
#include "cpu/stream_gen.hh"
#include "disk/disk.hh"
#include "mem/hierarchy.hh"
#include "mem/page_table.hh"
#include "mem/tlb.hh"
#include "sim/counter_sink.hh"
#include "sim/event_queue.hh"
#include "sim/machine_params.hh"

#include "file_system.hh"
#include "power_meter.hh"
#include "service.hh"
#include "service_streams.hh"

namespace softwatt
{

/**
 * The operating system model.
 *
 * Runs *on* the simulated CPU: every kernel action is an instruction
 * stream executed by the timing model, tagged with its execution mode
 * and its service identity, which is what lets SoftWatt report
 * per-mode and per-service power (Tables 2-5, Figures 6 and 8).
 */
class Kernel : public KernelIface, public IoContext,
               public Checkpointable
{
  public:
    /**
     * Bounded-retry policy of the disk driver. A failed request is
     * retried after an exponentially growing backoff; each retry
     * runs the ErrorRecovery kernel service (instructions executed
     * and energy-attributed like any other service). When the
     * attempt budget is exhausted the driver gives up and records a
     * structured I/O failure instead of aborting the process.
     */
    struct DiskRetryPolicy
    {
        /** Total attempts per request, including the first. */
        int maxAttempts = 6;

        /** Delay before the first retry, paper-equivalent seconds. */
        double backoffSeconds = 0.02;

        /** Multiplier applied to the delay after each failure. */
        double backoffMultiplier = 2.0;

        /** Fatal on out-of-range values. */
        void validate(const char *context) const;
    };

    /** Diagnostics of a request the driver gave up on. */
    struct IoFailure
    {
        bool failed = false;
        std::uint64_t block = 0;
        std::uint32_t numBlocks = 0;
        int attempts = 0;
        DiskIoStatus lastStatus = DiskIoStatus::Ok;

        /** One-line human-readable description. */
        std::string describe() const;
    };

    /** Policy and modelling parameters. */
    struct Params
    {
        /** Fraction of TLB misses taking the slow tlb_miss path. */
        double tlbSlowPathProb = 0.01;

        /** Fraction of first touches raising an explicit vfault. */
        double vfaultProb = 0.40;

        /** Timer-interrupt period, paper-equivalent seconds. */
        double clockTickSeconds = 0.05;

        /** Time compression shared with the disk model. */
        double timeScale = 100.0;

        /** Buffer cache capacity in blocks. */
        std::size_t fileCacheBlocks = 2048;

        /**
         * Extension (paper conclusion): halt the processor instead
         * of busy-waiting in the idle process. Idle periods then
         * consume only clock-base and memory-background power.
         */
        bool haltOnIdle = false;

        std::uint64_t seed = 777;

        ServiceTuning tuning;

        DiskRetryPolicy diskRetry;
    };

    Kernel(EventQueue &queue, Tlb &tlb, CacheHierarchy &hierarchy,
           Disk &disk, const MachineParams &machine,
           const Params &params, CounterSink &sink);

    /** Attach the benchmark's user-mode instruction stream. */
    void setUserProgram(InstSource *program, std::uint32_t asid = 1);

    /**
     * Energy model hook: per-invocation service energy, split by
     * component, computed from the invocation's private counter bank
     * (set by the System to the PowerCalculator's model).
     */
    using EnergyFn =
        std::function<std::array<double, numComponents>(
            const CounterBank &)>;
    void setEnergyFn(EnergyFn fn);

    /**
     * Attach the machine's power meter (nullptr detaches). The
     * PowerRead syscall/service reads through it; without a meter
     * the service still runs but the reading stays invalid.
     */
    void setPowerMeter(const PowerMeter *m) { meter = m; }

    /**
     * Run one power-meter read in the kernel: snapshots the meter's
     * last reading and pushes a PowerRead service frame, so the read
     * is energy-attributed like any other kernel service. Called
     * from the PowerRead syscall and from window-boundary feedback
     * policies (the governor's decision work).
     */
    void pollPowerMeter();

    /** The reading captured by the most recent pollPowerMeter(). */
    const PowerReading &lastPowerReading() const
    {
        return lastPowerRead;
    }

    /** Begin periodic timer interrupts. */
    void startClock();

    // KernelIface.
    FetchOutcome fetchNext(MicroOp &op) override;
    void dataTlbMiss(Addr vaddr, std::uint32_t asid,
                     std::vector<MicroOp> replay) override;
    void syscall(const MicroOp &op) override;
    void onCommit(const MicroOp &op) override;
    bool interruptPending() const override;
    void takeInterrupt(std::vector<MicroOp> replay) override;
    void onPipelineEmpty() override;
    ExecMode currentStreamMode() const override;
    std::uint32_t privilegedTag() const override;

    /** Requeue squashed instructions (idle filler is dropped). */
    void requeue(std::vector<MicroOp> replay);

    // IoContext.
    FileSystem &fs() override { return fileSystem; }
    FileCache &fileCache() override { return bufferCache; }
    void requestDiskBlocks(std::uint64_t block,
                           std::uint32_t num_blocks,
                           std::function<void()> done) override;

    /** Has the benchmark's stream reported End? */
    bool workloadDone() const { return userDone; }

    /**
     * True when the machine is only executing the idle loop while
     * waiting for an external event — the idle fast-forward window.
     */
    bool idleWaiting() const;

    /** Accounting for one service. */
    const ServiceStats &
    serviceStats(ServiceKind kind) const
    {
        return stats[int(kind)];
    }

    /** Sum of invocation cycles across all services. */
    std::uint64_t totalServiceCycles() const;

    PageTable &pageTable() { return pages; }
    const Params &params() const { return cfg; }

    std::uint64_t clockInterrupts() const { return numClockInts; }

    /** Disk faults seen by the driver (failed completions). */
    std::uint64_t diskFaults() const { return numDiskFaults; }

    /** Retries issued after failed completions. */
    std::uint64_t diskRetries() const { return numDiskRetries; }

    /** Requests abandoned after exhausting the attempt budget. */
    std::uint64_t diskGiveUps() const { return numDiskGiveUps; }

    /** True once any request has been abandoned. */
    bool ioFailed() const { return ioFailureInfo.failed; }

    /** Diagnostics of the first abandoned request. */
    const IoFailure &ioFailure() const { return ioFailureInfo; }

    /**
     * True when the kernel can be checkpointed: no service frames on
     * the stack. Frames hold closures (completion callbacks, blocked
     * I/O services, retry backoff timers) that cannot be serialized;
     * between invocations only plain data remains.
     */
    bool checkpointSafe() const { return stack.empty(); }

    // Checkpointable. A running clock tick is re-registered with its
    // original event id during loadState. The user program pointer is
    // not serialized: the caller re-attaches the (restored) workload
    // before loading kernel state.
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    /** One suspended-or-active service invocation. */
    struct Frame
    {
        std::unique_ptr<InstSource> src;
        ServiceKind service = ServiceKind::Utlb;
        CounterBank bank;
        std::deque<MicroOp> replay;
        std::function<void()> onComplete;
        IoService *ioService = nullptr;  ///< For blocking queries.
        bool endPending = false;

        /** Invocation tag stamped on the frame's instructions. */
        std::uint32_t tag = 0;

        /** Instructions produced / retired; equal => can finalize. */
        std::uint64_t emitted = 0;
        std::uint64_t committed = 0;
    };

    EventQueue &queue;
    Tlb &tlb;
    CacheHierarchy &hierarchy;
    Disk &disk;
    MachineParams machine;  // ckpt:derived: fixed at construction
    Params cfg;             // ckpt:derived: fixed at construction
    CounterSink &sink;

    FileSystem fileSystem;
    FileCache bufferCache;
    PageTable pages;
    Random rng;

    // ckpt:derived: re-wired by attachUserProgram() after restore
    InstSource *userProgram = nullptr;
    std::uint32_t userAsid = 1;
    bool userDone = false;

    StreamGen idleStream;

    // ckpt:derived: checkpointSafe() forbids live service frames
    std::vector<std::unique_ptr<Frame>> stack;
    std::deque<MicroOp> baseReplay;

    EnergyFn energyFn;  // ckpt:derived: wired at construction
    std::array<ServiceStats, numServices> stats{};

    /** Machine power meter; not owned, not serialized. */
    const PowerMeter *meter = nullptr;  // ckpt:derived: re-attached

    /** Snapshot taken by the most recent pollPowerMeter(). */
    PowerReading lastPowerRead;

    bool pendingClockInt = false;
    bool clockRunning = false;
    std::uint64_t numClockInts = 0;

    /** Absolute fire tick and id of the pending clock-tick event. */
    Tick nextClockTick = 0;
    EventQueue::EventId clockEvent = 0;
    std::uint64_t serviceSeed = 1;
    std::uint32_t nextFrameTag = 1;

    std::uint64_t numDiskFaults = 0;
    std::uint64_t numDiskRetries = 0;
    std::uint64_t numDiskGiveUps = 0;
    IoFailure ioFailureInfo;

    void pushService(ServiceKind kind,
                     std::unique_ptr<InstSource> stream,
                     std::function<void()> on_complete,
                     IoService *io_service = nullptr);

    /**
     * Submit @p attempt of a request to the disk; on failure, run
     * the ErrorRecovery service and schedule the next attempt after
     * the policy's backoff, or record the give-up.
     */
    void submitDiskAttempt(std::uint64_t block,
                           std::uint32_t num_blocks,
                           std::function<void()> done, int attempt);

    /** Paper-equivalent seconds → event-queue ticks (min 1). */
    Tick ticksForEquivSeconds(double seconds) const;

    /** Record stats for a completed service and erase its frame. */
    void finalizeService(std::size_t index, bool force = false);

    /** Finalize if the frame has ended and all its ops committed. */
    void maybeFinalize(std::size_t index);

    /** First frame (from the top) still producing instructions. */
    Frame *activeFrame() const;

    /** Attach squashed ops (minus idle) for replay at this level. */
    void stashReplay(std::vector<MicroOp> replay);

    void scheduleClockTick();

    /** Body of the periodic timer event (named so a restored
     *  checkpoint can re-register the event). */
    void onClockTick();
};

} // namespace softwatt

#endif // SOFTWATT_OS_KERNEL_HH
