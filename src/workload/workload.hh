/**
 * @file
 * Synthetic SPEC JVM98 workload equivalents.
 *
 * Each benchmark is an instruction stream with the phase structure of
 * a JIT-mode JVM run: class loading from disk (open/read syscalls,
 * cold buffer cache), JIT warm-up (compute bursts punctuated by
 * cacheflush), then the benchmark's main computation with periodic
 * garbage-collection bursts (pointer-chasing over fresh pages, the
 * source of demand_zero and TLB-refill activity) and the benchmark's
 * characteristic syscall profile.
 *
 * The per-benchmark parameters are calibrated so the *measured*
 * behaviour (kernel cycle share, cache references per cycle, service
 * mix) lands in the ranges of the paper's Tables 2-4.
 */

#ifndef SOFTWATT_WORKLOAD_WORKLOAD_HH
#define SOFTWATT_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"
#include "cpu/inst.hh"
#include "cpu/stream_gen.hh"
#include "os/file_system.hh"

namespace softwatt
{

/** Syscall issue rates during the main compute phase. */
struct SyscallProfile
{
    double readsPerMInst = 2.0;
    std::uint32_t readBytesMin = 6144;
    std::uint32_t readBytesMax = 10240;
    double writesPerMInst = 0.3;
    std::uint32_t writeBytes = 8192;
    double xstatPerMInst = 0.05;
    double bsdPerMInst = 0.0;
    double duPollPerMInst = 0.0;
    double openPerMInst = 0.02;

    /**
     * PowerRead syscalls per million instructions: the workload
     * polling the kernel's power meter. Off by default; when 0 the
     * rate draws no RNG, so existing benchmark streams are
     * bit-identical to before the knob existed.
     */
    double powerPollPerMInst = 0.0;
};

/** Complete description of one synthetic benchmark. */
struct WorkloadSpec
{
    std::string name;

    /** Main-phase user instructions. */
    std::uint64_t mainInsts = 10'000'000;

    /** Main-phase stream shape (user mode). */
    StreamSpec mainSpec;

    // Class loading.
    int numClassFiles = 8;
    std::uint64_t classFileBytes = 192 * 1024;
    std::uint64_t loadComputeOps = 40'000;
    std::uint32_t loadReadChunk = 8 * 1024;

    // JIT warm-up.
    int jitFlushes = 12;
    std::uint64_t jitComputeOps = 60'000;

    // Garbage collection.
    std::uint64_t gcPeriodInsts = 1'500'000;
    std::uint64_t gcBurstInsts = 120'000;

    SyscallProfile sys;
    std::uint64_t seed = 42;

    /**
     * Points of the main phase (as fractions of mainInsts) where the
     * benchmark streams a never-cached region of its data file from
     * disk — the inter-access gap structure that drives the
     * spin-down results of Figure 9.
     */
    std::vector<double> coldBurstFracs;

    /** Size of the benchmark's on-disk data file. */
    std::uint64_t dataFileBytes = 8 * 1024 * 1024;
};

/** A virtual address range the OS pre-maps for a process. */
struct AddrRange
{
    Addr base = 0;
    std::uint64_t bytes = 0;
};

/**
 * A runnable benchmark: the InstSource fed to the kernel as the user
 * program.
 */
class Workload : public InstSource, public Checkpointable
{
  public:
    explicit Workload(const WorkloadSpec &spec);

    /**
     * Create the benchmark's class files in the filesystem. Must be
     * called once before the stream is executed.
     */
    void registerFiles(FileSystem &fs);

    FetchOutcome next(MicroOp &op) override;

    const WorkloadSpec &spec() const { return wlSpec; }

    /** User instructions emitted so far (all phases). */
    std::uint64_t emitted() const { return numEmitted; }

    bool done() const { return phase == Phase::Done; }

    /**
     * Heap ranges the OS pre-maps at exec time (the steady-state
     * heap); GC allocation pages are intentionally excluded so they
     * first-touch through vfault/demand_zero.
     */
    std::vector<AddrRange> premapRanges() const;

    // Checkpointable. File ids are not serialized: they are assigned
    // deterministically by registerFiles(), which must have run (on
    // the same spec) before loadState(). The current stream segment
    // is saved with a type tag — the workload only ever runs
    // BoundedStreams, alone or inside a SequenceStream.
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    enum class Phase
    {
        Load,
        Jit,
        Main,
        Done,
    };

    WorkloadSpec wlSpec;
    Random rng;
    std::vector<std::uint32_t> fileIds;
    bool filesRegistered = false;

    Phase phase = Phase::Load;
    std::unique_ptr<InstSource> segment;
    std::uint64_t numEmitted = 0;

    // Load-phase cursor.
    int loadFileIndex = 0;
    std::uint64_t loadOffset = 0;
    bool loadOpened = false;

    // JIT cursor.
    int jitDone = 0;

    // Main cursor.
    std::uint64_t mainEmitted = 0;
    std::uint64_t sinceGc = 0;

    // GC allocation frontier (fresh, unmapped pages).
    Addr gcFreshBase = 0x48000000;

    // Cold-burst cursor.
    std::size_t nextColdBurst = 0;
    std::uint32_t coldFileId = 0;
    std::uint64_t coldOffset = 0;

    // Pending syscalls to emit before more compute (FIFO).
    std::deque<MicroOp> pendingSyscalls;

    /** Build a user-mode syscall MicroOp. */
    MicroOp makeSyscall(std::uint16_t id, std::uint64_t arg) const;

    /** Queue the syscalls that follow a completed compute chunk. */
    void queueMainSyscalls(std::uint64_t chunk_insts);

    /** Advance the phase machine; builds the next segment/syscall. */
    bool advance(MicroOp &op);

    StreamSpec gcSpec() const;
};

/** The six benchmarks of the paper's characterization. */
enum class Benchmark
{
    Compress,
    Jess,
    Db,
    Javac,
    Mtrt,
    Jack,
};

/** All benchmarks in the paper's reporting order. */
constexpr Benchmark allBenchmarks[6] = {
    Benchmark::Compress, Benchmark::Jess, Benchmark::Db,
    Benchmark::Javac, Benchmark::Mtrt, Benchmark::Jack,
};

/** Name as it appears in the paper's tables. */
const char *benchmarkName(Benchmark b);

/**
 * Benchmark with the given table name ("jess", "db", ...); fatal()
 * on an unknown name, listing the valid ones.
 */
Benchmark benchmarkByName(const std::string &name);

/** Calibrated spec for one benchmark. */
WorkloadSpec benchmarkSpec(Benchmark b);

/**
 * Scale a spec's instruction counts by @p factor (used by tests and
 * quick examples to run shortened benchmarks).
 */
WorkloadSpec scaleWorkload(WorkloadSpec spec, double factor);

} // namespace softwatt

#endif // SOFTWATT_WORKLOAD_WORKLOAD_HH
