#include "workload.hh"

#include "os/service_streams.hh"
#include "os/syscalls.hh"
#include "sim/check.hh"
#include "sim/logging.hh"

namespace softwatt
{

namespace
{

/** Common shape of JIT-compiled user code. */
StreamSpec
userBase()
{
    StreamSpec s;
    s.mode = ExecMode::User;
    s.kernelMapped = false;
    s.asid = 1;
    s.fracLoad = 0.24;
    s.fracStore = 0.10;
    s.fracBranch = 0.12;
    s.fracFp = 0.02;
    s.fracNop = 0.10;
    s.codeBase = 0x10000000;
    s.codeFootprint = 24 * 1024;
    s.dataBase = 0x40000000;
    s.dataFootprint = 32 * 1024 * 1024;
    s.hotFootprint = 24 * 1024;
    s.coldAccessProb = 0.05;
    s.spatialLocality = 0.85;
    s.depProb = 0.30;
    s.depWindow = 4;
    s.predictability = 0.88;
    s.takenProb = 0.6;
    s.callFraction = 0.06;
    return s;
}

} // namespace

const char *
benchmarkName(Benchmark b)
{
    switch (b) {
      case Benchmark::Compress: return "compress";
      case Benchmark::Jess: return "jess";
      case Benchmark::Db: return "db";
      case Benchmark::Javac: return "javac";
      case Benchmark::Mtrt: return "mtrt";
      case Benchmark::Jack: return "jack";
    }
    panic("benchmarkName: invalid benchmark");
}

Benchmark
benchmarkByName(const std::string &name)
{
    for (Benchmark b : allBenchmarks) {
        if (name == benchmarkName(b))
            return b;
    }
    std::string known;
    for (Benchmark b : allBenchmarks) {
        if (!known.empty())
            known += ", ";
        known += benchmarkName(b);
    }
    fatal(msg() << "unknown benchmark '" << name << "' (expected "
                << known << ")");
}

WorkloadSpec
benchmarkSpec(Benchmark b)
{
    WorkloadSpec w;
    w.name = benchmarkName(b);
    w.mainSpec = userBase();

    switch (b) {
      case Benchmark::Compress:
        // Long-running stream compressor: sequential data, little
        // OS interaction, two cold sweeps over the input file.
        w.mainInsts = 22'000'000;
        w.mainSpec.fracLoad = 0.26;
        w.mainSpec.fracStore = 0.14;
        w.mainSpec.fracNop = 0.06;
        w.mainSpec.spatialLocality = 0.92;
        w.mainSpec.hotFootprint = 32 * 1024;
        w.mainSpec.coldAccessProb = 0.07;
        w.numClassFiles = 4;
        w.classFileBytes = 384 * 1024;
        w.sys.readsPerMInst = 1.0;
        w.sys.readBytesMin = 8 * 1024;
        w.sys.readBytesMax = 16 * 1024;
        w.sys.writesPerMInst = 0.15;
        w.coldBurstFracs = {0.35, 0.75};
        w.seed = 1001;
        break;
      case Benchmark::Jess:
        // Expert system: rule matching, OS-heavy, short run.
        w.mainInsts = 6'000'000;
        w.mainSpec.coldAccessProb = 0.090;
        w.mainSpec.spatialLocality = 0.75;
        w.numClassFiles = 8;
        w.classFileBytes = 160 * 1024;
        w.sys.readsPerMInst = 12.0;
        w.sys.bsdPerMInst = 15.0;
        w.seed = 1002;
        break;
      case Benchmark::Db:
        // In-memory database: scattered index lookups, du_poll.
        w.mainInsts = 6'000'000;
        w.mainSpec.fracLoad = 0.28;
        w.mainSpec.fracBranch = 0.14;
        w.mainSpec.fracNop = 0.04;
        w.mainSpec.spatialLocality = 0.80;
        w.mainSpec.depProb = 0.25;
        w.mainSpec.coldAccessProb = 0.090;
        w.numClassFiles = 6;
        w.classFileBytes = 160 * 1024;
        w.sys.readsPerMInst = 5.0;
        w.sys.writesPerMInst = 0.6;
        w.sys.duPollPerMInst = 3.4;
        w.seed = 1003;
        break;
      case Benchmark::Javac:
        // Compiler: big code footprint, allocation heavy.
        w.mainInsts = 13'000'000;
        w.mainSpec.fracBranch = 0.15;
        w.mainSpec.fracNop = 0.07;
        w.mainSpec.coldAccessProb = 0.100;
        w.numClassFiles = 10;
        w.classFileBytes = 128 * 1024;
        w.gcPeriodInsts = 1'000'000;
        w.sys.readsPerMInst = 2.4;
        w.sys.xstatPerMInst = 0.05;
        w.coldBurstFracs = {0.40, 0.80};
        w.seed = 1004;
        break;
      case Benchmark::Mtrt:
        // Multithreaded raytracer: FP heavy, two long quiet gaps
        // (both wider than the 4 s spin-down threshold).
        w.mainInsts = 22'000'000;
        w.mainSpec.fracFp = 0.14;
        w.mainSpec.fracLoad = 0.26;
        w.mainSpec.fracNop = 0.02;
        w.mainSpec.coldAccessProb = 0.056;
        w.numClassFiles = 6;
        w.classFileBytes = 128 * 1024;
        w.sys.readsPerMInst = 1.4;
        w.coldBurstFracs = {0.50, 0.995};
        w.seed = 1005;
        break;
      case Benchmark::Jack:
        // Parser generator: very OS-heavy, frequent small I/O.
        w.mainInsts = 24'000'000;
        w.mainSpec.codeFootprint = 28 * 1024;
        w.mainSpec.fracBranch = 0.14;
        w.mainSpec.fracNop = 0.08;
        w.mainSpec.coldAccessProb = 0.096;
        w.numClassFiles = 8;
        w.classFileBytes = 160 * 1024;
        w.sys.readsPerMInst = 8.3;
        w.sys.bsdPerMInst = 14.3;
        w.sys.writesPerMInst = 0.2;
        w.coldBurstFracs = {0.30, 0.90};
        w.seed = 1006;
        break;
    }
    return w;
}

WorkloadSpec
scaleWorkload(WorkloadSpec spec, double factor)
{
    auto scale = [factor](std::uint64_t v) {
        std::uint64_t s = std::uint64_t(double(v) * factor);
        return s > 0 ? s : 1;
    };
    spec.mainInsts = scale(spec.mainInsts);
    spec.loadComputeOps = scale(spec.loadComputeOps);
    spec.jitComputeOps = scale(spec.jitComputeOps);
    spec.gcPeriodInsts = scale(spec.gcPeriodInsts);
    spec.gcBurstInsts = scale(spec.gcBurstInsts);
    spec.classFileBytes = scale(spec.classFileBytes);
    if (spec.classFileBytes < 4096)
        spec.classFileBytes = 4096;
    return spec;
}

Workload::Workload(const WorkloadSpec &spec)
    : wlSpec(spec), rng(spec.seed)
{
}

void
Workload::registerFiles(FileSystem &fs)
{
    for (int i = 0; i < wlSpec.numClassFiles; ++i)
        fileIds.push_back(fs.createFile(wlSpec.classFileBytes));
    coldFileId = fs.createFile(wlSpec.dataFileBytes);
    filesRegistered = true;
}

std::vector<AddrRange>
Workload::premapRanges() const
{
    // The steady-state heap (hot set and the cold sweep region) is
    // pre-mapped; TLB misses on it are pure utlb refills. The GC
    // allocation frontier is left unmapped.
    return {AddrRange{wlSpec.mainSpec.dataBase,
                      wlSpec.mainSpec.dataFootprint}};
}

MicroOp
Workload::makeSyscall(std::uint16_t id, std::uint64_t arg) const
{
    MicroOp op;
    op.pc = wlSpec.mainSpec.codeBase + 0x40;
    op.cls = InstClass::Syscall;
    op.mode = ExecMode::User;
    op.asid = wlSpec.mainSpec.asid;
    op.syscallId = id;
    op.syscallArg = arg;
    return op;
}

StreamSpec
Workload::gcSpec() const
{
    StreamSpec s = wlSpec.mainSpec;
    // Pointer chasing across the heap: poor locality, cold pages.
    s.fracLoad = 0.36;
    s.fracStore = 0.14;
    s.fracBranch = 0.14;
    s.fracFp = 0;
    s.spatialLocality = 0.30;
    s.coldAccessProb = wlSpec.mainSpec.coldAccessProb * 1.5;
    if (s.coldAccessProb > 0.3)
        s.coldAccessProb = 0.3;
    s.depProb = 0.55;
    s.depWindow = 2;
    return s;
}

void
Workload::queueMainSyscalls(std::uint64_t chunk_insts)
{
    const SyscallProfile &sys = wlSpec.sys;
    double m_insts = double(chunk_insts) / 1e6;

    auto count = [&](double per_m_inst) {
        double expected = per_m_inst * m_insts;
        std::uint64_t n = std::uint64_t(expected);
        if (rng.chance(expected - double(n)))
            ++n;
        return n;
    };

    auto pick_file = [&]() -> std::uint32_t {
        return fileIds[rng.below(fileIds.size())];
    };

    for (std::uint64_t i = 0; i < count(sys.readsPerMInst); ++i) {
        std::uint32_t bytes = std::uint32_t(
            rng.range(sys.readBytesMin, sys.readBytesMax));
        std::uint64_t offset = rng.below(wlSpec.classFileBytes);
        pendingSyscalls.push_back(
            makeSyscall(std::uint16_t(SyscallId::Read),
                        encodeIoArg(pick_file(), offset, bytes)));
    }
    for (std::uint64_t i = 0; i < count(sys.writesPerMInst); ++i) {
        std::uint64_t offset = rng.below(wlSpec.classFileBytes);
        pendingSyscalls.push_back(
            makeSyscall(std::uint16_t(SyscallId::Write),
                        encodeIoArg(pick_file(), offset,
                                    sys.writeBytes)));
    }
    for (std::uint64_t i = 0; i < count(sys.xstatPerMInst); ++i) {
        pendingSyscalls.push_back(
            makeSyscall(std::uint16_t(SyscallId::Xstat), 0));
    }
    for (std::uint64_t i = 0; i < count(sys.bsdPerMInst); ++i) {
        pendingSyscalls.push_back(
            makeSyscall(std::uint16_t(SyscallId::Bsd), 0));
    }
    for (std::uint64_t i = 0; i < count(sys.duPollPerMInst); ++i) {
        pendingSyscalls.push_back(
            makeSyscall(std::uint16_t(SyscallId::DuPoll), 0));
    }
    for (std::uint64_t i = 0; i < count(sys.openPerMInst); ++i) {
        pendingSyscalls.push_back(
            makeSyscall(std::uint16_t(SyscallId::Open),
                        encodeIoArg(pick_file(), 0, 0)));
    }
    if (sys.powerPollPerMInst > 0) {
        // Guarded so a zero rate draws no RNG: pre-existing
        // benchmark streams stay bit-identical.
        for (std::uint64_t i = 0;
             i < count(sys.powerPollPerMInst); ++i) {
            pendingSyscalls.push_back(makeSyscall(
                std::uint16_t(SyscallId::PowerRead), 0));
        }
    }
}

bool
Workload::advance(MicroOp &op)
{
    if (!filesRegistered)
        fatal("workload files were never registered");

    switch (phase) {
      case Phase::Load: {
        if (loadFileIndex >= int(fileIds.size())) {
            phase = Phase::Jit;
            return advance(op);
        }
        if (!loadOpened) {
            loadOpened = true;
            op = makeSyscall(
                std::uint16_t(SyscallId::Open),
                encodeIoArg(fileIds[loadFileIndex], 0, 0));
            return true;
        }
        if (loadOffset < wlSpec.classFileBytes) {
            std::uint32_t chunk = wlSpec.loadReadChunk;
            op = makeSyscall(
                std::uint16_t(SyscallId::Read),
                encodeIoArg(fileIds[loadFileIndex], loadOffset,
                            chunk));
            loadOffset += chunk;
            return true;
        }
        // File loaded: run linker/verifier compute, then next file.
        ++loadFileIndex;
        loadOffset = 0;
        loadOpened = false;
        StreamSpec load_spec = wlSpec.mainSpec;
        load_spec.coldAccessProb = 0;  // touches the warm heap only
        segment = std::make_unique<BoundedStream>(
            load_spec, wlSpec.seed + 100 + loadFileIndex,
            wlSpec.loadComputeOps);
        return false;
      }
      case Phase::Jit: {
        if (jitDone >= wlSpec.jitFlushes) {
            phase = Phase::Main;
            return advance(op);
        }
        if (jitDone > 0 && (jitDone % 2) == 1) {
            // The JIT emitted fresh code: flush the I-cache.
            ++jitDone;
            op = makeSyscall(std::uint16_t(SyscallId::CacheFlush), 0);
            return true;
        }
        ++jitDone;
        StreamSpec jit_spec = wlSpec.mainSpec;
        jit_spec.coldAccessProb = 0;
        jit_spec.fracStore = 0.18;  // emitting code
        segment = std::make_unique<BoundedStream>(
            jit_spec, wlSpec.seed + 200 + jitDone,
            wlSpec.jitComputeOps);
        return false;
      }
      case Phase::Main: {
        if (mainEmitted >= wlSpec.mainInsts) {
            phase = Phase::Done;
            return false;
        }
        if (sinceGc >= wlSpec.gcPeriodInsts) {
            sinceGc = 0;
            // GC: sweep the heap, then touch fresh allocation pages.
            auto seq = std::make_unique<SequenceStream>();
            seq->append(std::make_unique<BoundedStream>(
                gcSpec(), wlSpec.seed + 300 + int(mainEmitted / 1000),
                wlSpec.gcBurstInsts));
            StreamSpec alloc = wlSpec.mainSpec;
            alloc.dataBase = gcFreshBase;
            alloc.dataFootprint = 16 * 1024;
            alloc.hotFootprint = 16 * 1024;
            alloc.coldAccessProb = 0;
            alloc.fracStore = 0.30;
            alloc.spatialLocality = 0.95;
            gcFreshBase += 16 * 1024;
            seq->append(std::make_unique<BoundedStream>(
                alloc, wlSpec.seed + 301 + int(mainEmitted / 1000),
                wlSpec.gcBurstInsts / 8));
            segment = std::move(seq);
            mainEmitted += wlSpec.gcBurstInsts;
            return false;
        }

        // Cold I/O bursts at the configured points of the run.
        double frac = double(mainEmitted) / double(wlSpec.mainInsts);
        if (nextColdBurst < wlSpec.coldBurstFracs.size() &&
            frac >= wlSpec.coldBurstFracs[nextColdBurst]) {
            ++nextColdBurst;
            // Stream a fresh, never-cached region of the data file.
            std::uint32_t burst_bytes = 128 * 1024;
            std::uint32_t chunk = 8 * 1024;
            for (std::uint32_t off = 0; off < burst_bytes;
                 off += chunk) {
                pendingSyscalls.push_back(makeSyscall(
                    std::uint16_t(SyscallId::Read),
                    encodeIoArg(coldFileId, coldOffset + off,
                                chunk)));
            }
            coldOffset += burst_bytes;
        }

        std::uint64_t chunk = 200'000;
        std::uint64_t remaining = wlSpec.mainInsts - mainEmitted;
        if (chunk > remaining)
            chunk = remaining;
        std::uint64_t to_gc = wlSpec.gcPeriodInsts - sinceGc;
        if (chunk > to_gc)
            chunk = to_gc;
        segment = std::make_unique<BoundedStream>(
            wlSpec.mainSpec, wlSpec.seed + 400 + int(mainEmitted),
            chunk);
        mainEmitted += chunk;
        sinceGc += chunk;
        queueMainSyscalls(chunk);
        return false;
      }
      case Phase::Done:
        return false;
    }
    return false;
}

namespace
{

// Segment type tags in a workload chunk.
constexpr std::uint8_t segmentNone = 0;
constexpr std::uint8_t segmentBounded = 1;
constexpr std::uint8_t segmentSequence = 2;

/** A BoundedStream shell for loadState to fill. */
std::unique_ptr<BoundedStream>
emptyBoundedStream()
{
    return std::make_unique<BoundedStream>(StreamSpec{}, 0, 0);
}

} // namespace

void
Workload::saveState(ChunkWriter &out) const
{
    out.u64(rng.rawState());
    out.u8(std::uint8_t(phase));
    out.u64(numEmitted);
    out.u32(std::uint32_t(loadFileIndex));
    out.u64(loadOffset);
    out.b(loadOpened);
    out.u32(std::uint32_t(jitDone));
    out.u64(mainEmitted);
    out.u64(sinceGc);
    out.u64(gcFreshBase);
    out.u64(nextColdBurst);
    out.u64(coldOffset);
    out.u64(pendingSyscalls.size());
    for (const MicroOp &op : pendingSyscalls)
        saveMicroOp(out, op);

    if (!segment) {
        out.u8(segmentNone);
        return;
    }
    if (auto *bounded =
            dynamic_cast<const BoundedStream *>(segment.get())) {
        out.u8(segmentBounded);
        bounded->saveState(out);
        return;
    }
    auto *seq = dynamic_cast<const SequenceStream *>(segment.get());
    SW_CHECK(seq != nullptr,
             "workload segment is neither bounded nor a sequence");
    out.u8(segmentSequence);
    out.u64(seq->partCount());
    out.u64(seq->partIndex());
    for (std::size_t i = 0; i < seq->partCount(); ++i) {
        auto *part =
            dynamic_cast<const BoundedStream *>(&seq->part(i));
        SW_CHECK(part != nullptr,
                 "workload sequence part is not a bounded stream");
        part->saveState(out);
    }
}

void
Workload::loadState(ChunkReader &in)
{
    SW_CHECK(filesRegistered,
             "Workload::loadState before registerFiles()");
    rng.setRawState(in.u64());
    phase = Phase(in.u8());
    numEmitted = in.u64();
    loadFileIndex = int(in.u32());
    loadOffset = in.u64();
    loadOpened = in.b();
    jitDone = int(in.u32());
    mainEmitted = in.u64();
    sinceGc = in.u64();
    gcFreshBase = in.u64();
    nextColdBurst = std::size_t(in.u64());
    coldOffset = in.u64();
    pendingSyscalls.clear();
    std::uint64_t pending_count = in.u64();
    for (std::uint64_t i = 0; i < pending_count; ++i)
        pendingSyscalls.push_back(loadMicroOp(in));

    std::uint8_t tag = in.u8();
    if (tag == segmentNone) {
        segment.reset();
    } else if (tag == segmentBounded) {
        auto bounded = emptyBoundedStream();
        bounded->loadState(in);
        segment = std::move(bounded);
    } else if (tag == segmentSequence) {
        auto seq = std::make_unique<SequenceStream>();
        std::uint64_t part_count = in.u64();
        std::uint64_t part_index = in.u64();
        for (std::uint64_t i = 0; i < part_count; ++i) {
            auto part = emptyBoundedStream();
            part->loadState(in);
            seq->append(std::move(part));
        }
        seq->setPartIndex(std::size_t(part_index));
        segment = std::move(seq);
    } else {
        throw CheckpointError(
            msg() << "workload chunk has unknown segment tag "
                  << int(tag));
    }
}

FetchOutcome
Workload::next(MicroOp &op)
{
    while (true) {
        if (!pendingSyscalls.empty()) {
            op = pendingSyscalls.front();
            pendingSyscalls.pop_front();
            ++numEmitted;
            return FetchOutcome::Op;
        }
        if (segment) {
            FetchOutcome outcome = segment->next(op);
            if (outcome == FetchOutcome::Op) {
                ++numEmitted;
                return FetchOutcome::Op;
            }
            segment.reset();
            continue;
        }
        if (phase == Phase::Done)
            return FetchOutcome::End;
        if (advance(op)) {
            ++numEmitted;
            return FetchOutcome::Op;
        }
        if (phase == Phase::Done)
            return FetchOutcome::End;
    }
}

} // namespace softwatt
