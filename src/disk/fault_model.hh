/**
 * @file
 * Deterministic disk fault injection.
 *
 * The reproduction's disk only ever succeeded, so every run exercised
 * the happy path alone. Real drives retry transient media errors,
 * re-seek after servo errors, and occasionally fail to reach speed on
 * spin-up; the energy of that recovery (extra SEEK/ACTIVE residency,
 * repeated spin-up attempts, kernel handler cycles) is exactly the
 * kind of OS-visible cost SoftWatt exists to attribute. The fault
 * model is a seeded, replayable decision stream: given the same
 * configuration and seed, a run injects the same faults at the same
 * requests, so fault experiments are as reproducible as fault-free
 * ones.
 */

#ifndef SOFTWATT_DISK_FAULT_MODEL_HH
#define SOFTWATT_DISK_FAULT_MODEL_HH

#include <cstdint>
#include <limits>

#include "sim/random.hh"

namespace softwatt
{

class ChunkWriter;
class ChunkReader;

/** Completion status of one disk request. */
enum class DiskIoStatus : std::uint8_t
{
    Ok = 0,
    TransientError,  ///< Media/transfer error after the data phase.
    SeekError,       ///< Servo error: the seek did not land.
    SpinupFailure,   ///< The platters failed to reach speed.
};

/** Display name of a request status. */
const char *diskIoStatusName(DiskIoStatus status);

/**
 * Fault-injection configuration. Rates are per-opportunity
 * probabilities in [0, 1]: one transient draw per transfer, one seek
 * draw per seek, one spin-up draw per spin-up attempt. Faults are
 * only injected inside the [windowStartSeconds, windowEndSeconds)
 * paper-equivalent window, so a fault burst can be placed in the
 * middle of an otherwise healthy run.
 */
struct DiskFaultConfig
{
    bool enabled = false;
    double transientErrorRate = 0.0;
    double seekErrorRate = 0.0;
    double spinupFailureRate = 0.0;
    double windowStartSeconds = 0.0;
    double windowEndSeconds =
        std::numeric_limits<double>::infinity();
    std::uint64_t seed = 0xfa17ed;

    /** True if any fault can ever fire. */
    bool
    active() const
    {
        return enabled && (transientErrorRate > 0 ||
                           seekErrorRate > 0 ||
                           spinupFailureRate > 0);
    }

    /**
     * Fatal on out-of-range values (rates outside [0,1], inverted
     * window). @p context names the config source in the message.
     */
    void validate(const char *context) const;
};

/**
 * The seeded decision stream plus injection bookkeeping.
 *
 * Each query advances a private RNG only when its fault class is
 * live, so disabling one fault class does not shift the decisions of
 * another run's classes relative to an enabled-but-zero-rate run.
 */
class DiskFaultModel
{
  public:
    explicit DiskFaultModel(const DiskFaultConfig &config);

    /** Should this transfer fail with a transient error? */
    bool injectTransientError(double now_equiv_seconds);

    /** Should this seek fail with a servo error? */
    bool injectSeekError(double now_equiv_seconds);

    /** Should this spin-up attempt fail? */
    bool injectSpinupFailure(double now_equiv_seconds);

    const DiskFaultConfig &config() const { return cfg; }

    std::uint64_t transientErrors() const { return numTransient; }
    std::uint64_t seekErrors() const { return numSeek; }
    std::uint64_t spinupFailures() const { return numSpinup; }
    std::uint64_t totalInjected() const
    {
        return numTransient + numSeek + numSpinup;
    }

    /** Checkpointing: decision-stream RNG plus counters. */
    void saveState(ChunkWriter &out) const;
    void loadState(ChunkReader &in);

  private:
    DiskFaultConfig cfg;  // ckpt:derived: fixed at construction
    Random rng;
    std::uint64_t numTransient = 0;
    std::uint64_t numSeek = 0;
    std::uint64_t numSpinup = 0;

    bool draw(double rate, double now_equiv_seconds,
              std::uint64_t &counter);
};

} // namespace softwatt

#endif // SOFTWATT_DISK_FAULT_MODEL_HH
