#include "fault_model.hh"

#include "sim/checkpoint.hh"

#include "sim/logging.hh"

namespace softwatt
{

const char *
diskIoStatusName(DiskIoStatus status)
{
    switch (status) {
      case DiskIoStatus::Ok: return "ok";
      case DiskIoStatus::TransientError: return "transient-error";
      case DiskIoStatus::SeekError: return "seek-error";
      case DiskIoStatus::SpinupFailure: return "spinup-failure";
    }
    panic("diskIoStatusName: invalid status");
}

void
DiskFaultConfig::validate(const char *context) const
{
    auto check_rate = [&](double rate, const char *name) {
        if (rate < 0.0 || rate > 1.0) {
            fatal(msg() << context << ": " << name << " must be in "
                        << "[0, 1] (got " << rate
                        << "); it is a per-opportunity probability");
        }
    };
    check_rate(transientErrorRate, "transient error rate");
    check_rate(seekErrorRate, "seek error rate");
    check_rate(spinupFailureRate, "spin-up failure rate");
    if (windowStartSeconds < 0) {
        fatal(msg() << context << ": fault window start must be >= 0 "
                    << "(got " << windowStartSeconds << ")");
    }
    if (windowEndSeconds <= windowStartSeconds) {
        fatal(msg() << context << ": fault window end ("
                    << windowEndSeconds
                    << ") must be after its start ("
                    << windowStartSeconds
                    << "); omit the end for an unbounded window");
    }
}

DiskFaultModel::DiskFaultModel(const DiskFaultConfig &config)
    : cfg(config), rng(config.seed)
{
}

bool
DiskFaultModel::draw(double rate, double now_equiv_seconds,
                     std::uint64_t &counter)
{
    if (!cfg.enabled || rate <= 0)
        return false;
    if (now_equiv_seconds < cfg.windowStartSeconds ||
        now_equiv_seconds >= cfg.windowEndSeconds) {
        return false;
    }
    if (!rng.chance(rate))
        return false;
    ++counter;
    return true;
}

bool
DiskFaultModel::injectTransientError(double now_equiv_seconds)
{
    return draw(cfg.transientErrorRate, now_equiv_seconds,
                numTransient);
}

bool
DiskFaultModel::injectSeekError(double now_equiv_seconds)
{
    return draw(cfg.seekErrorRate, now_equiv_seconds, numSeek);
}

bool
DiskFaultModel::injectSpinupFailure(double now_equiv_seconds)
{
    return draw(cfg.spinupFailureRate, now_equiv_seconds, numSpinup);
}

void
DiskFaultModel::saveState(ChunkWriter &out) const
{
    out.u64(rng.rawState());
    out.u64(numTransient);
    out.u64(numSeek);
    out.u64(numSpinup);
}

void
DiskFaultModel::loadState(ChunkReader &in)
{
    rng.setRawState(in.u64());
    numTransient = in.u64();
    numSeek = in.u64();
    numSpinup = in.u64();
}

} // namespace softwatt
