/**
 * @file
 * The low-power disk model: HP97560-style timing (seek curve,
 * rotation, transfer) under the Toshiba MK3003MAN operating-mode
 * state machine and power values of the paper's Figure 2.
 */

#ifndef SOFTWATT_DISK_DISK_HH
#define SOFTWATT_DISK_DISK_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/checkpoint.hh"
#include "sim/event_queue.hh"
#include "sim/random.hh"
#include "sim/types.hh"

#include "fault_model.hh"

namespace softwatt
{

/** Figure 2: MK3003MAN per-mode power in watts. */
struct DiskPowerSpec
{
    double sleepW = 0.15;
    double idleW = 1.6;
    double standbyW = 0.35;
    double activeW = 3.2;
    double seekW = 4.1;
    double spinupW = 4.2;

    /** Spin-up takes 5 s; spin-down takes the same and is free. */
    double spinupSeconds = 5.0;
};

/** Mechanical timing parameters (HP97560-class). */
struct DiskTimingSpec
{
    double trackToTrackMs = 2.0;
    double avgSeekMs = 8.5;
    double rpm = 4200.0;
    double transferMbPerS = 12.0;
    int blockBytes = 4096;
    std::uint64_t numBlocks = 1 << 20;

    /** One full rotation in milliseconds. */
    double rotationMs() const { return 60000.0 / rpm; }

    /** Transfer time for one block in milliseconds. */
    double
    blockTransferMs() const
    {
        return double(blockBytes) / (transferMbPerS * 1e6) * 1e3;
    }

    /** SimOS's base disk: the HP97560 (no low-power modes). */
    static DiskTimingSpec hp97560();

    /** The paper's replacement: Toshiba MK3003MAN. */
    static DiskTimingSpec mk3003man();
};

/** Operating mode (Figure 2 state machine). */
enum class DiskState : std::uint8_t
{
    Sleep,
    Standby,
    SpinningDown,
    SpinningUp,
    Idle,
    Active,     ///< Read/write transfer in progress.
    Seeking,
};

/** Display name of a disk state. */
const char *diskStateName(DiskState s);

/** The four evaluated disk configurations (Section 4). */
enum class DiskConfigKind : std::uint8_t
{
    /** No power management: spins at ACTIVE power between requests. */
    Conventional,

    /** Transitions to IDLE after each request; never spins down. */
    IdleOnly,

    /** IDLE plus STANDBY after a fixed inactivity threshold. */
    Spindown,
};

/** A disk configuration: management kind plus its threshold. */
struct DiskConfig
{
    DiskConfigKind kind = DiskConfigKind::Conventional;

    /** Spin-down threshold in (paper-equivalent) seconds. */
    double spindownThresholdSeconds = 2.0;

    /** Fault injection; disabled by default (the happy path). */
    DiskFaultConfig fault;

    static DiskConfig conventional();
    static DiskConfig idleOnly();
    static DiskConfig spindown(double threshold_seconds);

    /** Name for reports ("Baseline", "Without Spindowns", ...). */
    const char *name() const;
};

/**
 * The disk: request queue, mechanical timing, mode state machine and
 * online energy accounting (the one power model the paper evaluates
 * during simulation rather than in post-processing, because mode
 * transitions need exact timing).
 *
 * All mechanical durations are divided by @p time_scale so that
 * multi-second disk behaviour fits in tractable simulations; energy
 * is integrated against paper-equivalent (uncompressed) time, so
 * reported joules are directly comparable to the paper's Figure 9.
 */
class Disk : public Checkpointable
{
  public:
    /**
     * Completion callback: Ok means the data transferred; any other
     * status means the request was consumed without transferring and
     * the caller must decide whether to resubmit (the kernel's disk
     * driver retries with backoff — see Kernel::requestDiskBlocks).
     */
    using Callback = std::function<void(DiskIoStatus)>;

    /**
     * @param queue Event queue (ticks are CPU cycles).
     * @param freq_hz CPU clock, to convert seconds to ticks.
     * @param config Power-management configuration.
     * @param time_scale Compression factor for all durations.
     * @param seed Deterministic rotational-latency stream.
     */
    Disk(EventQueue &queue, double freq_hz, const DiskConfig &config,
         double time_scale = 100.0, std::uint64_t seed = 12345);

    /**
     * Submit a read/write of @p num_blocks starting at @p block.
     * @p done fires when the transfer completes.
     */
    void submit(std::uint64_t block, std::uint32_t num_blocks,
                Callback done);

    /** Lowest-power mode; entered only via this explicit command. */
    void sleep();

    /** Current operating mode. */
    DiskState state() const { return currentState; }

    /**
     * True if the Figure-2 operating-mode state machine permits the
     * @p from → @p to edge (self-transitions are permitted).
     */
    static bool legalTransition(DiskState from, DiskState to);

    /**
     * Transitions taken that violated the legal state graph. Always 0
     * in a correct run; surfaced by the disk.legal-transitions
     * invariant rather than asserted inline so observation never
     * perturbs the simulation.
     */
    std::uint64_t illegalTransitions() const { return numIllegal; }

    /** "FROM->TO" label of the first illegal transition; "" if none. */
    std::string firstIllegalTransition() const;

    /**
     * Energy re-derived from the per-state residencies, joules.
     * Accumulated independently of energyJ(); the two must agree to
     * floating-point tolerance (the disk.energy-conservation
     * invariant).
     */
    double residencyEnergyJ() const;

    /** Paper-equivalent seconds since construction. */
    double elapsedEquivSeconds() const;

    /**
     * TEST HOOK: drive the state machine straight to @p s through
     * transitionTo(), recording legality exactly as a real transition
     * would. Lets tests inject illegal edges.
     */
    void testForceState(DiskState s) { transitionTo(s); }

    /** Energy so far in paper-equivalent joules (includes now). */
    double energyJ() const;

    /** Residency so far in a state, paper-equivalent seconds. */
    double stateSeconds(DiskState s) const;

    /** True if no request is in flight or queued. */
    bool quiescent() const { return !busy && pending.empty(); }

    std::uint64_t requestsServed() const { return numRequests; }
    std::uint64_t spinUps() const { return numSpinUps; }
    std::uint64_t spinDowns() const { return numSpinDowns; }
    std::uint64_t seeks() const { return numSeeks; }

    /** Requests completed with a failure status. */
    std::uint64_t requestsFailed() const { return numFailed; }

    /** Injection bookkeeping (all zero with faults disabled). */
    const DiskFaultModel &faults() const { return faultModel; }

    const DiskConfig &config() const { return cfg; }

    /**
     * Re-tune the spin-down threshold (adaptive policy). Takes
     * effect the next time the idle timer is armed; an already-armed
     * timer keeps its original deadline, so the change is a pure
     * function of when it was made. No-op for non-spindown disks.
     * The threshold is part of the adaptive policy's state, not the
     * machine configuration, so it is serialized by the policy and
     * re-applied after restore.
     */
    void setSpindownThreshold(double seconds);

    /**
     * True when the disk can be checkpointed: no request in flight
     * or queued, and not mid spin-up/spin-down (those phases hold
     * anonymous completion events that cannot be serialized).
     */
    bool
    checkpointSafe() const
    {
        return quiescent() &&
               currentState != DiskState::SpinningUp &&
               currentState != DiskState::SpinningDown;
    }

    // Checkpointable. A pending spindown timer is re-registered with
    // its original event id during loadState.
    void saveState(ChunkWriter &out) const override;
    void loadState(ChunkReader &in) override;

  private:
    struct Request
    {
        std::uint64_t block;
        std::uint32_t numBlocks;
        Callback done;
    };

    EventQueue &queue;
    double freqHz;            // ckpt:derived: fixed at construction
    DiskConfig cfg;           // ckpt:derived: fixed at construction
    double timeScale;         // ckpt:derived: fixed at construction
    DiskPowerSpec power;      // ckpt:derived: fixed at construction
    DiskTimingSpec timing;    // ckpt:derived: fixed at construction
    Random rng;
    DiskFaultModel faultModel;

    DiskState currentState;
    Tick lastTransition = 0;
    Tick epochTick = 0;
    double accumulatedJ = 0;
    double stateSecondsAcc[8] = {};

    std::uint64_t numIllegal = 0;
    DiskState illegalFrom = DiskState::Idle;
    DiskState illegalTo = DiskState::Idle;

    std::deque<Request> pending;  // ckpt:derived: empty when safe
    bool busy = false;            // ckpt:derived: false when safe
    std::uint64_t lastBlock = 0;
    EventQueue::EventId spindownEvent = 0;
    bool spindownScheduled = false;

    /** Absolute fire tick of the armed spindown timer. */
    Tick spindownTick = 0;

    std::uint64_t numRequests = 0;
    std::uint64_t numSpinUps = 0;
    std::uint64_t numSpinDowns = 0;
    std::uint64_t numSeeks = 0;
    std::uint64_t numFailed = 0;

    /** Power drawn in a state, watts. */
    double statePowerW(DiskState s) const;

    /** Seconds (sim-compressed) → event-queue ticks. */
    Tick ticksFor(double seconds) const;

    /** Current time in paper-equivalent seconds (fault windows). */
    double equivNowSeconds() const;

    /** Pop the head request and fail it with @p status. */
    void failHead(DiskIoStatus status);

    /** Accumulate energy since lastTransition, then switch states. */
    void transitionTo(DiskState next);

    /** Seek time for the distance from lastBlock, milliseconds. */
    double seekMs(std::uint64_t block) const;

    /** Start servicing the head of the queue (spins up if needed). */
    void startNext();

    /** Begin the seek+transfer for a request (disk is spinning). */
    void beginService();

    void cancelSpindown();
    void armSpindown();

    /** Body of the inactivity-threshold timer (named so a restored
     *  checkpoint can re-register the event). */
    void onSpindownTimer();
};

} // namespace softwatt

#endif // SOFTWATT_DISK_DISK_HH
