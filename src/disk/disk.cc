#include "disk.hh"

#include <cmath>

#include "sim/check.hh"
#include "sim/logging.hh"

namespace softwatt
{

const char *
diskStateName(DiskState s)
{
    switch (s) {
      case DiskState::Sleep: return "SLEEP";
      case DiskState::Standby: return "STANDBY";
      case DiskState::SpinningDown: return "SPINDOWN";
      case DiskState::SpinningUp: return "SPINUP";
      case DiskState::Idle: return "IDLE";
      case DiskState::Active: return "ACTIVE";
      case DiskState::Seeking: return "SEEK";
    }
    panic("diskStateName: invalid state");
}

DiskTimingSpec
DiskTimingSpec::hp97560()
{
    DiskTimingSpec t;
    t.trackToTrackMs = 2.5;
    t.avgSeekMs = 13.5;
    t.rpm = 4002.0;
    t.transferMbPerS = 2.2;
    return t;
}

DiskTimingSpec
DiskTimingSpec::mk3003man()
{
    return DiskTimingSpec{};
}

DiskConfig
DiskConfig::conventional()
{
    DiskConfig c;
    c.kind = DiskConfigKind::Conventional;
    c.spindownThresholdSeconds = 0;
    return c;
}

DiskConfig
DiskConfig::idleOnly()
{
    DiskConfig c;
    c.kind = DiskConfigKind::IdleOnly;
    c.spindownThresholdSeconds = 0;
    return c;
}

DiskConfig
DiskConfig::spindown(double threshold_seconds)
{
    DiskConfig c;
    c.kind = DiskConfigKind::Spindown;
    c.spindownThresholdSeconds = threshold_seconds;
    return c;
}

const char *
DiskConfig::name() const
{
    switch (kind) {
      case DiskConfigKind::Conventional:
        return "Baseline";
      case DiskConfigKind::IdleOnly:
        return "Without Spindowns";
      case DiskConfigKind::Spindown:
        return spindownThresholdSeconds <= 2.0
                   ? "With 2 Sec. Spindown"
                   : "With 4 Sec. Spindown";
    }
    panic("DiskConfig::name: invalid kind");
}

bool
Disk::legalTransition(DiskState from, DiskState to)
{
    if (from == to)
        return true;
    switch (from) {
      case DiskState::Sleep:
        return to == DiskState::SpinningUp;
      case DiskState::Standby:
        return to == DiskState::SpinningUp || to == DiskState::Sleep;
      case DiskState::SpinningDown:
        return to == DiskState::Standby || to == DiskState::Sleep;
      case DiskState::SpinningUp:
        // Success reaches IDLE; a spin-up failure falls back to
        // STANDBY after the full spin-up time and energy are paid.
        return to == DiskState::Idle || to == DiskState::Standby;
      case DiskState::Idle:
        return to == DiskState::Seeking ||
               to == DiskState::SpinningDown;
      case DiskState::Active:
        return to == DiskState::Idle || to == DiskState::Seeking;
      case DiskState::Seeking:
        // A servo error settles back to IDLE without transferring.
        return to == DiskState::Active || to == DiskState::Idle;
    }
    return false;
}

std::string
Disk::firstIllegalTransition() const
{
    if (numIllegal == 0)
        return "";
    return std::string(diskStateName(illegalFrom)) + "->" +
           diskStateName(illegalTo);
}

Disk::Disk(EventQueue &queue, double freq_hz, const DiskConfig &config,
           double time_scale, std::uint64_t seed)
    : queue(queue), freqHz(freq_hz), cfg(config), timeScale(time_scale),
      rng(seed), faultModel(config.fault),
      currentState(config.kind == DiskConfigKind::Conventional
                       ? DiskState::Active
                       : DiskState::Idle),
      lastTransition(queue.now()), epochTick(queue.now())
{
    if (time_scale <= 0)
        fatal("disk time_scale must be positive");
    config.fault.validate("disk fault config");
}

double
Disk::statePowerW(DiskState s) const
{
    switch (s) {
      case DiskState::Sleep: return power.sleepW;
      case DiskState::Standby: return power.standbyW;
      case DiskState::SpinningDown: return 0;  // free, per the paper
      case DiskState::SpinningUp: return power.spinupW;
      case DiskState::Idle:
        // The conventional disk has no IDLE mode: it keeps spinning
        // at ACTIVE power between requests.
        return cfg.kind == DiskConfigKind::Conventional ? power.activeW
                                                        : power.idleW;
      case DiskState::Active: return power.activeW;
      case DiskState::Seeking: return power.seekW;
    }
    panic("statePowerW: invalid state");
}

Tick
Disk::ticksFor(double seconds) const
{
    double ticks = seconds / timeScale * freqHz;
    return ticks < 1 ? 1 : Tick(ticks);
}

double
Disk::equivNowSeconds() const
{
    return double(queue.now()) / freqHz * timeScale;
}

void
Disk::failHead(DiskIoStatus status)
{
    Request req = std::move(pending.front());
    pending.pop_front();
    ++numFailed;
    busy = false;
    if (!pending.empty()) {
        startNext();
    } else {
        armSpindown();
    }
    if (req.done)
        req.done(status);
}

void
Disk::transitionTo(DiskState next)
{
    // Record rather than assert: the disk.legal-transitions invariant
    // reports this at the next sample boundary, so observation never
    // changes simulation behaviour.
    if (!legalTransition(currentState, next) && numIllegal++ == 0) {
        illegalFrom = currentState;
        illegalTo = next;
    }
    Tick now = queue.now();
    double sim_seconds = double(now - lastTransition) / freqHz;
    double equiv_seconds = sim_seconds * timeScale;
    accumulatedJ += statePowerW(currentState) * equiv_seconds;
    stateSecondsAcc[int(currentState)] += equiv_seconds;
    currentState = next;
    lastTransition = now;
}

double
Disk::residencyEnergyJ() const
{
    double sum = 0;
    for (int s = 0; s <= int(DiskState::Seeking); ++s) {
        sum += stateSeconds(DiskState(s)) *
               statePowerW(DiskState(s));
    }
    return sum;
}

double
Disk::elapsedEquivSeconds() const
{
    return double(queue.now() - epochTick) / freqHz * timeScale;
}

double
Disk::energyJ() const
{
    double sim_seconds =
        double(queue.now() - lastTransition) / freqHz;
    return accumulatedJ +
           statePowerW(currentState) * sim_seconds * timeScale;
}

double
Disk::stateSeconds(DiskState s) const
{
    double extra = 0;
    if (s == currentState) {
        extra = double(queue.now() - lastTransition) / freqHz *
                timeScale;
    }
    return stateSecondsAcc[int(s)] + extra;
}

double
Disk::seekMs(std::uint64_t block) const
{
    std::uint64_t distance = block > lastBlock ? block - lastBlock
                                               : lastBlock - block;
    if (distance == 0)
        return 0;
    // Square-root seek curve between track-to-track and full-stroke.
    double frac = double(distance) / double(timing.numBlocks);
    double full_stroke = 2.0 * timing.avgSeekMs;
    return timing.trackToTrackMs +
           (full_stroke - timing.trackToTrackMs) * std::sqrt(frac);
}

void
Disk::cancelSpindown()
{
    if (spindownScheduled) {
        queue.cancel(spindownEvent);
        spindownScheduled = false;
    }
}

void
Disk::onSpindownTimer()
{
    spindownScheduled = false;
    if (currentState != DiskState::Idle || busy ||
        !pending.empty()) {
        return;
    }
    ++numSpinDowns;
    transitionTo(DiskState::SpinningDown);
    queue.scheduleIn(ticksFor(power.spinupSeconds), [this] {
        if (currentState != DiskState::SpinningDown)
            return;
        transitionTo(DiskState::Standby);
        // A request may have queued while spinning down.
        if (!pending.empty() && !busy)
            startNext();
    });
}

void
Disk::setSpindownThreshold(double seconds)
{
    if (cfg.kind != DiskConfigKind::Spindown)
        return;
    if (!(seconds > 0)) {
        fatal(msg() << "disk spin-down threshold must be > 0 "
                    << "seconds (got " << seconds << ")");
    }
    cfg.spindownThresholdSeconds = seconds;
}

void
Disk::armSpindown()
{
    if (cfg.kind != DiskConfigKind::Spindown)
        return;
    cancelSpindown();
    spindownTick =
        queue.now() + ticksFor(cfg.spindownThresholdSeconds);
    spindownEvent =
        queue.schedule(spindownTick, [this] { onSpindownTimer(); });
    spindownScheduled = true;
}

void
Disk::submit(std::uint64_t block, std::uint32_t num_blocks,
             Callback done)
{
    if (num_blocks == 0)
        fatal("disk request must transfer at least one block");
    pending.push_back(Request{block, num_blocks, std::move(done)});
    cancelSpindown();
    if (!busy)
        startNext();
}

void
Disk::sleep()
{
    if (busy || !pending.empty())
        return;  // refuse while work is outstanding
    cancelSpindown();
    if (currentState == DiskState::Idle) {
        transitionTo(DiskState::SpinningDown);
        queue.scheduleIn(ticksFor(power.spinupSeconds), [this] {
            if (currentState == DiskState::SpinningDown)
                transitionTo(DiskState::Sleep);
        });
    } else if (currentState == DiskState::Standby) {
        transitionTo(DiskState::Sleep);
    }
}

void
Disk::startNext()
{
    if (pending.empty())
        return;
    busy = true;

    switch (currentState) {
      case DiskState::Standby:
      case DiskState::Sleep:
        // Spin back up before servicing: time and energy penalty.
        ++numSpinUps;
        transitionTo(DiskState::SpinningUp);
        queue.scheduleIn(ticksFor(power.spinupSeconds), [this] {
            // The full spin-up time and energy are spent even when
            // the attempt fails: the drive only knows at the end
            // that the platters did not reach speed.
            if (faultModel.injectSpinupFailure(equivNowSeconds())) {
                transitionTo(DiskState::Standby);
                failHead(DiskIoStatus::SpinupFailure);
                return;
            }
            transitionTo(DiskState::Idle);
            beginService();
        });
        return;
      case DiskState::SpinningDown:
        // Wait for the spin-down to finish; its completion event
        // calls startNext() again from STANDBY.
        busy = false;
        return;
      case DiskState::SpinningUp:
        // Already spinning up for an earlier request; it will drain
        // the queue when service completes.
        return;
      case DiskState::Idle:
      case DiskState::Active:
      case DiskState::Seeking:
        beginService();
        return;
    }
}

void
Disk::beginService()
{
    const Request &req = pending.front();

    double seek_ms = seekMs(req.block);
    // Rotational latency: uniform over one revolution.
    double rot_ms = rng.uniform() * timing.rotationMs();
    double transfer_ms = timing.blockTransferMs() * req.numBlocks;

    ++numSeeks;
    transitionTo(DiskState::Seeking);
    queue.scheduleIn(ticksFor((seek_ms + rot_ms) * 1e-3), [this,
                                                           transfer_ms] {
        // A servo error is detected once the seek settles: the full
        // seek time was spent at SEEK power but the head is off
        // track, so the transfer never starts.
        if (faultModel.injectSeekError(equivNowSeconds())) {
            transitionTo(DiskState::Idle);
            failHead(DiskIoStatus::SeekError);
            return;
        }
        transitionTo(DiskState::Active);
        queue.scheduleIn(ticksFor(transfer_ms * 1e-3), [this] {
            // A transient media error surfaces after the transfer
            // window: time and energy were spent, no data moved.
            if (faultModel.injectTransientError(equivNowSeconds())) {
                transitionTo(DiskState::Idle);
                failHead(DiskIoStatus::TransientError);
                return;
            }
            Request req = std::move(pending.front());
            pending.pop_front();
            lastBlock = req.block + req.numBlocks;
            ++numRequests;
            // ACTIVE -> IDLE is free and instantaneous.
            transitionTo(DiskState::Idle);
            busy = false;
            if (!pending.empty()) {
                startNext();
            } else {
                armSpindown();
            }
            if (req.done)
                req.done(DiskIoStatus::Ok);
        });
    });
}

void
Disk::saveState(ChunkWriter &out) const
{
    SW_CHECK(checkpointSafe(),
             "Disk::saveState outside a checkpoint-safe state");
    out.u8(std::uint8_t(currentState));
    out.u64(lastTransition);
    out.u64(epochTick);
    out.f64(accumulatedJ);
    for (double seconds : stateSecondsAcc)
        out.f64(seconds);
    out.u64(numIllegal);
    out.u8(std::uint8_t(illegalFrom));
    out.u8(std::uint8_t(illegalTo));
    out.u64(lastBlock);
    out.u64(rng.rawState());
    faultModel.saveState(out);
    out.b(spindownScheduled);
    out.u64(spindownEvent);
    out.u64(spindownTick);
    out.u64(numRequests);
    out.u64(numSpinUps);
    out.u64(numSpinDowns);
    out.u64(numSeeks);
    out.u64(numFailed);
}

void
Disk::loadState(ChunkReader &in)
{
    SW_CHECK(quiescent(), "Disk::loadState with work outstanding");
    currentState = DiskState(in.u8());
    lastTransition = in.u64();
    epochTick = in.u64();
    accumulatedJ = in.f64();
    for (double &seconds : stateSecondsAcc)
        seconds = in.f64();
    numIllegal = in.u64();
    illegalFrom = DiskState(in.u8());
    illegalTo = DiskState(in.u8());
    lastBlock = in.u64();
    rng.setRawState(in.u64());
    faultModel.loadState(in);
    spindownScheduled = in.b();
    spindownEvent = in.u64();
    spindownTick = in.u64();
    numRequests = in.u64();
    numSpinUps = in.u64();
    numSpinDowns = in.u64();
    numSeeks = in.u64();
    numFailed = in.u64();
    if (spindownScheduled) {
        queue.restoreEvent(spindownTick, spindownEvent,
                           [this] { onSpindownTimer(); });
    }
}

} // namespace softwatt
