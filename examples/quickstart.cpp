/**
 * @file
 * Quickstart: run one SPEC JVM98-equivalent benchmark on the
 * complete simulated machine and print its power characterization.
 *
 * Usage: quickstart [bench=jess] [scale=0.2] [key=value ...]
 */

#include <fstream>
#include <iostream>
#include <string>

#include "core/report.hh"
#include "core/runner.hh"
#include "sim/logging.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    // Read the harness's own keys before fromConfig so its
    // unused-key check doesn't flag them.
    std::string bench_name = args.getString("bench", "jess");
    double scale = args.getDouble("scale", 0.2);
    std::string csv_path = args.getString("log_csv", "");
    ExperimentSpec spec = ExperimentSpec::fromArgs("quickstart", args);
    SystemConfig config = SystemConfig::fromConfig(args);
    spec.add(benchmarkByName(bench_name), config, scale);

    std::cout << "Running " << bench_name << " (scale " << scale
              << ") on the "
              << (config.cpuModel == CpuModel::Superscalar
                      ? "MXS-like superscalar"
                      : "Mipsy-like in-order")
              << " model...\n";

    ExperimentResult result = runExperiment(spec);
    const BenchmarkRun &run = result.at(0);
    if (!run.hasData()) {
        std::cout << "(no data: " << run.name << " ended "
                  << runOutcomeName(run.result.outcome)
                  << (run.error.empty() ? "" : ": " + run.error)
                  << ")\n";
        return result.exitCode();
    }
    System &sys = *run.system;

    double freq = sys.powerModel().technology().freqHz();
    double equiv_s = double(sys.now()) / freq * config.timeScale;

    std::cout << "\nSimulated " << sys.now() << " cycles ("
              << equiv_s << " paper-equivalent seconds), "
              << sys.cpu().committedInsts()
              << " instructions committed, IPC "
              << sys.cpu().ipc() << "\n";
    std::cout << "Fast-forwarded " << sys.fastForwardedCycles()
              << " idle cycles; branch predictor accuracy "
              << sys.cpu().predictor().accuracy() << "\n\n";

    printPowerBudget(std::cout,
                     "Power budget (low-power disk, Fig. 7 style)",
                     run.breakdown);
    std::cout << '\n';
    printPowerBudget(std::cout,
                     "Power budget (conventional disk, Fig. 5 style)",
                     run.conventional);
    std::cout << '\n';
    printModePower(std::cout, "Average power per mode (Fig. 6 style)",
                   run.breakdown);
    std::cout << '\n';
    printTable4(std::cout, run.name,
                [&] {
                    std::array<ServiceStats, numServices> all{};
                    for (ServiceKind k : allServices)
                        all[int(k)] = sys.kernel().serviceStats(k);
                    return all;
                }());
    std::cout << '\n';
    {
        std::array<ServiceStats, numServices> all{};
        for (ServiceKind k : allServices)
            all[int(k)] = sys.kernel().serviceStats(k);
        printTable5(std::cout, all, freq);
        std::cout << '\n';
        printServicePower(std::cout, all, freq);
    }
    std::cout << "\nDisk energy (this config): " << sys.diskEnergyJ()
              << " J; as conventional disk: "
              << sys.diskEnergyConventionalJ() << " J\n";
    std::cout << "Peak CPU+memory power: "
              << peakWindowPowerW(sys.powerTrace())
              << " W (thermal design point)\n";
    std::cout << "\nPerformance statistics:\n";
    sys.dumpStats(std::cout);

    // Optional: dump the sampled counter log for external power
    // passes (the SimOS log-file workflow).
    if (!csv_path.empty()) {
        std::ofstream csv(csv_path);
        if (!csv)
            fatal("cannot open " + csv_path);
        sys.log().writeCsv(csv);
        std::cout << "\nSample log written to " << csv_path << "\n";
    }
    return result.exitCode();
}
