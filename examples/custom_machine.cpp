/**
 * @file
 * Design-space exploration with the public configuration API:
 * compares the Table 1 baseline against a user-modified machine
 * (smaller caches / narrower issue / different technology) on one
 * benchmark, reporting performance, energy, and the energy-delay
 * product the paper uses for design trade-offs.
 *
 * Usage: custom_machine [bench=db] [scale=0.5] then any overrides,
 *        e.g. icache.size_kb=16 dcache.size_kb=16 cpu.issue_width=2
 */

#include <iomanip>
#include <iostream>

#include "core/runner.hh"

using namespace softwatt;

namespace
{

struct RunSummary
{
    double seconds;
    double energyJ;

    double edp() const { return seconds * energyJ; }
};

RunSummary
summarize(const BenchmarkRun &run)
{
    RunSummary s;
    s.seconds = double(run.system->now()) /
                run.system->powerModel().technology().freqHz();
    s.energyJ = run.breakdown.cpuMemEnergyJ();
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "db");
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec =
        ExperimentSpec::fromArgs("custom-machine", args);
    Benchmark bench = benchmarkByName(bench_name);

    // Custom: Table 1 plus every command-line override. If the user
    // gave none, use a narrower low-cost design as the demo.
    SystemConfig custom_config = SystemConfig::fromConfig(args);
    bool customized = false;
    for (const std::string &key : args.keys()) {
        if (key != "bench" && key != "scale" && key != "jobs" &&
            key != "out") {
            customized = true;
        }
    }
    if (!customized) {
        custom_config.machine.icache.sizeBytes = 16 * 1024;
        custom_config.machine.dcache.sizeBytes = 16 * 1024;
        custom_config.machine.issueWidth = 2;
        custom_config.machine.fetchWidth = 2;
        custom_config.machine.decodeWidth = 2;
        custom_config.machine.commitWidth = 2;
        std::cout << "(no overrides given: comparing against a "
                     "2-wide, 16KB-L1 design)\n\n";
    }

    // Baseline: pristine Table 1 machine.
    spec.add(bench, SystemConfig{}, scale, "table1");
    spec.add(bench, custom_config, scale, "custom");
    ExperimentResult result = runExperiment(spec);

    const BenchmarkRun &base = result.run(bench, "table1");
    const BenchmarkRun &custom = result.run(bench, "custom");
    if (!base.hasData() || !custom.hasData()) {
        std::cout << "(no data: a " << bench_name << " run ended "
                  << runOutcomeName(
                         (base.hasData() ? custom : base)
                             .result.outcome)
                  << "; skipping the comparison)\n";
        return result.exitCode();
    }
    RunSummary base_summary = summarize(base);
    RunSummary custom_summary = summarize(custom);

    std::cout << "Benchmark: " << bench_name << " (scale " << scale
              << ")\n\n";
    std::cout << std::left << std::setw(12) << "metric"
              << std::right << std::setw(16) << "Table 1"
              << std::setw(16) << "custom" << std::setw(12)
              << "ratio" << '\n';
    auto row = [](const char *name, double a, double b) {
        std::cout << std::left << std::setw(12) << name << std::right
                  << std::setw(16) << std::scientific
                  << std::setprecision(4) << a << std::setw(16) << b
                  << std::setw(11) << std::fixed
                  << std::setprecision(3) << (a > 0 ? b / a : 0)
                  << "x\n";
    };
    row("time (s)", base_summary.seconds, custom_summary.seconds);
    row("energy (J)", base_summary.energyJ, custom_summary.energyJ);
    row("EDP (Js)", base_summary.edp(), custom_summary.edp());

    std::cout << "\nIPC: " << base.system->cpu().ipc() << " -> "
              << custom.system->cpu().ipc() << "\n";
    std::cout << "L1I miss ratio: "
              << base.system->hierarchy().icache().missRatio()
              << " -> "
              << custom.system->hierarchy().icache().missRatio()
              << "\n";
    return result.exitCode();
}
