/**
 * @file
 * Fault-rate sweep: runs one benchmark across the three disk
 * power-management policies at increasing transient-error rates and
 * prints the energy and performance penalty of error recovery — how
 * much of the power budget the retry/backoff path (the ErrorRecovery
 * kernel service plus the re-executed disk mechanics) consumes, and
 * where the bounded-retry driver starts giving up.
 *
 * Usage: fault_sweep [bench=jess] [scale=0.1]
 *                    [rates=0,0.05,0.1,0.2,0.4]
 *                    [disk.retry.max_attempts=6] [...]
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "jess");
    double scale = args.getDouble("scale", 0.1);

    std::vector<double> rates;
    std::string list = args.getString("rates", "0,0.05,0.1,0.2,0.4");
    std::istringstream in(list);
    std::string tok;
    while (std::getline(in, tok, ','))
        rates.push_back(std::stod(tok));

    struct Policy
    {
        const char *label;
        DiskConfig config;
    };
    const Policy policies[] = {
        {"conventional", DiskConfig::conventional()},
        {"idle-only", DiskConfig::idleOnly()},
        {"spindown 2s", DiskConfig::spindown(2.0)},
    };

    ExperimentSpec spec =
        ExperimentSpec::fromArgs("fault-sweep", args);
    Benchmark bench = benchmarkByName(bench_name);
    SystemConfig base_config = SystemConfig::fromConfig(args);
    for (const Policy &policy : policies) {
        for (double rate : rates) {
            SystemConfig config = base_config;
            config.diskConfig = policy.config;
            config.diskConfig.fault.enabled = rate > 0;
            config.diskConfig.fault.transientErrorRate = rate;
            std::ostringstream variant;
            variant << policy.label << "@" << rate;
            spec.add(bench, config, scale, variant.str());
        }
    }

    std::cout << "Disk fault sweep for " << bench_name << " (scale "
              << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);

    std::cout << std::left << std::setw(14) << "policy"
              << std::setw(8) << "rate" << std::right << std::setw(9)
              << "faults" << std::setw(9) << "retries"
              << std::setw(9) << "giveups" << std::setw(13)
              << "recovery mJ" << std::setw(12) << "disk E (J)"
              << std::setw(12) << "cycles (M)" << std::setw(12)
              << "outcome" << '\n';

    std::size_t idx = 0;
    for (const Policy &policy : policies) {
        // Per-policy fault-free baseline for the penalty columns.
        double base_cycles = 0;
        for (double rate : rates) {
            const BenchmarkRun &run = result.at(idx++);
            if (!run.hasData()) {
                std::cout << std::left << std::setw(14)
                          << policy.label << std::setw(8) << rate
                          << "  (no data: "
                          << runOutcomeName(run.result.outcome)
                          << ")\n";
                continue;
            }
            const System &sys = *run.system;
            const Kernel &kernel = sys.kernel();
            const ServiceStats &recovery =
                kernel.serviceStats(ServiceKind::ErrorRecovery);

            if (rate == 0)
                base_cycles = double(sys.now());

            std::cout << std::left << std::setw(14) << policy.label
                      << std::setw(8) << std::fixed
                      << std::setprecision(2) << rate << std::right
                      << std::setw(9) << kernel.diskFaults()
                      << std::setw(9) << kernel.diskRetries()
                      << std::setw(9) << kernel.diskGiveUps()
                      << std::setw(13) << std::setprecision(3)
                      << recovery.energyJ * 1e3 << std::setw(12)
                      << std::setprecision(2) << sys.diskEnergyJ()
                      << std::setw(12) << std::setprecision(2)
                      << double(sys.now()) / 1e6 << std::setw(12)
                      << runOutcomeName(run.result.outcome);
            if (rate > 0 && base_cycles > 0 && run.result.ok()) {
                std::cout << "   +" << std::setprecision(1)
                          << (double(sys.now()) / base_cycles -
                              1.0) *
                                 100.0
                          << "% time";
            }
            std::cout << '\n';
        }
        std::cout << '\n';
    }

    std::cout << "Recovery energy is the ErrorRecovery kernel "
                 "service alone; the disk column also pays\nthe "
                 "re-executed seeks and transfers. Rows that read "
                 "io-failed hit the bounded-retry\ngive-up (see "
                 "disk.retry.max_attempts).\n";
    return result.exitCode();
}
