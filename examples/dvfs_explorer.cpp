/**
 * @file
 * Voltage/frequency design-space exploration using the analytical
 * power models: sweeps (Vdd, f) operating points, runs one benchmark
 * at each, and reports delay, energy and the energy-delay product —
 * the circuit-level lever (supply voltage scaling) the paper's
 * introduction places underneath the architectural techniques it
 * evaluates.
 *
 * Usage: dvfs_explorer [bench=mtrt] [scale=0.2]
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "mtrt");
    double scale = args.getDouble("scale", 0.2);
    ExperimentSpec spec = ExperimentSpec::fromArgs("dvfs", args);
    Benchmark bench = benchmarkByName(bench_name);

    // Era-plausible operating points: voltage must drop with
    // frequency (the classic alpha-power delay constraint).
    struct OperatingPoint
    {
        double mhz;
        double vdd;
    };
    std::vector<OperatingPoint> points = {
        {200, 3.3}, {166, 3.0}, {133, 2.7}, {100, 2.4}, {66, 2.1},
    };

    SystemConfig base_config = SystemConfig::fromConfig(args);
    for (const OperatingPoint &point : points) {
        SystemConfig config = base_config;
        config.machine.freqMhz = point.mhz;
        config.machine.vdd = point.vdd;
        config.useCalibratedPower = false;  // scale with Vdd/f
        std::ostringstream variant;
        variant << point.mhz << "MHz";
        spec.add(bench, config, scale, variant.str());
    }

    std::cout << "DVFS exploration: " << bench_name << " (scale "
              << scale << ", analytical power models)\n\n";

    ExperimentResult result = runExperiment(spec);

    std::cout << std::right << std::setw(8) << "MHz" << std::setw(8)
              << "Vdd" << std::setw(14) << "time (s)"
              << std::setw(14) << "energy (J)" << std::setw(14)
              << "EDP (mJs)" << std::setw(10) << "avg W" << '\n';

    double best_edp = 1e300;
    OperatingPoint best{0, 0};
    for (std::size_t i = 0; i < result.size(); ++i) {
        const OperatingPoint &point = points[i];
        const BenchmarkRun &run = result.at(i);
        if (!run.hasData()) {
            std::cout << std::right << std::setw(8) << std::fixed
                      << std::setprecision(0) << point.mhz
                      << "  (no data: "
                      << runOutcomeName(run.result.outcome)
                      << ")\n";
            continue;
        }
        double seconds = double(run.system->now()) /
                         (point.mhz * 1e6);
        double energy = run.breakdown.cpuMemEnergyJ();
        double edp = seconds * energy;
        if (edp < best_edp) {
            best_edp = edp;
            best = point;
        }
        std::cout << std::right << std::setw(8) << std::fixed
                  << std::setprecision(0) << point.mhz
                  << std::setw(8) << std::setprecision(1) << point.vdd
                  << std::setw(14) << std::scientific
                  << std::setprecision(3) << seconds << std::setw(14)
                  << energy << std::setw(14) << edp * 1e3
                  << std::setw(10) << std::fixed
                  << std::setprecision(2) << energy / seconds << '\n';
    }
    std::cout << "\nBest EDP at " << best.mhz << " MHz / " << best.vdd
              << " V.\nNote: simulated *work* is identical at every "
                 "point; only the clock and the supply move. Disk "
                 "timing is expressed in wall-clock seconds, so "
                 "slower clocks also change the compute/disk "
                 "overlap, as they would in a real system.\n";
    return result.exitCode();
}
