/**
 * @file
 * Closed-loop DVFS exploration: sweeps the governor's power budget
 * and runs one benchmark at each, with the kernel-visible power
 * meter feeding the frequency/voltage governor every sample window.
 * Contrast with the original open-loop variant of this example,
 * which pinned each run to a fixed (Vdd, f) point: here the machine
 * picks its own operating point, stepping down the ladder when a
 * window's measured system power exceeds the budget and back up when
 * there is headroom — the feedback loop the paper's introduction
 * places underneath OS-directed power management.
 *
 * Usage: dvfs_explorer [bench=mtrt] [scale=0.2]
 *                      [budgets=8,7,6,5]
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hh"
#include "sim/logging.hh"

using namespace softwatt;

namespace
{

std::vector<double>
parseBudgets(const std::string &text)
{
    std::vector<double> budgets;
    std::stringstream in(text);
    std::string item;
    while (std::getline(in, item, ','))
        budgets.push_back(std::stod(item));
    if (budgets.empty())
        fatal("budgets= must list at least one power budget in W");
    return budgets;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "mtrt");
    double scale = args.getDouble("scale", 0.2);
    std::vector<double> budgets =
        parseBudgets(args.getString("budgets", "8,7,6,5"));
    ExperimentSpec spec = ExperimentSpec::fromArgs("dvfs", args);
    Benchmark bench = benchmarkByName(bench_name);

    SystemConfig base_config = SystemConfig::fromConfig(args);

    // Unconstrained baseline: no governor, nominal point throughout.
    spec.add(bench, base_config, scale, "unconstrained");
    for (double budget : budgets) {
        SystemConfig config = base_config;
        config.dvfsEnabled = true;
        config.powerBudgetW = budget;
        std::ostringstream variant;
        variant << budget << "W";
        spec.add(bench, config, scale, variant.str());
    }

    std::cout << "Closed-loop DVFS exploration: " << bench_name
              << " (scale " << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);

    std::cout << std::right << std::setw(14) << "budget (W)"
              << std::setw(14) << "time (s)" << std::setw(14)
              << "energy (J)" << std::setw(10) << "avg W"
              << std::setw(8) << "level" << std::setw(8) << "deep"
              << std::setw(8) << "down" << std::setw(8) << "up"
              << '\n';

    for (std::size_t i = 0; i < result.size(); ++i) {
        const BenchmarkRun &run = result.at(i);
        std::string label = "none";
        if (i > 0)
            label = msg() << budgets[i - 1];
        if (!run.hasData()) {
            std::cout << std::right << std::setw(14) << label
                      << "  (no data: "
                      << runOutcomeName(run.result.outcome) << ")\n";
            continue;
        }
        double seconds = run.breakdown.seconds();
        double energy = run.breakdown.cpuMemEnergyJ() +
                        run.breakdown.diskEnergyJ;
        const DvfsGovernor *gov = run.system->dvfsGovernor();
        std::cout << std::right << std::setw(14) << label
                  << std::setw(14) << std::scientific
                  << std::setprecision(3) << seconds << std::setw(14)
                  << energy << std::setw(10) << std::fixed
                  << std::setprecision(2) << energy / seconds;
        if (gov) {
            std::cout << std::setw(8) << gov->level() << std::setw(8)
                      << gov->deepestLevel() << std::setw(8)
                      << gov->stepsDown() << std::setw(8)
                      << gov->stepsUp();
        } else {
            std::cout << std::setw(8) << "-" << std::setw(8) << "-"
                      << std::setw(8) << "-" << std::setw(8) << "-";
        }
        std::cout << '\n';
    }
    std::cout << "\nThe governor observes each closed sample window "
                 "through the kernel power meter and moves one "
                 "ladder rung per window: down past the budget, up "
                 "under " << 100 * 0.9 << "% of it. Tighter budgets "
                 "trade run time for energy; the ladder pairs each "
                 "frequency with the lowest era-plausible supply.\n";
    return result.exitCode();
}
