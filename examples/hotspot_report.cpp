/**
 * @file
 * Power-hotspot profiler: runs one benchmark and prints the ranked
 * hardware hotspots, the per-mode breakdown, the kernel services
 * ranked by energy, and the windows with the highest power — the
 * "where should optimization effort go?" workflow the paper's
 * conclusions sketch.
 *
 * Usage: hotspot_report [bench=javac] [scale=0.5]
 */

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <vector>

#include "core/report.hh"
#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "javac");
    double scale = args.getDouble("scale", 0.5);
    ExperimentSpec spec =
        ExperimentSpec::fromArgs("hotspot-report", args);
    SystemConfig config = SystemConfig::fromConfig(args);
    spec.add(benchmarkByName(bench_name), config, scale);

    ExperimentResult result = runExperiment(spec);
    const BenchmarkRun &run = result.at(0);
    if (!run.hasData()) {
        std::cout << "(no data: " << run.name << " ended "
                  << runOutcomeName(run.result.outcome)
                  << (run.error.empty() ? "" : ": " + run.error)
                  << ")\n";
        return result.exitCode();
    }
    System &sys = *run.system;
    double freq = sys.powerModel().technology().freqHz();

    std::cout << "Power hotspot report: " << bench_name << "\n\n";

    // 1. Hardware hotspots, ranked.
    std::vector<Component> ranked(allComponents.begin(),
                                  allComponents.end());
    std::sort(ranked.begin(), ranked.end(),
              [&](Component a, Component b) {
                  return run.breakdown.componentAvgPowerW(a) >
                         run.breakdown.componentAvgPowerW(b);
              });
    std::cout << "Hardware hotspots (average power):\n";
    for (Component c : ranked) {
        std::cout << "  " << std::left << std::setw(12)
                  << componentName(c) << std::right << std::setw(8)
                  << std::fixed << std::setprecision(3)
                  << run.breakdown.componentAvgPowerW(c) << " W  ("
                  << std::setprecision(1)
                  << run.breakdown.componentSharePct(c) << " %)\n";
    }

    // 2. Software modes.
    std::cout << "\nSoftware modes:\n";
    for (ExecMode mode : allExecModes) {
        double share =
            100.0 * double(run.breakdown.cycles[int(mode)]) /
            double(run.breakdown.totalCycles());
        std::cout << "  " << std::left << std::setw(8)
                  << execModeName(mode) << std::right << std::setw(7)
                  << std::fixed << std::setprecision(2)
                  << run.breakdown.modeAvgPowerW(mode) << " W over "
                  << std::setprecision(1) << share
                  << " % of cycles\n";
    }

    // 3. Kernel services ranked by total energy.
    std::vector<ServiceKind> services(allServices.begin(),
                                      allServices.end());
    std::sort(services.begin(), services.end(),
              [&](ServiceKind a, ServiceKind b) {
                  return sys.kernel().serviceStats(a).energyJ >
                         sys.kernel().serviceStats(b).energyJ;
              });
    std::cout << "\nKernel services by energy:\n";
    for (ServiceKind kind : services) {
        const ServiceStats &s = sys.kernel().serviceStats(kind);
        if (s.invocations == 0)
            continue;
        std::cout << "  " << std::left << std::setw(12)
                  << serviceName(kind) << std::right << std::setw(10)
                  << s.invocations << " calls, " << std::scientific
                  << std::setprecision(3) << s.energyJ << " J, "
                  << std::fixed << std::setprecision(2)
                  << s.avgPowerW(freq) << " W avg\n";
    }

    // 4. Hottest sampling windows.
    PowerTrace trace = sys.powerTrace();
    std::vector<std::size_t> order(trace.windows.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    auto window_power = [&](std::size_t i) {
        const WindowPower &wp = trace.windows[i];
        double len = double(wp.endTick - wp.startTick);
        double p = 0;
        for (int m = 0; m < numExecModes; ++m)
            p += wp.modePowerW[m] * double(wp.cycles[m]) / len;
        return p;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return window_power(a) > window_power(b);
              });
    std::cout << "\nHottest windows (CPU+memory power):\n";
    for (std::size_t i = 0; i < order.size() && i < 5; ++i) {
        const WindowPower &wp = trace.windows[order[i]];
        std::cout << "  t=" << std::fixed << std::setprecision(3)
                  << double(wp.startTick) / freq *
                         config.timeScale
                  << " s : " << std::setprecision(2)
                  << window_power(order[i]) << " W\n";
    }
    return result.exitCode();
}
