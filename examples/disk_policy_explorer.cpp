/**
 * @file
 * Disk power-management policy explorer: sweeps the spin-down
 * threshold for one benchmark and prints the energy/performance
 * trade-off curve — the design question behind the paper's Section 4
 * ("spindowns pay off only when the inter-access gap is much larger
 * than the spin-down plus spin-up time").
 *
 * Usage: disk_policy_explorer [bench=mtrt] [scale=1]
 *                             [thresholds=0.5,1,2,4,8]
 */

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "core/runner.hh"

using namespace softwatt;

int
main(int argc, char **argv)
{
    CliArgs cli = parseCliArgs(argc, argv);
    if (cli.shouldExit)
        return cli.exitCode;
    Config &args = cli.config;
    std::string bench_name = args.getString("bench", "mtrt");
    double scale = args.getDouble("scale", 1.0);

    std::vector<double> thresholds;
    std::string list = args.getString("thresholds", "0.5,1,2,4,8");
    std::istringstream in(list);
    std::string tok;
    while (std::getline(in, tok, ','))
        thresholds.push_back(std::stod(tok));

    ExperimentSpec spec =
        ExperimentSpec::fromArgs("disk-policy", args);
    Benchmark bench = benchmarkByName(bench_name);
    SystemConfig base_config = SystemConfig::fromConfig(args);

    std::vector<std::string> labels;
    {
        SystemConfig config = base_config;
        config.diskConfig = DiskConfig::idleOnly();
        labels.push_back("idle-only (no spindown)");
        spec.add(bench, config, scale, "idle-only");
    }
    for (double threshold : thresholds) {
        SystemConfig config = base_config;
        config.diskConfig = DiskConfig::spindown(threshold);
        std::ostringstream variant;
        variant << "spindown@" << threshold;
        std::ostringstream label;
        label << "spindown @ " << threshold << " s";
        labels.push_back(label.str());
        spec.add(bench, config, scale, variant.str());
    }

    std::cout << "Disk policy exploration for " << bench_name
              << " (scale " << scale << ")\n\n";

    ExperimentResult result = runExperiment(spec);

    std::cout << std::left << std::setw(24) << "policy" << std::right
              << std::setw(14) << "disk E (J)" << std::setw(16)
              << "run time (s)" << std::setw(10) << "spinups"
              << '\n';
    for (std::size_t i = 0; i < result.size(); ++i) {
        const BenchmarkRun &run = result.at(i);
        if (!run.hasData()) {
            std::cout << std::left << std::setw(24) << labels[i]
                      << "(no data: "
                      << runOutcomeName(run.result.outcome)
                      << ")\n";
            continue;
        }
        double seconds = double(run.system->now()) /
                         run.system->powerModel()
                             .technology()
                             .freqHz() *
                         run.system->config().timeScale;
        std::cout << std::left << std::setw(24) << labels[i]
                  << std::right << std::setw(14) << std::fixed
                  << std::setprecision(2)
                  << run.system->diskEnergyJ() << std::setw(16)
                  << std::setprecision(3) << seconds << std::setw(10)
                  << run.system->disk().spinUps() << '\n';
    }

    std::cout << "\nA threshold only pays off when the benchmark's "
                 "disk-quiet gaps are much longer than\nthe threshold "
                 "plus the 5 s spin-up; shorter gaps buy the spin-up "
                 "energy AND the stall.\n";
    return result.exitCode();
}
