file(REMOVE_RECURSE
  "CMakeFiles/disk_policy_explorer.dir/disk_policy_explorer.cpp.o"
  "CMakeFiles/disk_policy_explorer.dir/disk_policy_explorer.cpp.o.d"
  "disk_policy_explorer"
  "disk_policy_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_policy_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
