# Empty dependencies file for disk_policy_explorer.
# This may be replaced when dependencies are built.
