# Empty dependencies file for hotspot_report.
# This may be replaced when dependencies are built.
