file(REMOVE_RECURSE
  "CMakeFiles/hotspot_report.dir/hotspot_report.cpp.o"
  "CMakeFiles/hotspot_report.dir/hotspot_report.cpp.o.d"
  "hotspot_report"
  "hotspot_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
