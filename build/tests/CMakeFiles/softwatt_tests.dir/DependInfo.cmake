
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_array_models.cc" "tests/CMakeFiles/softwatt_tests.dir/test_array_models.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_array_models.cc.o.d"
  "/root/repo/tests/test_branch_predictor.cc" "tests/CMakeFiles/softwatt_tests.dir/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_branch_predictor.cc.o.d"
  "/root/repo/tests/test_cache.cc" "tests/CMakeFiles/softwatt_tests.dir/test_cache.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_cache.cc.o.d"
  "/root/repo/tests/test_cache_model.cc" "tests/CMakeFiles/softwatt_tests.dir/test_cache_model.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_cache_model.cc.o.d"
  "/root/repo/tests/test_characterization.cc" "tests/CMakeFiles/softwatt_tests.dir/test_characterization.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_characterization.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/softwatt_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_counters.cc" "tests/CMakeFiles/softwatt_tests.dir/test_counters.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_counters.cc.o.d"
  "/root/repo/tests/test_cpu_power.cc" "tests/CMakeFiles/softwatt_tests.dir/test_cpu_power.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_cpu_power.cc.o.d"
  "/root/repo/tests/test_disk.cc" "tests/CMakeFiles/softwatt_tests.dir/test_disk.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_disk.cc.o.d"
  "/root/repo/tests/test_disk_sweep.cc" "tests/CMakeFiles/softwatt_tests.dir/test_disk_sweep.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_disk_sweep.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/softwatt_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/softwatt_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_file_system.cc" "tests/CMakeFiles/softwatt_tests.dir/test_file_system.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_file_system.cc.o.d"
  "/root/repo/tests/test_hierarchy.cc" "tests/CMakeFiles/softwatt_tests.dir/test_hierarchy.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_hierarchy.cc.o.d"
  "/root/repo/tests/test_inorder_cpu.cc" "tests/CMakeFiles/softwatt_tests.dir/test_inorder_cpu.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_inorder_cpu.cc.o.d"
  "/root/repo/tests/test_integration_edge.cc" "tests/CMakeFiles/softwatt_tests.dir/test_integration_edge.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_integration_edge.cc.o.d"
  "/root/repo/tests/test_kernel.cc" "tests/CMakeFiles/softwatt_tests.dir/test_kernel.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_kernel.cc.o.d"
  "/root/repo/tests/test_power_calculator.cc" "tests/CMakeFiles/softwatt_tests.dir/test_power_calculator.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_power_calculator.cc.o.d"
  "/root/repo/tests/test_random.cc" "tests/CMakeFiles/softwatt_tests.dir/test_random.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_random.cc.o.d"
  "/root/repo/tests/test_report.cc" "tests/CMakeFiles/softwatt_tests.dir/test_report.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_report.cc.o.d"
  "/root/repo/tests/test_sample_log.cc" "tests/CMakeFiles/softwatt_tests.dir/test_sample_log.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_sample_log.cc.o.d"
  "/root/repo/tests/test_service_streams.cc" "tests/CMakeFiles/softwatt_tests.dir/test_service_streams.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_service_streams.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/softwatt_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_stream_gen.cc" "tests/CMakeFiles/softwatt_tests.dir/test_stream_gen.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_stream_gen.cc.o.d"
  "/root/repo/tests/test_superscalar_cpu.cc" "tests/CMakeFiles/softwatt_tests.dir/test_superscalar_cpu.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_superscalar_cpu.cc.o.d"
  "/root/repo/tests/test_system.cc" "tests/CMakeFiles/softwatt_tests.dir/test_system.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_system.cc.o.d"
  "/root/repo/tests/test_system_sweep.cc" "tests/CMakeFiles/softwatt_tests.dir/test_system_sweep.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_system_sweep.cc.o.d"
  "/root/repo/tests/test_tlb.cc" "tests/CMakeFiles/softwatt_tests.dir/test_tlb.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_tlb.cc.o.d"
  "/root/repo/tests/test_workload.cc" "tests/CMakeFiles/softwatt_tests.dir/test_workload.cc.o" "gcc" "tests/CMakeFiles/softwatt_tests.dir/test_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/softwatt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/softwatt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/softwatt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/softwatt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/softwatt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/softwatt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/softwatt_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softwatt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
