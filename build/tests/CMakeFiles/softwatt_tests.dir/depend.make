# Empty dependencies file for softwatt_tests.
# This may be replaced when dependencies are built.
