
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9.cpp" "bench/CMakeFiles/bench_fig9.dir/bench_fig9.cpp.o" "gcc" "bench/CMakeFiles/bench_fig9.dir/bench_fig9.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/softwatt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/softwatt_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/softwatt_os.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/softwatt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/softwatt_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/softwatt_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/softwatt_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/softwatt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
