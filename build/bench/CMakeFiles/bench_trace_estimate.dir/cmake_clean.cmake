file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_estimate.dir/bench_trace_estimate.cpp.o"
  "CMakeFiles/bench_trace_estimate.dir/bench_trace_estimate.cpp.o.d"
  "bench_trace_estimate"
  "bench_trace_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
