# Empty compiler generated dependencies file for bench_trace_estimate.
# This may be replaced when dependencies are built.
