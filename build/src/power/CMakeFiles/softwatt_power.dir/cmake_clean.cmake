file(REMOVE_RECURSE
  "CMakeFiles/softwatt_power.dir/array_models.cc.o"
  "CMakeFiles/softwatt_power.dir/array_models.cc.o.d"
  "CMakeFiles/softwatt_power.dir/cache_model.cc.o"
  "CMakeFiles/softwatt_power.dir/cache_model.cc.o.d"
  "CMakeFiles/softwatt_power.dir/components.cc.o"
  "CMakeFiles/softwatt_power.dir/components.cc.o.d"
  "CMakeFiles/softwatt_power.dir/cpu_power.cc.o"
  "CMakeFiles/softwatt_power.dir/cpu_power.cc.o.d"
  "CMakeFiles/softwatt_power.dir/power_calculator.cc.o"
  "CMakeFiles/softwatt_power.dir/power_calculator.cc.o.d"
  "CMakeFiles/softwatt_power.dir/technology.cc.o"
  "CMakeFiles/softwatt_power.dir/technology.cc.o.d"
  "libsoftwatt_power.a"
  "libsoftwatt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
