file(REMOVE_RECURSE
  "libsoftwatt_power.a"
)
