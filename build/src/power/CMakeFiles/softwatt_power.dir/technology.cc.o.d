src/power/CMakeFiles/softwatt_power.dir/technology.cc.o: \
 /root/repo/src/power/technology.cc /usr/include/stdc-predef.h \
 /root/repo/src/power/technology.hh
