
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/array_models.cc" "src/power/CMakeFiles/softwatt_power.dir/array_models.cc.o" "gcc" "src/power/CMakeFiles/softwatt_power.dir/array_models.cc.o.d"
  "/root/repo/src/power/cache_model.cc" "src/power/CMakeFiles/softwatt_power.dir/cache_model.cc.o" "gcc" "src/power/CMakeFiles/softwatt_power.dir/cache_model.cc.o.d"
  "/root/repo/src/power/components.cc" "src/power/CMakeFiles/softwatt_power.dir/components.cc.o" "gcc" "src/power/CMakeFiles/softwatt_power.dir/components.cc.o.d"
  "/root/repo/src/power/cpu_power.cc" "src/power/CMakeFiles/softwatt_power.dir/cpu_power.cc.o" "gcc" "src/power/CMakeFiles/softwatt_power.dir/cpu_power.cc.o.d"
  "/root/repo/src/power/power_calculator.cc" "src/power/CMakeFiles/softwatt_power.dir/power_calculator.cc.o" "gcc" "src/power/CMakeFiles/softwatt_power.dir/power_calculator.cc.o.d"
  "/root/repo/src/power/technology.cc" "src/power/CMakeFiles/softwatt_power.dir/technology.cc.o" "gcc" "src/power/CMakeFiles/softwatt_power.dir/technology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/softwatt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
