# Empty compiler generated dependencies file for softwatt_power.
# This may be replaced when dependencies are built.
