# Empty dependencies file for softwatt_disk.
# This may be replaced when dependencies are built.
