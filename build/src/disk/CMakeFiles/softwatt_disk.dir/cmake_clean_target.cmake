file(REMOVE_RECURSE
  "libsoftwatt_disk.a"
)
