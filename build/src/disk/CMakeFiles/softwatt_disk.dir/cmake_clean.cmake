file(REMOVE_RECURSE
  "CMakeFiles/softwatt_disk.dir/disk.cc.o"
  "CMakeFiles/softwatt_disk.dir/disk.cc.o.d"
  "libsoftwatt_disk.a"
  "libsoftwatt_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
