file(REMOVE_RECURSE
  "CMakeFiles/softwatt_core.dir/experiment.cc.o"
  "CMakeFiles/softwatt_core.dir/experiment.cc.o.d"
  "CMakeFiles/softwatt_core.dir/idle_profile.cc.o"
  "CMakeFiles/softwatt_core.dir/idle_profile.cc.o.d"
  "CMakeFiles/softwatt_core.dir/report.cc.o"
  "CMakeFiles/softwatt_core.dir/report.cc.o.d"
  "CMakeFiles/softwatt_core.dir/system.cc.o"
  "CMakeFiles/softwatt_core.dir/system.cc.o.d"
  "libsoftwatt_core.a"
  "libsoftwatt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
