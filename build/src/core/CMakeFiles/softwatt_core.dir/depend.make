# Empty dependencies file for softwatt_core.
# This may be replaced when dependencies are built.
