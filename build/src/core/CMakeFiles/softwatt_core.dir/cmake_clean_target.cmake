file(REMOVE_RECURSE
  "libsoftwatt_core.a"
)
