file(REMOVE_RECURSE
  "CMakeFiles/softwatt_workload.dir/workload.cc.o"
  "CMakeFiles/softwatt_workload.dir/workload.cc.o.d"
  "libsoftwatt_workload.a"
  "libsoftwatt_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
