# Empty compiler generated dependencies file for softwatt_workload.
# This may be replaced when dependencies are built.
