file(REMOVE_RECURSE
  "libsoftwatt_workload.a"
)
