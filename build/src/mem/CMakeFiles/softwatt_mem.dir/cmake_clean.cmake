file(REMOVE_RECURSE
  "CMakeFiles/softwatt_mem.dir/cache.cc.o"
  "CMakeFiles/softwatt_mem.dir/cache.cc.o.d"
  "CMakeFiles/softwatt_mem.dir/hierarchy.cc.o"
  "CMakeFiles/softwatt_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/softwatt_mem.dir/page_table.cc.o"
  "CMakeFiles/softwatt_mem.dir/page_table.cc.o.d"
  "CMakeFiles/softwatt_mem.dir/tlb.cc.o"
  "CMakeFiles/softwatt_mem.dir/tlb.cc.o.d"
  "libsoftwatt_mem.a"
  "libsoftwatt_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
