file(REMOVE_RECURSE
  "libsoftwatt_mem.a"
)
