# Empty compiler generated dependencies file for softwatt_mem.
# This may be replaced when dependencies are built.
