file(REMOVE_RECURSE
  "libsoftwatt_cpu.a"
)
