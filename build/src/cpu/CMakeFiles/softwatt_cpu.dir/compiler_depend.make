# Empty compiler generated dependencies file for softwatt_cpu.
# This may be replaced when dependencies are built.
