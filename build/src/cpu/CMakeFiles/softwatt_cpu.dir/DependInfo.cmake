
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpu/branch_predictor.cc" "src/cpu/CMakeFiles/softwatt_cpu.dir/branch_predictor.cc.o" "gcc" "src/cpu/CMakeFiles/softwatt_cpu.dir/branch_predictor.cc.o.d"
  "/root/repo/src/cpu/cpu.cc" "src/cpu/CMakeFiles/softwatt_cpu.dir/cpu.cc.o" "gcc" "src/cpu/CMakeFiles/softwatt_cpu.dir/cpu.cc.o.d"
  "/root/repo/src/cpu/inorder_cpu.cc" "src/cpu/CMakeFiles/softwatt_cpu.dir/inorder_cpu.cc.o" "gcc" "src/cpu/CMakeFiles/softwatt_cpu.dir/inorder_cpu.cc.o.d"
  "/root/repo/src/cpu/stream_gen.cc" "src/cpu/CMakeFiles/softwatt_cpu.dir/stream_gen.cc.o" "gcc" "src/cpu/CMakeFiles/softwatt_cpu.dir/stream_gen.cc.o.d"
  "/root/repo/src/cpu/superscalar_cpu.cc" "src/cpu/CMakeFiles/softwatt_cpu.dir/superscalar_cpu.cc.o" "gcc" "src/cpu/CMakeFiles/softwatt_cpu.dir/superscalar_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/softwatt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/softwatt_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
