file(REMOVE_RECURSE
  "CMakeFiles/softwatt_cpu.dir/branch_predictor.cc.o"
  "CMakeFiles/softwatt_cpu.dir/branch_predictor.cc.o.d"
  "CMakeFiles/softwatt_cpu.dir/cpu.cc.o"
  "CMakeFiles/softwatt_cpu.dir/cpu.cc.o.d"
  "CMakeFiles/softwatt_cpu.dir/inorder_cpu.cc.o"
  "CMakeFiles/softwatt_cpu.dir/inorder_cpu.cc.o.d"
  "CMakeFiles/softwatt_cpu.dir/stream_gen.cc.o"
  "CMakeFiles/softwatt_cpu.dir/stream_gen.cc.o.d"
  "CMakeFiles/softwatt_cpu.dir/superscalar_cpu.cc.o"
  "CMakeFiles/softwatt_cpu.dir/superscalar_cpu.cc.o.d"
  "libsoftwatt_cpu.a"
  "libsoftwatt_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
