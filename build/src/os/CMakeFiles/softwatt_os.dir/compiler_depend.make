# Empty compiler generated dependencies file for softwatt_os.
# This may be replaced when dependencies are built.
