file(REMOVE_RECURSE
  "CMakeFiles/softwatt_os.dir/file_system.cc.o"
  "CMakeFiles/softwatt_os.dir/file_system.cc.o.d"
  "CMakeFiles/softwatt_os.dir/kernel.cc.o"
  "CMakeFiles/softwatt_os.dir/kernel.cc.o.d"
  "CMakeFiles/softwatt_os.dir/service.cc.o"
  "CMakeFiles/softwatt_os.dir/service.cc.o.d"
  "CMakeFiles/softwatt_os.dir/service_streams.cc.o"
  "CMakeFiles/softwatt_os.dir/service_streams.cc.o.d"
  "libsoftwatt_os.a"
  "libsoftwatt_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
