file(REMOVE_RECURSE
  "libsoftwatt_os.a"
)
