# Empty dependencies file for softwatt_sim.
# This may be replaced when dependencies are built.
