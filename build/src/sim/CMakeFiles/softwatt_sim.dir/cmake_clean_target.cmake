file(REMOVE_RECURSE
  "libsoftwatt_sim.a"
)
