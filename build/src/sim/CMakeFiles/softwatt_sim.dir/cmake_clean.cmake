file(REMOVE_RECURSE
  "CMakeFiles/softwatt_sim.dir/config.cc.o"
  "CMakeFiles/softwatt_sim.dir/config.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/counters.cc.o"
  "CMakeFiles/softwatt_sim.dir/counters.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/event_queue.cc.o"
  "CMakeFiles/softwatt_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/logging.cc.o"
  "CMakeFiles/softwatt_sim.dir/logging.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/machine_params.cc.o"
  "CMakeFiles/softwatt_sim.dir/machine_params.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/sample_log.cc.o"
  "CMakeFiles/softwatt_sim.dir/sample_log.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/stats.cc.o"
  "CMakeFiles/softwatt_sim.dir/stats.cc.o.d"
  "CMakeFiles/softwatt_sim.dir/types.cc.o"
  "CMakeFiles/softwatt_sim.dir/types.cc.o.d"
  "libsoftwatt_sim.a"
  "libsoftwatt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softwatt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
