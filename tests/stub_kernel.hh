/**
 * @file
 * A minimal KernelIface stub for CPU-model unit tests: serves a
 * scripted or generated instruction stream, records traps/syscalls,
 * and performs zero-cost TLB refills with replay.
 */

#ifndef SOFTWATT_TESTS_STUB_KERNEL_HH
#define SOFTWATT_TESTS_STUB_KERNEL_HH

#include <deque>
#include <vector>

#include "cpu/kernel_iface.hh"
#include "mem/tlb.hh"

namespace softwatt
{

class StubKernel : public KernelIface
{
  public:
    explicit StubKernel(Tlb *tlb = nullptr) : tlb(tlb) {}

    /** Script a fixed op sequence (served before the generator). */
    void
    push(const MicroOp &op)
    {
        script.push_back(op);
    }

    /** Optional infinite source consulted after the script. */
    InstSource *fallback = nullptr;

    FetchOutcome
    fetchNext(MicroOp &op) override
    {
        if (!replayQueue.empty()) {
            op = replayQueue.front();
            replayQueue.pop_front();
            ++replayServed;
            return FetchOutcome::Op;
        }
        if (!script.empty()) {
            op = script.front();
            script.pop_front();
            return FetchOutcome::Op;
        }
        if (fallback)
            return fallback->next(op);
        return endWhenEmpty ? FetchOutcome::End
                            : FetchOutcome::Stall;
    }

    void
    dataTlbMiss(Addr vaddr, std::uint32_t asid,
                std::vector<MicroOp> replay) override
    {
        ++tlbMisses;
        lastMissAddr = vaddr;
        lastReplaySize = replay.size();
        if (tlb)
            tlb->insert(asid, vaddr);
        for (auto it = replay.rbegin(); it != replay.rend(); ++it)
            replayQueue.push_front(*it);
    }

    void
    syscall(const MicroOp &op) override
    {
        syscallIds.push_back(op.syscallId);
    }

    void
    onCommit(const MicroOp &op) override
    {
        committed.push_back(op.pc);
    }

    bool interruptPending() const override { return intPending; }

    void
    takeInterrupt(std::vector<MicroOp> replay) override
    {
        intPending = false;
        ++interruptsTaken;
        lastReplaySize = replay.size();
        for (auto it = replay.rbegin(); it != replay.rend(); ++it)
            replayQueue.push_front(*it);
    }

    void onPipelineEmpty() override { ++pipelineEmptyCalls; }

    ExecMode
    currentStreamMode() const override
    {
        return ExecMode::User;
    }

    std::uint32_t privilegedTag() const override { return 0; }

    Tlb *tlb;
    std::deque<MicroOp> script;
    std::deque<MicroOp> replayQueue;
    std::vector<std::uint16_t> syscallIds;
    std::vector<Addr> committed;
    int tlbMisses = 0;
    Addr lastMissAddr = 0;
    std::size_t lastReplaySize = 0;
    std::uint64_t replayServed = 0;
    bool intPending = false;
    bool endWhenEmpty = false;
    int interruptsTaken = 0;
    std::uint64_t pipelineEmptyCalls = 0;
};

/** Convenience builders for scripted ops. */
inline MicroOp
aluOp(Addr pc, std::uint8_t src = noReg, std::uint8_t dst = noReg)
{
    MicroOp op;
    op.cls = InstClass::IntAlu;
    op.pc = pc;
    op.srcA = src;
    op.dst = dst;
    op.mode = ExecMode::User;
    return op;
}

inline MicroOp
loadOp(Addr pc, Addr addr, bool kernel_mapped = true)
{
    MicroOp op;
    op.cls = InstClass::Load;
    op.pc = pc;
    op.memAddr = addr;
    op.dst = 1;
    op.asid = 1;
    op.kernelMapped = kernel_mapped;
    op.mode = ExecMode::User;
    return op;
}

} // namespace softwatt

#endif // SOFTWATT_TESTS_STUB_KERNEL_HH
