/**
 * @file
 * Tests for the contract macros (sim/check.hh) and the runtime
 * invariant checker (core/invariants.hh): a clean run passes every
 * sweep, targeted corruption is caught and named, and the checks
 * observe without perturbing results.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/experiment.hh"
#include "core/invariants.hh"
#include "core/system.hh"
#include "sim/check.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

using namespace softwatt;

namespace
{

/** Install the throwing handler for the scope of one test. */
struct HandlerGuard
{
    HandlerGuard() { setErrorHandler(throwingErrorHandler); }
    ~HandlerGuard() { setErrorHandler(nullptr); }
};

SystemConfig
tinyConfig()
{
    SystemConfig config;
    config.sampleWindow = 20'000;
    return config;
}

/** A small complete run with invariants checked afterwards. */
BenchmarkRun
checkedRun(SystemConfig config = tinyConfig())
{
    BenchmarkRun run = runBenchmark(Benchmark::Jess, config, 0.03);
    run.system->invariants().setEnabled(true);
    return run;
}

} // namespace

TEST(ContractMacros, SwCheckPassesOnTrueCondition)
{
    HandlerGuard guard;
    EXPECT_NO_THROW(SW_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(ContractMacros, SwCheckPanicsWithExpressionAndDetail)
{
    HandlerGuard guard;
    try {
        SW_CHECK(2 + 2 == 5, "detail text");
        FAIL() << "SW_CHECK(false) must not fall through";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Panic);
        EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("detail text"),
                  std::string::npos);
    }
}

TEST(ContractMacros, SwAssertCompiledPerBuildMode)
{
    HandlerGuard guard;
    if constexpr (checksEnabled()) {
        EXPECT_THROW(SW_ASSERT(false, "gated"), SimError);
    } else {
        EXPECT_NO_THROW(SW_ASSERT(false, "gated"));
    }
    // Always harmless when the condition holds.
    EXPECT_NO_THROW(SW_ASSERT(true, "gated"));
}

TEST(InvariantChecker, DisabledCheckerIsANoOp)
{
    InvariantChecker checker;
    checker.setEnabled(false);
    checker.add("always-fails", [] { return "broken"; });
    HandlerGuard guard;
    EXPECT_NO_THROW(checker.checkAll("test"));
    EXPECT_EQ(checker.passes(), 0u);
}

TEST(InvariantChecker, FirstFailureInRegistrationOrderWins)
{
    InvariantChecker checker;
    checker.setEnabled(true);
    checker.add("passes", [] { return ""; });
    checker.add("fails-first", [] { return "detail A"; });
    checker.add("fails-second", [] { return "detail B"; });
    HandlerGuard guard;
    try {
        checker.checkAll("unit");
        FAIL() << "expected a violation";
    } catch (const SimError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("fails-first"), std::string::npos);
        EXPECT_NE(what.find("detail A"), std::string::npos);
        EXPECT_NE(what.find("(unit)"), std::string::npos);
        EXPECT_EQ(what.find("fails-second"), std::string::npos);
    }
    EXPECT_EQ(checker.passes(), 0u);
}

TEST(InvariantChecker, CountsCleanSweeps)
{
    InvariantChecker checker;
    checker.setEnabled(true);
    checker.add("ok", [] { return ""; });
    checker.checkAll("a");
    checker.checkAll("b");
    EXPECT_EQ(checker.passes(), 2u);
}

TEST(Invariants, CleanRunPassesEverySweep)
{
    HandlerGuard guard;
    BenchmarkRun run = checkedRun();
    ASSERT_TRUE(run.result.ok());
    EXPECT_GT(run.system->invariants().size(), 5u);
    // In checks-enabled builds the run itself already swept at every
    // sample boundary; either way this sweep must add exactly one.
    std::uint64_t before = run.system->invariants().passes();
    EXPECT_NO_THROW(run.system->checkInvariants("post-run"));
    EXPECT_EQ(run.system->invariants().passes(), before + 1);
}

TEST(Invariants, SweepsRunAtSampleBoundariesWhenEnabled)
{
    HandlerGuard guard;
    // Enable before run() so every closeWindow sweeps.
    System sys(tinyConfig());
    sys.invariants().setEnabled(true);
    WorkloadSpec spec =
        scaleWorkload(benchmarkSpec(Benchmark::Jess), 0.03);
    sys.attachWorkload(std::make_unique<Workload>(spec));
    RunResult result = sys.run();
    EXPECT_TRUE(result.ok());
    // One sweep per logged window plus the end-of-run sweep.
    EXPECT_GE(sys.invariants().passes(), sys.log().size());
}

TEST(Invariants, CorruptedCounterTotalsAreCaught)
{
    HandlerGuard guard;
    BenchmarkRun run = checkedRun();
    // Inflate (not clear) a counter: monotonicity still holds, so
    // the bank-vs-log cross-check is the invariant that must fire,
    // in checks-on and checks-off builds alike.
    run.system->totalsForTest().addTo(ExecMode::User,
                                      CounterId::Cycles, 1);
    try {
        run.system->checkInvariants("post-corruption");
        FAIL() << "corrupted totals bank must violate an invariant";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Panic);
        EXPECT_NE(std::string(e.what())
                      .find("counters.totals-match-log"),
                  std::string::npos);
    }
}

TEST(Invariants, CounterRegressionBetweenSweepsIsCaught)
{
    HandlerGuard guard;
    BenchmarkRun run = checkedRun();
    // First sweep snapshots the totals; clearing them afterwards is
    // a regression the monotonicity invariant must flag.
    run.system->checkInvariants("snapshot");
    run.system->totalsForTest().clear();
    try {
        run.system->checkInvariants("post-corruption");
        FAIL() << "decreasing counters must violate an invariant";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("counters.monotone"),
                  std::string::npos);
    }
}

TEST(Invariants, IllegalDiskTransitionIsCaughtAndNamed)
{
    HandlerGuard guard;
    BenchmarkRun run = checkedRun();
    ASSERT_EQ(run.system->disk().state(), DiskState::Idle);
    // IDLE -> SLEEP skips the mandatory spin-down: illegal.
    run.system->disk().testForceState(DiskState::Sleep);
    EXPECT_EQ(run.system->disk().illegalTransitions(), 1u);
    EXPECT_EQ(run.system->disk().firstIllegalTransition(),
              "IDLE->SLEEP");
    try {
        run.system->checkInvariants("post-corruption");
        FAIL() << "illegal transition must violate an invariant";
    } catch (const SimError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("disk.legal-transitions"),
                  std::string::npos);
        EXPECT_NE(what.find("IDLE->SLEEP"), std::string::npos);
    }
}

TEST(Invariants, LegalDiskTransitionsPassTheSweep)
{
    HandlerGuard guard;
    BenchmarkRun run = checkedRun();
    ASSERT_EQ(run.system->disk().state(), DiskState::Idle);
    // Walk a legal path: IDLE -> SPINDOWN -> STANDBY -> SPINUP ->
    // IDLE. Residency/energy bookkeeping stays consistent.
    run.system->disk().testForceState(DiskState::SpinningDown);
    run.system->disk().testForceState(DiskState::Standby);
    run.system->disk().testForceState(DiskState::SpinningUp);
    run.system->disk().testForceState(DiskState::Idle);
    EXPECT_EQ(run.system->disk().illegalTransitions(), 0u);
    EXPECT_NO_THROW(run.system->checkInvariants("post-walk"));
}

TEST(DiskStateMachine, LegalTransitionTableMatchesFigure2)
{
    // Every state may self-transition.
    for (int s = 0; s <= int(DiskState::Seeking); ++s) {
        EXPECT_TRUE(Disk::legalTransition(DiskState(s),
                                          DiskState(s)));
    }
    EXPECT_TRUE(Disk::legalTransition(DiskState::Sleep,
                                      DiskState::SpinningUp));
    EXPECT_TRUE(Disk::legalTransition(DiskState::Idle,
                                      DiskState::SpinningDown));
    EXPECT_TRUE(Disk::legalTransition(DiskState::Seeking,
                                      DiskState::Active));
    EXPECT_TRUE(Disk::legalTransition(DiskState::Active,
                                      DiskState::Idle));
    // A sleeping or standby disk must spin up before working.
    EXPECT_FALSE(Disk::legalTransition(DiskState::Sleep,
                                       DiskState::Active));
    EXPECT_FALSE(Disk::legalTransition(DiskState::Standby,
                                       DiskState::Seeking));
    // Spin-down is mandatory on the way to the low-power modes.
    EXPECT_FALSE(Disk::legalTransition(DiskState::Idle,
                                       DiskState::Sleep));
    EXPECT_FALSE(Disk::legalTransition(DiskState::Idle,
                                       DiskState::Standby));
    // ACTIVE is only reachable from SEEK (or itself).
    EXPECT_FALSE(Disk::legalTransition(DiskState::Idle,
                                       DiskState::Active));
}

TEST(Invariants, ApproxEqualHonoursTolerances)
{
    EXPECT_TRUE(invariantApproxEqual(1.0, 1.0));
    EXPECT_TRUE(invariantApproxEqual(1.0, 1.0 + 1e-12));
    EXPECT_TRUE(invariantApproxEqual(0.0, 1e-13));
    EXPECT_FALSE(invariantApproxEqual(1.0, 1.0 + 1e-6));
    EXPECT_FALSE(invariantApproxEqual(1.0,
                                      std::nan("")));
}

TEST(Invariants, CheckingDoesNotPerturbResults)
{
    HandlerGuard guard;
    // Identical configs, one run swept at every boundary, one never:
    // totals and energies must agree bit for bit.
    BenchmarkRun plain =
        runBenchmark(Benchmark::Jess, tinyConfig(), 0.03);
    System sys(tinyConfig());
    sys.invariants().setEnabled(true);
    WorkloadSpec spec =
        scaleWorkload(benchmarkSpec(Benchmark::Jess), 0.03);
    sys.attachWorkload(std::make_unique<Workload>(spec));
    ASSERT_TRUE(sys.run().ok());

    EXPECT_EQ(sys.now(), plain.system->now());
    EXPECT_EQ(sys.log().size(), plain.system->log().size());
    for (ExecMode m : allExecModes) {
        for (int c = 0; c < numCounters; ++c) {
            EXPECT_EQ(sys.totals().get(m, CounterId(c)),
                      plain.system->totals().get(m, CounterId(c)));
        }
    }
    EXPECT_EQ(sys.breakdown().cpuMemEnergyJ(),
              plain.breakdown.cpuMemEnergyJ());
    EXPECT_EQ(sys.diskEnergyJ(), plain.system->diskEnergyJ());
}
