/**
 * @file
 * Tests for the post-processing power pass.
 */

#include <gtest/gtest.h>

#include "power/power_calculator.hh"

using namespace softwatt;

namespace
{

struct Fixture
{
    MachineParams machine;
    CpuPowerModel model{machine, true};
    PowerCalculator calc{model};
};

CounterBank
userBank(Cycles cycles, std::uint64_t il1, std::uint64_t alu)
{
    CounterBank bank;
    bank.addTo(ExecMode::User, CounterId::Cycles, cycles);
    bank.addTo(ExecMode::User, CounterId::IL1Ref, il1);
    bank.addTo(ExecMode::User, CounterId::IntAluOp, alu);
    return bank;
}

} // namespace

TEST(PowerCalculator, CacheEnergyIsLinearInReferences)
{
    Fixture f;
    CounterBank one = userBank(100, 10, 0);
    CounterBank two = userBank(100, 20, 0);
    ComponentEnergy e1 =
        f.calc.energiesForMode(one, ExecMode::User, 100);
    ComponentEnergy e2 =
        f.calc.energiesForMode(two, ExecMode::User, 100);
    EXPECT_NEAR(e2[int(Component::L1ICache)],
                2.0 * e1[int(Component::L1ICache)], 1e-15);
}

TEST(PowerCalculator, IL1EnergyMatchesUnitEnergy)
{
    Fixture f;
    CounterBank bank = userBank(100, 1000, 0);
    ComponentEnergy e =
        f.calc.energiesForMode(bank, ExecMode::User, 100);
    double expected =
        1000 * f.model.energies().il1ReadNj * 1e-9;
    EXPECT_NEAR(e[int(Component::L1ICache)], expected, 1e-12);
}

TEST(PowerCalculator, ClockActivityBounds)
{
    Fixture f;
    CounterBank idle = userBank(1000, 0, 0);
    EXPECT_DOUBLE_EQ(
        f.calc.clockActivity(idle, ExecMode::User, 1000), 0.0);

    CounterBank busy;
    busy.addTo(ExecMode::User, CounterId::Cycles, 100);
    for (int c = 0; c < numCounters; ++c)
        busy.addTo(ExecMode::User, CounterId(c), 1'000'000);
    double act = f.calc.clockActivity(busy, ExecMode::User, 100);
    EXPECT_GT(act, 0.9);
    EXPECT_LE(act, 1.0);
}

TEST(PowerCalculator, ClockActivityMonotoneInActivity)
{
    Fixture f;
    CounterBank lo = userBank(1000, 500, 100);
    CounterBank hi = userBank(1000, 2000, 800);
    EXPECT_LT(f.calc.clockActivity(lo, ExecMode::User, 1000),
              f.calc.clockActivity(hi, ExecMode::User, 1000));
}

TEST(PowerCalculator, MemoryBackgroundChargedPerModeSeconds)
{
    Fixture f;
    CounterBank bank;
    bank.addTo(ExecMode::Idle, CounterId::Cycles, 200'000'000);
    ComponentEnergy e =
        f.calc.energiesForMode(bank, ExecMode::Idle, 200'000'000);
    // 1 second at 200 MHz: background energy == background power.
    EXPECT_NEAR(e[int(Component::Memory)],
                f.model.memoryModel().backgroundPowerW(), 1e-6);
}

TEST(PowerCalculator, ProcessTotalsEqualWindowSums)
{
    Fixture f;
    SampleLog log;
    for (int w = 0; w < 3; ++w) {
        SampleRecord rec;
        rec.startTick = w * 1000;
        rec.endTick = (w + 1) * 1000;
        rec.counters = userBank(1000, 800 + w * 100, 300);
        log.append(rec);
    }
    PowerTrace trace = f.calc.process(log);
    ASSERT_EQ(trace.windows.size(), 3u);
    EXPECT_EQ(trace.total.cycles[int(ExecMode::User)], 3000u);

    double window_il1 = 0;
    for (const SampleRecord &rec : log.all()) {
        window_il1 +=
            f.calc.energiesForMode(rec.counters, ExecMode::User,
                                   1000)[int(Component::L1ICache)];
    }
    EXPECT_NEAR(trace.total.energyJ[int(ExecMode::User)]
                                   [int(Component::L1ICache)],
                window_il1, 1e-15);
}

TEST(PowerCalculator, TotalEnergyEqualsComponentSum)
{
    Fixture f;
    CounterBank bank = userBank(5000, 4000, 1500);
    bank.addTo(ExecMode::KernelInst, CounterId::Cycles, 500);
    bank.addTo(ExecMode::KernelInst, CounterId::IL1Ref, 400);
    ComponentEnergy by = f.calc.componentEnergiesOf(bank);
    double sum = 0;
    for (double e : by)
        sum += e;
    EXPECT_NEAR(f.calc.totalEnergyJ(bank), sum, 1e-15);
}

TEST(PowerBreakdown, SharesSumToHundred)
{
    Fixture f;
    SampleLog log;
    SampleRecord rec;
    rec.startTick = 0;
    rec.endTick = 10000;
    rec.counters = userBank(10000, 9000, 4000);
    log.append(rec);
    PowerBreakdown total = f.calc.process(log).total;
    total.diskEnergyJ = total.cpuMemEnergyJ() * 0.3;
    double sum = 0;
    for (Component c : allComponents)
        sum += total.componentSharePct(c);
    EXPECT_NEAR(sum, 100.0, 1e-6);
}

TEST(PowerBreakdown, ModePowerUsesModeCycles)
{
    Fixture f;
    SampleLog log;
    SampleRecord rec;
    rec.startTick = 0;
    rec.endTick = 2000;
    rec.counters = userBank(1000, 2000, 760);
    rec.counters.addTo(ExecMode::Idle, CounterId::Cycles, 1000);
    log.append(rec);
    PowerBreakdown total = f.calc.process(log).total;
    // User mode has all the activity: its power must exceed idle's.
    EXPECT_GT(total.modeAvgPowerW(ExecMode::User),
              total.modeAvgPowerW(ExecMode::Idle));
}

TEST(PowerBreakdown, AccumulateAdds)
{
    Fixture f;
    PowerBreakdown a, b;
    a.cycles[0] = 100;
    a.energyJ[0][0] = 1.5;
    a.diskEnergyJ = 2.0;
    b.cycles[0] = 50;
    b.energyJ[0][0] = 0.5;
    b.diskEnergyJ = 1.0;
    a.accumulate(b);
    EXPECT_EQ(a.cycles[0], 150u);
    EXPECT_DOUBLE_EQ(a.energyJ[0][0], 2.0);
    EXPECT_DOUBLE_EQ(a.diskEnergyJ, 3.0);
}
