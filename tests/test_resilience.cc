/**
 * @file
 * Tests for resilient experiment execution: the per-run exception
 * firewall, simulated-time deadlines, cooperative cancellation and
 * shutdown drain, and crash-resume through the run journal —
 * including a real SIGKILLed child process whose sweep is resumed
 * and must reproduce the uninterrupted document byte-for-byte.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/journal.hh"
#include "core/runner.hh"
#include "sim/cancel.hh"
#include "sim/signals.hh"
#include "sim/logging.hh"

using namespace softwatt;

namespace
{

/** Read a whole file; "" when absent. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::string
jsonOf(const ExperimentResult &result)
{
    std::ostringstream out;
    result.writeJson(out);
    return out.str();
}

/** Per-test scratch path (ctest runs tests concurrently in one dir). */
std::string
scratch(const std::string &name)
{
    return "resilience_" + name;
}

void
removeOutputs(const std::string &path)
{
    std::remove(path.c_str());
    std::remove(journalPathFor(path).c_str());
}

ExperimentSpec
threeRunSpec(const std::string &title, int jobs)
{
    ExperimentSpec spec;
    spec.title = title;
    spec.jobs = jobs;
    SystemConfig config;
    spec.add(Benchmark::Jess, config, 0.05);
    spec.add(Benchmark::Compress, config, 0.05);
    spec.add(Benchmark::Db, config, 0.05);
    return spec;
}

class QuietLog
{
  public:
    QuietLog() : saved(logLevel()) { setLogLevel(LogLevel::Quiet); }
    ~QuietLog() { setLogLevel(saved); }

  private:
    LogLevel saved;
};

} // namespace

TEST(RunnerResilience, InjectedThrowIsFirewalledToAFailedRun)
{
    QuietLog quiet;
    ExperimentSpec spec = threeRunSpec("firewall", 1);
    spec.runs[1].injectFailure = "deliberately poisoned run";

    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.size(), 3u);

    // The poisoned run is recorded, not fatal to the sweep.
    const BenchmarkRun &failed = result.at(1);
    EXPECT_EQ(failed.result.outcome, RunOutcome::Failed);
    EXPECT_FALSE(failed.hasData());
    EXPECT_EQ(failed.attempts, 1);
    EXPECT_NE(failed.error.find("deliberately poisoned run"),
              std::string::npos);

    // Its neighbours completed normally.
    EXPECT_EQ(result.at(0).result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.at(2).result.outcome, RunOutcome::Completed);
    EXPECT_TRUE(result.at(0).hasData());

    EXPECT_EQ(result.failedRuns(), 1u);
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_FALSE(result.interrupted());

    // The document records the failure alongside the good runs.
    std::string doc = jsonOf(result);
    EXPECT_NE(doc.find("\"outcome\": \"failed\""),
              std::string::npos);
    EXPECT_NE(doc.find("deliberately poisoned run"),
              std::string::npos);
    EXPECT_NE(doc.find("\"outcome\": \"completed\""),
              std::string::npos);
}

TEST(RunnerResilience, FirewalledSweepIsDeterministicAcrossJobs)
{
    QuietLog quiet;
    ExperimentSpec serial = threeRunSpec("firewall-det", 1);
    serial.runs[1].injectFailure = "boom";
    ExperimentSpec parallel = threeRunSpec("firewall-det", 4);
    parallel.runs[1].injectFailure = "boom";

    std::string a = jsonOf(runExperiment(serial));
    std::string b = jsonOf(runExperiment(parallel));
    EXPECT_EQ(a, b);
}

TEST(RunnerResilience, DiagnosticRerunRecordsSecondAttempt)
{
    QuietLog quiet;
    ExperimentSpec spec;
    spec.title = "diagnose";
    spec.jobs = 1;
    spec.diagnose = true;
    spec.add(Benchmark::Jess, SystemConfig{}, 0.05);
    spec.runs[0].injectFailure = "persistent failure";

    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_EQ(result.at(0).result.outcome, RunOutcome::Failed);
    EXPECT_EQ(result.at(0).attempts, 2);
    EXPECT_NE(jsonOf(result).find("\"attempts\": 2"),
              std::string::npos);
}

TEST(RunnerResilience, DeadlineExpiryIsARecordedOutcome)
{
    QuietLog quiet;
    ExperimentSpec spec;
    spec.title = "deadline";
    spec.jobs = 1;
    SystemConfig config;
    // A budget of 1 ms simulated time trips long before the 0.05
    // scale jess run completes.
    config.deadlineSeconds = 1e-3;
    spec.add(Benchmark::Jess, config, 0.05);
    spec.add(Benchmark::Compress, SystemConfig{}, 0.05);

    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.size(), 2u);

    const BenchmarkRun &expired = result.at(0);
    EXPECT_EQ(expired.result.outcome, RunOutcome::DeadlineExceeded);
    EXPECT_TRUE(expired.hasData());  // partial stats survive
    EXPECT_FALSE(expired.result.diagnostics.empty());

    // The deadline is simulated time, so expiry is deterministic.
    ExperimentResult again = runExperiment(spec);
    EXPECT_EQ(expired.result.cycles, again.at(0).result.cycles);

    // An expired budget is a recorded outcome, not a sweep failure.
    EXPECT_EQ(result.at(1).result.outcome, RunOutcome::Completed);
    EXPECT_EQ(result.exitCode(), 0);
}

TEST(RunnerResilience, SpecDeadlineOnlyFillsUnsetRunBudgets)
{
    QuietLog quiet;
    ExperimentSpec spec;
    spec.title = "deadline-spread";
    spec.jobs = 1;
    spec.deadlineS = 1e-3;
    SystemConfig own;
    own.deadlineSeconds = 1e18;  // effectively unbounded
    spec.add(Benchmark::Jess, own, 0.02, "own");
    spec.add(Benchmark::Jess, SystemConfig{}, 0.02, "spec");

    ExperimentResult result = runExperiment(spec);
    EXPECT_EQ(result.run(Benchmark::Jess, "own").result.outcome,
              RunOutcome::Completed);
    EXPECT_EQ(result.run(Benchmark::Jess, "spec").result.outcome,
              RunOutcome::DeadlineExceeded);
}

TEST(RunnerResilience, DrainRequestSkipsPendingRunsAndFlagsDoc)
{
    QuietLog quiet;
    CancelToken token;
    token.request(CancelToken::Drain);

    ExperimentSpec spec = threeRunSpec("drain", 1);
    spec.cancel = &token;

    ExperimentResult result = runExperiment(spec);
    ASSERT_EQ(result.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(result.at(i).result.outcome,
                  RunOutcome::Cancelled);
        EXPECT_FALSE(result.at(i).hasData());
    }
    EXPECT_TRUE(result.interrupted());
    EXPECT_EQ(result.exitCode(), 130);
    EXPECT_NE(jsonOf(result).find("\"interrupted\": true"),
              std::string::npos);
}

TEST(RunnerResilience, HardCancelStopsInFlightRunAtWindowBoundary)
{
    QuietLog quiet;
    CancelToken token;
    token.request(CancelToken::Hard);

    // Drive System::run directly: a pre-set Hard token stops the run
    // at its first closed sample window, with consistent partials.
    RunOptions options;
    options.cancel = &token;
    BenchmarkRun run =
        runBenchmark(Benchmark::Jess, SystemConfig{}, 0.05, options);
    EXPECT_EQ(run.result.outcome, RunOutcome::Cancelled);
    ASSERT_TRUE(run.hasData());
    EXPECT_GT(run.system->now(), 0u);
}

TEST(RunnerResilience, SignalGuardInstallsAndRestoresHandlers)
{
    CancelToken token;
    EXPECT_FALSE(SignalGuard::active());
    {
        SignalGuard guard(token);
        EXPECT_TRUE(SignalGuard::active());
        // A real SIGINT to ourselves escalates the token one step.
        ASSERT_EQ(raise(SIGINT), 0);
        EXPECT_EQ(token.level(), CancelToken::Drain);
        ASSERT_EQ(raise(SIGTERM), 0);
        EXPECT_EQ(token.level(), CancelToken::Hard);
        EXPECT_EQ(SignalGuard::deliveredSignals(), 2);
    }
    EXPECT_FALSE(SignalGuard::active());
}

TEST(RunnerResilience, SighupDrainsLikeSigterm)
{
    // A closed terminal or dropped ssh session (SIGHUP) must get the
    // same graceful-drain treatment as SIGTERM: in-flight work is
    // journaled and autosaved instead of dying mid-write.
    struct sigaction before = {};
    ASSERT_EQ(sigaction(SIGHUP, nullptr, &before), 0);

    CancelToken token;
    {
        SignalGuard guard(token);
        ASSERT_EQ(raise(SIGHUP), 0);
        EXPECT_EQ(token.level(), CancelToken::Drain);
        ASSERT_EQ(raise(SIGHUP), 0);
        EXPECT_EQ(token.level(), CancelToken::Hard);
        EXPECT_EQ(SignalGuard::deliveredSignals(), 2);
    }
    EXPECT_FALSE(SignalGuard::active());

    // Disposition is restored on guard destruction; a stray SIGHUP
    // handler leaking past the experiment would break every harness
    // run under nohup.
    struct sigaction after = {};
    ASSERT_EQ(sigaction(SIGHUP, nullptr, &after), 0);
    EXPECT_EQ(before.sa_handler, after.sa_handler);
}

TEST(RunnerResilience, SpecFingerprintTracksConfigChanges)
{
    RunSpec a;
    a.bench = Benchmark::Jess;
    a.scale = 0.05;
    RunSpec b = a;
    EXPECT_EQ(specFingerprint(a), specFingerprint(b));

    b.scale = 0.06;
    EXPECT_NE(specFingerprint(a), specFingerprint(b));

    b = a;
    b.config.kernelParams.seed += 1;
    EXPECT_NE(specFingerprint(a), specFingerprint(b));

    b = a;
    b.variant = "x";
    EXPECT_NE(specFingerprint(a), specFingerprint(b));
}

TEST(RunnerResilience, JournalWrittenAndResumeSplicesBitIdentical)
{
    QuietLog quiet;
    const std::string out = scratch("resume.json");
    removeOutputs(out);

    ExperimentSpec spec = threeRunSpec("resume", 1);
    spec.jsonPath = out;

    // Uninterrupted reference run.
    ExperimentResult reference = runExperiment(spec);
    std::string reference_doc = slurp(out);
    ASSERT_FALSE(reference_doc.empty());

    // The journal holds one entry per completed run.
    std::vector<JournalEntry> entries =
        RunJournal::load(journalPathFor(out));
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].experiment, "resume");
    EXPECT_EQ(entries[0].outcome, "completed");

    // Simulate a crash after two runs: keep only two journal lines.
    {
        std::string journal = slurp(journalPathFor(out));
        std::size_t first = journal.find('\n');
        std::size_t second = journal.find('\n', first + 1);
        ASSERT_NE(second, std::string::npos);
        std::ofstream torn(journalPathFor(out), std::ios::trunc);
        torn << journal.substr(0, second + 1);
    }
    std::remove(out.c_str());

    // Resume: two runs restore from the journal, one re-executes.
    ExperimentSpec resumed_spec = threeRunSpec("resume", 1);
    resumed_spec.jsonPath = out;
    resumed_spec.resume = true;
    ExperimentResult resumed = runExperiment(resumed_spec);

    EXPECT_TRUE(resumed.at(0).restored());
    EXPECT_TRUE(resumed.at(1).restored());
    EXPECT_FALSE(resumed.at(2).restored());
    EXPECT_TRUE(resumed.at(2).hasData());
    EXPECT_EQ(resumed.exitCode(), 0);

    // The resumed document is byte-identical to the reference.
    EXPECT_EQ(slurp(out), reference_doc);

    removeOutputs(out);
}

TEST(RunnerResilience, ResumeIgnoresEntriesWithChangedConfig)
{
    QuietLog quiet;
    const std::string out = scratch("stale.json");
    removeOutputs(out);

    ExperimentSpec spec;
    spec.title = "stale";
    spec.jobs = 1;
    spec.jsonPath = out;
    spec.add(Benchmark::Jess, SystemConfig{}, 0.05);
    runExperiment(spec);

    // Same benchmark, different scale: the journal entry no longer
    // matches and the run must re-execute.
    ExperimentSpec changed;
    changed.title = "stale";
    changed.jobs = 1;
    changed.jsonPath = out;
    changed.resume = true;
    changed.add(Benchmark::Jess, SystemConfig{}, 0.06);
    ExperimentResult result = runExperiment(changed);
    EXPECT_FALSE(result.at(0).restored());
    EXPECT_TRUE(result.at(0).hasData());

    removeOutputs(out);
}

TEST(RunnerResilience, TornJournalLineIsSkippedOnLoad)
{
    QuietLog quiet;
    const std::string out = scratch("torn.json");
    removeOutputs(out);

    ExperimentSpec spec;
    spec.title = "torn";
    spec.jobs = 1;
    spec.jsonPath = out;
    spec.add(Benchmark::Jess, SystemConfig{}, 0.05);
    runExperiment(spec);

    // Tear the journal mid-line, as a crash during a write would.
    {
        std::string journal = slurp(journalPathFor(out));
        std::ofstream torn(journalPathFor(out), std::ios::trunc);
        torn << journal.substr(0, journal.size() / 2);
    }
    std::vector<JournalEntry> entries =
        RunJournal::load(journalPathFor(out));
    EXPECT_TRUE(entries.empty());

    // A resume over the torn journal simply re-executes the run.
    ExperimentSpec resumed = spec;
    resumed.resume = true;
    ExperimentResult result = runExperiment(resumed);
    EXPECT_FALSE(result.at(0).restored());
    EXPECT_TRUE(result.at(0).hasData());

    removeOutputs(out);
}

TEST(RunnerResilience, FailedRunsAreJournaledAndRestoredAsFailed)
{
    QuietLog quiet;
    const std::string out = scratch("failjournal.json");
    removeOutputs(out);

    ExperimentSpec spec;
    spec.title = "failjournal";
    spec.jobs = 1;
    spec.jsonPath = out;
    spec.add(Benchmark::Jess, SystemConfig{}, 0.05);
    spec.runs[0].injectFailure = "always fails";
    std::string first_doc = jsonOf(runExperiment(spec));

    // Resume restores the failure (exit code included) rather than
    // pointlessly re-running a spec that is known to fail... the
    // journal records its outcome.
    ExperimentSpec resumed = spec;
    resumed.resume = true;
    ExperimentResult result = runExperiment(resumed);
    EXPECT_TRUE(result.at(0).restored());
    EXPECT_EQ(result.at(0).result.outcome, RunOutcome::Failed);
    EXPECT_EQ(result.exitCode(), 1);
    EXPECT_EQ(jsonOf(result), first_doc);

    removeOutputs(out);
}

TEST(RunnerResilience, SigkilledChildSweepResumesBitIdentical)
{
    QuietLog quiet;
    const std::string out = scratch("child.json");
    const std::string ref_out = scratch("child_ref.json");
    removeOutputs(out);
    removeOutputs(ref_out);

    auto makeSpec = [](const std::string &path) {
        ExperimentSpec spec;
        spec.title = "child";
        spec.jobs = 1;
        spec.jsonPath = path;
        SystemConfig config;
        for (Benchmark b : allBenchmarks)
            spec.add(b, config, 0.05);
        return spec;
    };

    // Uninterrupted reference document.
    runExperiment(makeSpec(ref_out));
    std::string reference_doc = slurp(ref_out);
    ASSERT_FALSE(reference_doc.empty());

    // Child starts the same sweep; the parent SIGKILLs it once the
    // journal shows at least one completed run.
    pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        runExperiment(makeSpec(out));
        _exit(0);
    }

    const std::string journal_path = journalPathFor(out);
    bool killed = false;
    for (int i = 0; i < 30000; ++i) {
        std::string journal = slurp(journal_path);
        if (!journal.empty() &&
            journal.find('\n') != std::string::npos) {
            kill(child, SIGKILL);
            killed = true;
            break;
        }
        int status = 0;
        if (waitpid(child, &status, WNOHANG) == child) {
            child = -1;  // finished before we could kill it
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (child > 0) {
        if (!killed)
            kill(child, SIGKILL);
        int status = 0;
        waitpid(child, &status, 0);
    }

    // Resume in this process and demand byte-identity.
    ExperimentSpec resumed = makeSpec(out);
    resumed.resume = true;
    ExperimentResult result = runExperiment(resumed);
    EXPECT_EQ(result.exitCode(), 0);
    EXPECT_EQ(slurp(out), reference_doc);

    removeOutputs(out);
    removeOutputs(ref_out);
}
