/**
 * @file
 * Tests for the BHT + BTB + RAS branch predictor.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

using namespace softwatt;

namespace
{

struct Fixture
{
    MachineParams machine;
    CounterSink sink;
    BranchPredictor bpred{machine, sink};

    MicroOp
    branch(Addr pc, bool taken, Addr target)
    {
        MicroOp op;
        op.cls = InstClass::Branch;
        op.pc = pc;
        op.taken = taken;
        op.target = target;
        op.mode = ExecMode::User;
        return op;
    }
};

} // namespace

TEST(BranchPredictor, LearnsFixedDirectionAndTarget)
{
    Fixture f;
    MicroOp b = f.branch(0x1000, true, 0x900);
    int correct = 0;
    for (int i = 0; i < 20; ++i)
        correct += f.bpred.predictAndTrain(b);
    // After warmup (BHT train + BTB fill) every prediction is right.
    EXPECT_GE(correct, 17);
    EXPECT_TRUE(f.bpred.predictAndTrain(b));
}

TEST(BranchPredictor, LearnsNotTaken)
{
    Fixture f;
    MicroOp b = f.branch(0x2000, false, 0);
    f.bpred.predictAndTrain(b);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(f.bpred.predictAndTrain(b));
}

TEST(BranchPredictor, TargetChangeMispredictsOnce)
{
    Fixture f;
    MicroOp b = f.branch(0x1000, true, 0x900);
    for (int i = 0; i < 5; ++i)
        f.bpred.predictAndTrain(b);
    b.target = 0xa00;  // new target
    EXPECT_FALSE(f.bpred.predictAndTrain(b));
    EXPECT_TRUE(f.bpred.predictAndTrain(b));
}

TEST(BranchPredictor, RasPredictsMatchingReturns)
{
    Fixture f;
    MicroOp call = f.branch(0x1000, true, 0x5000);
    call.isCall = true;
    f.bpred.predictAndTrain(call);

    MicroOp ret = f.branch(0x5040, true, 0x1004);
    ret.isReturn = true;
    EXPECT_TRUE(f.bpred.predictAndTrain(ret));
}

TEST(BranchPredictor, RasMispredictsWrongReturn)
{
    Fixture f;
    MicroOp call = f.branch(0x1000, true, 0x5000);
    call.isCall = true;
    f.bpred.predictAndTrain(call);

    MicroOp ret = f.branch(0x5040, true, 0xdead0);
    ret.isReturn = true;
    EXPECT_FALSE(f.bpred.predictAndTrain(ret));
}

TEST(BranchPredictor, NestedCallsUnwindInOrder)
{
    Fixture f;
    for (Addr pc : {Addr(0x1000), Addr(0x2000), Addr(0x3000)}) {
        MicroOp call = f.branch(pc, true, pc + 0x1000);
        call.isCall = true;
        f.bpred.predictAndTrain(call);
    }
    // Returns in LIFO order all predict correctly.
    for (Addr ret_to : {Addr(0x3004), Addr(0x2004), Addr(0x1004)}) {
        MicroOp ret = f.branch(0x8000, true, ret_to);
        ret.isReturn = true;
        EXPECT_TRUE(f.bpred.predictAndTrain(ret)) << ret_to;
    }
}

TEST(BranchPredictor, CountsStructureReferences)
{
    Fixture f;
    MicroOp b = f.branch(0x1000, true, 0x900);
    f.bpred.predictAndTrain(b);
    const CounterBank &bank = f.sink.global();
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::BhtRef), 1u);
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::BtbRef), 1u);
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::BranchInsts), 1u);
}

TEST(BranchPredictor, AccuracyTracksCounts)
{
    Fixture f;
    MicroOp b = f.branch(0x1000, true, 0x900);
    for (int i = 0; i < 10; ++i)
        f.bpred.predictAndTrain(b);
    EXPECT_EQ(f.bpred.lookups(), 10u);
    EXPECT_NEAR(f.bpred.accuracy(),
                1.0 - double(f.bpred.mispredicts()) / 10.0, 1e-12);
}

TEST(BranchPredictor, AlternatingPatternDefeatsTwoBitCounter)
{
    Fixture f;
    int mispredicts = 0;
    for (int i = 0; i < 100; ++i) {
        MicroOp b = f.branch(0x4000, (i % 2) == 0, 0x3000);
        mispredicts += !f.bpred.predictAndTrain(b);
    }
    // A strict alternation is near worst-case for 2-bit counters.
    EXPECT_GT(mispredicts, 30);
}
