/**
 * @file
 * Coverage for the softwatt-serve service layer (DESIGN.md §4j):
 * admission queue fairness and shedding, the wire protocol, the
 * journal's cross-generation read path under adversarial truncation,
 * the warm checkpoint pool (promotion, rotation, LRU eviction, orphan
 * recovery), spec parsing, session I/O against dead peers, the
 * executor's warm-start evidence (a warm-started run must skip the
 * warm-up it shares with its predecessor and still produce a
 * byte-identical document), and an in-process end-to-end daemon
 * driven through ServeClient — including a journal replay across a
 * simulated daemon restart.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/journal.hh"
#include "core/runner.hh"
#include "sim/checkpoint.hh"
#include "sim/config.hh"
#include "sim/logging.hh"

#include "serve/admission.hh"
#include "serve/checkpoint_pool.hh"
#include "serve/client.hh"
#include "serve/executor.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "serve/session.hh"

namespace fs = std::filesystem;

using softwatt::CancelToken;
using softwatt::CheckpointImage;
using softwatt::ChunkWriter;
using softwatt::Config;
using softwatt::JournalEntry;
using softwatt::RunJournal;
using softwatt::RunSpec;
using softwatt::ScopedErrorHandler;
using softwatt::SimError;
using softwatt::throwingErrorHandler;
using softwatt::writeCheckpoint;

using softwatt::serve::AdmissionQueue;
using softwatt::serve::CheckpointPool;
using softwatt::serve::executeServeSpec;
using softwatt::serve::parseServeRequest;
using softwatt::serve::parseServeResponse;
using softwatt::serve::parseServeSpec;
using softwatt::serve::renderServeRequest;
using softwatt::serve::renderServeResponse;
using softwatt::serve::ServeClient;
using softwatt::serve::ServeExecOptions;
using softwatt::serve::ServeExecResult;
using softwatt::serve::ServeOptions;
using softwatt::serve::ServeRequest;
using softwatt::serve::ServeResponse;
using softwatt::serve::ServeServer;
using softwatt::serve::Session;

namespace
{

/** Per-test scratch directory, removed on teardown. */
class ServeDirTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = (fs::temp_directory_path() /
               ("softwatt-serve-" + std::to_string(getpid()) + "-" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name()))
                  .string();
        fs::remove_all(dir);
        fs::create_directories(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

/** A valid checkpoint image with a payload of @p bytes bytes. */
CheckpointImage
makeImage(std::uint64_t fingerprint, std::size_t bytes)
{
    CheckpointImage image;
    image.configFingerprint = fingerprint;
    ChunkWriter chunk;
    for (std::size_t i = 0; i < bytes; ++i)
        chunk.u8(std::uint8_t(i));
    image.add("payload", chunk);
    return image;
}

JournalEntry
makeEntry(const std::string &bench, const std::string &config,
          int attempts, const std::string &body)
{
    JournalEntry entry;
    entry.experiment = "serve";
    entry.bench = bench;
    entry.variant = "";
    entry.config = config;
    entry.outcome = "completed";
    entry.attempts = attempts;
    entry.runJson = body;
    return entry;
}

} // namespace

// ---------------------------------------------------------------
// AdmissionQueue

TEST(ServeAdmission, RoundRobinsAcrossClients)
{
    AdmissionQueue<int> queue(0);
    ASSERT_EQ(queue.push("a", 1), AdmissionQueue<int>::Admit::Admitted);
    ASSERT_EQ(queue.push("a", 2), AdmissionQueue<int>::Admit::Admitted);
    ASSERT_EQ(queue.push("a", 3), AdmissionQueue<int>::Admit::Admitted);
    ASSERT_EQ(queue.push("b", 10), AdmissionQueue<int>::Admit::Admitted);
    ASSERT_EQ(queue.push("c", 20), AdmissionQueue<int>::Admit::Admitted);

    // One job from each client in turn; a's backlog only drains once
    // b and c got their slot.
    std::vector<int> order;
    int item = 0;
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(queue.pop(item));
        order.push_back(item);
    }
    EXPECT_EQ(order, (std::vector<int>{1, 10, 20, 2, 3}));
    EXPECT_EQ(queue.size(), 0u);
}

TEST(ServeAdmission, ShedsAtTheBoundAndRecovers)
{
    AdmissionQueue<int> queue(2);
    EXPECT_EQ(queue.push("a", 1), AdmissionQueue<int>::Admit::Admitted);
    EXPECT_EQ(queue.push("b", 2), AdmissionQueue<int>::Admit::Admitted);
    EXPECT_EQ(queue.push("c", 3), AdmissionQueue<int>::Admit::Shed);

    int item = 0;
    ASSERT_TRUE(queue.pop(item));
    EXPECT_EQ(queue.push("c", 3), AdmissionQueue<int>::Admit::Admitted);
}

TEST(ServeAdmission, CloseDrainsBacklogThenUnblocks)
{
    AdmissionQueue<int> queue(0);
    queue.push("a", 1);
    queue.close();
    EXPECT_EQ(queue.push("a", 2), AdmissionQueue<int>::Admit::Closed);
    EXPECT_TRUE(queue.closed());

    int item = 0;
    ASSERT_TRUE(queue.pop(item));
    EXPECT_EQ(item, 1);
    EXPECT_FALSE(queue.pop(item));
}

TEST(ServeAdmission, DrainReturnsRoundRobinOrder)
{
    AdmissionQueue<int> queue(0);
    queue.push("a", 1);
    queue.push("a", 2);
    queue.push("b", 10);
    std::vector<int> dropped = queue.drain();
    EXPECT_EQ(dropped, (std::vector<int>{1, 10, 2}));
    EXPECT_EQ(queue.size(), 0u);
}

// ---------------------------------------------------------------
// Wire protocol

TEST(ServeProtocol, RequestRoundTrips)
{
    ServeRequest request;
    request.op = "run";
    request.id = "job-7";
    request.client = "sweeper \"alpha\"";
    request.experiment = "fig5";
    request.spec = "bench=gcc scale=0.25 variant=x\ty";
    request.wallMs = 12345;

    ServeRequest parsed;
    std::string error;
    ASSERT_TRUE(
        parseServeRequest(renderServeRequest(request), parsed, error))
        << error;
    EXPECT_EQ(parsed.op, request.op);
    EXPECT_EQ(parsed.id, request.id);
    EXPECT_EQ(parsed.client, request.client);
    EXPECT_EQ(parsed.experiment, request.experiment);
    EXPECT_EQ(parsed.spec, request.spec);
    EXPECT_EQ(parsed.wallMs, request.wallMs);
}

TEST(ServeProtocol, ResponseRoundTrips)
{
    ServeResponse response;
    response.id = "job-7";
    response.status = "ok";
    response.error = "";
    response.servedFrom = "journal";
    response.warmStart = true;
    response.warmStartTick = 531369;
    response.ticksExecuted = 4329;
    response.attempts = 2;
    response.document = "{\n  \"schema\": \"x\"\n}\n";

    ServeResponse parsed;
    std::string error;
    ASSERT_TRUE(parseServeResponse(renderServeResponse(response),
                                   parsed, error))
        << error;
    EXPECT_EQ(parsed.id, response.id);
    EXPECT_EQ(parsed.status, response.status);
    EXPECT_EQ(parsed.servedFrom, response.servedFrom);
    EXPECT_TRUE(parsed.warmStart);
    EXPECT_EQ(parsed.warmStartTick, response.warmStartTick);
    EXPECT_EQ(parsed.ticksExecuted, response.ticksExecuted);
    EXPECT_EQ(parsed.attempts, response.attempts);
    EXPECT_EQ(parsed.document, response.document);
}

TEST(ServeProtocol, RejectsMalformedRequests)
{
    ServeRequest parsed;
    std::string error;

    // Not this protocol at all.
    EXPECT_FALSE(parseServeRequest("", parsed, error));
    EXPECT_FALSE(parseServeRequest("garbage", parsed, error));
    EXPECT_FALSE(parseServeRequest(
        "{\"schema\":\"softwatt-journal-v1\"}", parsed, error));

    ServeRequest request;
    request.id = "j";
    request.client = "c";
    request.spec = "bench=jess";

    // Unknown op.
    request.op = "frobnicate";
    EXPECT_FALSE(
        parseServeRequest(renderServeRequest(request), parsed, error));
    EXPECT_NE(error.find("frobnicate"), std::string::npos);
    request.op = "run";

    // Missing id / client / spec.
    request.id = "";
    EXPECT_FALSE(
        parseServeRequest(renderServeRequest(request), parsed, error));
    request.id = "j";
    request.client = "";
    EXPECT_FALSE(
        parseServeRequest(renderServeRequest(request), parsed, error));
    request.client = "c";
    request.spec = "";
    EXPECT_FALSE(
        parseServeRequest(renderServeRequest(request), parsed, error));

    // A cancel needs no spec.
    request.op = "cancel";
    EXPECT_TRUE(
        parseServeRequest(renderServeRequest(request), parsed, error))
        << error;
}

// ---------------------------------------------------------------
// Journal: the cross-generation read path (loadLatest) under the
// truncation and duplication patterns a SIGKILL'd daemon produces.

TEST_F(ServeDirTest, JournalSkipsTornFinalLine)
{
    std::string path = dir + "/serve.journal.jsonl";
    {
        RunJournal journal;
        ASSERT_TRUE(journal.open(path, true));
        journal.append(makeEntry("jess", "aaaa", 1, "{one}"));
        journal.append(makeEntry("gcc", "bbbb", 1, "{two}"));
    }
    // Tear the last line mid-record, as a crash mid-append would.
    std::uintmax_t size = fs::file_size(path);
    fs::resize_file(path, size - 9);

    std::vector<JournalEntry> entries = RunJournal::loadLatest(path);
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].bench, "jess");
    EXPECT_EQ(entries[0].runJson, "{one}");
}

TEST_F(ServeDirTest, JournalLastDuplicateWins)
{
    std::string path = dir + "/serve.journal.jsonl";
    {
        RunJournal journal;
        ASSERT_TRUE(journal.open(path, true));
        journal.append(makeEntry("jess", "aaaa", 1, "{stale}"));
        journal.append(makeEntry("gcc", "bbbb", 1, "{other}"));
        journal.append(makeEntry("jess", "aaaa", 2, "{fresh}"));
    }
    std::vector<JournalEntry> entries = RunJournal::loadLatest(path);
    ASSERT_EQ(entries.size(), 2u);
    // Keys keep first-seen order; the duplicate's payload is the
    // last (final retry) occurrence.
    EXPECT_EQ(entries[0].bench, "jess");
    EXPECT_EQ(entries[0].attempts, 2);
    EXPECT_EQ(entries[0].runJson, "{fresh}");
    EXPECT_EQ(entries[1].bench, "gcc");
}

TEST_F(ServeDirTest, JournalInterleavesDaemonGenerations)
{
    std::string path = dir + "/serve.journal.jsonl";
    {
        // Generation 1 answers two jobs, then is SIGKILL'd.
        RunJournal journal;
        ASSERT_TRUE(journal.open(path, true));
        journal.append(makeEntry("jess", "aaaa", 1, "{gen1-jess}"));
        journal.append(makeEntry("gcc", "bbbb", 1, "{gen1-gcc}"));
    }
    {
        // Generation 2 opens in append mode (truncate=false), re-runs
        // one job and answers a new one.
        RunJournal journal;
        ASSERT_TRUE(journal.open(path, false));
        journal.append(makeEntry("gcc", "bbbb", 2, "{gen2-gcc}"));
        journal.append(makeEntry("perl", "cccc", 1, "{gen2-perl}"));
    }
    std::vector<JournalEntry> entries = RunJournal::loadLatest(path);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].runJson, "{gen1-jess}");
    EXPECT_EQ(entries[1].runJson, "{gen2-gcc}");
    EXPECT_EQ(entries[1].attempts, 2);
    EXPECT_EQ(entries[2].runJson, "{gen2-perl}");
}

TEST_F(ServeDirTest, JournalMissingFileYieldsNoEntries)
{
    EXPECT_TRUE(
        RunJournal::loadLatest(dir + "/absent.jsonl").empty());
}

// ---------------------------------------------------------------
// Warm checkpoint pool

TEST_F(ServeDirTest, PoolPromotesAndLooksUp)
{
    CheckpointPool pool(dir, 64 << 20);
    const std::uint64_t key = 0x1234abcd5678ef01ull;

    EXPECT_EQ(pool.lookup(key), "");

    std::string inflight = pool.inflightPath(key);
    EXPECT_NE(inflight, pool.inflightPath(key));
    writeCheckpoint(inflight, makeImage(key, 256));
    EXPECT_TRUE(pool.promote(key, inflight));

    std::string warm = pool.lookup(key);
    EXPECT_EQ(warm, dir + "/" + CheckpointPool::keyName(key));
    EXPECT_TRUE(fs::exists(warm));
    EXPECT_FALSE(fs::exists(inflight));
    EXPECT_EQ(pool.entries(), 1u);
    EXPECT_GT(pool.bytesUsed(), 0u);
}

TEST_F(ServeDirTest, PoolRotatesThePreviousGeneration)
{
    CheckpointPool pool(dir, 64 << 20);
    const std::uint64_t key = 42;

    std::string first = pool.inflightPath(key);
    writeCheckpoint(first, makeImage(key, 100));
    ASSERT_TRUE(pool.promote(key, first));
    std::uintmax_t firstSize =
        fs::file_size(dir + "/" + CheckpointPool::keyName(key));

    std::string second = pool.inflightPath(key);
    writeCheckpoint(second, makeImage(key, 300));
    ASSERT_TRUE(pool.promote(key, second));

    std::string warm = pool.lookup(key);
    std::string previous =
        softwatt::checkpointPreviousGeneration(warm);
    ASSERT_TRUE(fs::exists(previous));
    EXPECT_EQ(fs::file_size(previous), firstSize);
    EXPECT_GT(fs::file_size(warm), fs::file_size(previous));
    // Both generations count against the budget.
    EXPECT_EQ(pool.bytesUsed(),
              fs::file_size(warm) + fs::file_size(previous));
}

TEST_F(ServeDirTest, PoolScratchModeRetainsNothing)
{
    CheckpointPool pool(dir, 0);
    const std::uint64_t key = 7;
    std::string inflight = pool.inflightPath(key);
    writeCheckpoint(inflight, makeImage(key, 64));
    EXPECT_FALSE(pool.promote(key, inflight));
    EXPECT_FALSE(fs::exists(inflight));
    EXPECT_EQ(pool.lookup(key), "");
    EXPECT_EQ(pool.entries(), 0u);
}

TEST_F(ServeDirTest, PoolDropsEntriesWhoseFilesVanished)
{
    CheckpointPool pool(dir, 64 << 20);
    const std::uint64_t key = 9;
    std::string inflight = pool.inflightPath(key);
    writeCheckpoint(inflight, makeImage(key, 64));
    ASSERT_TRUE(pool.promote(key, inflight));

    fs::remove(dir + "/" + CheckpointPool::keyName(key));
    EXPECT_EQ(pool.lookup(key), "");
    EXPECT_EQ(pool.entries(), 0u);
}

TEST_F(ServeDirTest, PoolEvictsLeastRecentlyUsedOverBudget)
{
    // Size one image, then budget the pool for two of them.
    const std::size_t payload = 4096;
    std::string probe = dir + "/probe.bin";
    writeCheckpoint(probe, makeImage(1, payload));
    std::uintmax_t imageSize = fs::file_size(probe);
    fs::remove(probe);

    CheckpointPool pool(dir, std::uint64_t(imageSize) * 2 +
                                 imageSize / 2);
    for (std::uint64_t key = 1; key <= 3; ++key) {
        std::string inflight = pool.inflightPath(key);
        writeCheckpoint(inflight, makeImage(key, payload));
        pool.promote(key, inflight);
    }

    EXPECT_GE(pool.evictions(), 1u);
    EXPECT_EQ(pool.lookup(1), "");  // Oldest key paid for the rest.
    EXPECT_NE(pool.lookup(3), "");
    EXPECT_LE(pool.bytesUsed(), std::uint64_t(imageSize) * 2 +
                                    imageSize / 2);
}

TEST_F(ServeDirTest, PoolRecoversOrphansAndDropsTornOnes)
{
    const std::uint64_t pooled = 0x11;
    const std::uint64_t orphan = 0x22;
    const std::uint64_t torn = 0x33;

    // An existing pool image from the previous daemon generation.
    writeCheckpoint(dir + "/" + CheckpointPool::keyName(pooled),
                    makeImage(pooled, 128));

    // A healthy orphaned in-flight image...
    std::string orphanPath =
        dir + "/" + CheckpointPool::keyName(orphan).substr(0, 16) +
        ".inflight.0.ckpt";
    writeCheckpoint(orphanPath, makeImage(orphan, 128));
    // ...with a stale rotated generation beside it.
    writeCheckpoint(orphanPath + ".1", makeImage(orphan, 64));

    // An orphan torn by SIGKILL mid-write, whose rotated predecessor
    // is intact: recovery must fall back one generation.
    std::string tornPath =
        dir + "/" + CheckpointPool::keyName(torn).substr(0, 16) +
        ".inflight.0.ckpt";
    writeCheckpoint(tornPath, makeImage(torn, 256));
    fs::resize_file(tornPath, fs::file_size(tornPath) / 2);
    writeCheckpoint(tornPath + ".1", makeImage(torn, 128));

    CheckpointPool pool(dir, 64 << 20);
    EXPECT_EQ(pool.recover(), 2u);
    EXPECT_EQ(pool.entries(), 3u);
    EXPECT_NE(pool.lookup(pooled), "");
    EXPECT_NE(pool.lookup(orphan), "");
    EXPECT_NE(pool.lookup(torn), "");
    EXPECT_FALSE(fs::exists(orphanPath));
    EXPECT_FALSE(fs::exists(tornPath));

    // The recovered torn key serves its intact predecessor.
    EXPECT_NO_THROW(softwatt::readCheckpoint(pool.lookup(torn)));
}

TEST_F(ServeDirTest, PoolRecoversRotatedGenerationWithoutBase)
{
    const std::uint64_t lost = 0x44;
    const std::uint64_t torn = 0x55;

    // A rotated pool generation whose newest image vanished (crash
    // between promote's rotate and rename): recovery must put the
    // survivor back into the pool slot, not leak it untracked.
    std::string lostBase = dir + "/" + CheckpointPool::keyName(lost);
    writeCheckpoint(lostBase + ".1", makeImage(lost, 128));

    // Same shape but the survivor itself is torn: recovery must
    // delete it rather than leave it on disk forever.
    std::string tornBase = dir + "/" + CheckpointPool::keyName(torn);
    writeCheckpoint(tornBase + ".1", makeImage(torn, 256));
    fs::resize_file(tornBase + ".1",
                    fs::file_size(tornBase + ".1") / 2);

    CheckpointPool pool(dir, 64 << 20);
    EXPECT_EQ(pool.recover(), 1u);
    EXPECT_EQ(pool.entries(), 1u);
    EXPECT_EQ(pool.lookup(lost), lostBase);
    EXPECT_TRUE(fs::exists(lostBase));
    EXPECT_FALSE(fs::exists(lostBase + ".1"));
    EXPECT_NO_THROW(softwatt::readCheckpoint(lostBase));
    EXPECT_EQ(pool.lookup(torn), "");
    EXPECT_FALSE(fs::exists(tornBase + ".1"));
}

// ---------------------------------------------------------------
// Spec parsing and service options

TEST(ServeSpec, ParsesRunKeysAndMachineKeys)
{
    RunSpec spec;
    std::string bench, error;
    ASSERT_TRUE(parseServeSpec(
        "bench=db scale=0.25 variant=base deadline_s=2 grace_s=1 "
        "tech.mhz=400",
        spec, bench, error))
        << error;
    EXPECT_EQ(bench, "db");
    EXPECT_EQ(spec.variant, "base");
    EXPECT_DOUBLE_EQ(spec.scale, 0.25);
    EXPECT_DOUBLE_EQ(spec.config.deadlineSeconds, 2.0);
    EXPECT_DOUBLE_EQ(spec.config.shutdownGraceSeconds, 1.0);
    EXPECT_DOUBLE_EQ(spec.config.machine.freqMhz, 400.0);
}

TEST(ServeSpec, RejectsBadSpecsWithoutTerminating)
{
    RunSpec spec;
    std::string bench, error;

    EXPECT_FALSE(parseServeSpec("notakv", spec, bench, error));
    EXPECT_NE(error.find("notakv"), std::string::npos);

    EXPECT_FALSE(
        parseServeSpec("bench=nosuch", spec, bench, error));

    EXPECT_FALSE(
        parseServeSpec("bench=jess scale=0", spec, bench, error));

    EXPECT_FALSE(parseServeSpec("bench=jess bogus_key=1", spec,
                                bench, error));
    EXPECT_NE(error.find("bogus_key"), std::string::npos);
}

TEST(ServeSpec, UsesTheCallersInstalledHandler)
{
    // With a handler already installed (as in the daemon, for its
    // whole lifetime), parsing must not swap the process-global
    // handler — session threads would race each other doing so. The
    // caller's handler observing the error proves it stayed put.
    int calls = 0;
    ScopedErrorHandler firewall(
        [&calls](softwatt::ErrorKind, const std::string &) {
            ++calls;
        });
    RunSpec spec;
    std::string bench, error;
    EXPECT_FALSE(parseServeSpec("notakv", spec, bench, error));
    EXPECT_EQ(calls, 1);
    EXPECT_NE(error.find("notakv"), std::string::npos);
}

TEST(ServeExecutor, RetryBackoffIsClampedAndDefined)
{
    using softwatt::serve::retryBackoffMs;

    // The plain exponential prefix.
    EXPECT_EQ(retryBackoffMs(100, 1), 100u);
    EXPECT_EQ(retryBackoffMs(100, 2), 200u);
    EXPECT_EQ(retryBackoffMs(100, 5), 1600u);

    // Growth caps at 2^6 and the delay at a few seconds; attempt
    // counts past 64 (serve_retries allows 100) must stay defined
    // instead of shifting a 64-bit value by >= 64.
    EXPECT_EQ(retryBackoffMs(100, 7), 5000u);
    EXPECT_EQ(retryBackoffMs(100, 65), 5000u);
    EXPECT_EQ(retryBackoffMs(100, 100), 5000u);
    EXPECT_EQ(retryBackoffMs(0, 100), 0u);

    // An explicitly large base is honoured but never exceeded.
    EXPECT_EQ(retryBackoffMs(60000, 3), 60000u);
}

TEST(ServeSpec, OptionsValidateRanges)
{
    ScopedErrorHandler firewall(throwingErrorHandler);

    Config good;
    good.parseAssignment("serve_socket=/tmp/x.sock");
    good.parseAssignment("serve_state=/tmp/x.state");
    good.parseAssignment("serve_jobs=4");
    good.parseAssignment("serve_queue_max=8");
    good.parseAssignment("serve_warm_s=0.5");
    ServeOptions options = ServeOptions::fromConfig(good);
    EXPECT_EQ(options.jobs, 4);
    EXPECT_EQ(options.queueMax, 8u);
    EXPECT_DOUBLE_EQ(options.warmS, 0.5);

    Config missingSocket;
    missingSocket.parseAssignment("serve_state=/tmp/x.state");
    EXPECT_THROW(ServeOptions::fromConfig(missingSocket), SimError);

    Config badJobs;
    badJobs.parseAssignment("serve_socket=/tmp/x.sock");
    badJobs.parseAssignment("serve_state=/tmp/x.state");
    badJobs.parseAssignment("serve_jobs=0");
    EXPECT_THROW(ServeOptions::fromConfig(badJobs), SimError);

    Config badRetries;
    badRetries.parseAssignment("serve_socket=/tmp/x.sock");
    badRetries.parseAssignment("serve_state=/tmp/x.state");
    badRetries.parseAssignment("serve_retries=101");
    EXPECT_THROW(ServeOptions::fromConfig(badRetries), SimError);
}

// ---------------------------------------------------------------
// Session I/O against misbehaving peers

TEST(ServeSession, SplitsLinesAndStripsNewlines)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Session session(fds[0]);

    const char *bytes = "alpha\nbeta\n";
    ASSERT_EQ(::send(fds[1], bytes, 11, 0), 11);
    ::close(fds[1]);

    std::string line;
    ASSERT_TRUE(session.readLine(line));
    EXPECT_EQ(line, "alpha");
    ASSERT_TRUE(session.readLine(line));
    EXPECT_EQ(line, "beta");
    EXPECT_FALSE(session.readLine(line));
}

TEST(ServeSession, DiscardsTornLineAtEof)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Session session(fds[0]);

    const char *bytes = "whole\ntorn-partial";
    ASSERT_EQ(::send(fds[1], bytes, 18, 0), 18);
    ::close(fds[1]);

    std::string line;
    ASSERT_TRUE(session.readLine(line));
    EXPECT_EQ(line, "whole");
    EXPECT_FALSE(session.readLine(line));
}

TEST(ServeSession, DeadPeerBreaksTheSessionNotTheProcess)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Session session(fds[0]);
    ::close(fds[1]);

    // The first write may land in the socket buffer; repeated writes
    // must surface EPIPE as a broken session, never a SIGPIPE kill.
    std::string line(4096, 'x');
    bool failed = false;
    for (int i = 0; i < 64 && !failed; ++i)
        failed = !session.writeLine(line);
    EXPECT_TRUE(failed);
    EXPECT_TRUE(session.broken());
    EXPECT_FALSE(session.writeLine("still broken"));
}

TEST(ServeSession, ShutdownUnblocksAReader)
{
    int fds[2];
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Session session(fds[0]);

    std::thread reader([&session] {
        std::string line;
        EXPECT_FALSE(session.readLine(line));
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    session.shutdownBoth();
    reader.join();
    ::close(fds[1]);
}

// ---------------------------------------------------------------
// Executor: the warm start must demonstrably skip the warm-up and
// still produce a byte-identical document.

TEST_F(ServeDirTest, WarmStartSkipsWarmupByteIdentically)
{
    ScopedErrorHandler firewall(throwingErrorHandler);
    CancelToken token;

    // Autosave every 20k ticks (1e-4 simulated seconds at the
    // default 200 MHz) so even this short run banks many images.
    ServeExecOptions policy;
    policy.warmEveryS = 0.0001;

    fs::create_directories(dir + "/pool");
    CheckpointPool pool(dir + "/pool", 64 << 20);
    policy.pool = &pool;

    RunSpec spec;
    std::string bench, error;
    ASSERT_TRUE(
        parseServeSpec("bench=jess scale=0.05", spec, bench, error))
        << error;

    // Run 1: cold, fills the pool.
    ServeExecResult cold = executeServeSpec(spec, policy, token);
    ASSERT_TRUE(cold.run.hasData());
    EXPECT_FALSE(cold.warmStarted);
    EXPECT_GT(cold.ticksExecuted, 0u);
    EXPECT_EQ(pool.entries(), 1u);

    // Run 2: same machine, different run management (a non-binding
    // deadline changes specFingerprint but not the machine
    // fingerprint), so it shares the warm image.
    RunSpec warmSpec;
    ASSERT_TRUE(parseServeSpec("bench=jess scale=0.05 deadline_s=999",
                               warmSpec, bench, error))
        << error;
    ServeExecResult warm = executeServeSpec(warmSpec, policy, token);
    ASSERT_TRUE(warm.run.hasData());
    EXPECT_TRUE(warm.warmStarted);
    EXPECT_GT(warm.warmStartTick, 0u);

    // The warm start must skip the bulk of the run, not a sliver.
    EXPECT_LT(warm.ticksExecuted, cold.ticksExecuted / 2);
    EXPECT_EQ(warm.warmStartTick + warm.ticksExecuted,
              cold.ticksExecuted);

    // Byte-identity against a cold reference of the SAME spec at the
    // same cadence, produced through a scratch pool (always misses).
    fs::create_directories(dir + "/scratch");
    CheckpointPool scratch(dir + "/scratch", 0);
    ServeExecOptions reference = policy;
    reference.pool = &scratch;
    ServeExecResult coldRef =
        executeServeSpec(warmSpec, reference, token);
    ASSERT_TRUE(coldRef.run.hasData());
    EXPECT_FALSE(coldRef.warmStarted);
    EXPECT_EQ(warm.runJson, coldRef.runJson);
}

// ---------------------------------------------------------------
// End to end: an in-process daemon driven through ServeClient.

namespace
{

/** Start @p server's serveUntil on a thread; joins on destruction. */
class ServerThread
{
  public:
    explicit ServerThread(ServeServer &server)
        : thread([&server, this] { server.serveUntil(stop); })
    {}

    ~ServerThread()
    {
        stop.request(CancelToken::Hard);
        if (thread.joinable())
            thread.join();
    }

    /** Graceful drain, then wait for exit. */
    void
    drain()
    {
        stop.request(CancelToken::Drain);
        thread.join();
    }

    CancelToken stop;

  private:
    std::thread thread;
};

} // namespace

TEST_F(ServeDirTest, ServerAnswersJournalsAndReplaysAcrossRestart)
{
    ServeOptions options;
    options.socketPath = dir + "/serve.sock";
    options.statePath = dir + "/state";
    options.jobs = 2;
    options.warmS = 0.0001;
    options.retries = 0;

    std::string firstDocument;
    {
        ServeServer server(options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;
        ServerThread running(server);

        ServeClient client;
        ASSERT_TRUE(client.connect(options.socketPath, error))
            << error;

        ServeRequest request;
        request.id = "job-1";
        request.client = "e2e";
        request.spec = "bench=jess scale=0.03";
        ServeResponse response;
        ASSERT_TRUE(client.call(request, response, error)) << error;
        EXPECT_EQ(response.id, "job-1");
        EXPECT_EQ(response.status, "ok") << response.error;
        EXPECT_EQ(response.servedFrom, "executed");
        ASSERT_FALSE(response.document.empty());
        EXPECT_EQ(response.document.front(), '{');
        firstDocument = response.document;

        // Same spec under a new id: answered from the journal,
        // byte-identically, without executing anything.
        request.id = "job-2";
        ASSERT_TRUE(client.call(request, response, error)) << error;
        EXPECT_EQ(response.status, "ok") << response.error;
        EXPECT_EQ(response.servedFrom, "journal");
        EXPECT_EQ(response.document, firstDocument);

        // A malformed line gets a structured rejection, and the
        // session survives to serve the next request.
        ASSERT_TRUE(client.session()->writeLine("not json"));
        ASSERT_TRUE(client.receive(response, error)) << error;
        EXPECT_EQ(response.status, "bad-request");

        // A run whose spec cannot parse is rejected, not executed.
        request.id = "job-3";
        request.spec = "bench=jess nonsense_key=1";
        ASSERT_TRUE(client.call(request, response, error)) << error;
        EXPECT_EQ(response.status, "bad-request");
        EXPECT_NE(response.error.find("nonsense_key"),
                  std::string::npos);

        EXPECT_EQ(server.executedJobs(), 1u);
        EXPECT_EQ(server.journalHits(), 1u);
        running.drain();
        EXPECT_FALSE(fs::exists(options.socketPath));
    }

    // "Restart" the daemon on the same state directory: the journal
    // must re-answer the finished job byte-identically.
    {
        ServeServer server(options);
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;
        ServerThread running(server);

        ServeClient client;
        ASSERT_TRUE(client.connect(options.socketPath, error))
            << error;
        ServeRequest request;
        request.id = "job-after-restart";
        request.client = "e2e";
        request.spec = "bench=jess scale=0.03";
        ServeResponse response;
        ASSERT_TRUE(client.call(request, response, error)) << error;
        EXPECT_EQ(response.status, "ok") << response.error;
        EXPECT_EQ(response.servedFrom, "journal");
        EXPECT_EQ(response.document, firstDocument);
        EXPECT_EQ(server.executedJobs(), 0u);
        EXPECT_EQ(server.journalHits(), 1u);
        running.drain();
    }
}

TEST_F(ServeDirTest, ServerShedsWhenTheQueueIsFull)
{
    ServeOptions options;
    options.socketPath = dir + "/serve.sock";
    options.statePath = dir + "/state";
    options.jobs = 1;
    options.queueMax = 1;
    options.retries = 0;

    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ServerThread running(server);

    ServeClient client;
    ASSERT_TRUE(client.connect(options.socketPath, error)) << error;

    // Flood the service with slow jobs. The worker, the thread
    // pool's pending bound, the dispatcher's hand, and the admission
    // queue together buffer only a handful, so the flood must draw a
    // structured overloaded rejection long before any job finishes —
    // and the first response received can only be such a rejection.
    for (int i = 1; i <= 8; ++i) {
        ServeRequest request;
        request.id = "slow-" + std::to_string(i);
        request.client = "flood";
        request.spec = "bench=jess scale=2.0";
        ASSERT_TRUE(client.send(request));
    }

    ServeResponse response;
    ASSERT_TRUE(client.receive(response, error)) << error;
    EXPECT_EQ(response.status, "overloaded");
    EXPECT_GE(server.shedJobs(), 1u);
    // Destructor hard-cancels the in-flight jobs.
}

TEST_F(ServeDirTest, ServerCancelsAndEnforcesWallDeadlines)
{
    ServeOptions options;
    options.socketPath = dir + "/serve.sock";
    options.statePath = dir + "/state";
    options.jobs = 2;
    options.retries = 0;

    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ServerThread running(server);

    ServeClient client;
    ASSERT_TRUE(client.connect(options.socketPath, error)) << error;

    // A job with a tiny wall budget is cancelled by the deadliner.
    ServeRequest request;
    request.id = "deadline";
    request.client = "e2e";
    request.spec = "bench=jess scale=2.0";
    request.wallMs = 50;
    ServeResponse response;
    ASSERT_TRUE(client.call(request, response, error)) << error;
    EXPECT_EQ(response.id, "deadline");
    EXPECT_EQ(response.status, "cancelled");

    // An explicit cancel stops a long run; both the ack and the run's
    // terminal response arrive, correlated by the id.
    request.id = "victim";
    request.wallMs = 0;
    ASSERT_TRUE(client.send(request));
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ServeRequest cancel;
    cancel.op = "cancel";
    cancel.id = "victim";
    cancel.client = "e2e";
    ASSERT_TRUE(client.send(cancel));

    std::set<std::string> statuses;
    for (int i = 0; i < 2; ++i) {
        ASSERT_TRUE(client.receive(response, error)) << error;
        EXPECT_EQ(response.id, "victim");
        statuses.insert(response.status);
    }
    EXPECT_TRUE(statuses.count("cancelled"));

    // Cancel is idempotent: cancelling a job that is not in flight
    // still acknowledges, but says so.
    cancel.id = "no-such-job";
    ASSERT_TRUE(client.call(cancel, response, error)) << error;
    EXPECT_EQ(response.status, "ok");
    EXPECT_NE(response.error.find("no in-flight job"),
              std::string::npos);
}

TEST_F(ServeDirTest, ServerReapsFinishedSessionThreads)
{
    ServeOptions options;
    options.socketPath = dir + "/serve.sock";
    options.statePath = dir + "/state";
    options.jobs = 1;
    options.retries = 0;

    ServeServer server(options);
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    ServerThread running(server);

    // A long-lived daemon serving many short-lived clients must not
    // accumulate one unjoined thread per historical connection.
    for (int i = 0; i < 8; ++i) {
        ServeClient churn;
        ASSERT_TRUE(churn.connect(options.socketPath, error))
            << error;
        churn.disconnect();
    }

    // A client that stays connected is still tracked; the eight
    // dead readers are reaped once they notice the disconnect.
    ServeClient keeper;
    ASSERT_TRUE(keeper.connect(options.socketPath, error)) << error;
    // Wait for exactly one tracked session: the keeper accepted and
    // every dead reader noticed its disconnect and got reaped.
    for (int i = 0; i < 500 && server.sessionCount() != 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server.sessionCount(), 1u);

    // And the keeper's session still works after the sweep.
    ServeRequest request;
    request.op = "cancel";
    request.id = "nothing";
    request.client = "reap";
    ServeResponse response;
    ASSERT_TRUE(keeper.call(request, response, error)) << error;
    EXPECT_EQ(response.status, "ok");
}
