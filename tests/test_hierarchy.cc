/**
 * @file
 * Tests for the two-level hierarchy: walk behaviour and counter
 * attribution per mode.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "sim/counter_sink.hh"

using namespace softwatt;

namespace
{

struct Fixture
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy{machine, sink};

    std::uint64_t
    count(ExecMode mode, CounterId id) const
    {
        return sink.global().get(mode, id);
    }
};

} // namespace

TEST(Hierarchy, IfetchCountsReferencePerInstruction)
{
    Fixture f;
    f.hierarchy.ifetch(0x1000, ExecMode::User);
    f.hierarchy.ifetch(0x1004, ExecMode::User);
    EXPECT_EQ(f.count(ExecMode::User, CounterId::IL1Ref), 2u);
    // Both in the same line: a single L1 miss and L2 reference.
    EXPECT_EQ(f.count(ExecMode::User, CounterId::IL1Miss), 1u);
    EXPECT_EQ(f.count(ExecMode::User, CounterId::L2IRef), 1u);
}

TEST(Hierarchy, ColdMissWalksToMemory)
{
    Fixture f;
    MemAccessOutcome out =
        f.hierarchy.dataAccess(0x4000, false, ExecMode::User);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_FALSE(out.l2Hit);
    EXPECT_TRUE(out.memAccess);
    EXPECT_EQ(out.latency, 1 + f.machine.l2cache.hitLatency +
                               f.machine.memoryLatency);
    EXPECT_EQ(f.count(ExecMode::User, CounterId::MemRef), 1u);
}

TEST(Hierarchy, WarmHitIsSingleCycle)
{
    Fixture f;
    f.hierarchy.dataAccess(0x4000, false, ExecMode::User);
    MemAccessOutcome out =
        f.hierarchy.dataAccess(0x4000, false, ExecMode::User);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_EQ(out.latency, 1);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Fixture f;
    // Touch a line, then stream enough distinct lines through the
    // same L1 set to evict it, while the much larger L2 keeps it.
    f.hierarchy.dataAccess(0x0, false, ExecMode::User);
    std::uint64_t l1_span = f.machine.dcache.sizeBytes;
    for (int i = 1; i <= 4; ++i) {
        f.hierarchy.dataAccess(Addr(i) * l1_span, false,
                               ExecMode::User);
    }
    MemAccessOutcome out =
        f.hierarchy.dataAccess(0x0, false, ExecMode::User);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(out.latency, 1 + f.machine.l2cache.hitLatency);
}

TEST(Hierarchy, ModesAreAttributedSeparately)
{
    Fixture f;
    f.hierarchy.ifetch(0x1000, ExecMode::User);
    f.hierarchy.ifetch(0x2000, ExecMode::KernelInst);
    f.hierarchy.ifetch(0x3000, ExecMode::Idle);
    EXPECT_EQ(f.count(ExecMode::User, CounterId::IL1Ref), 1u);
    EXPECT_EQ(f.count(ExecMode::KernelInst, CounterId::IL1Ref), 1u);
    EXPECT_EQ(f.count(ExecMode::Idle, CounterId::IL1Ref), 1u);
}

TEST(Hierarchy, DirtyL1VictimWritesIntoL2)
{
    Fixture f;
    f.hierarchy.dataAccess(0x0, true, ExecMode::User);  // dirty
    std::uint64_t before =
        f.count(ExecMode::User, CounterId::L2DRef);
    // Evict it: same-set distinct lines (2-way L1).
    std::uint64_t l1_span = f.machine.dcache.sizeBytes / 2;
    f.hierarchy.dataAccess(1 * l1_span, false, ExecMode::User);
    f.hierarchy.dataAccess(2 * l1_span, false, ExecMode::User);
    f.hierarchy.dataAccess(3 * l1_span, false, ExecMode::User);
    std::uint64_t after = f.count(ExecMode::User, CounterId::L2DRef);
    // Three demand walks plus at least one writeback reference.
    EXPECT_GE(after - before, 4u);
}

TEST(Hierarchy, FlushL1DropsBothL1s)
{
    Fixture f;
    f.hierarchy.ifetch(0x1000, ExecMode::User);
    f.hierarchy.dataAccess(0x2000, false, ExecMode::User);
    f.hierarchy.flushL1(ExecMode::KernelInst);
    EXPECT_FALSE(f.hierarchy.icache().probe(0x1000));
    EXPECT_FALSE(f.hierarchy.dcache().probe(0x2000));
    // L2 still warm: refetch hits the L2, not memory.
    MemAccessOutcome out =
        f.hierarchy.ifetch(0x1000, ExecMode::User);
    EXPECT_TRUE(out.l2Hit);
}

TEST(Hierarchy, TaggedAccessesReachServiceBank)
{
    Fixture f;
    CounterBank bank;
    f.sink.registerBank(5, &bank);
    f.hierarchy.dataAccess(0x9000, false, ExecMode::KernelInst, 5);
    EXPECT_EQ(bank.get(ExecMode::KernelInst, CounterId::DL1Ref), 1u);
    f.sink.unregisterBank(5);
}
