/**
 * @file
 * Error-path coverage for the checkpoint layer, driven through the
 * public API: a valid image is written with writeCheckpoint, the
 * bytes are damaged in targeted ways (truncated chunk, leftover
 * payload bytes, flipped checksum, bad magic, version skew), and
 * each corruption class must surface as the documented exception —
 * plus `softwatt-ckpt` must exit 1 on the same files, and 2 (the
 * "not even bytes to parse" verdict) on missing or zero-length
 * images such as the stubs a torn rename leaves behind.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "sim/checkpoint.hh"

using softwatt::CheckpointError;
using softwatt::CheckpointImage;
using softwatt::CheckpointMismatch;
using softwatt::ChunkReader;
using softwatt::ChunkWriter;

namespace fs = std::filesystem;

namespace
{

class CkptErrorsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir = fs::temp_directory_path() /
              ("softwatt-ckpt-errors-" +
               std::to_string(::getpid()));
        fs::create_directories(dir);
    }

    void TearDown() override { fs::remove_all(dir); }

    std::string
    path(const std::string &name) const
    {
        return (dir / name).string();
    }

    /** A small two-chunk image with known contents. */
    static CheckpointImage
    makeImage()
    {
        CheckpointImage image;
        image.configFingerprint = 0x1234abcd5678ef00ull;
        image.cpuModel = 1;
        ChunkWriter cpu;
        cpu.u64(42);
        cpu.f64(2.5);
        cpu.b(true);
        image.add("cpu", cpu);
        ChunkWriter disk;
        disk.u32(7);
        disk.str("idle");
        image.add("disk", disk);
        return image;
    }

    /** Write makeImage() to @p name and return the file's bytes. */
    std::vector<char>
    writeAndSlurp(const std::string &name)
    {
        softwatt::writeCheckpoint(path(name), makeImage());
        std::ifstream in(path(name), std::ios::binary);
        return std::vector<char>(std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>());
    }

    void
    writeBytes(const std::string &name,
               const std::vector<char> &bytes)
    {
        std::ofstream out(path(name), std::ios::binary);
        out.write(bytes.data(), std::streamsize(bytes.size()));
    }

    fs::path dir;
};

/** Run softwatt-ckpt (path from the build) on @p file; exit status. */
int
runCkptTool(const std::string &file)
{
    std::string cmd = std::string(SOFTWATT_CKPT_BIN) + " \"" + file +
                      "\" > /dev/null 2>&1";
    int status = std::system(cmd.c_str());
    if (status == -1)
        return -1;
    return WEXITSTATUS(status);
}

} // namespace

TEST_F(CkptErrorsTest, RoundTripBaseline)
{
    auto bytes = writeAndSlurp("good.ckpt");
    ASSERT_FALSE(bytes.empty());
    CheckpointImage image = softwatt::readCheckpoint(path("good.ckpt"));
    ASSERT_EQ(image.chunks.size(), 2u);
    ChunkReader cpu(image.chunks[0].payload, "cpu");
    EXPECT_EQ(cpu.u64(), 42u);
    EXPECT_EQ(cpu.f64(), 2.5);
    EXPECT_TRUE(cpu.b());
    cpu.finish();
    EXPECT_EQ(runCkptTool(path("good.ckpt")), 0);
}

TEST_F(CkptErrorsTest, TruncatedChunkPayload)
{
    auto bytes = writeAndSlurp("trunc.ckpt");
    // Drop the tail of the last chunk's payload.
    bytes.resize(bytes.size() - 3);
    writeBytes("trunc.ckpt", bytes);
    EXPECT_THROW(softwatt::readCheckpoint(path("trunc.ckpt")),
                 CheckpointError);
    EXPECT_EQ(runCkptTool(path("trunc.ckpt")), 1);
}

TEST_F(CkptErrorsTest, TruncatedHeader)
{
    auto bytes = writeAndSlurp("hdr.ckpt");
    bytes.resize(4);  // not even the magic survives
    writeBytes("hdr.ckpt", bytes);
    EXPECT_THROW(softwatt::readCheckpoint(path("hdr.ckpt")),
                 CheckpointError);
    EXPECT_EQ(runCkptTool(path("hdr.ckpt")), 1);
}

TEST_F(CkptErrorsTest, FlippedPayloadByteFailsChecksum)
{
    auto bytes = writeAndSlurp("flip.ckpt");
    // Flip the last payload byte; the chunk checksum must catch it.
    bytes.back() = char(bytes.back() ^ 0x40);
    writeBytes("flip.ckpt", bytes);
    EXPECT_THROW(softwatt::readCheckpoint(path("flip.ckpt")),
                 CheckpointError);
    EXPECT_EQ(runCkptTool(path("flip.ckpt")), 1);
}

TEST_F(CkptErrorsTest, BadMagic)
{
    auto bytes = writeAndSlurp("magic.ckpt");
    bytes[0] = 'X';
    writeBytes("magic.ckpt", bytes);
    EXPECT_THROW(softwatt::readCheckpoint(path("magic.ckpt")),
                 CheckpointError);
    EXPECT_EQ(runCkptTool(path("magic.ckpt")), 1);
}

TEST_F(CkptErrorsTest, VersionSkewIsMismatchNotCorruption)
{
    auto bytes = writeAndSlurp("ver.ckpt");
    // Version u16 sits right after the 6-byte magic.
    bytes[6] = char(0xEE);
    bytes[7] = char(0x7F);
    writeBytes("ver.ckpt", bytes);
    EXPECT_THROW(softwatt::readCheckpoint(path("ver.ckpt")),
                 CheckpointMismatch);
    EXPECT_EQ(runCkptTool(path("ver.ckpt")), 1);
}

TEST_F(CkptErrorsTest, MissingFile)
{
    EXPECT_THROW(softwatt::readCheckpoint(path("nope.ckpt")),
                 CheckpointError);
    // Distinct verdict: nothing to parse is exit 2, not exit 1.
    EXPECT_EQ(runCkptTool(path("nope.ckpt")), 2);
}

TEST_F(CkptErrorsTest, ZeroLengthStubIsDistinctFromCorruption)
{
    // The stub a torn rename leaves at the destination: present but
    // zero bytes. The tool must call it EMPTY (exit 2) rather than
    // lumping it in with corruption, and worst-wins aggregation
    // must surface the 2 even when a good file is also listed.
    writeBytes("stub.ckpt", {});
    EXPECT_THROW(softwatt::readCheckpoint(path("stub.ckpt")),
                 CheckpointError);
    EXPECT_EQ(runCkptTool(path("stub.ckpt")), 2);

    writeAndSlurp("good.ckpt");
    EXPECT_EQ(runCkptTool(path("good.ckpt") + "\" \"" +
                          path("stub.ckpt")),
              2);
}

TEST_F(CkptErrorsTest, ReaderOverrunThrows)
{
    ChunkWriter out;
    out.u32(5);
    ChunkReader in(out.bytes(), "tiny");
    EXPECT_EQ(in.u32(), 5u);
    // Reading past the payload end must throw, not yield garbage.
    EXPECT_THROW(in.u64(), CheckpointError);
}

TEST_F(CkptErrorsTest, LeftoverBytesFailFinish)
{
    ChunkWriter out;
    out.u32(5);
    out.u32(6);
    ChunkReader in(out.bytes(), "leftover");
    EXPECT_EQ(in.u32(), 5u);
    EXPECT_EQ(in.remaining(), 4u);
    // finish() with unconsumed bytes is a contract violation: the
    // loader missed a field the saver wrote.
    EXPECT_THROW(in.finish(), CheckpointError);
    EXPECT_EQ(in.u32(), 6u);
    in.finish();
}

TEST_F(CkptErrorsTest, StringRoundTripAndTruncation)
{
    ChunkWriter out;
    out.str("softwatt");
    {
        ChunkReader in(out.bytes(), "str");
        EXPECT_EQ(in.str(), "softwatt");
        in.finish();
    }
    // Length prefix promising more bytes than the payload holds.
    std::vector<std::uint8_t> cut(out.bytes().begin(),
                                  out.bytes().end() - 2);
    ChunkReader in(cut, "str");
    EXPECT_THROW(in.str(), CheckpointError);
}
