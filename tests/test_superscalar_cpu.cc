/**
 * @file
 * Tests for the MXS-like out-of-order superscalar CPU model.
 */

#include <gtest/gtest.h>

#include "cpu/stream_gen.hh"
#include "cpu/superscalar_cpu.hh"
#include "mem/hierarchy.hh"
#include "sim/counter_sink.hh"

#include "stub_kernel.hh"

using namespace softwatt;

namespace
{

struct Fixture
{
    MachineParams machine;
    CounterSink sink;
    CacheHierarchy hierarchy{machine, sink};
    Tlb tlb{64};
    StubKernel kernel{&tlb};
    SuperscalarCpu cpu{machine, hierarchy, tlb, sink, kernel};

    void
    run(int cycles)
    {
        for (int i = 0; i < cycles; ++i)
            cpu.cycle();
    }
};

StreamSpec
parallelSpec()
{
    StreamSpec s;
    s.fracLoad = 0;
    s.fracStore = 0;
    s.fracBranch = 0;
    s.fracFp = 0;
    s.fracNop = 0.5;
    s.depProb = 0.0;
    s.kernelMapped = true;
    s.codeFootprint = 512;  // warms the I-cache quickly
    return s;
}

} // namespace

TEST(SuperscalarCpu, ParallelCodeExceedsScalarIpc)
{
    Fixture f;
    StreamGen gen(parallelSpec(), 1);
    f.kernel.fallback = &gen;
    f.run(10000);
    EXPECT_GT(f.cpu.ipc(), 1.5);
    EXPECT_LE(f.cpu.ipc(), 4.0);
}

TEST(SuperscalarCpu, SerialChainLimitsIpcToOne)
{
    Fixture f;
    StreamSpec s = parallelSpec();
    s.fracNop = 0;
    s.depProb = 1.0;
    s.depWindow = 1;
    StreamGen gen(s, 1);
    f.kernel.fallback = &gen;
    f.run(10000);
    EXPECT_LE(f.cpu.ipc(), 1.1);
    EXPECT_GT(f.cpu.ipc(), 0.6);
}

TEST(SuperscalarCpu, CommitsInProgramOrder)
{
    Fixture f;
    // A slow load followed by fast ALUs: ALUs finish first but must
    // commit after the load.
    f.kernel.push(loadOp(0x100, 0x80000));
    f.kernel.push(aluOp(0x104));
    f.kernel.push(aluOp(0x108));
    f.run(400);
    ASSERT_EQ(f.kernel.committed.size(), 3u);
    EXPECT_EQ(f.kernel.committed[0], 0x100u);
    EXPECT_EQ(f.kernel.committed[1], 0x104u);
    EXPECT_EQ(f.kernel.committed[2], 0x108u);
}

TEST(SuperscalarCpu, IndependentWorkOverlapsLoadMiss)
{
    // With a cold load plus independent ALU work, total time is far
    // less than the sum of both executed serially.
    Fixture serial_f, overlap_f;

    serial_f.kernel.push(loadOp(0x100, 0x80000));
    int serial_cycles = 0;
    while (serial_f.kernel.committed.size() < 1) {
        serial_f.cpu.cycle();
        ++serial_cycles;
    }

    // Warm the ALU code lines so fetch misses don't mask overlap.
    for (int i = 0; i < 40; ++i)
        overlap_f.kernel.push(aluOp(0x200 + 4 * i));
    overlap_f.run(400);
    overlap_f.kernel.committed.clear();
    overlap_f.kernel.push(loadOp(0x100, 0x80000));
    for (int i = 0; i < 40; ++i)
        overlap_f.kernel.push(aluOp(0x200 + 4 * i));
    int overlap_cycles = 0;
    while (overlap_f.kernel.committed.size() < 41 &&
           overlap_cycles < 2000) {  // 1 load + 40 warm ALUs
        overlap_f.cpu.cycle();
        ++overlap_cycles;
    }
    // 40 extra instructions cost at most ~15 extra cycles.
    EXPECT_LT(overlap_cycles, serial_cycles + 20);
}

TEST(SuperscalarCpu, TlbMissIsPreciseException)
{
    Fixture f;
    for (int i = 0; i < 8; ++i)
        f.kernel.push(aluOp(0x100 + 4 * i));
    f.kernel.push(loadOp(0x200, 0x40002000, false));
    for (int i = 0; i < 8; ++i)
        f.kernel.push(aluOp(0x300 + 4 * i));
    f.run(500);
    EXPECT_EQ(f.kernel.tlbMisses, 1);
    // All 17 instructions commit exactly once despite the trap.
    EXPECT_EQ(f.kernel.committed.size(), 17u);
    // Older instructions committed BEFORE the trap was raised.
    EXPECT_EQ(f.kernel.lastMissAddr, 0x40002000u);
}

TEST(SuperscalarCpu, ReplayedOpsFollowHandlerOrder)
{
    Fixture f;
    f.kernel.push(loadOp(0x200, 0x40002000, false));
    f.kernel.push(aluOp(0x204));
    f.run(500);
    ASSERT_EQ(f.kernel.committed.size(), 2u);
    EXPECT_EQ(f.kernel.committed[0], 0x200u);
    EXPECT_EQ(f.kernel.committed[1], 0x204u);
    // The faulting load plus the younger op were handed back.
    EXPECT_GE(f.kernel.lastReplaySize, 1u);
}

TEST(SuperscalarCpu, SyscallSerializesAndNotifies)
{
    Fixture f;
    MicroOp sys;
    sys.cls = InstClass::Syscall;
    sys.pc = 0x150;
    sys.syscallId = 7;
    f.kernel.push(aluOp(0x100));
    f.kernel.push(sys);
    f.kernel.push(aluOp(0x200));
    f.run(300);
    ASSERT_EQ(f.kernel.syscallIds.size(), 1u);
    EXPECT_EQ(f.kernel.syscallIds[0], 7u);
    // The op after the syscall still commits (fetch resumed).
    EXPECT_EQ(f.kernel.committed.size(), 3u);
    EXPECT_EQ(f.kernel.committed[2], 0x200u);
}

TEST(SuperscalarCpu, InterruptSquashesAndReplays)
{
    Fixture f;
    StreamSpec s = parallelSpec();
    StreamGen gen(s, 2);
    f.kernel.fallback = &gen;
    f.run(2000);  // warm up: keep the pipeline full
    std::size_t committed_before = f.kernel.committed.size();
    f.kernel.intPending = true;
    f.run(5);
    EXPECT_EQ(f.kernel.interruptsTaken, 1);
    EXPECT_GT(f.kernel.replayServed, 0u);
    EXPECT_GT(f.kernel.committed.size(), committed_before);
}

TEST(SuperscalarCpu, SquashAllCollectPreservesOrder)
{
    Fixture f;
    // Warm the I-cache lines first so fetch is not stalled.
    f.kernel.push(aluOp(0x100));
    for (int i = 0; i < 5; ++i)
        f.kernel.push(aluOp(0x200 + 4 * i));
    f.run(400);
    f.kernel.committed.clear();
    f.kernel.push(loadOp(0x100, 0x80000));  // slow: keeps in flight
    for (int i = 0; i < 5; ++i)
        f.kernel.push(aluOp(0x200 + 4 * i));
    f.run(10);
    auto replay = f.cpu.squashAllCollect();
    ASSERT_GE(replay.size(), 2u);
    for (std::size_t i = 1; i < replay.size(); ++i)
        EXPECT_LT(replay[i - 1].pc, replay[i].pc);
    EXPECT_TRUE(f.cpu.pipelineEmpty());
}

TEST(SuperscalarCpu, FetchBreaksAtTakenBranch)
{
    Fixture f;
    // All-taken predictable branches: fetch can bring at most one
    // branch per cycle, capping IPC around 1.
    StreamSpec s = parallelSpec();
    s.fracNop = 0;
    s.fracBranch = 1.0;
    s.takenProb = 1.0;
    s.predictability = 1.0;
    StreamGen gen(s, 3);
    f.kernel.fallback = &gen;
    f.run(2000);
    EXPECT_LE(f.cpu.ipc(), 1.2);
}

TEST(SuperscalarCpu, MispredictsStallFetch)
{
    Fixture lo_f, hi_f;
    StreamSpec predictable = parallelSpec();
    predictable.fracNop = 0.3;
    predictable.fracBranch = 0.2;
    predictable.predictability = 1.0;
    StreamSpec random_branches = predictable;
    random_branches.predictability = 0.0;
    random_branches.takenProb = 0.5;

    StreamGen lo(random_branches, 4), hi(predictable, 4);
    lo_f.kernel.fallback = &lo;
    hi_f.kernel.fallback = &hi;
    lo_f.run(4000);
    hi_f.run(4000);
    EXPECT_LT(lo_f.cpu.predictor().accuracy(),
              hi_f.cpu.predictor().accuracy());
    EXPECT_LT(lo_f.cpu.ipc(), hi_f.cpu.ipc());
    EXPECT_GT(lo_f.cpu.mispredictStallCycles(),
              hi_f.cpu.mispredictStallCycles());
}

TEST(SuperscalarCpu, WindowCountersTrackDispatchAndIssue)
{
    Fixture f;
    for (int i = 0; i < 10; ++i)
        f.kernel.push(aluOp(0x100 + 4 * i, 1, 2));
    f.run(100);
    const CounterBank &bank = f.sink.global();
    // Insert + wakeup per instruction.
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::IssueWindowOp),
              20u);
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::RenameOp), 10u);
    EXPECT_EQ(bank.get(ExecMode::User, CounterId::RegFileWrite),
              10u);
}

TEST(SuperscalarCpu, EndsOnlyWhenDrained)
{
    Fixture f;
    f.kernel.endWhenEmpty = true;
    f.kernel.push(loadOp(0x100, 0x80000));
    bool alive = true;
    int cycles = 0;
    while (alive && cycles < 1000) {
        alive = f.cpu.cycle();
        ++cycles;
    }
    EXPECT_FALSE(alive);
    EXPECT_EQ(f.kernel.committed.size(), 1u);
    EXPECT_GE(cycles, f.machine.memoryLatency);
}
