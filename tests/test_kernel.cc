/**
 * @file
 * Integration tests for the MiniOS kernel running on the superscalar
 * CPU: trap handling, service accounting, syscall dispatch, clock
 * interrupts.
 */

#include <gtest/gtest.h>

#include "cpu/superscalar_cpu.hh"
#include "disk/disk.hh"
#include "mem/hierarchy.hh"
#include "os/kernel.hh"
#include "os/syscalls.hh"
#include "sim/counter_sink.hh"
#include "sim/event_queue.hh"

using namespace softwatt;

namespace
{

/** Scripted user program. */
class ScriptProgram : public InstSource
{
  public:
    std::deque<MicroOp> ops;

    FetchOutcome
    next(MicroOp &op) override
    {
        if (ops.empty())
            return FetchOutcome::End;
        op = ops.front();
        ops.pop_front();
        return FetchOutcome::Op;
    }
};

struct Fixture
{
    MachineParams machine;
    EventQueue queue;
    CounterSink sink;
    CacheHierarchy hierarchy{machine, sink};
    Tlb tlb{64};
    Disk disk{queue, 200e6, DiskConfig::idleOnly(), 100.0, 5};
    Kernel::Params kparams;
    Kernel kernel{queue,   tlb,     hierarchy, disk,
                  machine, kparams, sink};
    SuperscalarCpu cpu{machine, hierarchy, tlb, sink, kernel};
    ScriptProgram program;

    Fixture()
    {
        kernel.setUserProgram(&program);
        kernel.setEnergyFn([](const CounterBank &bank) {
            // Simple test model: 1 nJ per committed instruction.
            std::array<double, numComponents> out{};
            out[0] = 1e-9 *
                     double(bank.total(CounterId::CommittedInsts));
            return out;
        });
    }

    /** Run until the CPU reports completion (bounded). */
    void
    runToEnd(int max_cycles = 200000)
    {
        for (int i = 0; i < max_cycles; ++i) {
            bool alive = cpu.cycle();
            queue.advanceTo(queue.now() + 1);
            if (!alive)
                return;
        }
        FAIL() << "simulation did not finish";
    }

    MicroOp
    userLoad(Addr pc, Addr addr)
    {
        MicroOp op;
        op.cls = InstClass::Load;
        op.pc = pc;
        op.memAddr = addr;
        op.dst = 1;
        op.asid = 1;
        op.mode = ExecMode::User;
        return op;
    }

    MicroOp
    userAlu(int i)
    {
        MicroOp op;
        op.cls = InstClass::IntAlu;
        op.pc = 0x2000 + 4 * (i % 128);
        op.srcA = 1;
        op.dst = 2;
        op.asid = 1;
        op.mode = ExecMode::User;
        return op;
    }

    MicroOp
    userSyscall(SyscallId id, std::uint64_t arg)
    {
        MicroOp op;
        op.cls = InstClass::Syscall;
        op.pc = 0x1100;
        op.syscallId = std::uint16_t(id);
        op.syscallArg = arg;
        op.asid = 1;
        op.mode = ExecMode::User;
        return op;
    }
};

} // namespace

TEST(Kernel, TlbMissRunsUtlbService)
{
    Fixture f;
    f.kernel.pageTable().map(0x40000000);  // pre-mapped: pure refill
    f.program.ops.push_back(f.userLoad(0x1000, 0x40000000));
    f.runToEnd();
    const ServiceStats &utlb =
        f.kernel.serviceStats(ServiceKind::Utlb);
    EXPECT_EQ(utlb.invocations, 1u);
    EXPECT_GT(utlb.cycles, 0u);
    EXPECT_GT(utlb.energyJ, 0.0);
}

TEST(Kernel, FirstTouchRunsDemandZero)
{
    Fixture f;
    f.program.ops.push_back(f.userLoad(0x1000, 0x40000000));
    f.runToEnd();
    EXPECT_EQ(
        f.kernel.serviceStats(ServiceKind::DemandZero).invocations,
        1u);
    EXPECT_EQ(f.kernel.serviceStats(ServiceKind::Utlb).invocations,
              1u);
    EXPECT_TRUE(f.kernel.pageTable().isMapped(0x40000000));
}

TEST(Kernel, SecondTouchIsPureRefill)
{
    Fixture f;
    f.program.ops.push_back(f.userLoad(0x1000, 0x40000000));
    f.program.ops.push_back(f.userLoad(0x1004, 0x40000008));
    f.runToEnd();
    EXPECT_EQ(
        f.kernel.serviceStats(ServiceKind::DemandZero).invocations,
        1u);
}

TEST(Kernel, ReadSyscallRunsReadService)
{
    Fixture f;
    auto file = f.kernel.fs().createFile(64 * 1024);
    f.program.ops.push_back(
        f.userSyscall(SyscallId::Read, encodeIoArg(file, 0, 4096)));
    f.runToEnd();
    const ServiceStats &read =
        f.kernel.serviceStats(ServiceKind::Read);
    EXPECT_EQ(read.invocations, 1u);
    EXPECT_GT(read.cycles, 0u);
    // The cold read went to the disk.
    EXPECT_EQ(f.disk.requestsServed(), 1u);
}

TEST(Kernel, CachedReadSkipsDisk)
{
    Fixture f;
    auto file = f.kernel.fs().createFile(64 * 1024);
    f.program.ops.push_back(
        f.userSyscall(SyscallId::Read, encodeIoArg(file, 0, 4096)));
    f.program.ops.push_back(
        f.userSyscall(SyscallId::Read, encodeIoArg(file, 0, 4096)));
    f.runToEnd();
    EXPECT_EQ(f.kernel.serviceStats(ServiceKind::Read).invocations,
              2u);
    EXPECT_EQ(f.disk.requestsServed(), 1u);  // second read was warm
}

TEST(Kernel, BlockedReadSchedulesIdleProcess)
{
    Fixture f;
    auto file = f.kernel.fs().createFile(64 * 1024);
    f.program.ops.push_back(
        f.userSyscall(SyscallId::Read, encodeIoArg(file, 0, 4096)));
    f.runToEnd();
    // While the disk was seeking, the CPU ran the busy-wait idle
    // loop: idle-mode cycles and fetches must exist.
    EXPECT_GT(
        f.sink.global().get(ExecMode::Idle, CounterId::Cycles), 0u);
    EXPECT_GT(
        f.sink.global().get(ExecMode::Idle, CounterId::IL1Ref), 0u);
}

TEST(Kernel, WriteDirtiesBufferCache)
{
    Fixture f;
    auto file = f.kernel.fs().createFile(64 * 1024);
    f.program.ops.push_back(
        f.userSyscall(SyscallId::Write, encodeIoArg(file, 0, 8192)));
    f.runToEnd();
    EXPECT_EQ(f.kernel.serviceStats(ServiceKind::Write).invocations,
              1u);
    EXPECT_EQ(f.kernel.fileCache().dirtyBlocks(), 2u);
    EXPECT_EQ(f.disk.requestsServed(), 0u);
}

TEST(Kernel, SyscallDispatchCoversAllServices)
{
    Fixture f;
    auto file = f.kernel.fs().createFile(64 * 1024);
    f.program.ops.push_back(
        f.userSyscall(SyscallId::Open, encodeIoArg(file, 0, 0)));
    f.program.ops.push_back(f.userSyscall(SyscallId::Xstat, 0));
    f.program.ops.push_back(f.userSyscall(SyscallId::DuPoll, 0));
    f.program.ops.push_back(f.userSyscall(SyscallId::Bsd, 0));
    f.program.ops.push_back(f.userSyscall(SyscallId::CacheFlush, 0));
    f.runToEnd();
    for (ServiceKind kind :
         {ServiceKind::Open, ServiceKind::Xstat, ServiceKind::DuPoll,
          ServiceKind::Bsd, ServiceKind::CacheFlush}) {
        EXPECT_EQ(f.kernel.serviceStats(kind).invocations, 1u)
            << serviceName(kind);
    }
}

TEST(Kernel, CacheFlushSyscallFlushesL1)
{
    Fixture f;
    f.hierarchy.ifetch(0x777000, ExecMode::User);
    ASSERT_TRUE(f.hierarchy.icache().probe(0x777000));
    f.program.ops.push_back(f.userSyscall(SyscallId::CacheFlush, 0));
    f.runToEnd();
    EXPECT_FALSE(f.hierarchy.icache().probe(0x777000));
}

TEST(Kernel, ClockInterruptsInvokeClockService)
{
    Fixture f;
    // A fast 10k-cycle tick so several interrupts land within a
    // modest instruction budget.
    Kernel::Params params;
    params.clockTickSeconds = 0.005;
    Kernel kernel(f.queue, f.tlb, f.hierarchy, f.disk, f.machine,
                  params, f.sink);
    ScriptProgram program;
    for (int i = 0; i < 60000; ++i)
        program.ops.push_back(f.userAlu(i));
    kernel.setUserProgram(&program);
    SuperscalarCpu cpu(f.machine, f.hierarchy, f.tlb, f.sink, kernel);
    kernel.startClock();
    for (int i = 0; i < 1'000'000; ++i) {
        bool alive = cpu.cycle();
        f.queue.advanceTo(f.queue.now() + 1);
        if (!alive)
            break;
    }
    EXPECT_GE(kernel.clockInterrupts(), 2u);
    EXPECT_EQ(kernel.serviceStats(ServiceKind::ClockInt).invocations,
              kernel.clockInterrupts());
}

TEST(Kernel, ServiceEnergiesUseEnergyFn)
{
    Fixture f;
    f.kernel.pageTable().map(0x40000000);
    f.program.ops.push_back(f.userLoad(0x1000, 0x40000000));
    f.runToEnd();
    const ServiceStats &utlb =
        f.kernel.serviceStats(ServiceKind::Utlb);
    // 1 nJ per committed instruction; the handler is 18 ops.
    EXPECT_NEAR(utlb.energyJ, 18e-9, 4e-9);
}

TEST(Kernel, SlowTlbPathTaken)
{
    Fixture f;
    f.kernel.pageTable().map(0x40000000);
    Kernel::Params params;
    // Probability 1: every miss takes the slow path.
    // (Rebuild the kernel with the forced parameter.)
    params.tlbSlowPathProb = 1.0;
    Kernel slow_kernel(f.queue, f.tlb, f.hierarchy, f.disk,
                       f.machine, params, f.sink);
    ScriptProgram program;
    program.ops.push_back(f.userLoad(0x1000, 0x40000000));
    slow_kernel.setUserProgram(&program);
    slow_kernel.pageTable().map(0x40000000);
    SuperscalarCpu cpu(f.machine, f.hierarchy, f.tlb, f.sink,
                       slow_kernel);
    for (int i = 0; i < 100000; ++i) {
        if (!cpu.cycle())
            break;
        f.queue.advanceTo(f.queue.now() + 1);
    }
    EXPECT_EQ(
        slow_kernel.serviceStats(ServiceKind::TlbMiss).invocations,
        1u);
    EXPECT_EQ(slow_kernel.serviceStats(ServiceKind::Utlb).invocations,
              0u);
}

TEST(Kernel, EndsAfterWorkloadAndServicesDrain)
{
    Fixture f;
    f.program.ops.push_back(f.userLoad(0x1000, 0x40000000));
    f.runToEnd();
    EXPECT_TRUE(f.kernel.workloadDone());
    EXPECT_EQ(f.sink.liveBanks(), 0u);  // every frame finalized
}
