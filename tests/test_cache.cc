/**
 * @file
 * Unit and property tests for the cache tag model.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "mem/cache.hh"

using namespace softwatt;

namespace
{

CacheParams
params(std::uint64_t size, int line, int ways)
{
    return CacheParams{size, line, ways, 1};
}

} // namespace

TEST(Cache, FirstAccessMissesSecondHits)
{
    Cache c("t", params(4096, 64, 2));
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1030, false).hit);  // same line
    EXPECT_EQ(c.refs(), 3u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    // 2-way, line 64: a set holds exactly two lines.
    Cache c("t", params(4096, 64, 2));
    std::uint64_t set_stride = 64 * c.numSets();
    Addr a = 0x0, b = a + set_stride, d = a + 2 * set_stride;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);      // refresh a; b becomes LRU
    c.access(d, false);      // evicts b
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_FALSE(c.access(b, false).hit);
}

TEST(Cache, DirtyVictimReportsWriteback)
{
    Cache c("t", params(4096, 64, 1));  // direct-mapped
    std::uint64_t stride = 64 * c.numSets();
    c.access(0x0, true);  // dirty
    CacheAccessResult r = c.access(stride, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, CleanVictimNoWriteback)
{
    Cache c("t", params(4096, 64, 1));
    std::uint64_t stride = 64 * c.numSets();
    c.access(0x0, false);
    CacheAccessResult r = c.access(stride, false);
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteToCleanLineMarksDirty)
{
    Cache c("t", params(4096, 64, 1));
    std::uint64_t stride = 64 * c.numSets();
    c.access(0x0, false);
    c.access(0x0, true);  // hit, now dirty
    CacheAccessResult r = c.access(stride, false);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, ProbeDoesNotAllocateOrCount)
{
    Cache c("t", params(4096, 64, 2));
    EXPECT_FALSE(c.probe(0x1000));
    EXPECT_EQ(c.refs(), 0u);
    c.access(0x1000, false);
    EXPECT_TRUE(c.probe(0x1000));
}

TEST(Cache, InvalidateAllDropsEverything)
{
    Cache c("t", params(4096, 64, 2));
    c.access(0x1000, true);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(0x1000));
    // Dirty state discarded: refill does not report a writeback.
    EXPECT_FALSE(c.access(0x1000, false).writeback);
}

TEST(Cache, InvalidateLine)
{
    Cache c("t", params(4096, 64, 2));
    c.access(0x1000, false);
    EXPECT_TRUE(c.invalidateLine(0x1000));
    EXPECT_FALSE(c.invalidateLine(0x1000));
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(Cache, MissRatio)
{
    Cache c("t", params(4096, 64, 2));
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.missRatio(), 0.25);
}

TEST(CacheDeath, BadGeometryFatal)
{
    EXPECT_DEATH(Cache("t", params(4096 + 64, 64, 2)), "multiple");
    EXPECT_DEATH(Cache("t", params(1536, 48, 1)), "power of two");
}

/**
 * Property sweep across geometries: working sets that fit never miss
 * after the first pass; working sets twice the capacity always miss
 * when streamed cyclically (LRU worst case).
 */
class CacheSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(CacheSweep, FittingWorkingSetHitsAfterWarmup)
{
    auto [size_kb, line, ways] = GetParam();
    Cache c("t", params(std::uint64_t(size_kb) * 1024, line, ways));
    std::uint64_t ws = std::uint64_t(size_kb) * 1024;
    for (Addr a = 0; a < ws; a += line)
        c.access(a, false);
    std::uint64_t warm_misses = c.misses();
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < ws; a += line)
            c.access(a, false);
    EXPECT_EQ(c.misses(), warm_misses);
}

TEST_P(CacheSweep, OversizedCyclicStreamAlwaysMisses)
{
    auto [size_kb, line, ways] = GetParam();
    Cache c("t", params(std::uint64_t(size_kb) * 1024, line, ways));
    std::uint64_t ws = std::uint64_t(size_kb) * 2 * 1024;
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < ws; a += line)
            c.access(a, false);
    EXPECT_DOUBLE_EQ(c.missRatio(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheSweep,
    ::testing::Combine(::testing::Values(4, 32),
                       ::testing::Values(32, 64, 128),
                       ::testing::Values(1, 2, 4)));
