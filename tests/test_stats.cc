/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "sim/stats.hh"

using namespace softwatt;

TEST(StatsScalar, AccumulatesAndResets)
{
    stats::Group g("grp");
    stats::Scalar s(g, "count", "a counter");
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(StatsVector, BucketsAndTotal)
{
    stats::Group g("grp");
    stats::Vector v(g, "hits", "per-level hits", {"l1", "l2", "mem"});
    v.add(0, 3);
    v.add(1);
    v.add(2, 6);
    EXPECT_DOUBLE_EQ(v.value(0), 3);
    EXPECT_DOUBLE_EQ(v.value(1), 1);
    EXPECT_DOUBLE_EQ(v.total(), 10);
    EXPECT_EQ(v.size(), 3u);
}

TEST(StatsVectorDeath, OutOfRangeBucketPanics)
{
    stats::Group g("grp");
    stats::Vector v(g, "v", "d", {"a"});
    EXPECT_DEATH(v.add(5), "out of range");
}

TEST(StatsDistribution, MomentsMatchHand)
{
    stats::Group g("grp");
    stats::Distribution d(g, "lat", "latency");
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        d.sample(x);
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(d.maximum(), 9.0);
    // Sample stdev of this classic set is sqrt(32/7).
    EXPECT_NEAR(d.stdev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsDistribution, CoeffOfDeviation)
{
    stats::Group g("grp");
    stats::Distribution d(g, "e", "energy");
    d.sample(10);
    d.sample(10);
    EXPECT_DOUBLE_EQ(d.coeffOfDeviationPct(), 0.0);
    d.sample(13);
    EXPECT_GT(d.coeffOfDeviationPct(), 0.0);
}

TEST(StatsDistribution, SingleSampleHasZeroStdev)
{
    stats::Group g("grp");
    stats::Distribution d(g, "e", "energy");
    d.sample(4);
    EXPECT_DOUBLE_EQ(d.stdev(), 0.0);
}

TEST(StatsGroup, DumpContainsNamesAndValues)
{
    stats::Group g("cpu");
    stats::Scalar s(g, "ipc", "instructions per cycle");
    s += 1.5;
    std::ostringstream out;
    g.dump(out);
    std::string text = out.str();
    EXPECT_NE(text.find("cpu.ipc"), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
    EXPECT_NE(text.find("instructions per cycle"),
              std::string::npos);
}

TEST(StatsGroup, ResetAllResetsEveryStat)
{
    stats::Group g("grp");
    stats::Scalar a(g, "a", "");
    stats::Distribution d(g, "d", "");
    a += 5;
    d.sample(1);
    g.resetAll();
    EXPECT_DOUBLE_EQ(a.value(), 0);
    EXPECT_EQ(d.count(), 0u);
}
