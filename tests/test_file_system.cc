/**
 * @file
 * Tests for the flat filesystem and the LRU buffer cache.
 */

#include <gtest/gtest.h>

#include "os/file_system.hh"

using namespace softwatt;

TEST(FileSystem, FilesGetDisjointExtents)
{
    FileSystem fs(4096);
    auto a = fs.createFile(10 * 4096);
    auto b = fs.createFile(4096);
    auto c = fs.createFile(1);  // rounds up to one block
    const FileInfo &fa = fs.info(a);
    const FileInfo &fb = fs.info(b);
    const FileInfo &fc = fs.info(c);
    EXPECT_EQ(fb.firstBlock, fa.firstBlock + 10);
    EXPECT_EQ(fc.firstBlock, fb.firstBlock + 1);
    EXPECT_EQ(fs.fileCount(), 3u);
}

TEST(FileSystem, BlockOfMapsOffsets)
{
    FileSystem fs(4096);
    auto f = fs.createFile(10 * 4096);
    std::uint64_t first = fs.info(f).firstBlock;
    EXPECT_EQ(fs.blockOf(f, 0), first);
    EXPECT_EQ(fs.blockOf(f, 4095), first);
    EXPECT_EQ(fs.blockOf(f, 4096), first + 1);
    EXPECT_EQ(fs.blockOf(f, 9 * 4096 + 100), first + 9);
}

TEST(FileSystemDeath, UnknownFileFatal)
{
    FileSystem fs;
    EXPECT_DEATH((void)fs.info(42), "unknown file");
}

TEST(FileCache, HitAfterInsert)
{
    FileCache cache(4);
    EXPECT_FALSE(cache.contains(100));
    cache.insert(100);
    EXPECT_TRUE(cache.contains(100));
    EXPECT_EQ(cache.lookups(), 2u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5);
}

TEST(FileCache, LruEviction)
{
    FileCache cache(2);
    cache.insert(1);
    cache.insert(2);
    EXPECT_TRUE(cache.contains(1));  // refresh 1; 2 becomes LRU
    cache.insert(3);                 // evicts 2
    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    EXPECT_EQ(cache.size(), 2u);
}

TEST(FileCache, DirtyTracking)
{
    FileCache cache(4);
    cache.insertDirty(1);
    cache.insertDirty(1);  // idempotent
    cache.insert(2);
    EXPECT_EQ(cache.dirtyBlocks(), 1u);
    cache.cleanAll();
    EXPECT_EQ(cache.dirtyBlocks(), 0u);
    EXPECT_TRUE(cache.contains(1));
}

TEST(FileCache, EvictingDirtyBlockDropsDirtyCount)
{
    FileCache cache(1);
    cache.insertDirty(1);
    cache.insert(2);  // evicts dirty block 1
    EXPECT_EQ(cache.dirtyBlocks(), 0u);
}

TEST(FileCache, ClearEmptiesEverything)
{
    FileCache cache(4);
    cache.insert(1);
    cache.insertDirty(2);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.dirtyBlocks(), 0u);
}
