/**
 * @file
 * Tests for the experiment runner: parallel scheduling must be
 * bit-identical to the serial reference path, the ExperimentResult
 * lookups must address runs by (benchmark, variant), and malformed
 * command lines must be reported through the error-handler path.
 */

#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "sim/logging.hh"

using namespace softwatt;

namespace
{

ExperimentSpec
smallSuite(int jobs)
{
    ExperimentSpec spec;
    spec.title = "determinism";
    spec.jobs = jobs;
    SystemConfig config;
    spec.add(Benchmark::Jess, config, 0.05);
    spec.add(Benchmark::Compress, config, 0.05);
    spec.add(Benchmark::Db, config, 0.05);
    return spec;
}

std::string
csvOf(const BenchmarkRun &run)
{
    std::ostringstream out;
    run.system->log().writeCsv(out);
    return out.str();
}

std::string
jsonOf(const ExperimentResult &result)
{
    std::ostringstream out;
    result.writeJson(out);
    return out.str();
}

void
expectIdenticalBreakdowns(const PowerBreakdown &a,
                          const PowerBreakdown &b)
{
    EXPECT_EQ(a.freqHz, b.freqHz);
    EXPECT_EQ(a.diskEnergyJ, b.diskEnergyJ);
    for (int m = 0; m < numExecModes; ++m) {
        EXPECT_EQ(a.cycles[m], b.cycles[m]) << "mode " << m;
        for (int c = 0; c < numComponents; ++c) {
            EXPECT_EQ(a.energyJ[m][c], b.energyJ[m][c])
                << "mode " << m << " component " << c;
        }
    }
}

} // namespace

TEST(Runner, ParallelMatchesSerialBitForBit)
{
    setLogLevel(LogLevel::Quiet);
    ExperimentResult serial = runExperiment(smallSuite(1));
    ExperimentResult parallel = runExperiment(smallSuite(4));
    setLogLevel(LogLevel::Normal);

    EXPECT_EQ(serial.jobs(), 1);
    EXPECT_GT(parallel.jobs(), 1);
    ASSERT_EQ(serial.size(), 3u);
    ASSERT_EQ(parallel.size(), 3u);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        const BenchmarkRun &a = serial.at(i);
        const BenchmarkRun &b = parallel.at(i);
        EXPECT_EQ(a.name, b.name);
        EXPECT_EQ(a.result.outcome, b.result.outcome);
        EXPECT_EQ(a.system->now(), b.system->now());
        EXPECT_EQ(a.system->cpu().committedInsts(),
                  b.system->cpu().committedInsts());

        expectIdenticalBreakdowns(a.breakdown, b.breakdown);
        expectIdenticalBreakdowns(a.conventional, b.conventional);

        // Counter totals, every (mode, counter) cell.
        const CounterBank &ca = a.system->totals();
        const CounterBank &cb = b.system->totals();
        for (ExecMode mode : allExecModes) {
            for (int c = 0; c < numCounters; ++c) {
                EXPECT_EQ(ca.get(mode, CounterId(c)),
                          cb.get(mode, CounterId(c)))
                    << a.name << " mode " << execModeName(mode)
                    << " counter " << counterName(CounterId(c));
            }
        }

        // The sampled logs themselves, byte for byte.
        EXPECT_EQ(csvOf(a), csvOf(b)) << a.name;
    }

    // The emitted documents must be byte-identical: the jobs=
    // setting deliberately leaves no trace in the output.
    EXPECT_EQ(jsonOf(serial), jsonOf(parallel));
}

TEST(Runner, JsonDocumentShape)
{
    setLogLevel(LogLevel::Quiet);
    ExperimentSpec spec;
    spec.title = "shape";
    spec.jobs = 1;
    spec.add(Benchmark::Jess, SystemConfig{}, 0.05, "v1");
    ExperimentResult result = runExperiment(spec);
    setLogLevel(LogLevel::Normal);

    std::string doc = jsonOf(result);
    EXPECT_NE(doc.find("\"schema\": \"softwatt-experiment-v2\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"experiment\": \"shape\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"interrupted\": false"),
              std::string::npos);
    EXPECT_NE(doc.find("\"variant\": \"v1\""), std::string::npos);
    EXPECT_NE(doc.find("\"attempts\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"wall_ms\""), std::string::npos);
    EXPECT_NE(doc.find("\"error\": \"\""), std::string::npos);
    EXPECT_NE(doc.find("\"breakdown\""), std::string::npos);
    EXPECT_NE(doc.find("\"conventional_breakdown\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"counters\""), std::string::npos);
    EXPECT_NE(doc.find("\"services\""), std::string::npos);
    EXPECT_NE(doc.find("\"disk\""), std::string::npos);
    EXPECT_EQ(doc.find("\"jobs\""), std::string::npos);
}

TEST(Runner, ResultLookupByBenchmarkAndVariant)
{
    setLogLevel(LogLevel::Quiet);
    ExperimentSpec spec;
    spec.title = "lookup";
    spec.jobs = 2;
    SystemConfig config;
    spec.add(Benchmark::Jess, config, 0.05, "a");
    spec.add(Benchmark::Db, config, 0.05, "a");
    spec.add(Benchmark::Jess, config, 0.05, "b");
    ExperimentResult result = runExperiment(spec);
    setLogLevel(LogLevel::Normal);

    EXPECT_EQ(result.title(), "lookup");
    ASSERT_EQ(result.size(), 3u);
    EXPECT_EQ(result.specAt(2).variant, "b");

    EXPECT_EQ(result.run(Benchmark::Jess, "a").name, "jess");
    EXPECT_EQ(result.run(Benchmark::Db, "a").name, "db");
    EXPECT_EQ(&result.run(Benchmark::Jess, "b"), &result.at(2));

    std::vector<std::string> names_a = result.names("a");
    ASSERT_EQ(names_a.size(), 2u);
    EXPECT_EQ(names_a[0], "jess");
    EXPECT_EQ(names_a[1], "db");
    EXPECT_EQ(result.variantRuns("b").size(), 1u);
    EXPECT_EQ(result.breakdowns("a").size(), 2u);
    EXPECT_EQ(result.counterTotals("b").size(), 1u);
    EXPECT_GT(result.freqHz(), 0.0);

    // Absent (bench, variant) pairs are a fatal() error.
    setErrorHandler(throwingErrorHandler);
    EXPECT_THROW(result.run(Benchmark::Mtrt, "a"), SimError);
    EXPECT_THROW(result.run(Benchmark::Jess, "nope"), SimError);
    setErrorHandler(nullptr);
}

TEST(Runner, SpecFromArgsReadsRunnerKeys)
{
    Config args;
    args.set("jobs", std::int64_t(3));
    args.set("out", std::string("results.json"));
    ExperimentSpec spec = ExperimentSpec::fromArgs("t", args);
    EXPECT_EQ(spec.title, "t");
    EXPECT_EQ(spec.jobs, 3);
    EXPECT_EQ(spec.jsonPath, "results.json");

    Config none;
    ExperimentSpec defaults = ExperimentSpec::fromArgs("t", none);
    EXPECT_EQ(defaults.jobs, 0);
    EXPECT_EQ(defaults.jsonPath, "");
    EXPECT_EQ(defaults.deadlineS, 0.0);
    EXPECT_EQ(defaults.graceS, 0.0);
    EXPECT_FALSE(defaults.resume);
    EXPECT_FALSE(defaults.diagnose);

    Config resilient;
    resilient.set("deadline_s", 2.5);
    resilient.set("grace_s", 0.5);
    resilient.set("resume", std::int64_t(1));
    resilient.set("diagnose", std::int64_t(1));
    resilient.set("out", std::string("r.json"));
    ExperimentSpec r = ExperimentSpec::fromArgs("t", resilient);
    EXPECT_EQ(r.deadlineS, 2.5);
    EXPECT_EQ(r.graceS, 0.5);
    EXPECT_TRUE(r.resume);
    EXPECT_TRUE(r.diagnose);

    setErrorHandler(throwingErrorHandler);
    Config bad;
    bad.set("jobs", std::int64_t(-2));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", bad), SimError);

    Config bad_deadline;
    bad_deadline.set("deadline_s", -1.0);
    EXPECT_THROW(ExperimentSpec::fromArgs("t", bad_deadline),
                 SimError);

    Config bad_flag;
    bad_flag.set("resume", std::int64_t(2));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", bad_flag), SimError);

    // resume=1 without out= has nowhere to find a journal.
    Config no_out;
    no_out.set("resume", std::int64_t(1));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", no_out), SimError);

    // An unwritable out= destination fails at spec time, not after
    // hours of simulation.
    Config bad_out;
    bad_out.set("out",
                std::string("/nonexistent-dir/results.json"));
    EXPECT_THROW(ExperimentSpec::fromArgs("t", bad_out), SimError);
    setErrorHandler(nullptr);
}

TEST(Runner, AddSuiteCoversAllBenchmarks)
{
    ExperimentSpec spec;
    spec.addSuite(SystemConfig{}, 0.5, "v");
    ASSERT_EQ(spec.runs.size(), std::size(allBenchmarks));
    EXPECT_EQ(spec.runs.front().bench, Benchmark::Compress);
    for (const RunSpec &rs : spec.runs) {
        EXPECT_EQ(rs.variant, "v");
        EXPECT_EQ(rs.scale, 0.5);
    }
}

TEST(ParseArgs, MalformedArgumentsReportThroughErrorHandler)
{
    char prog[] = "prog";
    char bogus[] = "bogus";
    char good[] = "scale=0.5";
    char *argv_bad[] = {prog, good, bogus};

    Config out;
    std::string error;
    EXPECT_FALSE(tryParseArgs(3, argv_bad, out, error));
    EXPECT_NE(error.find("malformed argument 'bogus'"),
              std::string::npos);
    EXPECT_NE(error.find("expected key=value"), std::string::npos);

    setErrorHandler(throwingErrorHandler);
    try {
        parseArgs(3, argv_bad);
        FAIL() << "parseArgs accepted a malformed argument";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Fatal);
        EXPECT_NE(std::string(e.what())
                      .find("malformed argument 'bogus'"),
                  std::string::npos);
    }
    setErrorHandler(nullptr);

    // Well-formed arguments parse, in order.
    char *argv_ok[] = {prog, good};
    Config ok;
    EXPECT_TRUE(tryParseArgs(2, argv_ok, ok, error));
    EXPECT_EQ(ok.getDouble("scale", 0), 0.5);

    // --help lands in the error string for tryParseArgs (the exit-0
    // printing path lives only in parseCliArgs).
    char help[] = "--help";
    char *argv_help[] = {prog, help};
    Config unused;
    EXPECT_FALSE(tryParseArgs(2, argv_help, unused, error));
    EXPECT_NE(error.find("usage:"), std::string::npos);
    EXPECT_NE(error.find("jobs=N"), std::string::npos);
}

TEST(ParseCliArgs, HelpRequestsCleanExitWithoutCallingStdExit)
{
    char prog[] = "prog";
    char help[] = "-h";
    char *argv_help[] = {prog, help};
    CliArgs cli = parseCliArgs(2, argv_help);
    EXPECT_TRUE(cli.shouldExit);
    EXPECT_EQ(cli.exitCode, 0);

    char scale[] = "scale=0.25";
    char *argv_ok[] = {prog, scale};
    cli = parseCliArgs(2, argv_ok);
    EXPECT_FALSE(cli.shouldExit);
    EXPECT_EQ(cli.config.getDouble("scale", 0), 0.25);
}

TEST(ParseCliArgs, MalformedArgumentsGoThroughTheErrorHandler)
{
    char prog[] = "prog";
    char bogus[] = "bogus";
    char *argv_bad[] = {prog, bogus};
    setErrorHandler(throwingErrorHandler);
    EXPECT_THROW(parseCliArgs(2, argv_bad), SimError);
    setErrorHandler(nullptr);
}
