/**
 * @file
 * Unit and property tests for the Kamble-Ghose cache energy model.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "power/cache_model.hh"

using namespace softwatt;

namespace
{

CacheGeometry
geom(std::uint64_t size, int ways, int line, int access,
     bool full_line)
{
    CacheGeometry g;
    g.sizeBytes = size;
    g.ways = ways;
    g.lineBytes = line;
    g.accessBytes = access;
    g.readsFullLine = full_line;
    return g;
}

} // namespace

TEST(CacheGeometry, SetsAndTagBits)
{
    CacheGeometry g = geom(32 * 1024, 2, 64, 8, false);
    EXPECT_EQ(g.sets(), 256u);
    EXPECT_EQ(g.tagBits(), 40 - 8 - 6);
}

TEST(CacheModel, Table1EnergiesInExpectedBands)
{
    Technology tech;
    // L1 I-cache: full-line read across both ways.
    CacheEnergyModel il1(tech, geom(32 * 1024, 2, 64, 16, true));
    EXPECT_GT(il1.readEnergyNj(), 4.0);
    EXPECT_LT(il1.readEnergyNj(), 7.0);

    // L1 D-cache: column-muxed 8-byte access.
    CacheEnergyModel dl1(tech, geom(32 * 1024, 2, 64, 8, false));
    EXPECT_GT(dl1.readEnergyNj(), 0.5);
    EXPECT_LT(dl1.readEnergyNj(), 1.5);

    // Unified L2.
    CacheEnergyModel l2(tech, geom(1024 * 1024, 2, 128, 64, false));
    EXPECT_GT(l2.readEnergyNj(), 7.0);
    EXPECT_LT(l2.readEnergyNj(), 16.0);
}

TEST(CacheModel, FullLineReadCostsMoreThanMuxed)
{
    Technology tech;
    CacheEnergyModel full(tech, geom(32 * 1024, 2, 64, 8, true));
    CacheEnergyModel muxed(tech, geom(32 * 1024, 2, 64, 8, false));
    EXPECT_GT(full.readEnergyNj(), 2.0 * muxed.readEnergyNj());
}

TEST(CacheModel, EnergyTermsAllNonNegative)
{
    Technology tech;
    CacheEnergyModel m(tech, geom(64 * 1024, 4, 64, 8, false));
    CacheAccessEnergy e = m.readEnergy();
    EXPECT_GE(e.decodeNj, 0);
    EXPECT_GE(e.wordlineNj, 0);
    EXPECT_GT(e.bitlineNj, 0);
    EXPECT_GE(e.senseAmpNj, 0);
    EXPECT_GE(e.tagCompareNj, 0);
    EXPECT_GE(e.outputNj, 0);
    EXPECT_NEAR(e.totalNj(),
                e.decodeNj + e.wordlineNj + e.bitlineNj +
                    e.senseAmpNj + e.tagCompareNj + e.outputNj,
                1e-12);
}

TEST(CacheModel, WritesSkipSenseAmps)
{
    Technology tech;
    CacheEnergyModel m(tech, geom(32 * 1024, 2, 64, 8, false));
    EXPECT_DOUBLE_EQ(m.writeEnergy().senseAmpNj, 0.0);
    EXPECT_GT(m.readEnergy().senseAmpNj, 0.0);
}

TEST(CacheModel, LowerVddLowersEnergy)
{
    Technology hi, lo;
    lo.vdd = 1.8;
    CacheGeometry g = geom(32 * 1024, 2, 64, 8, false);
    EXPECT_LT(CacheEnergyModel(lo, g).readEnergyNj(),
              CacheEnergyModel(hi, g).readEnergyNj());
}

TEST(CacheModelDeath, NonPowerOfTwoSetsIsFatal)
{
    Technology tech;
    CacheGeometry g = geom(48 * 1024, 2, 64, 8, false);  // 384 sets
    EXPECT_DEATH(CacheEnergyModel(tech, g), "power of two");
}

/**
 * Property sweep: per-access read energy is monotone in capacity
 * (within a subbank regime) and in associativity.
 */
class CacheEnergySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheEnergySweep, EnergyGrowsWithSizeUpToSubbankLimit)
{
    auto [size_kb, ways] = GetParam();
    Technology tech;
    CacheEnergyModel small(
        tech, geom(std::uint64_t(size_kb) * 1024, ways, 64, 8, false));
    CacheEnergyModel big(
        tech,
        geom(std::uint64_t(size_kb) * 2 * 1024, ways, 64, 8, false));
    // Past the subbank limit the bitlines stop growing and the tag
    // narrows slightly, so allow a small decrease there.
    EXPECT_GE(big.readEnergyNj(), small.readEnergyNj() * 0.97)
        << size_kb << "KB " << ways << "-way";
}

TEST_P(CacheEnergySweep, EnergyGrowsWithWays)
{
    auto [size_kb, ways] = GetParam();
    Technology tech;
    CacheEnergyModel narrow(
        tech, geom(std::uint64_t(size_kb) * 1024, ways, 64, 8, false));
    CacheEnergyModel wide(
        tech,
        geom(std::uint64_t(size_kb) * 1024, ways * 2, 64, 8, false));
    EXPECT_GT(wide.readEnergyNj(), narrow.readEnergyNj());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEnergySweep,
    ::testing::Combine(::testing::Values(8, 16, 32, 64),
                       ::testing::Values(1, 2, 4)));
