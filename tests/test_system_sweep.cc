/**
 * @file
 * Parameterized full-system property sweep: the system invariants
 * must hold across CPU models and cache geometries, and cache-size
 * effects must point the right way.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"

using namespace softwatt;

namespace
{

BenchmarkRun
sweepRun(CpuModel model, int icache_kb, int dcache_kb)
{
    SystemConfig config;
    config.cpuModel = model;
    config.machine.icache.sizeBytes =
        std::uint64_t(icache_kb) * 1024;
    config.machine.dcache.sizeBytes =
        std::uint64_t(dcache_kb) * 1024;
    return runBenchmark(Benchmark::Db, config, 0.02);
}

} // namespace

class SystemSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(SystemSweep, InvariantsHoldAcrossConfigurations)
{
    auto [model, icache_kb, dcache_kb] = GetParam();
    BenchmarkRun run =
        sweepRun(CpuModel(model), icache_kb, dcache_kb);
    System &sys = *run.system;

    // Completes and attributes every cycle to a mode.
    EXPECT_TRUE(sys.kernel().workloadDone());
    std::uint64_t mode_cycles = 0;
    for (ExecMode m : allExecModes)
        mode_cycles += sys.totals().get(m, CounterId::Cycles);
    EXPECT_EQ(mode_cycles, sys.now());

    // Energy accounting is complete and positive.
    EXPECT_GT(run.breakdown.cpuMemEnergyJ(), 0.0);
    double share = 0;
    for (Component c : allComponents)
        share += run.breakdown.componentSharePct(c);
    EXPECT_NEAR(share, 100.0, 1e-6);

    // Fetches can never trail commits.
    EXPECT_GE(sys.totals().total(CounterId::FetchedInsts),
              sys.totals().total(CounterId::CommittedInsts));

    // Misses never exceed references at any level.
    EXPECT_LE(sys.totals().total(CounterId::IL1Miss),
              sys.totals().total(CounterId::IL1Ref));
    EXPECT_LE(sys.totals().total(CounterId::DL1Miss),
              sys.totals().total(CounterId::DL1Ref));
    EXPECT_LE(sys.totals().total(CounterId::TlbMiss),
              sys.totals().total(CounterId::TlbRef));

    // Every service frame was finalized.
    std::uint64_t emitted_cycles = sys.kernel().totalServiceCycles();
    EXPECT_GT(emitted_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SystemSweep,
    ::testing::Combine(
        ::testing::Values(int(CpuModel::InOrder),
                          int(CpuModel::Superscalar)),
        ::testing::Values(8, 32),
        ::testing::Values(8, 32)));

TEST(SystemSweepEffects, SmallerICacheMissesMore)
{
    BenchmarkRun small = sweepRun(CpuModel::Superscalar, 4, 32);
    BenchmarkRun big = sweepRun(CpuModel::Superscalar, 32, 32);
    EXPECT_GT(small.system->hierarchy().icache().missRatio(),
              big.system->hierarchy().icache().missRatio());
    EXPECT_GE(small.system->now(), big.system->now());
}

TEST(SystemSweepEffects, SmallerDCacheMissesMore)
{
    BenchmarkRun small = sweepRun(CpuModel::Superscalar, 32, 4);
    BenchmarkRun big = sweepRun(CpuModel::Superscalar, 32, 32);
    EXPECT_GT(small.system->hierarchy().dcache().missRatio(),
              big.system->hierarchy().dcache().missRatio());
}

TEST(SystemSweepEffects, NarrowerMachineIsSlower)
{
    SystemConfig narrow;
    narrow.machine.fetchWidth = narrow.machine.decodeWidth =
        narrow.machine.issueWidth = narrow.machine.commitWidth = 1;
    BenchmarkRun one = runBenchmark(Benchmark::Db, narrow, 0.02);
    BenchmarkRun four =
        runBenchmark(Benchmark::Db, SystemConfig{}, 0.02);
    EXPECT_GT(one.system->now(), four.system->now());
}

TEST(SystemSweepEffects, SmallerTlbTrapsMore)
{
    SystemConfig small_tlb;
    small_tlb.machine.tlbEntries = 16;
    BenchmarkRun small =
        runBenchmark(Benchmark::Db, small_tlb, 0.02);
    BenchmarkRun big =
        runBenchmark(Benchmark::Db, SystemConfig{}, 0.02);
    EXPECT_GT(
        small.system->kernel().serviceStats(ServiceKind::Utlb)
            .invocations,
        big.system->kernel().serviceStats(ServiceKind::Utlb)
            .invocations);
}

TEST(SystemSweepEffects, LowerVddLowersEnergy)
{
    SystemConfig low;
    low.machine.vdd = 2.5;
    low.useCalibratedPower = false;  // analytical models scale Vdd
    SystemConfig high;
    high.machine.vdd = 3.3;
    high.useCalibratedPower = false;
    BenchmarkRun lo = runBenchmark(Benchmark::Db, low, 0.02);
    BenchmarkRun hi = runBenchmark(Benchmark::Db, high, 0.02);
    EXPECT_LT(lo.breakdown.cpuMemEnergyJ(),
              hi.breakdown.cpuMemEnergyJ());
}
