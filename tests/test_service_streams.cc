/**
 * @file
 * Tests for the kernel-service instruction-stream models.
 */

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "os/service_streams.hh"

using namespace softwatt;

namespace
{

/** Drain a stream, returning its ops (stops on Stall or End). */
std::vector<MicroOp>
drain(InstSource &src, std::size_t cap = 100000)
{
    std::vector<MicroOp> ops;
    MicroOp op;
    while (ops.size() < cap) {
        FetchOutcome outcome = src.next(op);
        if (outcome != FetchOutcome::Op)
            break;
        ops.push_back(op);
    }
    return ops;
}

/** Minimal IoContext with a scripted disk. */
class TestIo : public IoContext
{
  public:
    TestIo() : files(4096), cache(64) {}

    FileSystem &fs() override { return files; }
    FileCache &fileCache() override { return cache; }

    void
    requestDiskBlocks(std::uint64_t block, std::uint32_t num_blocks,
                      std::function<void()> done) override
    {
        ++requests;
        lastBlock = block;
        lastCount = num_blocks;
        pendingDone = std::move(done);
    }

    void
    completeIo()
    {
        ASSERT_TRUE(pendingDone != nullptr);
        auto done = std::move(pendingDone);
        pendingDone = nullptr;
        done();
    }

    FileSystem files;
    FileCache cache;
    int requests = 0;
    std::uint64_t lastBlock = 0;
    std::uint32_t lastCount = 0;
    std::function<void()> pendingDone;
};

} // namespace

TEST(ServiceStreams, FixedServicesHaveConfiguredLengths)
{
    ServiceTuning t;
    for (auto [kind, length] :
         std::vector<std::pair<ServiceKind, std::uint64_t>>{
             {ServiceKind::Utlb, t.utlbLength},
             {ServiceKind::TlbMiss, t.tlbMissLength},
             {ServiceKind::Vfault, t.vfaultLength},
             {ServiceKind::DemandZero, t.demandZeroLength},
             {ServiceKind::CacheFlush, t.cacheflushLength},
             {ServiceKind::Xstat, t.xstatLength},
             {ServiceKind::DuPoll, t.duPollLength},
             {ServiceKind::Bsd, t.bsdLength}}) {
        auto stream = makeFixedService(kind, t, 1);
        EXPECT_EQ(drain(*stream).size(), length)
            << serviceName(kind);
    }
}

TEST(ServiceStreams, AllServiceOpsAreKernelMapped)
{
    ServiceTuning t;
    auto stream = makeFixedService(ServiceKind::Utlb, t, 3);
    MicroOp op;
    while (stream->next(op) == FetchOutcome::Op) {
        EXPECT_TRUE(op.kernelMapped);
        EXPECT_TRUE(op.mode == ExecMode::KernelInst ||
                    op.mode == ExecMode::KernelSync);
    }
}

TEST(ServiceStreams, UtlbIsDeterministicAcrossInvocations)
{
    // The refill handler runs the same code every time; only the
    // seed-independent stream content matters for Table 5's CoD.
    ServiceTuning t;
    auto a = makeFixedService(ServiceKind::Utlb, t, 1);
    auto b = makeFixedService(ServiceKind::Utlb, t, 999);
    MicroOp x, y;
    while (a->next(x) == FetchOutcome::Op) {
        ASSERT_EQ(b->next(y), FetchOutcome::Op);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(int(x.cls), int(y.cls));
    }
}

TEST(ServiceStreams, UtlbIsNotDataIntensive)
{
    ServiceTuning t;
    auto stream = makeFixedService(ServiceKind::Utlb, t, 1);
    MicroOp op;
    int mem = 0, total = 0;
    while (stream->next(op) == FetchOutcome::Op) {
        ++total;
        mem += op.isMemOp();
    }
    EXPECT_LT(double(mem) / total, 0.3);
}

TEST(ServiceStreams, DemandZeroIsStoreDominated)
{
    ServiceTuning t;
    auto stream = makeFixedService(ServiceKind::DemandZero, t, 1);
    MicroOp op;
    int stores = 0, total = 0;
    while (stream->next(op) == FetchOutcome::Op) {
        ++total;
        stores += (op.cls == InstClass::Store);
    }
    EXPECT_GT(double(stores) / total, 0.6);
}

TEST(ServiceStreams, ClockHasSyncSection)
{
    ServiceTuning t;
    auto stream = makeFixedService(ServiceKind::ClockInt, t, 1);
    MicroOp op;
    int sync = 0;
    while (stream->next(op) == FetchOutcome::Op)
        sync += (op.mode == ExecMode::KernelSync);
    EXPECT_EQ(std::uint64_t(sync), t.clockSyncLength);
}

TEST(SequenceStream, RunsPartsInOrder)
{
    StreamSpec a = kernelCodeSpec(ExecMode::KernelInst);
    StreamSpec b = kernelCodeSpec(ExecMode::KernelSync);
    auto seq = std::make_unique<SequenceStream>();
    seq->append(std::make_unique<BoundedStream>(a, 1, 5));
    seq->append(std::make_unique<BoundedStream>(b, 2, 3));
    MicroOp op;
    for (int i = 0; i < 5; ++i) {
        ASSERT_EQ(seq->next(op), FetchOutcome::Op);
        EXPECT_EQ(int(op.mode), int(ExecMode::KernelInst));
    }
    for (int i = 0; i < 3; ++i) {
        ASSERT_EQ(seq->next(op), FetchOutcome::Op);
        EXPECT_EQ(int(op.mode), int(ExecMode::KernelSync));
    }
    EXPECT_EQ(seq->next(op), FetchOutcome::End);
}

TEST(IoService, CachedReadNeverTouchesDisk)
{
    TestIo io;
    ServiceTuning t;
    auto file = io.files.createFile(64 * 1024);
    std::uint64_t first = io.files.info(file).firstBlock;
    io.cache.insert(first);
    io.cache.insert(first + 1);

    IoService read(io, file, 0, 8000, false, t, 7);
    MicroOp op;
    std::uint64_t n = 0;
    while (read.next(op) == FetchOutcome::Op)
        ++n;
    EXPECT_EQ(io.requests, 0);
    // Lock + setup + two block copies + finish.
    std::uint64_t copy = (4096 / 8 * 2 + 64);
    EXPECT_GE(n, t.ioSyncLength + t.ioSetupLength + copy);
}

TEST(IoService, UncachedReadBlocksUntilDiskCompletes)
{
    TestIo io;
    ServiceTuning t;
    auto file = io.files.createFile(64 * 1024);

    IoService read(io, file, 0, 4096, false, t, 7);
    MicroOp op;
    FetchOutcome outcome;
    int ops_before = 0;
    while ((outcome = read.next(op)) == FetchOutcome::Op)
        ++ops_before;
    EXPECT_EQ(outcome, FetchOutcome::Stall);
    EXPECT_TRUE(read.waitingForIo());
    EXPECT_EQ(io.requests, 1);
    // Still stalled until the disk calls back.
    EXPECT_EQ(read.next(op), FetchOutcome::Stall);
    io.completeIo();
    EXPECT_FALSE(read.waitingForIo());
    int ops_after = 0;
    while (read.next(op) == FetchOutcome::Op)
        ++ops_after;
    EXPECT_GT(ops_after, 0);
    // The block is now cached for later reads.
    EXPECT_TRUE(
        io.cache.contains(io.files.info(file).firstBlock));
}

TEST(IoService, ReadAheadPrefetchesBeyondTheRequest)
{
    TestIo io;
    ServiceTuning t;
    auto file = io.files.createFile(256 * 1024);
    IoService read(io, file, 0, 20 * 1024, false, t, 7);
    MicroOp op;
    while (read.next(op) == FetchOutcome::Op) {
    }
    EXPECT_EQ(io.requests, 1);
    // Sequential prefetch: one transfer covers the full 32-block
    // window, not just the 5 requested blocks.
    EXPECT_EQ(io.lastCount, 32u);
}

TEST(IoService, ReadAheadStopsAtFileEnd)
{
    TestIo io;
    ServiceTuning t;
    auto file = io.files.createFile(3 * 4096);
    IoService read(io, file, 0, 4096, false, t, 7);
    MicroOp op;
    while (read.next(op) == FetchOutcome::Op) {
    }
    EXPECT_EQ(io.requests, 1);
    EXPECT_EQ(io.lastCount, 3u);  // whole (small) file, no more
}

TEST(IoService, WriteDirtiesCacheWithoutDisk)
{
    TestIo io;
    ServiceTuning t;
    auto file = io.files.createFile(64 * 1024);
    IoService write(io, file, 0, 8192, true, t, 7);
    MicroOp op;
    while (write.next(op) == FetchOutcome::Op) {
    }
    EXPECT_EQ(io.requests, 0);
    EXPECT_EQ(io.cache.dirtyBlocks(), 2u);
}

TEST(IoService, LockSectionIsSyncMode)
{
    TestIo io;
    ServiceTuning t;
    auto file = io.files.createFile(64 * 1024);
    io.cache.insert(io.files.info(file).firstBlock);
    IoService read(io, file, 0, 100, false, t, 7);
    MicroOp op;
    std::uint64_t sync = 0;
    while (read.next(op) == FetchOutcome::Op)
        sync += (op.mode == ExecMode::KernelSync);
    EXPECT_EQ(sync, t.ioSyncLength);
}
