/**
 * @file
 * Characterization regression tests: the paper's qualitative claims,
 * asserted on a shortened jess run so the reproduction's shape cannot
 * silently drift. Bands are deliberately loose — they encode the
 * *orderings and ranges* the paper reports, not exact values.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"

using namespace softwatt;

namespace
{

/** One shared jess run for the whole suite (expensive). */
const BenchmarkRun &
jessRun()
{
    static BenchmarkRun run = [] {
        SystemConfig config;
        return runBenchmark(Benchmark::Jess, config, 0.15);
    }();
    return run;
}

double
perCycle(const CounterBank &bank, ExecMode mode, CounterId id)
{
    double cycles = double(bank.get(mode, CounterId::Cycles));
    return cycles > 0 ? double(bank.get(mode, id)) / cycles : 0;
}

} // namespace

TEST(Characterization, ModePowerOrderingMatchesFig6)
{
    const PowerBreakdown &b = jessRun().breakdown;
    double user = b.modeAvgPowerW(ExecMode::User);
    double kernel = b.modeAvgPowerW(ExecMode::KernelInst);
    double sync = b.modeAvgPowerW(ExecMode::KernelSync);
    double idle = b.modeAvgPowerW(ExecMode::Idle);
    // Paper Fig. 6: user is the most power-hungry mode; the idle
    // busy-wait loop is the least, but is NOT free.
    EXPECT_GT(user, kernel);
    EXPECT_GT(user, sync);
    EXPECT_GT(kernel, idle);
    EXPECT_GT(sync, idle);
    EXPECT_GT(idle, 1.0);  // busy-waiting burns real watts
}

TEST(Characterization, UserL1IRefsPerCycleNearPaper)
{
    const CounterBank &totals = jessRun().system->totals();
    // Paper Table 3: user iL1 ~2.0; ours lands lower because of the
    // software-TLB trap overhead, but must stay in the band.
    double il1 = perCycle(totals, ExecMode::User, CounterId::IL1Ref);
    EXPECT_GT(il1, 1.3);
    EXPECT_LT(il1, 2.4);
    // Idle refs per cycle: paper ~0.75-0.87.
    double idle_il1 =
        perCycle(totals, ExecMode::Idle, CounterId::IL1Ref);
    EXPECT_GT(idle_il1, 0.4);
    EXPECT_LT(idle_il1, 1.2);
}

TEST(Characterization, UserHasHigherIlpThanKernel)
{
    const CounterBank &totals = jessRun().system->totals();
    double user_ipc =
        perCycle(totals, ExecMode::User, CounterId::CommittedInsts);
    double kernel_ipc = perCycle(totals, ExecMode::KernelInst,
                                 CounterId::CommittedInsts);
    EXPECT_GT(user_ipc, kernel_ipc);
}

TEST(Characterization, UserEnergyShareExceedsCycleShare)
{
    const PowerBreakdown &b = jessRun().breakdown;
    double cycles = double(b.totalCycles());
    double user_cycle_share =
        double(b.cycles[int(ExecMode::User)]) / cycles;
    double user_energy_share =
        b.modeEnergyJ(ExecMode::User) / b.cpuMemEnergyJ();
    // Paper Table 2's headline skew.
    EXPECT_GT(user_energy_share, user_cycle_share);
}

TEST(Characterization, IdleEnergyShareBelowCycleShare)
{
    const PowerBreakdown &b = jessRun().breakdown;
    double cycles = double(b.totalCycles());
    double idle_cycle_share =
        double(b.cycles[int(ExecMode::Idle)]) / cycles;
    double idle_energy_share =
        b.modeEnergyJ(ExecMode::Idle) / b.cpuMemEnergyJ();
    EXPECT_LT(idle_energy_share, idle_cycle_share);
}

TEST(Characterization, UtlbDominatesKernelCycles)
{
    Kernel &kernel = jessRun().system->kernel();
    std::uint64_t utlb =
        kernel.serviceStats(ServiceKind::Utlb).cycles;
    std::uint64_t total = kernel.totalServiceCycles();
    ASSERT_GT(total, 0u);
    // Paper Table 4: utlb is the single largest kernel service.
    for (ServiceKind kind : allServices) {
        if (kind != ServiceKind::Utlb) {
            EXPECT_GE(utlb, kernel.serviceStats(kind).cycles)
                << serviceName(kind);
        }
    }
    EXPECT_GT(double(utlb) / double(total), 0.25);
}

TEST(Characterization, UtlbIsTheLowestPowerKeyService)
{
    Kernel &kernel = jessRun().system->kernel();
    double freq =
        jessRun().system->powerModel().technology().freqHz();
    double utlb =
        kernel.serviceStats(ServiceKind::Utlb).avgPowerW(freq);
    // Paper Fig. 8: utlb draws less power than the data-intensive
    // services because it skips the D-cache and LSQ.
    for (ServiceKind kind :
         {ServiceKind::Read, ServiceKind::DemandZero,
          ServiceKind::CacheFlush}) {
        EXPECT_LT(utlb,
                  kernel.serviceStats(kind).avgPowerW(freq))
            << serviceName(kind);
    }
}

TEST(Characterization, InternalServicesVaryLessThanIo)
{
    Kernel &kernel = jessRun().system->kernel();
    double utlb =
        kernel.serviceStats(ServiceKind::Utlb).coeffOfDeviationPct();
    double dz = kernel.serviceStats(ServiceKind::DemandZero)
                    .coeffOfDeviationPct();
    double read =
        kernel.serviceStats(ServiceKind::Read).coeffOfDeviationPct();
    // Paper Table 5's split between internal and I/O services.
    EXPECT_LT(utlb, read);
    EXPECT_LT(dz, read);
}

TEST(Characterization, DiskIsLargestComponentWithConventionalDisk)
{
    const PowerBreakdown &conv = jessRun().conventional;
    double disk = conv.componentSharePct(Component::Disk);
    for (Component c : allComponents) {
        if (c != Component::Disk)
            EXPECT_GE(disk, conv.componentSharePct(c))
                << componentName(c);
    }
    // Paper Fig. 5: ~34 %.
    EXPECT_GT(disk, 25.0);
    EXPECT_LT(disk, 50.0);
}

TEST(Characterization, LowPowerDiskShrinksDiskShare)
{
    const BenchmarkRun &run = jessRun();
    EXPECT_LT(run.breakdown.componentSharePct(Component::Disk),
              run.conventional.componentSharePct(Component::Disk));
}

TEST(Characterization, ClockAndL1IDominateCpuSide)
{
    const PowerBreakdown &b = jessRun().breakdown;
    double clock = b.componentAvgPowerW(Component::Clock);
    double il1 = b.componentAvgPowerW(Component::L1ICache);
    for (Component c :
         {Component::Datapath, Component::L1DCache,
          Component::L2DCache, Component::L2ICache,
          Component::Memory}) {
        EXPECT_GT(clock, b.componentAvgPowerW(c)) << componentName(c);
        EXPECT_GT(il1, b.componentAvgPowerW(c)) << componentName(c);
    }
}

TEST(Characterization, SingleIssueMemorySubsystemBeatsDatapath)
{
    SystemConfig config;
    config.cpuModel = CpuModel::InOrder;
    BenchmarkRun run = runBenchmark(Benchmark::Jess, config, 0.1);
    const PowerBreakdown &b = run.breakdown;
    double datapath = b.componentAvgPowerW(Component::Datapath);
    double memory_subsystem =
        b.componentAvgPowerW(Component::L1ICache) +
        b.componentAvgPowerW(Component::L1DCache) +
        b.componentAvgPowerW(Component::L2ICache) +
        b.componentAvgPowerW(Component::L2DCache) +
        b.componentAvgPowerW(Component::Memory);
    // Paper Fig. 3: memory subsystem more than twice the datapath
    // on the single-issue configuration.
    EXPECT_GT(memory_subsystem, 2.0 * datapath);
}

TEST(Characterization, SyncOpsAreRareButPresent)
{
    const PowerBreakdown &b = jessRun().breakdown;
    double cycles = double(b.totalCycles());
    double sync_share =
        double(b.cycles[int(ExecMode::KernelSync)]) / cycles;
    // Paper Table 2: 0.2-0.9 % of cycles.
    EXPECT_GT(sync_share, 0.0005);
    EXPECT_LT(sync_share, 0.05);
}
