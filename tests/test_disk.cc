/**
 * @file
 * Tests for the MK3003MAN disk model: the Figure 2 state machine,
 * energy accounting, and the spin-down policies of Section 4.
 */

#include <gtest/gtest.h>

#include "disk/disk.hh"

using namespace softwatt;

namespace
{

constexpr double freqHz = 200e6;
constexpr double timeScale = 100.0;

/** Ticks for a paper-equivalent number of seconds. */
Tick
equivSeconds(double s)
{
    return Tick(s / timeScale * freqHz);
}

struct Fixture
{
    EventQueue queue;

    Disk
    make(DiskConfig cfg)
    {
        return Disk(queue, freqHz, cfg, timeScale, 1234);
    }
};

} // namespace

TEST(DiskConfig, Names)
{
    EXPECT_STREQ(DiskConfig::conventional().name(), "Baseline");
    EXPECT_STREQ(DiskConfig::idleOnly().name(), "Without Spindowns");
    EXPECT_STREQ(DiskConfig::spindown(2).name(),
                 "With 2 Sec. Spindown");
    EXPECT_STREQ(DiskConfig::spindown(4).name(),
                 "With 4 Sec. Spindown");
}

TEST(Disk, ConventionalBurnsActivePowerWhileQuiet)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::conventional());
    f.queue.advanceTo(equivSeconds(10.0));
    // 10 equivalent seconds at ACTIVE (3.2 W) = 32 J.
    EXPECT_NEAR(disk.energyJ(), 32.0, 0.5);
}

TEST(Disk, IdleOnlyBurnsIdlePowerWhileQuiet)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::idleOnly());
    f.queue.advanceTo(equivSeconds(10.0));
    // 10 s at IDLE (1.6 W) = 16 J.
    EXPECT_NEAR(disk.energyJ(), 16.0, 0.5);
}

TEST(Disk, RequestSeeksThenTransfersThenIdles)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::idleOnly());
    bool done = false;
    disk.submit(5000, 4, [&](DiskIoStatus) { done = true; });
    EXPECT_EQ(disk.state(), DiskState::Seeking);
    f.queue.runUntil(equivSeconds(1.0));
    EXPECT_TRUE(done);
    EXPECT_EQ(disk.state(), DiskState::Idle);
    EXPECT_EQ(disk.requestsServed(), 1u);
    EXPECT_GT(disk.stateSeconds(DiskState::Seeking), 0.0);
    EXPECT_GT(disk.stateSeconds(DiskState::Active), 0.0);
}

TEST(Disk, SpindownAfterThreshold)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(2.0));
    bool done = false;
    disk.submit(100, 1, [&](DiskIoStatus) { done = true; });
    f.queue.runUntil(equivSeconds(1.0));
    ASSERT_TRUE(done);
    EXPECT_EQ(disk.state(), DiskState::Idle);
    // 2 s of inactivity, then a 5 s spin-down, then STANDBY.
    f.queue.runUntil(equivSeconds(1.0 + 2.0 + 0.5));
    EXPECT_EQ(disk.state(), DiskState::SpinningDown);
    f.queue.runUntil(equivSeconds(1.0 + 2.0 + 5.5));
    EXPECT_EQ(disk.state(), DiskState::Standby);
    EXPECT_EQ(disk.spinDowns(), 1u);
}

TEST(Disk, IdleOnlyNeverSpinsDown)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::idleOnly());
    disk.submit(100, 1, [](DiskIoStatus) {});
    f.queue.runUntil(equivSeconds(60.0));
    EXPECT_EQ(disk.state(), DiskState::Idle);
    EXPECT_EQ(disk.spinDowns(), 0u);
}

TEST(Disk, RequestFromStandbySpinsUpWithDelay)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(2.0));
    disk.submit(100, 1, [](DiskIoStatus) {});
    f.queue.runUntil(equivSeconds(10.0));
    ASSERT_EQ(disk.state(), DiskState::Standby);

    Tick issued = f.queue.now();
    bool done = false;
    disk.submit(200, 1, [&](DiskIoStatus) { done = true; });
    EXPECT_EQ(disk.state(), DiskState::SpinningUp);
    f.queue.runUntil(issued + equivSeconds(4.9));
    EXPECT_FALSE(done);  // still spinning up (5 s)
    f.queue.runUntil(issued + equivSeconds(6.0));
    EXPECT_TRUE(done);
    EXPECT_EQ(disk.spinUps(), 1u);
    EXPECT_GT(disk.stateSeconds(DiskState::SpinningUp), 4.5);
}

TEST(Disk, RequestDuringSpindownWaitsThenSpinsUp)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(2.0));
    disk.submit(100, 1, [](DiskIoStatus) {});
    f.queue.runUntil(equivSeconds(1.0 + 2.0 + 0.5));
    ASSERT_EQ(disk.state(), DiskState::SpinningDown);
    bool done = false;
    disk.submit(300, 1, [&](DiskIoStatus) { done = true; });
    // Must finish the spin-down, then spin up, then serve.
    f.queue.runUntil(equivSeconds(20.0));
    EXPECT_TRUE(done);
    EXPECT_EQ(disk.spinUps(), 1u);
}

TEST(Disk, NewRequestCancelsArmedSpindown)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(2.0));
    disk.submit(100, 1, [](DiskIoStatus) {});
    // The request finishes well before t=1.5 s; the threshold would
    // expire around t+2 s, so this resubmission disarms it.
    f.queue.runUntil(equivSeconds(1.5));
    disk.submit(200, 1, [](DiskIoStatus) {});
    f.queue.runUntil(equivSeconds(3.4));
    EXPECT_EQ(disk.spinDowns(), 0u);
}

TEST(Disk, SpinupCostsMoreEnergyThanStayingIdle)
{
    // A single idle gap shorter than spin-down + spin-up time: the
    // spin-down policy must lose (the paper's key observation).
    Fixture f1, f2;
    Disk idle_disk = f1.make(DiskConfig::idleOnly());
    Disk sd_disk = f2.make(DiskConfig::spindown(2.0));

    for (Fixture *f : {&f1, &f2}) {
        Disk &d = (f == &f1) ? idle_disk : sd_disk;
        d.submit(100, 1, [](DiskIoStatus) {});
        f->queue.runUntil(equivSeconds(1.0));
        // 8 s gap, then another request; stop right after it
        // completes so the comparison covers only the gap episode.
        f->queue.runUntil(f->queue.now() + equivSeconds(8.0));
        bool done = false;
        d.submit(5000, 1, [&](DiskIoStatus) { done = true; });
        while (!done)
            f->queue.advanceTo(f->queue.now() + equivSeconds(0.1));
        EXPECT_TRUE(done);
    }
    EXPECT_GT(sd_disk.energyJ(), idle_disk.energyJ());
}

TEST(Disk, LongGapFavoursSpindown)
{
    // A very long gap: STANDBY residency wins despite the spin-up.
    Fixture f1, f2;
    Disk idle_disk = f1.make(DiskConfig::idleOnly());
    Disk sd_disk = f2.make(DiskConfig::spindown(2.0));
    for (Fixture *f : {&f1, &f2}) {
        Disk &d = (f == &f1) ? idle_disk : sd_disk;
        d.submit(100, 1, [](DiskIoStatus) {});
        f->queue.runUntil(equivSeconds(1.0));
        f->queue.runUntil(f->queue.now() + equivSeconds(120.0));
        d.submit(5000, 1, [](DiskIoStatus) {});
        f->queue.runUntil(f->queue.now() + equivSeconds(10.0));
    }
    EXPECT_LT(sd_disk.energyJ(), idle_disk.energyJ());
}

TEST(Disk, StateResidenciesCoverElapsedTime)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(2.0));
    disk.submit(100, 2, [](DiskIoStatus) {});
    f.queue.runUntil(equivSeconds(15.0));
    double total = 0;
    for (DiskState s :
         {DiskState::Sleep, DiskState::Standby,
          DiskState::SpinningDown, DiskState::SpinningUp,
          DiskState::Idle, DiskState::Active, DiskState::Seeking}) {
        total += disk.stateSeconds(s);
    }
    EXPECT_NEAR(total, 15.0, 0.01);
}

TEST(Disk, SleepIsLowestPower)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::spindown(2.0));
    disk.submit(100, 1, [](DiskIoStatus) {});
    f.queue.runUntil(equivSeconds(10.0));
    ASSERT_EQ(disk.state(), DiskState::Standby);
    disk.sleep();
    EXPECT_EQ(disk.state(), DiskState::Sleep);
    double e0 = disk.energyJ();
    f.queue.runUntil(f.queue.now() + equivSeconds(10.0));
    // 10 s at 0.15 W.
    EXPECT_NEAR(disk.energyJ() - e0, 1.5, 0.05);
}

TEST(Disk, DeterministicAcrossRuns)
{
    double e1, e2;
    for (double *e : {&e1, &e2}) {
        EventQueue q;
        Disk d(q, freqHz, DiskConfig::idleOnly(), timeScale, 99);
        d.submit(1000, 3, [](DiskIoStatus) {});
        q.runUntil(equivSeconds(2.0));
        *e = d.energyJ();
    }
    EXPECT_DOUBLE_EQ(e1, e2);
}

TEST(Disk, QueuedRequestsServeInOrder)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::idleOnly());
    std::vector<int> order;
    disk.submit(100, 1, [&](DiskIoStatus) { order.push_back(1); });
    disk.submit(200, 1, [&](DiskIoStatus) { order.push_back(2); });
    disk.submit(300, 1, [&](DiskIoStatus) { order.push_back(3); });
    f.queue.runUntil(equivSeconds(5.0));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(disk.requestsServed(), 3u);
    EXPECT_TRUE(disk.quiescent());
}

TEST(DiskDeath, ZeroBlockRequestFatal)
{
    Fixture f;
    Disk disk = f.make(DiskConfig::idleOnly());
    EXPECT_DEATH(disk.submit(0, 0, [](DiskIoStatus) {}), "at least one");
}
