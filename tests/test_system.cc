/**
 * @file
 * Full-system integration tests: complete benchmark runs through
 * CPU + caches + TLB + MiniOS + disk with the power post-processing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/experiment.hh"
#include "core/system.hh"

using namespace softwatt;

namespace
{

/** A small but complete benchmark run. */
BenchmarkRun
tinyRun(Benchmark b, SystemConfig config = SystemConfig{},
        double scale = 0.03)
{
    config.sampleWindow = 20'000;
    return runBenchmark(b, config, scale);
}

} // namespace

TEST(System, RunsToCompletion)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    System &sys = *run.system;
    EXPECT_TRUE(sys.kernel().workloadDone());
    EXPECT_GT(sys.now(), 100'000u);
    EXPECT_GT(sys.cpu().committedInsts(), 100'000u);
    EXPECT_FALSE(sys.log().empty());
}

TEST(System, LogCoversTheWholeRun)
{
    BenchmarkRun run = tinyRun(Benchmark::Db);
    System &sys = *run.system;
    EXPECT_EQ(sys.log().totalCycles(), sys.now());
    // Windows are contiguous.
    Tick expected_start = 0;
    for (const SampleRecord &rec : sys.log().all()) {
        EXPECT_EQ(rec.startTick, expected_start);
        expected_start = rec.endTick;
    }
}

TEST(System, TotalsMatchLogTotals)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    System &sys = *run.system;
    CounterBank from_log = sys.log().totals();
    for (ExecMode m : allExecModes) {
        for (int c = 0; c < numCounters; ++c) {
            EXPECT_EQ(sys.totals().get(m, CounterId(c)),
                      from_log.get(m, CounterId(c)));
        }
    }
}

TEST(System, CycleModesPartitionTime)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    System &sys = *run.system;
    std::uint64_t mode_cycles = 0;
    for (ExecMode m : allExecModes)
        mode_cycles += sys.totals().get(m, CounterId::Cycles);
    EXPECT_EQ(mode_cycles, sys.now());
}

TEST(System, FastForwardSkipsIdleWaits)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    System &sys = *run.system;
    // Class loading from a cold buffer cache must have produced
    // long disk waits that were fast-forwarded.
    EXPECT_GT(sys.fastForwardedCycles(), 0u);
    EXPECT_GT(sys.totals().get(ExecMode::Idle, CounterId::Cycles),
              sys.fastForwardedCycles() / 2);
}

TEST(System, PowerBreakdownIsPositiveAndComplete)
{
    BenchmarkRun run = tinyRun(Benchmark::Mtrt);
    const PowerBreakdown &b = run.breakdown;
    EXPECT_GT(b.cpuMemEnergyJ(), 0.0);
    EXPECT_GT(b.diskEnergyJ, 0.0);
    EXPECT_GT(b.componentAvgPowerW(Component::L1ICache), 0.0);
    EXPECT_GT(b.componentAvgPowerW(Component::Clock), 0.0);
    double share = 0;
    for (Component c : allComponents)
        share += b.componentSharePct(c);
    EXPECT_NEAR(share, 100.0, 1e-6);
}

TEST(System, ConventionalDiskCostsMoreThanManaged)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    EXPECT_GT(run.system->diskEnergyConventionalJ(),
              run.system->diskEnergyJ());
    EXPECT_GT(run.conventional.componentSharePct(Component::Disk),
              run.breakdown.componentSharePct(Component::Disk));
}

TEST(System, ServiceAccountingIsPopulated)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    Kernel &kernel = run.system->kernel();
    EXPECT_GT(kernel.serviceStats(ServiceKind::Utlb).invocations,
              10u);
    EXPECT_GT(kernel.serviceStats(ServiceKind::Read).invocations, 0u);
    EXPECT_GT(kernel.serviceStats(ServiceKind::Open).invocations, 0u);
}

TEST(System, InternalServicesVaryLessThanIoServices)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess, SystemConfig{}, 0.06);
    Kernel &kernel = run.system->kernel();
    double utlb_cod = kernel.serviceStats(ServiceKind::Utlb)
                          .coeffOfDeviationPct();
    double read_cod = kernel.serviceStats(ServiceKind::Read)
                          .coeffOfDeviationPct();
    EXPECT_LT(utlb_cod, read_cod);
}

TEST(System, InOrderModelRunsTheSameWorkload)
{
    SystemConfig config;
    config.cpuModel = CpuModel::InOrder;
    BenchmarkRun run = tinyRun(Benchmark::Db, config);
    System &sys = *run.system;
    EXPECT_TRUE(sys.kernel().workloadDone());
    EXPECT_LE(sys.cpu().ipc(), 1.0);
}

TEST(System, SuperscalarIsFasterThanInOrder)
{
    SystemConfig ooo, io;
    io.cpuModel = CpuModel::InOrder;
    BenchmarkRun fast = tinyRun(Benchmark::Db, ooo);
    BenchmarkRun slow = tinyRun(Benchmark::Db, io);
    EXPECT_LT(fast.system->now(), slow.system->now());
}

TEST(System, LogCsvRoundTripsThroughPowerPass)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    System &sys = *run.system;

    std::stringstream buffer;
    sys.log().writeCsv(buffer);
    SampleLog loaded;
    ASSERT_TRUE(SampleLog::readCsv(buffer, loaded));

    PowerCalculator calc(sys.powerModel());
    PowerTrace from_disk_log = calc.process(loaded);
    PowerTrace from_memory = sys.powerTrace();
    EXPECT_NEAR(from_disk_log.total.cpuMemEnergyJ(),
                from_memory.total.cpuMemEnergyJ(), 1e-9);
}

TEST(System, DeterministicAcrossRuns)
{
    BenchmarkRun a = tinyRun(Benchmark::Javac);
    BenchmarkRun b = tinyRun(Benchmark::Javac);
    EXPECT_EQ(a.system->now(), b.system->now());
    EXPECT_DOUBLE_EQ(a.breakdown.cpuMemEnergyJ(),
                     b.breakdown.cpuMemEnergyJ());
    EXPECT_DOUBLE_EQ(a.system->diskEnergyJ(), b.system->diskEnergyJ());
}

TEST(System, ConfigOverridesApply)
{
    Config args;
    args.parseAssignment("cpu.model=mipsy");
    args.parseAssignment("disk.config=spindown");
    args.parseAssignment("disk.threshold_s=4");
    args.parseAssignment("icache.size_kb=16");
    SystemConfig config = SystemConfig::fromConfig(args);
    EXPECT_EQ(int(config.cpuModel), int(CpuModel::InOrder));
    EXPECT_EQ(int(config.diskConfig.kind),
              int(DiskConfigKind::Spindown));
    EXPECT_DOUBLE_EQ(config.diskConfig.spindownThresholdSeconds, 4.0);
    EXPECT_EQ(config.machine.icache.sizeBytes, 16u * 1024);
}

TEST(System, AverageBreakdownsAggregates)
{
    BenchmarkRun a = tinyRun(Benchmark::Jess);
    BenchmarkRun b = tinyRun(Benchmark::Db);
    PowerBreakdown avg =
        averageBreakdowns({a.breakdown, b.breakdown});
    EXPECT_EQ(avg.totalCycles(),
              a.breakdown.totalCycles() + b.breakdown.totalCycles());
    EXPECT_NEAR(avg.cpuMemEnergyJ(),
                a.breakdown.cpuMemEnergyJ() +
                    b.breakdown.cpuMemEnergyJ(),
                1e-12);
}

TEST(System, DumpStatsListsKeyMetrics)
{
    BenchmarkRun run = tinyRun(Benchmark::Jess);
    std::ostringstream out;
    run.system->dumpStats(out);
    std::string text = out.str();
    for (const char *key :
         {"sim.cycles", "cpu.ipc", "cpu.bpred_accuracy",
          "l1i.miss_ratio", "tlb.miss_ratio",
          "filecache.hit_ratio", "disk.requests",
          "kernel.utlb.invocations"}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
}

TEST(IdleProfileTest, MeasuresPlausibleIdleRates)
{
    MachineParams machine;
    IdleProfile profile = measureIdleProfile(machine, true);
    EXPECT_DOUBLE_EQ(profile.perCycle[int(CounterId::Cycles)], 1.0);
    double il1 = profile.perCycle[int(CounterId::IL1Ref)];
    EXPECT_GT(il1, 0.3);
    EXPECT_LT(il1, 2.0);
    CounterBank bank;
    profile.apply(bank, 1000);
    EXPECT_EQ(bank.get(ExecMode::Idle, CounterId::Cycles), 1000u);
    EXPECT_NEAR(double(bank.get(ExecMode::Idle, CounterId::IL1Ref)),
                il1 * 1000, il1 * 1000 * 0.01 + 1);
}
