/**
 * @file
 * Parameterized disk-policy property sweep: the spin-down trade-off
 * of Section 4 as enforceable invariants over threshold and gap
 * structure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "disk/disk.hh"
#include "sim/event_queue.hh"

using namespace softwatt;

namespace
{

constexpr double freqHz = 200e6;
constexpr double timeScale = 100.0;

Tick
equivSeconds(double s)
{
    return Tick(s / timeScale * freqHz);
}

/** Run a fixed access pattern; returns (energy, end tick). */
struct PatternResult
{
    double energyJ;
    Tick endTick;
    std::uint64_t spinUps;
};

PatternResult
runPattern(DiskConfig config, const std::vector<double> &gap_seconds)
{
    EventQueue queue;
    Disk disk(queue, freqHz, config, timeScale, 42);
    double t = 0.1;
    std::uint64_t block = 1000;
    int completed = 0;
    PatternResult result{0, 0, 0};
    int expected = int(gap_seconds.size());
    for (double gap : gap_seconds) {
        t += gap;
        queue.schedule(equivSeconds(t), [&, block] {
            disk.submit(block, 2, [&](DiskIoStatus) {
                ++completed;
                if (completed == expected) {
                    // Snapshot at the moment the workload would end,
                    // so quiet-tail residency doesn't skew the
                    // comparison.
                    result.energyJ = disk.energyJ();
                    result.endTick = queue.now();
                    result.spinUps = disk.spinUps();
                }
            });
        });
        block += 5000;
    }
    queue.runUntil(equivSeconds(t + 40.0));
    EXPECT_EQ(completed, expected);
    return result;
}

} // namespace

/** Threshold sweep over a fixed pattern of 6-second gaps. */
class ThresholdSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ThresholdSweep, SpinupsBoundedByRequests)
{
    double threshold = GetParam();
    PatternResult r = runPattern(DiskConfig::spindown(threshold),
                                 {6.0, 6.0, 6.0, 6.0});
    EXPECT_LE(r.spinUps, 4u);
}

TEST_P(ThresholdSweep, ManagedNeverWorseThanConventional)
{
    double threshold = GetParam();
    std::vector<double> gaps = {6.0, 6.0, 6.0, 6.0};
    PatternResult managed =
        runPattern(DiskConfig::spindown(threshold), gaps);
    PatternResult conventional =
        runPattern(DiskConfig::conventional(), gaps);
    // The conventional disk burns ACTIVE power the whole time: any
    // managed policy consumes less energy on the same pattern.
    EXPECT_LT(managed.energyJ, conventional.energyJ);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0));

TEST(DiskPolicyProperties, LargerThresholdFewerSpinups)
{
    std::vector<double> gaps = {3.0, 3.0, 3.0, 3.0, 3.0};
    PatternResult t2 = runPattern(DiskConfig::spindown(2.0), gaps);
    PatternResult t4 = runPattern(DiskConfig::spindown(4.0), gaps);
    EXPECT_GE(t2.spinUps, t4.spinUps);
}

TEST(DiskPolicyProperties, ShortGapsFavourNoSpindown)
{
    // Gaps just above the threshold: the paper's thrash case.
    std::vector<double> gaps = {3.0, 3.0, 3.0, 3.0, 3.0};
    PatternResult idle = runPattern(DiskConfig::idleOnly(), gaps);
    PatternResult sd = runPattern(DiskConfig::spindown(2.0), gaps);
    EXPECT_GT(sd.energyJ, idle.energyJ);
    EXPECT_GT(sd.endTick, idle.endTick);  // spin-up stalls
}

TEST(DiskPolicyProperties, LongGapsFavourSpindown)
{
    std::vector<double> gaps = {40.0, 40.0};
    PatternResult idle = runPattern(DiskConfig::idleOnly(), gaps);
    PatternResult sd = runPattern(DiskConfig::spindown(2.0), gaps);
    EXPECT_LT(sd.energyJ, idle.energyJ);
}

TEST(DiskPolicyProperties, IdleOnlyTimingEqualsConventional)
{
    // The IDLE transition is free and instantaneous: request timing
    // is identical to the unmanaged disk (why the paper drops the
    // baseline from the performance comparison).
    std::vector<double> gaps = {2.0, 5.0, 1.0};
    PatternResult idle = runPattern(DiskConfig::idleOnly(), gaps);
    PatternResult conv = runPattern(DiskConfig::conventional(), gaps);
    EXPECT_EQ(idle.endTick, conv.endTick);
}

TEST(DiskPolicyProperties, ThresholdBelowGapMinusSpinupWins)
{
    // The paper's closing rule: spindowns pay off exactly when the
    // inter-access gap is much larger than spin-down + spin-up time.
    double gap = 25.0;  // >> 2 + 5 + 5
    PatternResult idle =
        runPattern(DiskConfig::idleOnly(), {gap, gap});
    PatternResult sd =
        runPattern(DiskConfig::spindown(2.0), {gap, gap});
    EXPECT_LT(sd.energyJ, idle.energyJ);

    double short_gap = 8.0;  // comparable to 2 + 5 + 5
    PatternResult idle2 =
        runPattern(DiskConfig::idleOnly(), {short_gap, short_gap});
    PatternResult sd2 =
        runPattern(DiskConfig::spindown(2.0), {short_gap, short_gap});
    EXPECT_GT(sd2.energyJ, idle2.energyJ);
}
