/**
 * @file
 * Unit tests for the deterministic random stream.
 */

#include <gtest/gtest.h>

#include "sim/random.hh"

using namespace softwatt;

TEST(Random, DeterministicForSameSeed)
{
    Random a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Random, ZeroSeedIsRemapped)
{
    Random z(0);
    EXPECT_NE(z.next(), 0u);
}

TEST(Random, BelowRespectsBound)
{
    Random r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Random, RangeIsInclusive)
{
    Random r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Random, UniformInUnitInterval)
{
    Random r(7);
    double sum = 0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5.
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Random, ChanceMatchesProbability)
{
    Random r(99);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(double(hits) / 20000.0, 0.3, 0.02);
}

TEST(Random, ChanceZeroAndOne)
{
    Random r(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Random, BurstBounded)
{
    Random r(11);
    for (int i = 0; i < 1000; ++i) {
        auto b = r.burst(0.9, 16);
        EXPECT_GE(b, 1u);
        EXPECT_LE(b, 16u);
    }
}
